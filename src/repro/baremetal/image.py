"""Deployment image helpers: ``.mem`` and ``.bin`` artefacts.

The paper's flow produces two kinds of files: the machine code in
``.mem`` format (loaded into the program BRAMs) and weight/input blobs
in ``.bin`` format (preloaded into DDR4 by the Zynq PS).  This module
packages both from flow outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baremetal.weight_extract import MemorySegment
from repro.errors import CodegenError
from repro.riscv.program import Program


@dataclass(frozen=True)
class BinImage:
    """A ``.bin`` file plus the DRAM address it loads at."""

    name: str
    load_address: int
    data: bytes

    @property
    def size(self) -> int:
        return len(self.data)


def segments_to_bin(name: str, segments: list[MemorySegment], fill: int = 0) -> BinImage:
    """Flatten segments into one contiguous ``.bin`` (gaps filled)."""
    if not segments:
        raise CodegenError(f"no segments to build image {name!r}")
    ordered = sorted(segments, key=lambda s: s.address)
    base = ordered[0].address
    end = max(s.end for s in ordered)
    blob = bytearray([fill]) * (end - base)
    for segment in ordered:
        blob[segment.address - base : segment.end - base] = segment.data
    return BinImage(name=name, load_address=base, data=bytes(blob))


@dataclass
class DeploymentImages:
    """Everything the FPGA bring-up needs."""

    program_mem: str  # .mem text for the program BRAM
    program: Program
    preload: list[BinImage] = field(default_factory=list)

    def preload_bytes(self) -> int:
        return sum(image.size for image in self.preload)

    def describe(self) -> str:
        lines = [
            f"program: {self.program.size_bytes / 1024:.1f} KiB "
            f"({len(self.program.words)} words) @ 0x{self.program.base:08x}"
        ]
        for image in self.preload:
            lines.append(
                f"preload {image.name}: {image.size / 1024:.1f} KiB @ 0x{image.load_address:08x}"
            )
        return "\n".join(lines)
