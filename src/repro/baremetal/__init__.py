"""The bare-metal software-generation flow (paper Fig. 1).

This is the paper's headline contribution: converting a VP execution
trace into a standalone RISC-V program that drives NVDLA with plain
load/store instructions — no Linux kernel, no driver stack.

Stages (each a module, composable via :mod:`repro.baremetal.pipeline`):

1. :mod:`repro.baremetal.trace_to_config` — filter ``csb_adaptor``
   lines into a *configuration file* of ``write_reg`` / ``read_reg``
   commands (:mod:`repro.baremetal.config_file`),
2. :mod:`repro.baremetal.weight_extract` — reconstruct the initial
   DRAM image (weights + input) from ``dbb_adaptor`` lines, keeping
   the first access per address and discarding locations NVDLA wrote
   before reading,
3. :mod:`repro.baremetal.codegen` — emit self-checking RISC-V
   assembly: stores for writes, bounded poll loops for reads,
4. assembly → machine code via :mod:`repro.riscv.assembler`, packaged
   as ``.mem`` (program BRAM) and ``.bin`` (DRAM preload) images.
"""

from repro.baremetal.config_file import ConfigCommand, parse_config_file, render_config_file
from repro.baremetal.trace_to_config import trace_to_config
from repro.baremetal.weight_extract import MemorySegment, extract_initial_memory, split_by_regions
from repro.baremetal.codegen import CodegenOptions, generate_assembly
from repro.baremetal.pipeline import BaremetalBundle, execute_bundle, generate_baremetal

__all__ = [
    "BaremetalBundle",
    "CodegenOptions",
    "ConfigCommand",
    "MemorySegment",
    "execute_bundle",
    "extract_initial_memory",
    "generate_assembly",
    "generate_baremetal",
    "parse_config_file",
    "render_config_file",
    "split_by_regions",
    "trace_to_config",
]
