"""The configuration-file format.

The intermediate artefact between the VP trace and the generated
assembly, matching the command vocabulary of NVDLA's register traces::

    write_reg 0x0000b010 0x00000001
    read_reg  0x0000000c 0x00000004 0x00000004

``read_reg`` carries the expected value and a mask; its execution
semantic (implemented by the generated code) is *poll until
``(value & mask) == expected``*, with a bounded retry count — which is
how status/interrupt reads behave, and degenerates to a single
read-and-compare for plain registers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CodegenError


@dataclass(frozen=True)
class ConfigCommand:
    """One register command."""

    kind: str  # 'write_reg' | 'read_reg'
    address: int
    data: int
    mask: int = 0xFFFFFFFF

    def __post_init__(self) -> None:
        if self.kind not in ("write_reg", "read_reg"):
            raise CodegenError(f"unknown config command {self.kind!r}")
        if not 0 <= self.address <= 0xFFFFFFFF:
            raise CodegenError(f"address 0x{self.address:x} out of range")

    def render(self) -> str:
        if self.kind == "write_reg":
            return f"write_reg 0x{self.address:08x} 0x{self.data:08x}"
        return f"read_reg  0x{self.address:08x} 0x{self.data:08x} 0x{self.mask:08x}"


def render_config_file(commands: list[ConfigCommand], header: str | None = None) -> str:
    """Serialise a command list, with an optional comment header."""
    lines: list[str] = []
    if header:
        lines.extend(f"# {line}" for line in header.splitlines())
    lines.extend(command.render() for command in commands)
    return "\n".join(lines) + "\n"


def parse_config_file(text: str) -> list[ConfigCommand]:
    """Parse a configuration file back into commands."""
    commands: list[ConfigCommand] = []
    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        try:
            if parts[0] == "write_reg" and len(parts) == 3:
                commands.append(
                    ConfigCommand("write_reg", int(parts[1], 16), int(parts[2], 16))
                )
            elif parts[0] == "read_reg" and len(parts) in (3, 4):
                mask = int(parts[3], 16) if len(parts) == 4 else 0xFFFFFFFF
                commands.append(
                    ConfigCommand("read_reg", int(parts[1], 16), int(parts[2], 16), mask)
                )
            else:
                raise ValueError("unrecognised command")
        except (ValueError, IndexError) as exc:
            raise CodegenError(f"config file line {line_no}: {raw_line!r}: {exc}") from exc
    return commands
