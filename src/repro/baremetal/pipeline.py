"""The end-to-end offline flow: model → bare-metal artefacts.

Composes the whole of the paper's Fig. 1 in one call::

    bundle = generate_baremetal(lenet5(), NV_SMALL)

running: compile → VP execution (trace capture) → configuration file →
weight/input extraction → RISC-V assembly → machine code.  The bundle
carries every intermediate artefact, so examples and tests can inspect
any stage, and the SoC model consumes the final images directly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields

import numpy as np

from repro.baremetal.codegen import CodegenOptions, estimate_program_words, generate_assembly
from repro.baremetal.config_file import ConfigCommand, render_config_file
from repro.baremetal.image import BinImage, DeploymentImages, segments_to_bin
from repro.baremetal.trace_to_config import trace_to_config
from repro.baremetal.weight_extract import extract_initial_memory, split_by_regions
from repro.compiler import CompileOptions, compile_network
from repro.compiler.loadable import Loadable
from repro.errors import CodegenError
from repro.nn.graph import Network
from repro.nn.quantize import CalibrationTable
from repro.nvdla.config import HardwareConfig, Precision, get_config
from repro.riscv.assembler import assemble
from repro.riscv.program import Program
from repro.vp import InferenceResult, NvdlaRuntime, TraceLog, VirtualPlatform


@dataclass
class BaremetalBundle:
    """All artefacts of one offline flow run."""

    network: str
    config: str
    precision: Precision
    loadable: Loadable
    trace: TraceLog
    commands: list[ConfigCommand]
    assembly: str
    program: Program
    images: DeploymentImages
    vp_result: InferenceResult
    input_image: np.ndarray
    fidelity: str = "functional"
    notes: dict = field(default_factory=dict)

    @property
    def config_file_text(self) -> str:
        return render_config_file(
            self.commands,
            header=(
                f"configuration file for {self.network} on {self.config} "
                f"({self.precision.value})"
            ),
        )

    def artifact_digest(self) -> str:
        """SHA-256 over every deployable artefact of the bundle.

        Two bundles with equal digests produce bit-identical SoC runs:
        the digest covers the machine code, the register command
        sequence and every preload image (name, load address, bytes).
        The serve tests use it to prove that independent builds of one
        deployment key are exact replicas of each other.
        """
        h = hashlib.sha256()
        h.update(self.program.to_bytes())
        h.update(self.program.base.to_bytes(8, "little"))
        for command in self.commands:
            h.update(command.render().encode())
        for image in self.images.preload:
            h.update(image.name.encode())
            h.update(image.load_address.to_bytes(8, "little"))
            h.update(image.data)
        return h.hexdigest()

    def describe(self) -> str:
        lines = [
            f"bare-metal bundle: {self.network} on {self.config} ({self.precision.value})",
            f"  trace: {len(self.trace.csb)} csb + {len(self.trace.dbb)} dbb transactions",
            f"  config file: {len(self.commands)} commands",
            f"  program: {len(self.program.words)} words "
            f"({self.program.size_bytes / 1024:.1f} KiB)",
            self.images.describe(),
        ]
        return "\n".join(lines)


def generate_baremetal(
    net: Network,
    config: HardwareConfig,
    precision: Precision = Precision.INT8,
    input_image: np.ndarray | None = None,
    fidelity: str = "functional",
    compile_options: CompileOptions | None = None,
    codegen_options: CodegenOptions | None = None,
    seed: int = 2024,
    verify: bool = False,
) -> BaremetalBundle:
    """Run the complete offline software-generation flow.

    With ``fidelity="timing"`` the VP skips tensor computation and DBB
    data logging (for ResNet-50-class models); weight extraction then
    falls back to the loadable's own weight blob and packed input, so
    the deployment images are still complete.

    ``verify=True`` statically analyzes the compiled loadable (see
    :mod:`repro.analyze`) *before* the VP runs, raising
    :class:`~repro.errors.StaticAnalysisError` on any ERROR finding —
    a miscompile is caught for the cost of a descriptor replay rather
    than a simulation.
    """
    compile_options = compile_options or CompileOptions(precision=precision)
    if compile_options.precision is not precision:
        raise CodegenError("compile_options.precision disagrees with precision argument")
    loadable = compile_network(net, config, compile_options, verify=verify)

    platform = VirtualPlatform(config, fidelity=fidelity, trace=True)
    runtime = NvdlaRuntime(platform)
    runtime.deploy(loadable)
    if input_image is None:
        rng = np.random.default_rng(seed)
        input_image = rng.uniform(-1.0, 1.0, size=net.input_shape).astype(np.float32)
    runtime.set_input(input_image)
    vp_result = runtime.execute()
    trace = platform.trace
    assert trace is not None

    commands = trace_to_config(trace)
    assembly = generate_assembly(
        commands,
        options=codegen_options,
        header=(
            f"bare-metal NVDLA driver for {net.name} on {config.name} "
            f"({precision.value}); {len(commands)} register commands"
        ),
    )
    program = assemble(assembly, base=0)
    if len(program.words) < estimate_program_words(commands) // 8:
        raise CodegenError("generated program is implausibly small")  # defensive

    preload = _build_preload_images(trace, loadable, fidelity)
    images = DeploymentImages(
        program_mem=program.to_mem_file(),
        program=program,
        preload=preload,
    )
    return BaremetalBundle(
        network=net.name,
        config=config.name,
        precision=precision,
        loadable=loadable,
        trace=trace,
        commands=commands,
        assembly=assembly,
        program=program,
        images=images,
        vp_result=vp_result,
        input_image=input_image,
        fidelity=fidelity,
        notes={"tiling": loadable.tiling_summary},
    )


def execute_bundle(
    bundle: BaremetalBundle,
    execution_mode: str = "cycle_accurate",
    input_image: np.ndarray | None = None,
    frequency_hz: float = 100e6,
    memory_bus_width_bits: int = 32,
    calibration=None,
):
    """Run a bundle on the selected execution tier.

    The one-stop dispatch the harness and CLI use: builds a throwaway
    cycle-accurate :class:`~repro.core.soc.Soc` or a calibrated
    :class:`~repro.core.fastpath.FastPathExecutor` for the bundle's
    hardware point and executes one inference.  Long-running callers
    (the serving layer) keep their own reusable workers instead.
    """
    # Local imports: repro.core.soc imports this module for the bundle
    # type, so the dispatch must not import repro.core at module level.
    if execution_mode == "cycle_accurate":
        from repro.core.soc import Soc

        soc = Soc(
            get_config(bundle.config),
            frequency_hz=frequency_hz,
            fidelity=bundle.fidelity,
            memory_bus_width_bits=memory_bus_width_bits,
        )
        soc.load_bundle(bundle)
        if input_image is not None:
            from repro.nvdla.fastpath import pack_input

            address, packed = pack_input(
                bundle.loadable, get_config(bundle.config), input_image
            )
            soc.preload_dram(address, packed)
        return soc.run_inference(bundle)
    if execution_mode == "fast":
        from repro.core.fastpath import FastPathExecutor

        executor = FastPathExecutor(
            get_config(bundle.config),
            frequency_hz=frequency_hz,
            calibration=calibration,
            memory_bus_width_bits=memory_bus_width_bits,
        )
        return executor.run(bundle, input_image=input_image)
    raise CodegenError(f"unknown execution mode {execution_mode!r}")


def options_fingerprint(options: object | None) -> str:
    """Stable short digest of a (frozen) options dataclass.

    Field values are serialised by name in declaration order, so two
    option objects that would drive the flow identically fingerprint
    identically, and ``None`` (meaning "all defaults") fingerprints the
    same as an explicitly default-constructed object of either options
    type used by :func:`generate_baremetal`.
    """
    if options is None:
        return "defaults"
    try:
        if options == type(options)():
            return "defaults"
    except TypeError:
        pass  # options types with required fields have no bare default
    parts: list[str] = [type(options).__name__]
    for f in fields(options):
        value = getattr(options, f.name)
        if isinstance(value, CalibrationTable):
            value = hashlib.sha256(value.to_text().encode()).hexdigest()[:16]
        parts.append(f"{f.name}={value!r}")
    return hashlib.sha256("|".join(parts).encode()).hexdigest()[:16]


def bundle_cache_key(
    network: str,
    config: HardwareConfig | str,
    precision: Precision,
    fidelity: str = "functional",
    compile_options: CompileOptions | None = None,
    codegen_options: CodegenOptions | None = None,
    seed: int = 2024,
) -> tuple:
    """The memoisation key of one unique deployment.

    Everything that changes the generated artefacts is part of the key;
    notably the *input image* is NOT — the generated program is
    input-independent (only ``input.bin`` changes), which is what lets
    the serving layer replay one bundle for many requests.  ``seed``
    covers the calibration input baked into the trace.
    """
    # None and a default-constructed options object generate identical
    # artefacts, so collapse both onto one fingerprint.
    if compile_options is not None and compile_options == CompileOptions(
        precision=compile_options.precision
    ):
        compile_options = None
    if codegen_options == CodegenOptions():
        codegen_options = None
    compile_fp = options_fingerprint(compile_options)
    if compile_options is None:
        compile_fp = f"defaults:{precision.value}"
    return (
        network,
        config.name if isinstance(config, HardwareConfig) else config,
        precision.value,
        fidelity,
        compile_fp,
        options_fingerprint(codegen_options),
        seed,
    )


def _build_preload_images(
    trace: TraceLog, loadable: Loadable, fidelity: str
) -> list[BinImage]:
    """Weight/input ``.bin`` files, via trace extraction when possible."""
    memory_map = loadable.memory_map
    regions = {
        "weights": (memory_map.weights.address, memory_map.weights.size),
        "input": (memory_map.input.address, memory_map.input.size),
    }
    if fidelity == "functional" and trace.dbb:
        segments = extract_initial_memory(trace)
        by_region = split_by_regions(segments, regions)
        images: list[BinImage] = []
        if by_region["weights"]:
            images.append(segments_to_bin("weights.bin", by_region["weights"]))
        if by_region["input"]:
            images.append(segments_to_bin("input.bin", by_region["input"]))
        return images
    # Timing-only runs have no DBB payloads; ship the compiler's blobs.
    return [
        BinImage("weights.bin", memory_map.weights.address, loadable.weight_blob),
    ]
