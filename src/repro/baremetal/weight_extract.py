"""Weight extraction from DBB traces (paper §IV-B step 3).

Reconstructs the initial DRAM contents NVDLA expects — the "weight
file" plus the input image — from the data-backbone log:

- a read from an address that was never written earlier in the trace
  reveals an *initial* byte (weight or input),
- a write marks the address as NVDLA-produced (intermediate
  activations); later reads of it are ignored,
- duplicate reads keep the first occurrence, per the paper: "duplicate
  address entries in the weight file are deleted by retaining the
  first occurrence, as they are the original weights."

The result is a set of contiguous memory segments; ``.bin`` images for
the Zynq preloader fall out directly, and
:func:`split_by_regions` separates the weight file from the image
file using the loadable's memory map.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TraceError
from repro.vp.trace_log import TraceLog


@dataclass(frozen=True)
class MemorySegment:
    """A contiguous block of reconstructed initial memory."""

    address: int
    data: bytes

    @property
    def end(self) -> int:
        return self.address + len(self.data)

    def to_bin(self) -> bytes:
        return self.data


def extract_initial_memory(trace: TraceLog) -> list[MemorySegment]:
    """Reconstruct initial DRAM state from the DBB transaction order."""
    initial: dict[int, int] = {}
    written: set[int] = set()
    for txn in trace.dbb:
        if txn.iswrite:
            written.update(range(txn.address, txn.address + len(txn.data)))
            continue
        for offset, byte in enumerate(txn.data):
            address = txn.address + offset
            if address in written or address in initial:
                continue  # intermediate data / duplicate read
            initial[address] = byte
    return _coalesce(initial)


def _coalesce(bytes_by_address: dict[int, int]) -> list[MemorySegment]:
    if not bytes_by_address:
        return []
    segments: list[MemorySegment] = []
    addresses = sorted(bytes_by_address)
    start = prev = addresses[0]
    chunk = bytearray([bytes_by_address[start]])
    for address in addresses[1:]:
        if address == prev + 1:
            chunk.append(bytes_by_address[address])
        else:
            segments.append(MemorySegment(start, bytes(chunk)))
            start = address
            chunk = bytearray([bytes_by_address[address]])
        prev = address
    segments.append(MemorySegment(start, bytes(chunk)))
    return segments


def split_by_regions(
    segments: list[MemorySegment],
    regions: dict[str, tuple[int, int]],
) -> dict[str, list[MemorySegment]]:
    """Assign segments to named ``(base, size)`` regions.

    Segments crossing a region boundary are split; bytes outside every
    region land under ``"other"``.
    """
    ordered = sorted(regions.items(), key=lambda item: item[1][0])
    result: dict[str, list[MemorySegment]] = {name: [] for name, _ in ordered}
    result["other"] = []

    for segment in segments:
        cursor = segment.address
        end = segment.end
        while cursor < end:
            owner = "other"
            slice_end = end
            for name, (base, size) in ordered:
                if base <= cursor < base + size:
                    owner = name
                    slice_end = min(end, base + size)
                    break
                if cursor < base < end:
                    slice_end = min(slice_end, base)
            data = segment.data[cursor - segment.address : slice_end - segment.address]
            if data:
                result[owner].append(MemorySegment(cursor, data))
            if slice_end <= cursor:
                raise TraceError("region split made no progress")  # pragma: no cover
            cursor = slice_end
    return result


def total_bytes(segments: list[MemorySegment]) -> int:
    return sum(len(s.data) for s in segments)
