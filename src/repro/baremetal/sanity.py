"""Standard NVDLA test traces (paper §V, functional validation).

"Initial functional validation was performed via behavioral simulation
using standard NVDLA test traces such as sanity, convolution and
memory tests available from the NVDLA Github repository.  These were
translated into RISC-V assembly and used to verify the correctness of
the integrated SoC design."

This module generates the equivalent register-level test traces
directly (no network/compiler involved), converts them through the
same codegen path, and provides expected memory states so the SoC run
is self-checking end to end:

- :func:`sanity_trace` — register write/read-back over every unit,
- :func:`bdma_memory_trace` — a BDMA copy (the "memory test"),
- :func:`conv_trace` — a minimal convolution hardware layer,
- :func:`pdp_trace` — a minimal pooling layer.

Each builder returns a :class:`SanityTest` bundling the config-file
commands, the preload images and the expected output bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baremetal.codegen import CodegenOptions, generate_assembly
from repro.baremetal.config_file import ConfigCommand
from repro.nvdla.config import HardwareConfig, NV_SMALL, Precision
from repro.nvdla.csb import UNIT_BASES, register_address
from repro.nvdla.layout import (
    feature_strides,
    pack_feature,
    pack_weights,
    weight_size_bytes,
)
from repro.nvdla.registers import D_OP_ENABLE, S_POINTER
from repro.nvdla.units.glb import HW_VERSION, HW_VERSION_VALUE, INTR_STATUS, interrupt_bit
from repro.riscv.assembler import assemble
from repro.riscv.program import Program


@dataclass
class SanityTest:
    """A self-contained register-level hardware test."""

    name: str
    commands: list[ConfigCommand]
    preload: list[tuple[int, bytes]] = field(default_factory=list)
    expected_memory: list[tuple[int, bytes]] = field(default_factory=list)

    def assembly(self, options: CodegenOptions | None = None) -> str:
        return generate_assembly(
            self.commands,
            options=options,
            header=f"NVDLA {self.name} test trace ({len(self.commands)} commands)",
        )

    def program(self, options: CodegenOptions | None = None) -> Program:
        return assemble(self.assembly(options))


class _TraceBuilder:
    """Builds command lists with the runtime's programming idioms."""

    def __init__(self, config: HardwareConfig) -> None:
        self.config = config
        self.commands: list[ConfigCommand] = []
        # Mirror of the engine's register offsets (names -> offsets).
        from repro.nvdla.engine import NvdlaEngine
        from repro.clock import Clock
        from repro.mem.sparse_memory import SparseMemory

        class _NullPort:
            def read(self, address, nbytes):
                return b"\x00" * nbytes

            def write(self, address, data):
                pass

            def stream_cycles(self, address, nbytes):
                return 1

        self._shadow = NvdlaEngine(config, _NullPort(), Clock())

    def write(self, unit: str, register: str, value: int) -> None:
        offset = self._shadow.units[unit].offset_of(register)
        self.commands.append(
            ConfigCommand("write_reg", UNIT_BASES[unit] + offset, value & 0xFFFFFFFF)
        )

    def write_raw(self, address: int, value: int) -> None:
        self.commands.append(ConfigCommand("write_reg", address, value & 0xFFFFFFFF))

    def read(self, address: int, expected: int, mask: int = 0xFFFFFFFF) -> None:
        self.commands.append(ConfigCommand("read_reg", address, expected, mask))

    def read_reg(self, unit: str, register: str, expected: int) -> None:
        offset = self._shadow.units[unit].offset_of(register)
        self.read(UNIT_BASES[unit] + offset, expected)

    def tensor(self, unit: str, prefix: str, address: int, shape, precision) -> None:
        atom = self.config.atom_channels(precision)
        c, h, w = shape
        line, surf = feature_strides(shape, atom, precision)
        self.write(unit, f"{prefix}_ADDR_HIGH", address >> 32)
        self.write(unit, f"{prefix}_ADDR_LOW", address & 0xFFFFFFFF)
        self.write(unit, f"{prefix}_WIDTH", w)
        self.write(unit, f"{prefix}_HEIGHT", h)
        self.write(unit, f"{prefix}_CHANNEL", c)
        self.write(unit, f"{prefix}_LINE_STRIDE", line)
        self.write(unit, f"{prefix}_SURF_STRIDE", surf)

    def select(self, unit: str, group: int) -> None:
        self.write_raw(register_address(unit, S_POINTER), group)

    def enable(self, unit: str) -> None:
        self.write_raw(register_address(unit, D_OP_ENABLE), 1)

    def wait_and_clear(self, sink: str, group: int = 0) -> None:
        bit = 1 << interrupt_bit(sink, group)
        self.read(register_address("GLB", INTR_STATUS), bit, mask=bit)
        self.write_raw(register_address("GLB", INTR_STATUS), bit)


def sanity_trace(config: HardwareConfig = NV_SMALL) -> SanityTest:
    """Register sanity: version check plus write/read-back on every
    programmable unit (the NVDLA `reg_rw` sanity test)."""
    builder = _TraceBuilder(config)
    builder.read(register_address("GLB", HW_VERSION), HW_VERSION_VALUE)
    probes = [
        ("CDMA", "D_CONV_STRIDE_X", 0x2),
        ("CSC", "D_WEIGHT_SIZE_K", 0x1234 & 0xFFF),
        ("CACC", "D_DATAOUT_WIDTH", 0x55),
        ("SDP", "D_CVT_MULT", 0x7FFF),
        ("PDP", "D_POOLING_KERNEL_WIDTH", 0x3),
        ("CDP", "D_LRN_LOCAL_SIZE", 0x5),
        ("BDMA", "D_LINE_BYTES", 0x100),
    ]
    for unit, register, value in probes:
        builder.select(unit, 0)
        builder.write(unit, register, value)
        builder.read_reg(unit, register, value)
        # Ping-pong isolation: the other group must still read reset.
        builder.select(unit, 1)
        builder.read_reg(unit, register, 0)
        builder.select(unit, 0)
    return SanityTest(name="sanity", commands=builder.commands)


def bdma_memory_trace(
    config: HardwareConfig = NV_SMALL,
    src: int = 0x110000,
    dst: int = 0x118000,
    nbytes: int = 512,
    seed: int = 42,
) -> SanityTest:
    """The memory test: BDMA copies a block, CPU-visible afterwards."""
    rng = np.random.default_rng(seed)
    payload = rng.integers(0, 256, size=nbytes, dtype=np.uint8).tobytes()
    builder = _TraceBuilder(config)
    builder.select("BDMA", 0)
    builder.write("BDMA", "D_SRC_ADDR_HIGH", src >> 32)
    builder.write("BDMA", "D_SRC_ADDR_LOW", src & 0xFFFFFFFF)
    builder.write("BDMA", "D_DST_ADDR_HIGH", dst >> 32)
    builder.write("BDMA", "D_DST_ADDR_LOW", dst & 0xFFFFFFFF)
    builder.write("BDMA", "D_LINE_BYTES", nbytes)
    builder.write("BDMA", "D_LINE_REPEAT", 1)
    builder.write("BDMA", "D_SRC_STRIDE", nbytes)
    builder.write("BDMA", "D_DST_STRIDE", nbytes)
    builder.enable("BDMA")
    builder.wait_and_clear("BDMA")
    return SanityTest(
        name="bdma_memory",
        commands=builder.commands,
        preload=[(src, payload)],
        expected_memory=[(dst, payload)],
    )


def conv_trace(config: HardwareConfig = NV_SMALL, seed: int = 7) -> SanityTest:
    """A minimal convolution hardware layer with a known result."""
    precision = Precision.INT8 if config.supports(Precision.INT8) else Precision.FP16
    atom = config.atom_channels(precision)
    atomic_c, atomic_k = config.atoms(precision)
    rng = np.random.default_rng(seed)
    x = rng.integers(-8, 8, size=(atom, 6, 6)).astype(np.int8)
    w = rng.integers(-3, 3, size=(atom, atom, 3, 3)).astype(np.int8)
    in_addr, wt_addr, out_addr = 0x120000, 0x124000, 0x12C000
    wbytes = weight_size_bytes(w.shape, atomic_c, atomic_k, precision)

    from repro.nvdla.compute import conv2d_direct, requantize_int8

    acc = conv2d_direct(x, w, (1, 1), (0, 0, 0, 0))
    expected = requantize_int8(np.maximum(acc, 0), 1, 4)

    builder = _TraceBuilder(config)
    units = ("CDMA", "CSC", "CMAC_A", "CMAC_B", "CACC", "SDP_RDMA", "SDP")
    for unit in units:
        builder.select(unit, 0)
    builder.write("CDMA", "D_MISC_CFG", 0)
    builder.tensor("CDMA", "D_DAIN", in_addr, (atom, 6, 6), precision)
    builder.write("CDMA", "D_WEIGHT_ADDR_HIGH", 0)
    builder.write("CDMA", "D_WEIGHT_ADDR_LOW", wt_addr)
    builder.write("CDMA", "D_WEIGHT_BYTES", wbytes)
    builder.write("CDMA", "D_CONV_STRIDE_X", 1)
    builder.write("CDMA", "D_CONV_STRIDE_Y", 1)
    for side in ("LEFT", "RIGHT", "TOP", "BOTTOM"):
        builder.write("CDMA", f"D_ZERO_PADDING_{side}", 0)
    builder.write("CDMA", "D_BANK_DATA", config.cbuf_banks // 2)
    builder.write("CDMA", "D_BANK_WEIGHT", config.cbuf_banks // 2)
    builder.write("CSC", "D_MISC_CFG", 0)
    builder.write("CSC", "D_WEIGHT_SIZE_K", atom)
    builder.write("CSC", "D_WEIGHT_SIZE_C", atom)
    builder.write("CSC", "D_WEIGHT_SIZE_R", 3)
    builder.write("CSC", "D_WEIGHT_SIZE_S", 3)
    builder.write("CSC", "D_DATAOUT_WIDTH", 4)
    builder.write("CSC", "D_DATAOUT_HEIGHT", 4)
    builder.write("CMAC_A", "D_MISC_CFG", 0)
    builder.write("CMAC_B", "D_MISC_CFG", 0)
    builder.write("CACC", "D_MISC_CFG", 0)
    builder.write("CACC", "D_DATAOUT_WIDTH", 4)
    builder.write("CACC", "D_DATAOUT_HEIGHT", 4)
    builder.write("CACC", "D_DATAOUT_CHANNEL", atom)
    builder.write("SDP_RDMA", "D_FEATURE_MODE_CFG", 0)
    builder.write("SDP_RDMA", "D_BRDMA_CFG", 0)
    builder.write("SDP_RDMA", "D_NRDMA_CFG", 0)
    builder.write("SDP_RDMA", "D_ERDMA_CFG", 0)
    builder.write("SDP", "D_MISC_CFG", 0)
    builder.write("SDP", "D_OUT_PRECISION", 0)
    builder.write("SDP", "D_DATA_CUBE_WIDTH", 4)
    builder.write("SDP", "D_DATA_CUBE_HEIGHT", 4)
    builder.write("SDP", "D_DATA_CUBE_CHANNEL", atom)
    builder.tensor("SDP", "D_DST", out_addr, (atom, 4, 4), precision)
    builder.write("SDP", "D_DP_BS_CFG", 0)
    builder.write("SDP", "D_DP_BN_CFG", 0)
    builder.write("SDP", "D_DP_EW_CFG", 0)
    builder.write("SDP", "D_ACT_CFG", 1)
    builder.write("SDP", "D_CVT_MULT", 1)
    builder.write("SDP", "D_CVT_SHIFT", 4)
    for unit in ("CACC", "CMAC_A", "CMAC_B", "CSC", "CDMA"):
        builder.enable(unit)
    builder.enable("SDP")
    builder.wait_and_clear("SDP")
    return SanityTest(
        name="conv",
        commands=builder.commands,
        preload=[
            (in_addr, pack_feature(x, atom, precision)),
            (wt_addr, pack_weights(w, atomic_c, atomic_k, precision)),
        ],
        expected_memory=[(out_addr, pack_feature(expected, atom, precision))],
    )


def pdp_trace(config: HardwareConfig = NV_SMALL, seed: int = 9) -> SanityTest:
    """A minimal max-pooling layer with a known result."""
    precision = Precision.INT8 if config.supports(Precision.INT8) else Precision.FP16
    atom = config.atom_channels(precision)
    rng = np.random.default_rng(seed)
    x = rng.integers(-100, 100, size=(atom, 8, 8)).astype(np.int8)
    expected = x.reshape(atom, 4, 2, 4, 2).max(axis=(2, 4))
    in_addr, out_addr = 0x130000, 0x134000

    builder = _TraceBuilder(config)
    builder.select("PDP_RDMA", 0)
    builder.select("PDP", 0)
    builder.tensor("PDP_RDMA", "D_SRC", in_addr, (atom, 8, 8), precision)
    builder.write("PDP", "D_MISC_CFG", 0)
    builder.write("PDP", "D_POOLING_METHOD", 0)
    builder.write("PDP", "D_POOLING_KERNEL_WIDTH", 2)
    builder.write("PDP", "D_POOLING_KERNEL_HEIGHT", 2)
    builder.write("PDP", "D_POOLING_STRIDE_X", 2)
    builder.write("PDP", "D_POOLING_STRIDE_Y", 2)
    for side in ("LEFT", "RIGHT", "TOP", "BOTTOM"):
        builder.write("PDP", f"D_POOLING_PAD_{side}", 0)
    builder.tensor("PDP", "D_DST", out_addr, (atom, 4, 4), precision)
    builder.enable("PDP_RDMA")
    builder.enable("PDP")
    builder.wait_and_clear("PDP")
    return SanityTest(
        name="pdp",
        commands=builder.commands,
        preload=[(in_addr, pack_feature(x, atom, precision))],
        expected_memory=[(out_addr, pack_feature(expected, atom, precision))],
    )


ALL_TRACES = {
    "sanity": sanity_trace,
    "bdma_memory": bdma_memory_trace,
    "conv": conv_trace,
    "pdp": pdp_trace,
}


def run_on_soc(test: SanityTest, soc=None) -> bool:
    """Translate to assembly, run on a SoC, verify memory. Returns ok."""
    from repro.core import Soc

    soc = soc or Soc()
    program = test.program()
    soc.load_program(program)
    for address, data in test.preload:
        soc.preload_dram(address, data)
    result = soc.run_inference()
    if not result.ok:
        return False
    base = soc.address_map.dram_base
    for address, expected in test.expected_memory:
        got = soc.dram.storage.read(address - base, len(expected))
        if got != expected:
            return False
    return True
