"""VP trace → configuration file.

Implements the paper's §IV-B step 2: filter the VP log for
``nvdla.csb_adaptor`` entries and convert each into a register
command — writes become ``write_reg``, reads become ``read_reg``
"which store the expected register values".

Reads of the GLB interrupt-status register get a mask equal to their
expected value so the generated poll loop succeeds as soon as the
completion bit is set, independent of unrelated status bits.
"""

from __future__ import annotations

from repro.baremetal.config_file import ConfigCommand
from repro.nvdla.csb import UNIT_BASES
from repro.nvdla.units.glb import INTR_STATUS
from repro.vp.trace_log import TraceLog, parse_trace

_GLB_INTR_STATUS_ADDR = UNIT_BASES["GLB"] + INTR_STATUS


def trace_to_config(trace: TraceLog) -> list[ConfigCommand]:
    """Convert the CSB side of a trace into register commands."""
    commands: list[ConfigCommand] = []
    for txn in trace.csb:
        if txn.iswrite:
            commands.append(ConfigCommand("write_reg", txn.address, txn.data))
            continue
        if txn.address == _GLB_INTR_STATUS_ADDR and txn.data != 0:
            mask = txn.data  # poll for exactly the completion bit(s)
        else:
            mask = 0xFFFFFFFF
        commands.append(ConfigCommand("read_reg", txn.address, txn.data, mask))
    return commands


def trace_text_to_config(text: str) -> list[ConfigCommand]:
    """Convenience: parse raw VP log text and convert it."""
    return trace_to_config(parse_trace(text))
