"""ResNet-18 (CIFAR variant) and ResNet-50 (ImageNet).

The paper evaluates "ResNet-18" with a 3x32x32 input, 86 layers and a
0.8 MB model — a thin CIFAR-style ResNet-18 (base width 8), not the
11 M-parameter ImageNet model.  ResNet-50 is the standard bottleneck
network (3x224x224, ~25.6 M parameters = 102.5 MB as float32,
matching the paper's size column exactly).

Both use Caffe's BatchNorm + Scale layer pairs, which the compiler
folds into the preceding convolution.
"""

from __future__ import annotations

from repro.nn.graph import Network
from repro.nn.layers import PoolKind


def _conv_bn_relu(
    net: Network,
    name: str,
    bottom: str,
    num_output: int,
    kernel_size: int,
    stride: int = 1,
    pad: int = 0,
    relu: bool = True,
) -> str:
    conv = net.add_conv(
        name, bottom, num_output=num_output, kernel_size=kernel_size,
        stride=stride, pad=pad, bias=False,
    )
    bn = net.add_batchnorm(f"bn_{name}", conv)
    scale = net.add_scale(f"scale_{name}", bn)
    if relu:
        return net.add_relu(f"relu_{name}", scale)
    return scale


def _basic_block(net: Network, name: str, bottom: str, channels: int, stride: int) -> str:
    """Two 3x3 convolutions with an identity / projection shortcut."""
    branch = _conv_bn_relu(net, f"{name}_conv1", bottom, channels, 3, stride=stride, pad=1)
    branch = _conv_bn_relu(net, f"{name}_conv2", branch, channels, 3, pad=1, relu=False)
    shortcut = bottom
    if stride != 1 or net.blob_shapes[bottom][0] != channels:
        shortcut = _conv_bn_relu(
            net, f"{name}_down", bottom, channels, 1, stride=stride, relu=False
        )
    added = net.add_eltwise(f"{name}_add", branch, shortcut)
    return net.add_relu(f"{name}_relu", added)


def _bottleneck(net: Network, name: str, bottom: str, mid: int, out: int, stride: int) -> str:
    """1x1 reduce, 3x3, 1x1 expand with shortcut (ResNet-50 block)."""
    branch = _conv_bn_relu(net, f"{name}_conv1", bottom, mid, 1)
    branch = _conv_bn_relu(net, f"{name}_conv2", branch, mid, 3, stride=stride, pad=1)
    branch = _conv_bn_relu(net, f"{name}_conv3", branch, out, 1, relu=False)
    shortcut = bottom
    if stride != 1 or net.blob_shapes[bottom][0] != out:
        shortcut = _conv_bn_relu(net, f"{name}_down", bottom, out, 1, stride=stride, relu=False)
    added = net.add_eltwise(f"{name}_add", branch, shortcut)
    return net.add_relu(f"{name}_relu", added)


def resnet18_cifar(
    base_width: int = 16,
    num_classes: int = 10,
    seed: int | None = None,
) -> Network:
    """The paper's thin CIFAR ResNet-18 (3x32x32).

    At base width 16 the INT8 weight file is ~0.7 MB, matching the
    paper's "0.8 MB / 813.5 KB" model-size column, and the compute
    volume (~80 MMAC) reproduces the 16.2 ms Table II latency regime
    on nv_small.  (A full-width ImageNet ResNet-18 would be 11 M
    parameters — 44 MB — which cannot be the network the paper ran.)
    """
    net = Network("resnet18", seed=seed)
    data = net.add_input("data", (3, 32, 32))
    x = _conv_bn_relu(net, "conv1", data, base_width, 3, pad=1)
    widths = [base_width, base_width * 2, base_width * 4, base_width * 8]
    for stage, width in enumerate(widths, start=1):
        for block in range(2):
            stride = 2 if stage > 1 and block == 0 else 1
            x = _basic_block(net, f"res{stage}{chr(ord('a') + block)}", x, width, stride)
    x = net.add_pool("pool_avg", x, PoolKind.AVE, global_pooling=True)
    x = net.add_fc("fc", x, num_output=num_classes)
    net.add_softmax("prob", x)
    net.validate()
    return net


def resnet50(num_classes: int = 1000, seed: int | None = None) -> Network:
    """Standard ResNet-50 (3x224x224, ~25.6 M params = 102.5 MB fp32)."""
    net = Network("resnet50", seed=seed)
    data = net.add_input("data", (3, 224, 224))
    x = _conv_bn_relu(net, "conv1", data, 64, 7, stride=2, pad=3)
    x = net.add_pool("pool1", x, PoolKind.MAX, kernel_size=3, stride=2)
    stages = [
        ("res2", 3, 64, 256, 1),
        ("res3", 4, 128, 512, 2),
        ("res4", 6, 256, 1024, 2),
        ("res5", 3, 512, 2048, 2),
    ]
    for prefix, blocks, mid, out, first_stride in stages:
        for block in range(blocks):
            stride = first_stride if block == 0 else 1
            x = _bottleneck(net, f"{prefix}{chr(ord('a') + block)}", x, mid, out, stride)
    x = net.add_pool("pool5", x, PoolKind.AVE, global_pooling=True)
    x = net.add_fc("fc1000", x, num_output=num_classes)
    net.add_softmax("prob", x)
    net.validate()
    return net
