"""AlexNet (3x227x227, ~61 M params = 243.9 MB fp32 — the paper's
largest Table III model, and its size column matches float32 AlexNet
exactly).

Uses grouped convolutions (group=2, the historical dual-GPU split) and
LRN layers, exercising the compiler's group lowering and the CDP unit.
"""

from __future__ import annotations

from repro.nn.graph import Network
from repro.nn.layers import PoolKind


def alexnet(num_classes: int = 1000, seed: int | None = None) -> Network:
    """Build AlexNet with synthetic weights."""
    net = Network("alexnet", seed=seed)
    data = net.add_input("data", (3, 227, 227))
    x = net.add_conv("conv1", data, num_output=96, kernel_size=11, stride=4)
    x = net.add_relu("relu1", x)
    x = net.add_lrn("norm1", x, local_size=5, alpha=1e-4, beta=0.75)
    x = net.add_pool("pool1", x, PoolKind.MAX, kernel_size=3, stride=2)
    x = net.add_conv("conv2", x, num_output=256, kernel_size=5, pad=2, group=2)
    x = net.add_relu("relu2", x)
    x = net.add_lrn("norm2", x, local_size=5, alpha=1e-4, beta=0.75)
    x = net.add_pool("pool2", x, PoolKind.MAX, kernel_size=3, stride=2)
    x = net.add_conv("conv3", x, num_output=384, kernel_size=3, pad=1)
    x = net.add_relu("relu3", x)
    x = net.add_conv("conv4", x, num_output=384, kernel_size=3, pad=1, group=2)
    x = net.add_relu("relu4", x)
    x = net.add_conv("conv5", x, num_output=256, kernel_size=3, pad=1, group=2)
    x = net.add_relu("relu5", x)
    x = net.add_pool("pool5", x, PoolKind.MAX, kernel_size=3, stride=2)
    x = net.add_fc("fc6", x, num_output=4096)
    x = net.add_relu("relu6", x)
    x = net.add_dropout("drop6", x)
    x = net.add_fc("fc7", x, num_output=4096)
    x = net.add_relu("relu7", x)
    x = net.add_dropout("drop7", x)
    x = net.add_fc("fc8", x, num_output=num_classes)
    net.add_softmax("prob", x)
    net.validate()
    return net
