"""MobileNet v1 (3x224x224, ~4.2 M params = 17 MB fp32).

Depthwise separable convolutions: a depthwise 3x3 (``group ==
channels``) followed by a pointwise 1x1.  On NVDLA the depthwise
stage maps terribly onto the wide MAC array (one active channel per
``atomic_c`` slot), which the compiler models by splitting groups into
channel-atom blocks — the dominant reason MobileNet's Table III cycle
count sits close to ResNet-50's despite a 6x smaller model.
"""

from __future__ import annotations

from repro.nn.graph import Network
from repro.nn.layers import PoolKind


def _conv_bn_relu(
    net: Network, name: str, bottom: str, num_output: int,
    kernel_size: int, stride: int = 1, pad: int = 0, group: int = 1,
) -> str:
    conv = net.add_conv(
        name, bottom, num_output=num_output, kernel_size=kernel_size,
        stride=stride, pad=pad, group=group, bias=False,
    )
    bn = net.add_batchnorm(f"bn_{name}", conv)
    scale = net.add_scale(f"scale_{name}", bn)
    return net.add_relu(f"relu_{name}", scale)


def _separable(net: Network, index: int, bottom: str, channels_out: int, stride: int) -> str:
    channels_in = net.blob_shapes[bottom][0]
    dw = _conv_bn_relu(
        net, f"conv{index}_dw", bottom, channels_in, 3,
        stride=stride, pad=1, group=channels_in,
    )
    return _conv_bn_relu(net, f"conv{index}_pw", dw, channels_out, 1)


def mobilenet_v1(num_classes: int = 1000, seed: int | None = None) -> Network:
    """Build MobileNet v1 with synthetic weights."""
    net = Network("mobilenet", seed=seed)
    data = net.add_input("data", (3, 224, 224))
    x = _conv_bn_relu(net, "conv1", data, 32, 3, stride=2, pad=1)
    plan = [
        (64, 1), (128, 2), (128, 1), (256, 2), (256, 1),
        (512, 2), (512, 1), (512, 1), (512, 1), (512, 1), (512, 1),
        (1024, 2), (1024, 1),
    ]
    for index, (channels, stride) in enumerate(plan, start=2):
        x = _separable(net, index, x, channels, stride)
    x = net.add_pool("pool6", x, PoolKind.AVE, global_pooling=True)
    x = net.add_fc("fc7", x, num_output=num_classes)
    net.add_softmax("prob", x)
    net.validate()
    return net
