"""Model zoo: the six networks of the paper's evaluation.

===========  ==============  ============  ====================
network      input           params        paper artefact
===========  ==============  ============  ====================
LeNet-5      1x28x28         ~431 k        Tables II, III
ResNet-18    3x32x32         ~0.2 M        Tables II, III
ResNet-50    3x224x224       ~25.6 M       Tables II, III
MobileNet    3x224x224       ~4.2 M        Table III
GoogLeNet    3x224x224       ~7 M (+aux)   Table III
AlexNet      3x227x227       ~61 M         Table III
===========  ==============  ============  ====================

Weights are synthetic (seeded); shapes, layer schedules and data
volumes match the published architectures the paper evaluates.
"""

from repro.nn.zoo.lenet5 import lenet5
from repro.nn.zoo.resnet import resnet18_cifar, resnet50
from repro.nn.zoo.mobilenet import mobilenet_v1
from repro.nn.zoo.googlenet import googlenet
from repro.nn.zoo.alexnet import alexnet

ZOO = {
    "lenet5": lenet5,
    "resnet18": resnet18_cifar,
    "resnet50": resnet50,
    "mobilenet": mobilenet_v1,
    "googlenet": googlenet,
    "alexnet": alexnet,
}

__all__ = [
    "ZOO",
    "alexnet",
    "googlenet",
    "lenet5",
    "mobilenet_v1",
    "resnet18_cifar",
    "resnet50",
]
