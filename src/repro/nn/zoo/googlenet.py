"""GoogLeNet / Inception v1 (3x224x224).

The BVLC caffemodel the paper sizes at 53.5 MB includes the two
training-time auxiliary classifier heads; the inference graph proper
is ~7 M parameters.  ``include_aux=True`` (default) builds the heads
so the model-size column matches the paper; the compiler prunes them
because they do not feed the declared ``prob`` output.

Inception branch widths are all multiples of 32 channels, so the
channel-wise concats are zero-copy on every NVDLA memory-atom size —
the compiler just allocates branch outputs at adjacent surface
offsets.
"""

from __future__ import annotations

from repro.nn.graph import Network
from repro.nn.layers import PoolKind


def _conv_relu(
    net: Network, name: str, bottom: str, num_output: int,
    kernel_size: int, stride: int = 1, pad: int = 0,
) -> str:
    conv = net.add_conv(
        name, bottom, num_output=num_output, kernel_size=kernel_size,
        stride=stride, pad=pad,
    )
    return net.add_relu(f"relu_{name}", conv)


def _inception(
    net: Network,
    name: str,
    bottom: str,
    c1: int,
    c3_reduce: int,
    c3: int,
    c5_reduce: int,
    c5: int,
    pool_proj: int,
) -> str:
    b1 = _conv_relu(net, f"{name}_1x1", bottom, c1, 1)
    b3 = _conv_relu(net, f"{name}_3x3_reduce", bottom, c3_reduce, 1)
    b3 = _conv_relu(net, f"{name}_3x3", b3, c3, 3, pad=1)
    b5 = _conv_relu(net, f"{name}_5x5_reduce", bottom, c5_reduce, 1)
    b5 = _conv_relu(net, f"{name}_5x5", b5, c5, 5, pad=2)
    bp = net.add_pool(f"{name}_pool", bottom, PoolKind.MAX, kernel_size=3, stride=1, pad=1)
    bp = _conv_relu(net, f"{name}_pool_proj", bp, pool_proj, 1)
    return net.add_concat(f"{name}_output", [b1, b3, b5, bp])


def _aux_head(net: Network, name: str, bottom: str, num_classes: int) -> None:
    pool = net.add_pool(f"{name}_ave_pool", bottom, PoolKind.AVE, kernel_size=5, stride=3)
    conv = _conv_relu(net, f"{name}_conv", pool, 128, 1)
    fc1 = net.add_fc(f"{name}_fc", conv, num_output=1024)
    relu = net.add_relu(f"{name}_relu_fc", fc1)
    drop = net.add_dropout(f"{name}_drop_fc", relu, ratio=0.7)
    net.add_fc(f"{name}_classifier", drop, num_output=num_classes)


def googlenet(
    num_classes: int = 1000,
    include_aux: bool = True,
    seed: int | None = None,
) -> Network:
    """Build GoogLeNet; aux heads included by default for size parity."""
    net = Network("googlenet", seed=seed)
    data = net.add_input("data", (3, 224, 224))
    x = _conv_relu(net, "conv1_7x7_s2", data, 64, 7, stride=2, pad=3)
    x = net.add_pool("pool1_3x3_s2", x, PoolKind.MAX, kernel_size=3, stride=2)
    x = net.add_lrn("pool1_norm1", x, local_size=5)
    x = _conv_relu(net, "conv2_3x3_reduce", x, 64, 1)
    x = _conv_relu(net, "conv2_3x3", x, 192, 3, pad=1)
    x = net.add_lrn("conv2_norm2", x, local_size=5)
    x = net.add_pool("pool2_3x3_s2", x, PoolKind.MAX, kernel_size=3, stride=2)

    x = _inception(net, "inception_3a", x, 64, 96, 128, 16, 32, 32)
    x = _inception(net, "inception_3b", x, 128, 128, 192, 32, 96, 64)
    x = net.add_pool("pool3_3x3_s2", x, PoolKind.MAX, kernel_size=3, stride=2)

    x = _inception(net, "inception_4a", x, 192, 96, 208, 16, 48, 64)
    if include_aux:
        _aux_head(net, "loss1", x, num_classes)
    x = _inception(net, "inception_4b", x, 160, 112, 224, 24, 64, 64)
    x = _inception(net, "inception_4c", x, 128, 128, 256, 24, 64, 64)
    x = _inception(net, "inception_4d", x, 112, 144, 288, 32, 64, 64)
    if include_aux:
        _aux_head(net, "loss2", x, num_classes)
    x = _inception(net, "inception_4e", x, 256, 160, 320, 32, 128, 128)
    x = net.add_pool("pool4_3x3_s2", x, PoolKind.MAX, kernel_size=3, stride=2)

    x = _inception(net, "inception_5a", x, 256, 160, 320, 32, 128, 128)
    x = _inception(net, "inception_5b", x, 384, 192, 384, 48, 128, 128)
    x = net.add_pool("pool5_7x7_s1", x, PoolKind.AVE, global_pooling=True)
    x = net.add_dropout("pool5_drop_7x7_s1", x, ratio=0.4)
    x = net.add_fc("loss3_classifier", x, num_output=num_classes)
    prob = net.add_softmax("prob", x)
    net.mark_output(prob)
    net.validate()
    return net
