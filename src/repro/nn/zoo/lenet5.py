"""LeNet-5 (the Caffe variant the NVDLA examples ship).

1x28x28 input, conv 20@5x5, maxpool, conv 50@5x5, maxpool, 500-unit
and 10-unit fully connected layers: ~431 k parameters = 1.7 MB as
float32, matching the "Model Size 1.7 MB" row of the paper's
Tables II/III.
"""

from __future__ import annotations

from repro.nn.graph import Network
from repro.nn.layers import PoolKind


def lenet5(seed: int | None = None) -> Network:
    """Build LeNet-5 with synthetic weights."""
    net = Network("lenet5", seed=seed)
    data = net.add_input("data", (1, 28, 28))
    conv1 = net.add_conv("conv1", data, num_output=20, kernel_size=5)
    pool1 = net.add_pool("pool1", conv1, PoolKind.MAX, kernel_size=2, stride=2)
    conv2 = net.add_conv("conv2", pool1, num_output=50, kernel_size=5)
    pool2 = net.add_pool("pool2", conv2, PoolKind.MAX, kernel_size=2, stride=2)
    ip1 = net.add_fc("ip1", pool2, num_output=500)
    relu1 = net.add_relu("relu1", ip1)
    ip2 = net.add_fc("ip2", relu1, num_output=10)
    net.add_softmax("prob", ip2)
    net.validate()
    return net
