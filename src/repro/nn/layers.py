"""Layer definitions of the Caffe-style IR.

Layers mirror the Caffe layer types the paper's networks use.  Each
layer knows its parameter shapes and its output shape; parameters
themselves (numpy arrays) live in the :class:`~repro.nn.graph.Network`
so layers stay lightweight descriptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import GraphError

Shape = tuple[int, int, int]  # (C, H, W); batch is always 1 (edge inference)


class PoolKind(Enum):
    MAX = "max"
    AVE = "ave"


class EltwiseKind(Enum):
    SUM = "sum"
    PROD = "prod"
    MAX = "max"


@dataclass(frozen=True)
class Layer:
    """Base layer: a name plus bottom/top blob names (Caffe style)."""

    name: str
    bottoms: tuple[str, ...]
    tops: tuple[str, ...]

    def param_shapes(self, input_shapes: list[Shape]) -> dict[str, tuple[int, ...]]:
        """Learnable parameter shapes, keyed by parameter name."""
        return {}

    def output_shape(self, input_shapes: list[Shape]) -> Shape:
        """Shape of the (single) top blob."""
        if len(input_shapes) != 1:
            raise GraphError(f"layer {self.name!r} expects one input")
        return input_shapes[0]

    @property
    def type_name(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class Input(Layer):
    shape: Shape = (1, 1, 1)

    def output_shape(self, input_shapes: list[Shape]) -> Shape:
        if input_shapes:
            raise GraphError("Input layers take no bottoms")
        return self.shape


def _conv_output_hw(
    h: int, w: int, kernel: int, stride: int, pad: int
) -> tuple[int, int]:
    out_h = (h + 2 * pad - kernel) // stride + 1
    out_w = (w + 2 * pad - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise GraphError(f"convolution output would be empty ({out_h}x{out_w})")
    return out_h, out_w


@dataclass(frozen=True)
class Convolution(Layer):
    """2-D convolution; ``group == in_channels`` expresses depthwise."""

    num_output: int = 1
    kernel_size: int = 1
    stride: int = 1
    pad: int = 0
    group: int = 1
    bias: bool = True

    def __post_init__(self) -> None:
        if self.num_output <= 0 or self.kernel_size <= 0 or self.stride <= 0:
            raise GraphError(f"conv {self.name!r}: bad geometry")
        if self.pad < 0 or self.group <= 0:
            raise GraphError(f"conv {self.name!r}: bad pad/group")

    def param_shapes(self, input_shapes: list[Shape]) -> dict[str, tuple[int, ...]]:
        c = input_shapes[0][0]
        if c % self.group or self.num_output % self.group:
            raise GraphError(f"conv {self.name!r}: channels not divisible by group")
        shapes = {
            "weight": (self.num_output, c // self.group, self.kernel_size, self.kernel_size)
        }
        if self.bias:
            shapes["bias"] = (self.num_output,)
        return shapes

    def output_shape(self, input_shapes: list[Shape]) -> Shape:
        _, h, w = input_shapes[0]
        out_h, out_w = _conv_output_hw(h, w, self.kernel_size, self.stride, self.pad)
        return (self.num_output, out_h, out_w)


@dataclass(frozen=True)
class InnerProduct(Layer):
    """Fully connected layer; lowered to a 1x1 convolution on NVDLA."""

    num_output: int = 1
    bias: bool = True

    def param_shapes(self, input_shapes: list[Shape]) -> dict[str, tuple[int, ...]]:
        c, h, w = input_shapes[0]
        shapes = {"weight": (self.num_output, c * h * w)}
        if self.bias:
            shapes["bias"] = (self.num_output,)
        return shapes

    def output_shape(self, input_shapes: list[Shape]) -> Shape:
        return (self.num_output, 1, 1)


@dataclass(frozen=True)
class Pooling(Layer):
    kind: PoolKind = PoolKind.MAX
    kernel_size: int = 2
    stride: int = 2
    pad: int = 0
    global_pooling: bool = False

    def output_shape(self, input_shapes: list[Shape]) -> Shape:
        c, h, w = input_shapes[0]
        if self.global_pooling:
            return (c, 1, 1)
        # Caffe pooling uses ceil-mode output dims.
        out_h = -(-(h + 2 * self.pad - self.kernel_size) // self.stride) + 1
        out_w = -(-(w + 2 * self.pad - self.kernel_size) // self.stride) + 1
        if out_h <= 0 or out_w <= 0:
            raise GraphError(f"pool {self.name!r}: output would be empty")
        return (c, out_h, out_w)

    def effective_kernel(self, input_shape: Shape) -> tuple[int, int]:
        if self.global_pooling:
            return input_shape[1], input_shape[2]
        return self.kernel_size, self.kernel_size


@dataclass(frozen=True)
class ReLU(Layer):
    pass


@dataclass(frozen=True)
class BatchNorm(Layer):
    """Caffe BatchNorm: running mean/variance (no learned affine)."""

    eps: float = 1e-5

    def param_shapes(self, input_shapes: list[Shape]) -> dict[str, tuple[int, ...]]:
        c = input_shapes[0][0]
        return {"mean": (c,), "variance": (c,)}


@dataclass(frozen=True)
class Scale(Layer):
    """Caffe Scale: per-channel affine (pairs with BatchNorm)."""

    bias: bool = True

    def param_shapes(self, input_shapes: list[Shape]) -> dict[str, tuple[int, ...]]:
        c = input_shapes[0][0]
        shapes = {"scale": (c,)}
        if self.bias:
            shapes["bias"] = (c,)
        return shapes


@dataclass(frozen=True)
class Eltwise(Layer):
    kind: EltwiseKind = EltwiseKind.SUM

    def output_shape(self, input_shapes: list[Shape]) -> Shape:
        if len(input_shapes) != 2:
            raise GraphError(f"eltwise {self.name!r} expects two inputs")
        if input_shapes[0] != input_shapes[1]:
            raise GraphError(
                f"eltwise {self.name!r}: shape mismatch {input_shapes[0]} vs {input_shapes[1]}"
            )
        return input_shapes[0]


@dataclass(frozen=True)
class Concat(Layer):
    """Channel-wise concatenation (inception blocks)."""

    def output_shape(self, input_shapes: list[Shape]) -> Shape:
        if not input_shapes:
            raise GraphError(f"concat {self.name!r} has no inputs")
        h, w = input_shapes[0][1], input_shapes[0][2]
        for shape in input_shapes[1:]:
            if shape[1:] != (h, w):
                raise GraphError(f"concat {self.name!r}: spatial dims differ")
        return (sum(s[0] for s in input_shapes), h, w)


@dataclass(frozen=True)
class Lrn(Layer):
    """Local response normalisation (AlexNet, GoogLeNet)."""

    local_size: int = 5
    alpha: float = 1e-4
    beta: float = 0.75
    k: float = 1.0


@dataclass(frozen=True)
class Softmax(Layer):
    """Final classifier normalisation; executed on the host CPU (NVDLA
    has no exponential unit — the paper's flow leaves it off the
    accelerator too)."""


@dataclass(frozen=True)
class Dropout(Layer):
    """Training-time only; an inference no-op kept for Caffe parity."""

    ratio: float = 0.5


LAYER_TYPES: dict[str, type[Layer]] = {
    cls.__name__: cls
    for cls in (
        Input,
        Convolution,
        InnerProduct,
        Pooling,
        ReLU,
        BatchNorm,
        Scale,
        Eltwise,
        Concat,
        Lrn,
        Softmax,
        Dropout,
    )
}
