"""Float32 reference executor.

Runs a :class:`~repro.nn.graph.Network` directly on float tensors with
straightforward NumPy code.  It is the ground truth the NVDLA
functional model is validated against (INT8 runs must match within
quantisation error; FP16 within half-precision error), and it feeds
the calibration pass in :mod:`repro.nn.quantize`.

Implementations here are deliberately independent from
:mod:`repro.nvdla.compute` — no shared kernels — so a bug in one side
cannot silently validate the other.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.nn.graph import Network
from repro.nn.layers import (
    BatchNorm,
    Concat,
    Convolution,
    Dropout,
    Eltwise,
    EltwiseKind,
    InnerProduct,
    Input,
    Layer,
    Lrn,
    Pooling,
    PoolKind,
    ReLU,
    Scale,
    Softmax,
)


class ReferenceExecutor:
    """Executes a network in float32, layer by layer."""

    def __init__(self, net: Network) -> None:
        net.validate()
        self.net = net

    def run(self, image: np.ndarray, record_blobs: bool = False) -> np.ndarray:
        """Run one CHW image through the network.

        With ``record_blobs`` the executor keeps every intermediate
        blob in :attr:`blobs` (used by calibration).
        """
        if image.shape != self.net.input_shape:
            raise GraphError(
                f"input shape {image.shape} != network input {self.net.input_shape}"
            )
        blobs: dict[str, np.ndarray] = {}
        for layer in self.net.layers:
            inputs = [blobs[b] for b in layer.bottoms]
            if isinstance(layer, Input):
                result = image.astype(np.float32)
            else:
                result = self._run_layer(layer, inputs)
            blobs[layer.tops[0]] = result
        self.blobs = blobs if record_blobs else {}
        return blobs[self.net.output_blob]

    # ------------------------------------------------------------------

    def _run_layer(self, layer: Layer, inputs: list[np.ndarray]) -> np.ndarray:
        params = self.net.params.get(layer.name, {})
        if isinstance(layer, Convolution):
            return self._conv(layer, inputs[0], params)
        if isinstance(layer, InnerProduct):
            flat = inputs[0].reshape(-1)
            out = params["weight"] @ flat
            if layer.bias:
                out = out + params["bias"]
            return out.reshape(layer.num_output, 1, 1).astype(np.float32)
        if isinstance(layer, Pooling):
            return self._pool(layer, inputs[0])
        if isinstance(layer, ReLU):
            return np.maximum(inputs[0], 0.0)
        if isinstance(layer, BatchNorm):
            mean = params["mean"].reshape(-1, 1, 1)
            var = params["variance"].reshape(-1, 1, 1)
            return ((inputs[0] - mean) / np.sqrt(var + layer.eps)).astype(np.float32)
        if isinstance(layer, Scale):
            out = inputs[0] * params["scale"].reshape(-1, 1, 1)
            if layer.bias:
                out = out + params["bias"].reshape(-1, 1, 1)
            return out.astype(np.float32)
        if isinstance(layer, Eltwise):
            a, b = inputs
            if layer.kind is EltwiseKind.SUM:
                return a + b
            if layer.kind is EltwiseKind.PROD:
                return a * b
            return np.maximum(a, b)
        if isinstance(layer, Concat):
            return np.concatenate(inputs, axis=0)
        if isinstance(layer, Lrn):
            return self._lrn(layer, inputs[0])
        if isinstance(layer, Softmax):
            flat = inputs[0].reshape(-1)
            shifted = np.exp(flat - flat.max())
            return (shifted / shifted.sum()).reshape(inputs[0].shape).astype(np.float32)
        if isinstance(layer, Dropout):
            return inputs[0]
        raise GraphError(f"reference executor: unsupported layer {layer.type_name}")

    @staticmethod
    def _conv(layer: Convolution, x: np.ndarray, params: dict[str, np.ndarray]) -> np.ndarray:
        weight = params["weight"]
        k, cg, r, s = weight.shape
        c = x.shape[0]
        group = layer.group
        pad = layer.pad
        stride = layer.stride
        padded = np.pad(x, ((0, 0), (pad, pad), (pad, pad)))
        out_h = (padded.shape[1] - r) // stride + 1
        out_w = (padded.shape[2] - s) // stride + 1
        out = np.zeros((k, out_h, out_w), dtype=np.float32)
        in_per_group = c // group
        out_per_group = k // group
        for g in range(group):
            xg = padded[g * in_per_group : (g + 1) * in_per_group]
            wg = weight[g * out_per_group : (g + 1) * out_per_group]
            # explicit loops over the kernel window keep this reference
            # implementation independent from the im2col path under test
            for dy in range(r):
                for dx in range(s):
                    patch = xg[:, dy : dy + out_h * stride : stride, dx : dx + out_w * stride : stride]
                    out[g * out_per_group : (g + 1) * out_per_group] += np.einsum(
                        "kc,chw->khw", wg[:, :, dy, dx], patch, optimize=True
                    )
        if layer.bias:
            out += params["bias"].reshape(-1, 1, 1)
        return out

    @staticmethod
    def _pool(layer: Pooling, x: np.ndarray) -> np.ndarray:
        kernel_h, kernel_w = layer.effective_kernel(x.shape)
        stride = 1 if layer.global_pooling else layer.stride
        pad = 0 if layer.global_pooling else layer.pad
        c, h, w = x.shape
        out_h = -(-(h + 2 * pad - kernel_h) // stride) + 1
        out_w = -(-(w + 2 * pad - kernel_w) // stride) + 1
        if layer.kind is PoolKind.MAX:
            fill = -np.inf
        else:
            fill = 0.0
        # Caffe ceil-mode may read past the padded edge; extend enough.
        need_h = (out_h - 1) * stride + kernel_h
        need_w = (out_w - 1) * stride + kernel_w
        padded = np.full((c, max(h + 2 * pad, need_h), max(w + 2 * pad, need_w)), fill, dtype=np.float32)
        padded[:, pad : pad + h, pad : pad + w] = x
        out = np.zeros((c, out_h, out_w), dtype=np.float32)
        for oy in range(out_h):
            for ox in range(out_w):
                window = padded[:, oy * stride : oy * stride + kernel_h, ox * stride : ox * stride + kernel_w]
                if layer.kind is PoolKind.MAX:
                    out[:, oy, ox] = window.max(axis=(1, 2))
                else:
                    out[:, oy, ox] = window.sum(axis=(1, 2)) / (kernel_h * kernel_w)
        return out

    @staticmethod
    def _lrn(layer: Lrn, x: np.ndarray) -> np.ndarray:
        c = x.shape[0]
        half = layer.local_size // 2
        squared = x * x
        out = np.empty_like(x)
        for ch in range(c):
            lo = max(0, ch - half)
            hi = min(c, ch + half + 1)
            denom = (layer.k + (layer.alpha / layer.local_size) * squared[lo:hi].sum(axis=0)) ** layer.beta
            out[ch] = x[ch] / denom
        return out.astype(np.float32)
