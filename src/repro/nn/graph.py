"""The network graph: layers, blobs, shapes and parameters.

A :class:`Network` is a DAG of layers connected by named blobs, Caffe
style.  It owns the parameter arrays (float32), performs shape
inference at construction, and offers a builder API used by the model
zoo::

    net = Network("lenet")
    data = net.add_input("data", (1, 28, 28))
    conv1 = net.add_conv("conv1", data, num_output=20, kernel_size=5)
    ...

Parameters are initialised deterministically from the network name
(He-normal weights); see the package docstring for why synthetic
weights suffice for this reproduction.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import GraphError
from repro.nn.layers import (
    BatchNorm,
    Concat,
    Convolution,
    Dropout,
    Eltwise,
    EltwiseKind,
    InnerProduct,
    Input,
    Layer,
    Lrn,
    Pooling,
    PoolKind,
    ReLU,
    Scale,
    Shape,
    Softmax,
)


class Network:
    """A named layer graph with parameters and inferred shapes."""

    def __init__(self, name: str, seed: int | None = None) -> None:
        self.name = name
        self.layers: list[Layer] = []
        self.blob_shapes: dict[str, Shape] = {}
        self.blob_producer: dict[str, Layer] = {}
        self.params: dict[str, dict[str, np.ndarray]] = {}
        self.declared_output: str | None = None
        self._layer_names: set[str] = set()
        if seed is None:
            digest = hashlib.sha256(name.encode()).digest()
            seed = int.from_bytes(digest[:4], "little")
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Core growth operation.
    # ------------------------------------------------------------------

    def add(self, layer: Layer) -> str:
        """Add a layer, infer its output shape, init its parameters.

        Returns the top blob name.
        """
        if layer.name in self._layer_names:
            raise GraphError(f"duplicate layer name {layer.name!r}")
        input_shapes: list[Shape] = []
        for bottom in layer.bottoms:
            if bottom not in self.blob_shapes:
                raise GraphError(f"layer {layer.name!r}: unknown bottom blob {bottom!r}")
            input_shapes.append(self.blob_shapes[bottom])
        if len(layer.tops) != 1:
            raise GraphError(f"layer {layer.name!r}: exactly one top blob is supported")
        top = layer.tops[0]
        in_place = top in layer.bottoms
        if top in self.blob_shapes and not in_place:
            raise GraphError(f"layer {layer.name!r}: top blob {top!r} already produced")
        shape = layer.output_shape(input_shapes)
        self.layers.append(layer)
        self._layer_names.add(layer.name)
        self.blob_shapes[top] = shape
        self.blob_producer[top] = layer
        param_shapes = layer.param_shapes(input_shapes)
        if param_shapes:
            self.params[layer.name] = {
                key: self._init_param(key, shape_) for key, shape_ in param_shapes.items()
            }
        return top

    def _init_param(self, kind: str, shape: tuple[int, ...]) -> np.ndarray:
        if kind == "variance":
            return self._rng.uniform(0.5, 1.5, size=shape).astype(np.float32)
        if kind == "scale":
            return self._rng.uniform(0.8, 1.2, size=shape).astype(np.float32)
        if kind in ("bias", "mean"):
            return self._rng.normal(0.0, 0.05, size=shape).astype(np.float32)
        fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else int(shape[0])
        std = float(np.sqrt(2.0 / max(1, fan_in)))
        return self._rng.normal(0.0, std, size=shape).astype(np.float32)

    # ------------------------------------------------------------------
    # Builder helpers (the zoo's vocabulary).
    # ------------------------------------------------------------------

    def add_input(self, name: str, shape: Shape) -> str:
        return self.add(Input(name=name, bottoms=(), tops=(name,), shape=shape))

    def add_conv(
        self,
        name: str,
        bottom: str,
        num_output: int,
        kernel_size: int,
        stride: int = 1,
        pad: int = 0,
        group: int = 1,
        bias: bool = True,
    ) -> str:
        return self.add(
            Convolution(
                name=name,
                bottoms=(bottom,),
                tops=(name,),
                num_output=num_output,
                kernel_size=kernel_size,
                stride=stride,
                pad=pad,
                group=group,
                bias=bias,
            )
        )

    def add_fc(self, name: str, bottom: str, num_output: int, bias: bool = True) -> str:
        return self.add(
            InnerProduct(
                name=name, bottoms=(bottom,), tops=(name,), num_output=num_output, bias=bias
            )
        )

    def add_pool(
        self,
        name: str,
        bottom: str,
        kind: PoolKind = PoolKind.MAX,
        kernel_size: int = 2,
        stride: int = 2,
        pad: int = 0,
        global_pooling: bool = False,
    ) -> str:
        return self.add(
            Pooling(
                name=name,
                bottoms=(bottom,),
                tops=(name,),
                kind=kind,
                kernel_size=kernel_size,
                stride=stride,
                pad=pad,
                global_pooling=global_pooling,
            )
        )

    def add_relu(self, name: str, bottom: str) -> str:
        return self.add(ReLU(name=name, bottoms=(bottom,), tops=(name,)))

    def add_batchnorm(self, name: str, bottom: str) -> str:
        return self.add(BatchNorm(name=name, bottoms=(bottom,), tops=(name,)))

    def add_scale(self, name: str, bottom: str, bias: bool = True) -> str:
        return self.add(Scale(name=name, bottoms=(bottom,), tops=(name,), bias=bias))

    def add_eltwise(
        self, name: str, bottom_a: str, bottom_b: str, kind: EltwiseKind = EltwiseKind.SUM
    ) -> str:
        return self.add(Eltwise(name=name, bottoms=(bottom_a, bottom_b), tops=(name,), kind=kind))

    def add_concat(self, name: str, bottoms: list[str]) -> str:
        return self.add(Concat(name=name, bottoms=tuple(bottoms), tops=(name,)))

    def add_lrn(
        self,
        name: str,
        bottom: str,
        local_size: int = 5,
        alpha: float = 1e-4,
        beta: float = 0.75,
        k: float = 1.0,
    ) -> str:
        return self.add(
            Lrn(
                name=name,
                bottoms=(bottom,),
                tops=(name,),
                local_size=local_size,
                alpha=alpha,
                beta=beta,
                k=k,
            )
        )

    def add_softmax(self, name: str, bottom: str) -> str:
        return self.add(Softmax(name=name, bottoms=(bottom,), tops=(name,)))

    def add_dropout(self, name: str, bottom: str, ratio: float = 0.5) -> str:
        return self.add(Dropout(name=name, bottoms=(bottom,), tops=(name,), ratio=ratio))

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def input_layer(self) -> Input:
        for layer in self.layers:
            if isinstance(layer, Input):
                return layer
        raise GraphError(f"network {self.name!r} has no Input layer")

    @property
    def input_shape(self) -> Shape:
        return self.input_layer.shape

    def mark_output(self, blob: str) -> None:
        """Declare the inference output explicitly.

        Needed when the graph carries side outputs that inference does
        not consume (e.g. GoogLeNet's auxiliary classifier heads, which
        live in the caffemodel but are pruned by the compiler).
        """
        if blob not in self.blob_shapes:
            raise GraphError(f"cannot mark unknown blob {blob!r} as output")
        self.declared_output = blob

    @property
    def output_blob(self) -> str:
        """The inference output blob.

        Either declared via :meth:`mark_output`, or inferred as the
        single unconsumed blob.
        """
        if self.declared_output is not None:
            return self.declared_output
        consumed: set[str] = set()
        for layer in self.layers:
            consumed.update(layer.bottoms)
        unconsumed = [
            top for layer in self.layers for top in layer.tops if top not in consumed
        ]
        if len(unconsumed) != 1:
            raise GraphError(
                f"network {self.name!r} has {len(unconsumed)} unconsumed blobs: {unconsumed}"
            )
        return unconsumed[0]

    def layer_count(self) -> int:
        """Layers excluding the Input pseudo-layer (paper's metric)."""
        return sum(1 for layer in self.layers if not isinstance(layer, Input))

    def parameter_count(self) -> int:
        return sum(int(a.size) for params in self.params.values() for a in params.values())

    def model_size_bytes(self, bytes_per_param: int = 4) -> int:
        """Model file size (float32 by default, like a .caffemodel)."""
        return self.parameter_count() * bytes_per_param

    def consumers(self, blob: str) -> list[Layer]:
        return [layer for layer in self.layers if blob in layer.bottoms]

    def validate(self) -> None:
        """Check the graph is a single-input DAG with one output."""
        _ = self.input_layer
        _ = self.output_blob
        for layer in self.layers:
            for bottom in layer.bottoms:
                if bottom not in self.blob_producer:
                    raise GraphError(f"layer {layer.name!r}: dangling bottom {bottom!r}")

    def summary(self) -> str:
        lines = [f"Network {self.name}: {self.layer_count()} layers, "
                 f"{self.parameter_count():,} params "
                 f"({self.model_size_bytes() / 1e6:.1f} MB fp32)"]
        for layer in self.layers:
            shape = self.blob_shapes[layer.tops[0]]
            lines.append(
                f"  {layer.type_name:<12} {layer.name:<24} -> {shape[0]}x{shape[1]}x{shape[2]}"
            )
        return "\n".join(lines)
