"""Neural-network substrate: the flow's "Caffe".

The paper's toolflow consumes trained Caffe models.  Offline Caffe is
unavailable here, so this package provides the equivalent substrate:

- :mod:`repro.nn.layers` / :mod:`repro.nn.graph` — a Caffe-style layer
  graph IR (tops/bottoms, named layers, shape inference),
- :mod:`repro.nn.caffe_proto` — a prototxt-like text format and a
  ``.caffemodel``-equivalent weight container,
- :mod:`repro.nn.zoo` — the six evaluation networks: LeNet-5,
  ResNet-18 (CIFAR, the paper's 0.8 MB variant), ResNet-50,
  MobileNet, GoogLeNet and AlexNet,
- :mod:`repro.nn.reference` — a float32 reference executor used to
  validate the NVDLA functional model,
- :mod:`repro.nn.quantize` — INT8 calibration tables (the paper's
  future-work item 1) and weight quantisation.

Weights are synthetic (seeded random): the flow's behaviour — data
volumes, layer schedules, latencies — depends only on shapes, not on
trained values; classification accuracy is out of scope (and was not
evaluated in the paper either).
"""

from repro.nn.graph import Network
from repro.nn.layers import (
    BatchNorm,
    Concat,
    Convolution,
    Eltwise,
    EltwiseKind,
    InnerProduct,
    Input,
    Layer,
    Lrn,
    Pooling,
    PoolKind,
    ReLU,
    Scale,
    Softmax,
)
from repro.nn.quantize import CalibrationTable, calibrate_network, quantize_weights
from repro.nn.reference import ReferenceExecutor

__all__ = [
    "BatchNorm",
    "CalibrationTable",
    "Concat",
    "Convolution",
    "Eltwise",
    "EltwiseKind",
    "InnerProduct",
    "Input",
    "Layer",
    "Lrn",
    "Network",
    "Pooling",
    "PoolKind",
    "ReLU",
    "ReferenceExecutor",
    "Scale",
    "Softmax",
    "calibrate_network",
    "quantize_weights",
]
