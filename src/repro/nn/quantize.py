"""INT8 calibration and quantisation.

The paper names the missing INT8 calibration tables as the main
limitation of its nv_small flow and lists generating them as future
work item 1.  This module implements that item: a max-abs calibration
pass over the float reference executor produces per-blob scales, and
per-layer weight quantisation derives the integer requantisation
constants (multiplier + right-shift) the SDP output converter needs.

Scale convention: ``real_value = scale * int8_value``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphError
from repro.nn.graph import Network
from repro.nn.reference import ReferenceExecutor


@dataclass
class CalibrationTable:
    """Per-blob activation scales (``real = scale * q``)."""

    network: str
    scales: dict[str, float] = field(default_factory=dict)

    def scale_for(self, blob: str) -> float:
        try:
            return self.scales[blob]
        except KeyError:
            raise GraphError(f"no calibration entry for blob {blob!r}") from None

    def to_text(self) -> str:
        """Serialise in the simple ``blob scale`` format NVDLA's
        compiler documentation describes for calibration tables."""
        lines = [f"# calibration table for {self.network}"]
        for blob, scale in sorted(self.scales.items()):
            lines.append(f"{blob} {scale:.9g}")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_text(cls, text: str) -> "CalibrationTable":
        name = "unknown"
        scales: dict[str, float] = {}
        for line in text.splitlines():
            line = line.strip()
            if line.startswith("#"):
                if "for" in line:
                    name = line.rsplit("for", 1)[1].strip()
                continue
            if not line:
                continue
            blob, value = line.rsplit(None, 1)
            scales[blob] = float(value)
        return cls(network=name, scales=scales)


def calibrate_network(
    net: Network,
    samples: int = 4,
    seed: int = 1234,
    input_range: tuple[float, float] = (-1.0, 1.0),
) -> CalibrationTable:
    """Run calibration inputs through the float reference and record
    max-abs per blob.

    Real deployments use representative data; synthetic uniform inputs
    exercise the same code path and produce well-conditioned scales
    for the randomly initialised zoo networks.
    """
    if samples <= 0:
        raise GraphError("calibration needs at least one sample")
    executor = ReferenceExecutor(net)
    rng = np.random.default_rng(seed)
    max_abs: dict[str, float] = {}
    for _ in range(samples):
        image = rng.uniform(*input_range, size=net.input_shape).astype(np.float32)
        executor.run(image, record_blobs=True)
        for blob, tensor in executor.blobs.items():
            peak = float(np.abs(tensor).max())
            max_abs[blob] = max(max_abs.get(blob, 0.0), peak)
    scales = {blob: (peak / 127.0 if peak > 0 else 1.0 / 127.0) for blob, peak in max_abs.items()}
    return CalibrationTable(network=net.name, scales=scales)


@dataclass(frozen=True)
class QuantizedWeights:
    """INT8 weights plus the scales that reconstruct real values."""

    weight: np.ndarray  # int8
    weight_scale: float
    bias: np.ndarray | None  # int32, at scale weight_scale * input_scale


def quantize_weights(
    weight: np.ndarray,
    bias: np.ndarray | None,
    input_scale: float,
) -> QuantizedWeights:
    """Symmetric per-tensor weight quantisation.

    Bias is quantised to int32 at the accumulator scale
    (``input_scale * weight_scale``), which is exactly what the SDP
    bias stage adds to raw MAC accumulators.
    """
    peak = float(np.abs(weight).max())
    weight_scale = peak / 127.0 if peak > 0 else 1.0 / 127.0
    q_weight = np.clip(np.rint(weight / weight_scale), -127, 127).astype(np.int8)
    q_bias = None
    if bias is not None:
        acc_scale = weight_scale * input_scale
        q_bias = np.clip(
            np.rint(bias / acc_scale), -(2**31), 2**31 - 1
        ).astype(np.int32)
    return QuantizedWeights(weight=q_weight, weight_scale=weight_scale, bias=q_bias)


def requant_constants(
    input_scale: float,
    weight_scale: float,
    output_scale: float,
    max_shift: int = 31,
) -> tuple[int, int]:
    """Integer (multiplier, shift) for the SDP output converter.

    Chooses the largest shift such that the multiplier fits 16 bits:
    ``out_q ≈ acc * mult >> shift`` where the real factor is
    ``input_scale * weight_scale / output_scale``.
    """
    factor = input_scale * weight_scale / output_scale
    if factor <= 0:
        raise GraphError("requant factor must be positive")
    shift = 0
    mult = factor
    while shift < max_shift and mult * 2 < (1 << 15):
        mult *= 2
        shift += 1
    mult_int = max(1, int(round(mult)))
    if mult_int >= (1 << 16):
        mult_int = (1 << 16) - 1
    return mult_int, shift


def dequantize(q: np.ndarray, scale: float) -> np.ndarray:
    """Back to float for validation against the reference executor."""
    return q.astype(np.float32) * scale
