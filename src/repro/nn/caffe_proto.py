"""Prototxt-like model serialisation.

The paper's flow takes "a trained neural network model" as a Caffe
prototxt + caffemodel pair.  This module provides the equivalent file
formats for our IR:

- :func:`to_prototxt` / :func:`from_prototxt` — a faithful subset of
  Caffe's text format (``layer { name: ... type: ... }`` blocks),
- :func:`save_caffemodel` / :func:`load_caffemodel` — parameters in an
  ``.npz`` container keyed ``<layer>/<param>``.

Round-tripping a zoo network through both formats reproduces it
exactly (tested property-style in ``tests/nn``).
"""

from __future__ import annotations

import io
import re

import numpy as np

from repro.errors import GraphError
from repro.nn.graph import Network
from repro.nn.layers import (
    BatchNorm,
    Concat,
    Convolution,
    Dropout,
    Eltwise,
    EltwiseKind,
    InnerProduct,
    Input,
    Layer,
    Lrn,
    Pooling,
    PoolKind,
    ReLU,
    Scale,
    Softmax,
)

_CAFFE_TYPE: dict[type, str] = {
    Input: "Input",
    Convolution: "Convolution",
    InnerProduct: "InnerProduct",
    Pooling: "Pooling",
    ReLU: "ReLU",
    BatchNorm: "BatchNorm",
    Scale: "Scale",
    Eltwise: "Eltwise",
    Concat: "Concat",
    Lrn: "LRN",
    Softmax: "Softmax",
    Dropout: "Dropout",
}


def to_prototxt(net: Network) -> str:
    """Serialise a network as Caffe-style prototxt text."""
    out = io.StringIO()
    out.write(f'name: "{net.name}"\n')
    for layer in net.layers:
        out.write("layer {\n")
        out.write(f'  name: "{layer.name}"\n')
        out.write(f'  type: "{_CAFFE_TYPE[type(layer)]}"\n')
        for bottom in layer.bottoms:
            out.write(f'  bottom: "{bottom}"\n')
        for top in layer.tops:
            out.write(f'  top: "{top}"\n')
        _write_params(out, layer)
        out.write("}\n")
    return out.getvalue()


def _write_params(out: io.StringIO, layer: Layer) -> None:
    if isinstance(layer, Input):
        c, h, w = layer.shape
        out.write("  input_param { shape { dim: 1 dim: %d dim: %d dim: %d } }\n" % (c, h, w))
    elif isinstance(layer, Convolution):
        out.write("  convolution_param {\n")
        out.write(f"    num_output: {layer.num_output}\n")
        out.write(f"    kernel_size: {layer.kernel_size}\n")
        if layer.stride != 1:
            out.write(f"    stride: {layer.stride}\n")
        if layer.pad:
            out.write(f"    pad: {layer.pad}\n")
        if layer.group != 1:
            out.write(f"    group: {layer.group}\n")
        if not layer.bias:
            out.write("    bias_term: false\n")
        out.write("  }\n")
    elif isinstance(layer, InnerProduct):
        out.write("  inner_product_param {\n")
        out.write(f"    num_output: {layer.num_output}\n")
        if not layer.bias:
            out.write("    bias_term: false\n")
        out.write("  }\n")
    elif isinstance(layer, Pooling):
        out.write("  pooling_param {\n")
        out.write(f"    pool: {layer.kind.name}\n")
        if layer.global_pooling:
            out.write("    global_pooling: true\n")
        else:
            out.write(f"    kernel_size: {layer.kernel_size}\n")
            out.write(f"    stride: {layer.stride}\n")
            if layer.pad:
                out.write(f"    pad: {layer.pad}\n")
        out.write("  }\n")
    elif isinstance(layer, Eltwise):
        out.write("  eltwise_param { operation: %s }\n" % layer.kind.name)
    elif isinstance(layer, Lrn):
        out.write("  lrn_param {\n")
        out.write(f"    local_size: {layer.local_size}\n")
        out.write(f"    alpha: {layer.alpha}\n")
        out.write(f"    beta: {layer.beta}\n")
        out.write(f"    k: {layer.k}\n")
        out.write("  }\n")
    elif isinstance(layer, Scale):
        if layer.bias:
            out.write("  scale_param { bias_term: true }\n")
    elif isinstance(layer, Dropout):
        out.write("  dropout_param { dropout_ratio: %s }\n" % layer.ratio)


_TOKEN = re.compile(r'([A-Za-z_][\w]*)\s*:\s*("(?:[^"]*)"|[-\w.+e]+)|([A-Za-z_][\w]*)\s*\{|\}')


def _tokenize_blocks(text: str):
    """Yield ('kv', key, value) / ('open', name) / ('close',) events."""
    for match in _TOKEN.finditer(text):
        if match.group(0) == "}":
            yield ("close", None, None)
        elif match.group(3) is not None:
            yield ("open", match.group(3), None)
        else:
            value = match.group(2)
            if value.startswith('"'):
                value = value[1:-1]
            yield ("kv", match.group(1), value)


def _parse_blocks(text: str) -> dict:
    """Parse prototxt into nested dicts; repeated keys become lists."""
    root: dict = {}
    stack = [root]
    for kind, key, value in _tokenize_blocks(text):
        if kind == "open":
            child: dict = {}
            _append(stack[-1], key, child)
            stack.append(child)
        elif kind == "close":
            stack.pop()
            if not stack:
                raise GraphError("unbalanced braces in prototxt")
        else:
            _append(stack[-1], key, value)
    if len(stack) != 1:
        raise GraphError("unterminated block in prototxt")
    return root


def _append(container: dict, key: str, value) -> None:
    if key in container:
        existing = container[key]
        if not isinstance(existing, list):
            container[key] = [existing]
        container[key].append(value)
    else:
        container[key] = value


def _as_list(value) -> list:
    if value is None:
        return []
    return value if isinstance(value, list) else [value]


def from_prototxt(text: str, seed: int | None = None) -> Network:
    """Parse prototxt text back into a :class:`Network`.

    Parameters are freshly initialised; use :func:`load_caffemodel` to
    restore trained values.
    """
    root = _parse_blocks(text)
    net = Network(str(root.get("name", "net")), seed=seed)
    for block in _as_list(root.get("layer")):
        layer = _layer_from_block(block)
        net.add(layer)
    net.validate()
    return net


def _layer_from_block(block: dict) -> Layer:
    name = block["name"]
    type_name = block["type"]
    bottoms = tuple(_as_list(block.get("bottom")))
    tops = tuple(_as_list(block.get("top")))
    common = {"name": name, "bottoms": bottoms, "tops": tops}
    if type_name == "Input":
        dims = [int(d) for d in _as_list(block["input_param"]["shape"]["dim"])]
        if len(dims) == 4:
            dims = dims[1:]
        return Input(shape=tuple(dims), **common)
    if type_name == "Convolution":
        p = block["convolution_param"]
        return Convolution(
            num_output=int(p["num_output"]),
            kernel_size=int(p["kernel_size"]),
            stride=int(p.get("stride", 1)),
            pad=int(p.get("pad", 0)),
            group=int(p.get("group", 1)),
            bias=p.get("bias_term", "true") != "false",
            **common,
        )
    if type_name == "InnerProduct":
        p = block["inner_product_param"]
        return InnerProduct(
            num_output=int(p["num_output"]),
            bias=p.get("bias_term", "true") != "false",
            **common,
        )
    if type_name == "Pooling":
        p = block["pooling_param"]
        if p.get("global_pooling") == "true":
            return Pooling(kind=PoolKind[p["pool"]], global_pooling=True, **common)
        return Pooling(
            kind=PoolKind[p["pool"]],
            kernel_size=int(p["kernel_size"]),
            stride=int(p.get("stride", 1)),
            pad=int(p.get("pad", 0)),
            **common,
        )
    if type_name == "ReLU":
        return ReLU(**common)
    if type_name == "BatchNorm":
        return BatchNorm(**common)
    if type_name == "Scale":
        p = block.get("scale_param", {})
        return Scale(bias=p.get("bias_term") == "true", **common)
    if type_name == "Eltwise":
        p = block.get("eltwise_param", {})
        return Eltwise(kind=EltwiseKind[p.get("operation", "SUM")], **common)
    if type_name == "Concat":
        return Concat(**common)
    if type_name == "LRN":
        p = block.get("lrn_param", {})
        return Lrn(
            local_size=int(p.get("local_size", 5)),
            alpha=float(p.get("alpha", 1e-4)),
            beta=float(p.get("beta", 0.75)),
            k=float(p.get("k", 1.0)),
            **common,
        )
    if type_name == "Softmax":
        return Softmax(**common)
    if type_name == "Dropout":
        p = block.get("dropout_param", {})
        return Dropout(ratio=float(p.get("dropout_ratio", 0.5)), **common)
    raise GraphError(f"unsupported layer type {type_name!r}")


def save_caffemodel(net: Network, path: str) -> None:
    """Write parameters to an ``.npz`` (the .caffemodel equivalent)."""
    arrays = {
        f"{layer_name}/{param_name}": array
        for layer_name, params in net.params.items()
        for param_name, array in params.items()
    }
    np.savez(path, **arrays)


def load_caffemodel(net: Network, path: str) -> None:
    """Load parameters saved by :func:`save_caffemodel` (in place)."""
    with np.load(path) as data:
        for key in data.files:
            layer_name, _, param_name = key.partition("/")
            if layer_name not in net.params or param_name not in net.params[layer_name]:
                raise GraphError(f"caffemodel key {key!r} not in network {net.name!r}")
            expected = net.params[layer_name][param_name].shape
            if data[key].shape != expected:
                raise GraphError(
                    f"caffemodel {key!r}: shape {data[key].shape} != expected {expected}"
                )
            net.params[layer_name][param_name] = data[key].astype(np.float32)
