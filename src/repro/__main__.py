"""``python -m repro`` entry point."""

import os
import sys

from repro.cli import main

try:
    sys.exit(main())
except BrokenPipeError:
    # Downstream pager/head closed the pipe: exit quietly.  Point
    # stdout at devnull first so the interpreter's shutdown flush
    # doesn't raise the same error again.
    devnull = os.open(os.devnull, os.O_WRONLY)
    os.dup2(devnull, sys.stdout.fileno())
    sys.exit(0)
