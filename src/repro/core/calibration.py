"""Calibration of the fast-path cycle estimator.

The fast path prices NVDLA hardware layers with the engine's own
analytic model, so the only unknown left in a whole-run estimate is
the µRISC-V side: how many cycles the generated program spends
writing CSB registers, polling interrupt status, and in fixed
startup/teardown around the command stream.  Those costs are linear
in quantities the bundle already knows — the ``write_reg`` and
``read_reg`` counts of its configuration file — so calibration is a
three-parameter least-squares fit against measured cycle-accurate
runs:

    measured ≈ Σ op_cycles + c_write·writes + c_poll·polls + c_fixed

A :class:`CalibrationTable` persists the fitted :class:`OverheadParams`
plus one validation entry per (model, config, precision) pair that was
checked against a measured run.  The fast-path executor *refuses* to
serve a pair with no entry — an uncalibrated estimate is a number
nobody ever compared against the reference, which is exactly the
failure mode the differential suite exists to prevent.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import ReproError

#: Gate applied by ``repro calibrate`` and the differential suite.
DEFAULT_ERROR_BAND = 0.10


@dataclass(frozen=True)
class OverheadParams:
    """Fitted CPU-side overhead coefficients (cycles).

    Defaults approximate the least-squares fit against nv_small INT8
    runs on the default SoC build (~10 cycles per register write: two
    ``li`` + ``sw`` through AHB→APB→CSB; ~30 per interrupt poll:
    the sub-threshold loop iterations plus the acknowledge store).
    They only back *uncalibrated* estimates — :func:`fit_overheads`
    supersedes them whenever calibration runs, and fast-mode execution
    always goes through a fitted, validated table.
    """

    fixed_cycles: float = 100.0
    cycles_per_csb_write: float = 10.0
    cycles_per_poll: float = 30.0

    def programming_cycles(self, csb_writes: int, polls: int) -> int:
        return int(
            round(
                self.fixed_cycles
                + self.cycles_per_csb_write * csb_writes
                + self.cycles_per_poll * polls
            )
        )


@dataclass(frozen=True)
class Observation:
    """One measured cycle-accurate run, reduced to the fit's terms."""

    model: str
    config: str
    precision: str
    op_cycles: int  # Σ analytic per-op totals
    csb_writes: int  # write_reg commands in the bundle
    polls: int  # read_reg commands in the bundle
    measured_cycles: int  # cycle-accurate SoC run


@dataclass(frozen=True)
class CalibrationEntry:
    """Validation record: estimate vs measurement for one deployment.

    The key includes the memory-path width because per-op DMA pricing
    changes with it — a pair validated at 32 bits says nothing about
    the 64-bit estimate.  Fidelity is deliberately *not* part of the
    key: the register program (and therefore the measured cycle count)
    is identical across fidelities; only DBB payload logging differs.
    """

    model: str
    config: str
    precision: str
    measured_cycles: int
    estimated_cycles: int
    memory_bus_width_bits: int = 32
    # The estimator's raw terms, kept so a merge into a table with
    # *different* fitted params can recompute and re-validate the
    # estimate without re-measuring (op_cycles == 0 means unknown).
    op_cycles: int = 0
    csb_writes: int = 0
    polls: int = 0

    @property
    def error(self) -> float:
        """Signed relative error of the estimate."""
        if self.measured_cycles == 0:
            return 0.0
        return (self.estimated_cycles - self.measured_cycles) / self.measured_cycles

    def within(self, band: float = DEFAULT_ERROR_BAND) -> bool:
        return abs(self.error) <= band


def fit_overheads(observations: list[Observation]) -> OverheadParams:
    """Least-squares fit of the three overhead coefficients.

    With fewer than three observations the system is underdetermined;
    ``lstsq`` then yields the minimum-norm solution, which still
    reproduces the observed runs exactly.
    """
    if not observations:
        raise ReproError("calibration needs at least one measured run")
    design = np.array(
        [[1.0, o.csb_writes, o.polls] for o in observations], dtype=np.float64
    )
    target = np.array(
        [o.measured_cycles - o.op_cycles for o in observations], dtype=np.float64
    )
    coeffs, *_ = np.linalg.lstsq(design, target, rcond=None)
    return OverheadParams(
        fixed_cycles=float(coeffs[0]),
        cycles_per_csb_write=float(coeffs[1]),
        cycles_per_poll=float(coeffs[2]),
    )


class CalibrationTable:
    """Fitted overhead parameters plus per-deployment validation."""

    def __init__(self, params: OverheadParams | None = None) -> None:
        self.params = params or OverheadParams()
        self.entries: dict[tuple[str, str, str, int], CalibrationEntry] = {}

    @staticmethod
    def key(
        model: str, config: str, precision, memory_bus_width_bits: int = 32
    ) -> tuple[str, str, str, int]:
        precision = getattr(precision, "value", precision)
        return (model, str(config), str(precision), int(memory_bus_width_bits))

    def __contains__(self, key: tuple[str, str, str, int]) -> bool:
        return key in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def has(
        self, model: str, config: str, precision, memory_bus_width_bits: int = 32
    ) -> bool:
        return self.key(model, config, precision, memory_bus_width_bits) in self.entries

    def entry(
        self, model: str, config: str, precision, memory_bus_width_bits: int = 32
    ) -> CalibrationEntry:
        return self.entries[self.key(model, config, precision, memory_bus_width_bits)]

    def require(
        self, model: str, config: str, precision, memory_bus_width_bits: int = 32
    ) -> CalibrationEntry:
        """The fast-mode guard: raise for never-calibrated deployments."""
        key = self.key(model, config, precision, memory_bus_width_bits)
        entry = self.entries.get(key)
        if entry is None:
            known = sorted(
                "/".join(map(str, k)) for k in self.entries
            ) or ["<empty table>"]
            raise ReproError(
                f"fast-path execution of {'/'.join(map(str, key))} was never "
                f"calibrated (calibrated: {', '.join(known)}); run "
                f"`repro calibrate` first"
            )
        return entry

    def admit(
        self,
        model: str,
        config: str,
        precision,
        measured_cycles: int,
        estimated_cycles: int,
        memory_bus_width_bits: int = 32,
        op_cycles: int = 0,
        csb_writes: int = 0,
        polls: int = 0,
    ) -> CalibrationEntry:
        """Record a validated deployment, unlocking fast mode for it."""
        entry = CalibrationEntry(
            model=model,
            config=str(config),
            precision=str(getattr(precision, "value", precision)),
            measured_cycles=int(measured_cycles),
            estimated_cycles=int(estimated_cycles),
            memory_bus_width_bits=int(memory_bus_width_bits),
            op_cycles=int(op_cycles),
            csb_writes=int(csb_writes),
            polls=int(polls),
        )
        self.entries[self.key(model, config, precision, memory_bus_width_bits)] = entry
        return entry

    def merge(
        self, other: "CalibrationTable", error_band: float = DEFAULT_ERROR_BAND
    ) -> "CalibrationTable":
        """Fold another table's entries in, re-validated under *this*
        table's params.

        An entry's recorded estimate is only meaningful under the
        params that produced it, so merged entries are recomputed from
        their stored terms against ``self.params``; entries that land
        outside ``error_band`` — or that carry no terms (tables written
        by older code) — are dropped rather than unlocking fast mode
        with a validation nobody performed.  Pairs present in both
        tables keep this table's (freshly fitted) entry.
        """
        for key, entry in other.entries.items():
            if key in self.entries:
                continue
            if entry.op_cycles <= 0:
                continue  # no terms — cannot vouch under new params
            estimated = entry.op_cycles + self.params.programming_cycles(
                entry.csb_writes, entry.polls
            )
            revalidated = CalibrationEntry(
                model=entry.model,
                config=entry.config,
                precision=entry.precision,
                measured_cycles=entry.measured_cycles,
                estimated_cycles=estimated,
                memory_bus_width_bits=entry.memory_bus_width_bits,
                op_cycles=entry.op_cycles,
                csb_writes=entry.csb_writes,
                polls=entry.polls,
            )
            if revalidated.within(error_band):
                self.entries[key] = revalidated
        return self

    def worst_error(self) -> float:
        return max((abs(e.error) for e in self.entries.values()), default=0.0)

    # ------------------------------------------------------------------
    # Persistence.
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "params": {
                "fixed_cycles": self.params.fixed_cycles,
                "cycles_per_csb_write": self.params.cycles_per_csb_write,
                "cycles_per_poll": self.params.cycles_per_poll,
            },
            "entries": [
                {
                    "model": e.model,
                    "config": e.config,
                    "precision": e.precision,
                    "measured_cycles": e.measured_cycles,
                    "estimated_cycles": e.estimated_cycles,
                    "memory_bus_width_bits": e.memory_bus_width_bits,
                    "op_cycles": e.op_cycles,
                    "csb_writes": e.csb_writes,
                    "polls": e.polls,
                }
                for e in self.entries.values()
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CalibrationTable":
        table = cls(OverheadParams(**data["params"]))
        for raw in data.get("entries", []):
            table.admit(
                raw["model"],
                raw["config"],
                raw["precision"],
                raw["measured_cycles"],
                raw["estimated_cycles"],
                memory_bus_width_bits=raw.get("memory_bus_width_bits", 32),
                op_cycles=raw.get("op_cycles", 0),
                csb_writes=raw.get("csb_writes", 0),
                polls=raw.get("polls", 0),
            )
        return table

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "CalibrationTable":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def render(self) -> str:
        lines = [
            "fast-path calibration:",
            f"  fixed {self.params.fixed_cycles:.0f} cyc, "
            f"{self.params.cycles_per_csb_write:.1f} cyc/write, "
            f"{self.params.cycles_per_poll:.1f} cyc/poll",
        ]
        for entry in sorted(self.entries.values(), key=lambda e: (e.config, e.model)):
            lines.append(
                f"  {entry.model}/{entry.config}/{entry.precision}"
                f"@{entry.memory_bus_width_bits}b: "
                f"measured {entry.measured_cycles:,} vs estimated "
                f"{entry.estimated_cycles:,} ({entry.error:+.2%})"
            )
        return "\n".join(lines)
