"""The SoC top level (paper Fig. 2).

Wires together:

- the µRISC-V core (Harvard AHB-Lite ports: instructions from BRAM
  program memory, data into the system bus),
- the system bus — an AHB segment feeding the address decoder with the
  two slave windows (NVDLA registers, DRAM),
- the NVDLA wrapper (bridges + width converter + engine),
- the DRAM arbiter in front of the 512 MB data memory.

`run_inference` executes a bare-metal bundle exactly the way the FPGA
does: machine code in program memory, weights/input preloaded in DRAM,
CPU released from reset, completion signalled by the status page.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baremetal.codegen import (
    MAGIC_DONE,
    MAGIC_FAIL,
    STATUS_CYCLES_HI,
    STATUS_FAIL_ADDR,
    STATUS_FAIL_INDEX,
    STATUS_RESULT,
)
from repro.baremetal.pipeline import BaremetalBundle
from repro.bus.ahb import AhbLiteBus
from repro.bus.bridges import AhbToAxiBridge
from repro.bus.interconnect import AddressDecoder, Region
from repro.clock import Clock
from repro.core.address_map import AddressMap, DEFAULT_MAP, PROGRAM_MEMORY_SIZE
from repro.core.arbiter import DramArbiter
from repro.core.executor import BaremetalExecutor, RunStats
from repro.core.nvdla_wrapper import NvdlaWrapper
from repro.errors import ReproError
from repro.mem.bram import Bram
from repro.mem.dram import Dram, DramTiming
from repro.nvdla.config import HardwareConfig, NV_SMALL, Precision
from repro.nvdla.layout import unpack_feature
from repro.nvdla.timing import TimingParams
from repro.riscv.cpu import Cpu
from repro.riscv.program import Program


@dataclass
class SocRunResult:
    """Outcome of one bare-metal inference on the SoC."""

    ok: bool
    cycles: int
    seconds: float
    stats: RunStats
    status_word: int
    fail_index: int | None = None
    fail_address: int | None = None
    output: np.ndarray | None = None
    op_records: list = field(default_factory=list)

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3


class Soc:
    """The bare-metal RISC-V + NVDLA SoC."""

    def __init__(
        self,
        config: HardwareConfig = NV_SMALL,
        frequency_hz: float = 100e6,
        fidelity: str = "functional",
        address_map: AddressMap = DEFAULT_MAP,
        dram_timing: DramTiming | None = None,
        timing_params: TimingParams | None = None,
        dma_efficiency: float = 0.5,
        program_memory_size: int = PROGRAM_MEMORY_SIZE,
        memory_bus_width_bits: int = 32,
    ) -> None:
        self.config = config
        self.address_map = address_map
        self.clock = Clock(frequency_hz)
        # The data-memory bus is 32-bit in the published SoC (Fig. 2);
        # the nv_full simulations of Table III assume the widened AXI
        # path the paper's conclusion calls for.
        self.memory_bus_width_bits = memory_bus_width_bits
        if dram_timing is None:
            dram_timing = DramTiming(data_width_bits=memory_bus_width_bits)
        self.dram = Dram(size=address_map.dram_size, timing=dram_timing)
        self.arbiter = DramArbiter(self.dram)
        self.wrapper = NvdlaWrapper(
            config,
            arbiter=self.arbiter,
            clock=self.clock,
            address_map=address_map,
            fidelity=fidelity,
            timing_params=timing_params,
            dma_efficiency=dma_efficiency,
            memory_bus_width_bits=memory_bus_width_bits,
        )
        self.program_memory = Bram(size=program_memory_size)
        # Data path to DRAM: AHB→AXI bridge in front of the arbiter.
        self.ahb_axi_bridge = AhbToAxiBridge(self.arbiter)
        self.decoder = AddressDecoder(
            [
                Region(
                    "nvdla",
                    address_map.nvdla_base,
                    address_map.nvdla_limit,
                    self.wrapper.csb_target,
                ),
                Region(
                    "dram",
                    address_map.dram_base,
                    address_map.dram_limit,
                    self.ahb_axi_bridge,
                ),
            ]
        )
        self.system_bus = AhbLiteBus(self.decoder)
        self.ibus = AhbLiteBus(self.program_memory)
        self.cpu = Cpu(ibus=self.ibus, dbus=self.system_bus)
        self.executor = BaremetalExecutor(self.cpu, self.clock)

    # ------------------------------------------------------------------
    # Loading.
    # ------------------------------------------------------------------

    def reset_for_run(
        self, scrub_dram: bool = True, keep_fetch_cache: bool = False
    ) -> None:
        """Return the SoC to its power-on state so it can be reused.

        The serving layer keeps SoC instances alive across requests
        (building one costs far more than running one), so between
        inferences the clock, CPU, engine and statistics must all go
        back to cycle zero.  With ``scrub_dram`` the data memory is
        cleared too, which makes a reused SoC bit-identical to a
        freshly constructed one; callers that are about to reload the
        same preload images may skip the scrub to save the rewrite, and
        callers replaying the *same program* may keep the CPU fetch
        cache (see :meth:`repro.riscv.cpu.Cpu.reset`).
        """
        self.clock.reset()
        self.wrapper.engine.reset()
        self.cpu.reset(keep_fetch_cache=keep_fetch_cache)
        self.dram.stats = type(self.dram.stats)()
        self.dram._open_rows.clear()
        self.arbiter.stats = type(self.arbiter.stats)()
        if scrub_dram:
            self.dram.storage.clear()
        else:
            # At minimum invalidate the status page so a stale DONE
            # word cannot leak into the next run's result decode.
            self.dram.storage.write(0, bytes(STATUS_CYCLES_HI + 4))

    def load_program(self, program: Program) -> None:
        self.program_memory.load_image(program.to_bytes(), base=program.base)
        self.cpu.reset_pc = program.entry or program.base
        self.cpu.reset()

    def preload_dram(self, address: int, data: bytes) -> None:
        """Testbench-style preload (Fig. 4's Zynq path models timing)."""
        self.dram.storage.write(address - self.address_map.dram_base, data)

    def load_bundle(self, bundle: BaremetalBundle) -> None:
        """Program memory + every preload image of a bundle."""
        self.load_program(bundle.program)
        for image in bundle.images.preload:
            self.preload_dram(image.load_address, image.data)

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def run_inference(
        self,
        bundle: BaremetalBundle | None = None,
        max_instructions: int = 200_000_000,
    ) -> SocRunResult:
        """Run the loaded program to completion and decode the status."""
        stats = self.executor.run(max_instructions=max_instructions)
        status_base = self.address_map.dram_base
        status = self._read_status_u32(status_base + STATUS_RESULT)
        ok = status == MAGIC_DONE
        fail_index = fail_address = None
        if status == MAGIC_FAIL:
            fail_index = self._read_status_u32(status_base + STATUS_FAIL_INDEX)
            fail_address = self._read_status_u32(status_base + STATUS_FAIL_ADDR)
        output = None
        if ok and bundle is not None and bundle.fidelity == "functional":
            output = self.read_output(bundle)
        return SocRunResult(
            ok=ok,
            cycles=stats.cycles,
            seconds=stats.seconds,
            stats=stats,
            status_word=status,
            fail_index=fail_index,
            fail_address=fail_address,
            output=output,
            op_records=list(self.wrapper.engine.records),
        )

    def _read_status_u32(self, bus_address: int) -> int:
        return self.dram.storage.read_u32(bus_address - self.address_map.dram_base)

    def read_output(self, bundle: BaremetalBundle) -> np.ndarray:
        """Unpack the network output tensor from DRAM (dequantised)."""
        return read_output_tensor(
            self.dram.storage, bundle, self.config, self.address_map.dram_base
        )

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def describe(self) -> str:
        return (
            f"SoC @ {self.clock.frequency_hz / 1e6:g} MHz: µRISC-V (RV32IM, 4-stage) + "
            f"{self.wrapper.describe()}; decoder {self.address_map.describe()}"
        )

    def stats_summary(self) -> dict:
        return {
            "cpu": {
                "instructions": self.cpu.instret,
                "cycles": self.cpu.cycles,
                "cpi": self.cpu.pipeline.stats.cpi,
            },
            "nvdla": self.wrapper.engine.summary(),
            "dram": {
                "bytes_read": self.dram.stats.bytes_read,
                "bytes_written": self.dram.stats.bytes_written,
                "row_hit_rate": (
                    self.dram.stats.row_hits
                    / max(1, self.dram.stats.row_hits + self.dram.stats.row_misses)
                ),
            },
            "arbiter": {
                "cpu_grants": self.arbiter.stats.cpu_grants,
                "contended": self.arbiter.stats.contended_grants,
            },
        }


def read_output_tensor(
    storage, bundle: BaremetalBundle, config: HardwareConfig, dram_base: int
) -> np.ndarray:
    """Unpack + dequantise a bundle's output tensor from a DRAM image.

    One implementation for every execution tier — the fast path reads
    its private DRAM image through this too, so the output decode can
    never diverge between tiers.
    """
    ref = bundle.loadable.output_tensor
    atom = config.atom_channels(ref.precision)
    raw = storage.read(ref.require_address() - dram_base, ref.packed_bytes(atom))
    tensor = unpack_feature(raw, ref.shape, atom, ref.precision)
    if ref.precision is Precision.INT8:
        return tensor.astype(np.float32) * ref.scale
    return tensor.astype(np.float32)


def verify_against_reference(result: SocRunResult, expected: np.ndarray, rtol: float = 0.1) -> bool:
    """Convenience check used by tests and examples."""
    if result.output is None:
        raise ReproError("run produced no output tensor")
    scale = float(np.abs(expected).max()) or 1.0
    return bool(np.abs(result.output - expected).max() <= rtol * scale)
