"""The full ZCU102 test setup (paper Fig. 4).

Around the SoC proper, the bring-up system adds:

- the **Zynq UltraScale+ PS** — initialises the DDR4 and preloads the
  weight and image ``.bin`` files before releasing the SoC,
- an **AXI SmartConnect** — "functions as a multiplexer": at any time
  the DRAM belongs either to the Zynq (preload phase) or to the SoC
  (inference phase),
- an **AXI Interconnect** — reconciles the clock-domain mismatch
  between the PS-side AXI (300 MHz) and the MIG DDR4 user interface
  (100 MHz),
- the **MIG DDR4 controller** — the :class:`~repro.mem.dram.Dram`
  model inside the SoC.

`run_experiment` reproduces the published procedure: preload via the
Zynq path (timed), flip the SmartConnect to the SoC, run inference.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baremetal.pipeline import BaremetalBundle
from repro.bus.interconnect import AxiInterconnect, AxiSmartConnect
from repro.bus.types import AccessType, Transfer
from repro.core.soc import Soc, SocRunResult
from repro.errors import ReproError


@dataclass
class PreloadResult:
    """Timing of the Zynq preload phase."""

    bytes_loaded: int
    zynq_cycles: int
    seconds: float


class ZynqPreloader:
    """The PS-side master that initialises DRAM through SmartConnect."""

    def __init__(self, smartconnect: AxiSmartConnect, frequency_hz: float = 300e6) -> None:
        self.smartconnect = smartconnect
        self.frequency_hz = frequency_hz

    def preload(self, images: list[tuple[int, bytes]]) -> PreloadResult:
        """Write (address, data) images through the Zynq path."""
        self.smartconnect.select("zynq")
        total_cycles = 0
        total_bytes = 0
        for address, data in images:
            # 4 KiB AXI bursts, like the PS DMA configuration.
            offset = 0
            while offset < len(data):
                chunk = bytes(data[offset : offset + 4096])
                aligned = len(chunk) - len(chunk) % 4
                if aligned:
                    xfer = Transfer(
                        address=address + offset,
                        size=4,
                        access=AccessType.WRITE,
                        data=chunk[:aligned],
                        burst_len=aligned // 4,
                        master="zynq",
                    )
                    total_cycles += self.smartconnect.transfer(xfer).cycles
                for i, byte in enumerate(chunk[aligned:]):
                    xfer = Transfer(
                        address=address + offset + aligned + i,
                        size=1,
                        access=AccessType.WRITE,
                        data=bytes([byte]),
                        master="zynq",
                    )
                    total_cycles += self.smartconnect.transfer(xfer).cycles
                offset += len(chunk)
            total_bytes += len(data)
        return PreloadResult(
            bytes_loaded=total_bytes,
            zynq_cycles=total_cycles,
            seconds=total_cycles / self.frequency_hz,
        )


class _RebasedDramPort:
    """Zynq-side view of the SoC DRAM (bus addresses → DRAM-local)."""

    def __init__(self, soc: Soc) -> None:
        self._soc = soc

    def transfer(self, xfer: Transfer):
        rebased = Transfer(
            address=xfer.address - self._soc.address_map.dram_base,
            size=xfer.size,
            access=xfer.access,
            data=xfer.data,
            burst_len=xfer.burst_len,
            master=xfer.master,
        )
        return self._soc.dram.transfer(rebased)


class TestSystem:
    """The complete Fig. 4 block design."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self,
        soc: Soc,
        zynq_frequency_hz: float = 300e6,
        mig_frequency_hz: float = 100e6,
    ) -> None:
        self.soc = soc
        # Zynq → SmartConnect → AXI Interconnect (CDC) → MIG DDR4.
        self.axi_interconnect = AxiInterconnect(
            _RebasedDramPort(soc),
            fast_hz=zynq_frequency_hz,
            slow_hz=mig_frequency_hz,
        )
        self.smartconnect = AxiSmartConnect(self.axi_interconnect)
        self.zynq = ZynqPreloader(self.smartconnect, frequency_hz=zynq_frequency_hz)
        self.preload_result: PreloadResult | None = None

    def run_experiment(self, bundle: BaremetalBundle) -> SocRunResult:
        """Preload via the Zynq, hand DRAM to the SoC, run inference.

        Reusable: each experiment starts from SoC power-on state (the
        serving layer and sweeps run many bundles through one system),
        then replays the published procedure — Zynq preload, flip the
        SmartConnect, release the CPU.
        """
        self.soc.reset_for_run(scrub_dram=True)
        images = [(img.load_address, img.data) for img in bundle.images.preload]
        self.preload_result = self.zynq.preload(images)
        self.smartconnect.select("soc")
        self.soc.load_program(bundle.program)
        return self.soc.run_inference(bundle)

    def describe(self) -> str:
        if self.preload_result is None:
            preload = "not yet preloaded"
        else:
            preload = (
                f"preloaded {self.preload_result.bytes_loaded / 1024:.1f} KiB in "
                f"{self.preload_result.seconds * 1e3:.2f} ms"
            )
        return (
            "ZCU102 test system: Zynq PS (300 MHz) → SmartConnect → "
            "AXI Interconnect (300/100 MHz CDC) → MIG DDR4; " + preload
        )


def build_test_system(soc: Soc | None = None, **soc_kwargs) -> TestSystem:
    """Convenience constructor used by benchmarks and diagrams."""
    if soc is not None and soc_kwargs:
        raise ReproError("pass either a Soc or constructor kwargs, not both")
    return TestSystem(soc or Soc(**soc_kwargs))
