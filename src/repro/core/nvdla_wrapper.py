"""The custom NVDLA wrapper (paper §III, Fig. 2).

"The NVDLA wrapper encapsulates the accelerator hardware alongside
interface bridges and a data width converter to address mismatches
between the µRISC-V and NVDLA interfaces."

Two paths through the wrapper:

- **register path** — AHB-Lite (from the system bus) → AHB→APB bridge
  → APB → APB→CSB adapter → the engine's CSB port,
- **data path** — the engine's 64-bit DBB → AXI 64→32 width converter
  → the DRAM arbiter.

The wrapper also rebases DBB addresses: NVDLA descriptors use absolute
bus addresses (the DRAM window starts at ``0x100000``) while the
arbiter/DRAM pair is zero-based.
"""

from __future__ import annotations

from repro.bus.apb import ApbBus
from repro.bus.bridges import AhbToApbBridge, ApbToCsbAdapter
from repro.bus.types import AccessType, BusPort, Reply, Transfer
from repro.bus.width_converter import AxiWidthConverter
from repro.clock import Clock
from repro.core.address_map import AddressMap, DEFAULT_MAP
from repro.core.arbiter import DramArbiter
from repro.errors import BusError
from repro.nvdla.config import HardwareConfig
from repro.nvdla.engine import NvdlaEngine
from repro.nvdla.timing import TimingParams


class _CsbPort(BusPort):
    """Bus-port adapter over the engine's CSB interface."""

    CSB_CYCLES = 2  # request + response on the single-outstanding CSB

    def __init__(self, engine_getter) -> None:
        self._engine_getter = engine_getter

    def transfer(self, xfer: Transfer) -> Reply:
        if xfer.size != 4 or xfer.burst_len != 1:
            raise BusError("CSB supports single 32-bit accesses only", xfer.address)
        engine = self._engine_getter()
        if xfer.access is AccessType.WRITE:
            assert xfer.data is not None
            engine.csb_write(xfer.address, int.from_bytes(xfer.data, "little"))
            return Reply(cycles=self.CSB_CYCLES)
        value = engine.csb_read(xfer.address)
        return Reply(data=value.to_bytes(4, "little"), cycles=self.CSB_CYCLES)


class WrapperDbbPort:
    """The engine-facing memory port: converter + arbiter + rebase.

    Public because the fast-path executor (:mod:`repro.core.fastpath`)
    builds the identical converter + arbiter chain so its per-op DMA
    pricing matches the cycle-accurate wrapper exactly.
    """

    def __init__(
        self,
        arbiter: DramArbiter,
        converter: AxiWidthConverter,
        dram_base: int,
        burst_bytes: int = 256,
    ) -> None:
        self._arbiter = arbiter
        self._converter = converter
        self._dram_base = dram_base
        self._burst_bytes = burst_bytes
        self.bytes_read = 0
        self.bytes_written = 0

    def _rebase(self, address: int) -> int:
        if address < self._dram_base:
            raise BusError(
                f"NVDLA DBB access at 0x{address:08x} below the DRAM window", address
            )
        return address - self._dram_base

    def read(self, address: int, nbytes: int) -> bytes:
        data, _ = self._arbiter.stream_read(self._rebase(address), nbytes)
        self.bytes_read += nbytes
        return data

    def write(self, address: int, data: bytes) -> None:
        self._arbiter.stream_write(self._rebase(address), data)
        self.bytes_written += len(data)

    def stream_cycles(self, address: int, nbytes: int) -> int:
        """DMA pacing: the slower of the 32-bit DRAM path and the
        width-converter's narrow side."""
        dram_cycles = self._arbiter.stream_cycles(
            self._rebase(address), nbytes, self._burst_bytes
        )
        converter_cycles = self._converter.stream_cycles(nbytes)
        return max(dram_cycles, converter_cycles)


class NvdlaWrapper:
    """NVDLA engine plus its interface bridges.

    Exposes ``csb_target`` — the bus port the system-bus decoder maps
    at ``0x0`` — and owns the DBB path into the arbiter.
    """

    def __init__(
        self,
        config: HardwareConfig,
        arbiter: DramArbiter,
        clock: Clock,
        address_map: AddressMap = DEFAULT_MAP,
        fidelity: str = "functional",
        timing_params: TimingParams | None = None,
        dma_efficiency: float = 0.5,
        memory_bus_width_bits: int = 32,
    ) -> None:
        self.config = config
        self.width_converter = AxiWidthConverter(
            downstream=arbiter,
            master_width_bits=config.dbb_width_bits,
            slave_width_bits=memory_bus_width_bits,
        )
        self.dbb_port = WrapperDbbPort(
            arbiter, self.width_converter, dram_base=address_map.dram_base
        )
        self.engine = NvdlaEngine(
            config,
            dbb=self.dbb_port,
            clock=clock,
            fidelity=fidelity,
            timing_params=timing_params,
            dma_efficiency=dma_efficiency,
        )
        arbiter.attach_contention_source(self.engine.mcif, clock)
        # Register path: AHB→APB bridge, APB segment, APB→CSB adapter.
        self.csb_adapter = ApbToCsbAdapter(_CsbPort(lambda: self.engine))
        self.apb = ApbBus(self.csb_adapter)
        self.ahb_apb_bridge = AhbToApbBridge(self.apb)

    @property
    def csb_target(self) -> BusPort:
        """The decoder-facing register window (AHB side)."""
        return self.ahb_apb_bridge

    @property
    def irq_asserted(self) -> bool:
        return self.engine.irq_asserted

    def describe(self) -> str:
        return (
            f"NVDLA wrapper: {self.config.describe()}; "
            f"DBB {self.config.dbb_width_bits}-bit → "
            f"{self.width_converter.slave_width_bits}-bit memory"
        )
