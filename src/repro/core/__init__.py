"""The paper's contribution: the tightly-coupled RISC-V + NVDLA SoC.

- :mod:`repro.core.address_map` — the decoder map of Fig. 2
  (NVDLA ``0x0–0xFFFFF``, DRAM ``0x100000–0x200FFFFF``),
- :mod:`repro.core.arbiter` — the DRAM arbiter shared by the core's
  AHB path and NVDLA's DBB,
- :mod:`repro.core.nvdla_wrapper` — the custom wrapper: AHB→APB
  bridge, APB→CSB adapter, AXI 64→32 data-width converter around the
  NVDLA engine,
- :mod:`repro.core.soc` — the SoC top level wiring core, system bus,
  wrapper and memories,
- :mod:`repro.core.executor` — the bare-metal run loop with poll
  fast-forwarding,
- :mod:`repro.core.system_builder` — the full ZCU102 test setup of
  Fig. 4 (Zynq preloader, SmartConnect, AXI interconnect, MIG DDR4).
"""

from repro.core.address_map import AddressMap, DEFAULT_MAP
from repro.core.arbiter import DramArbiter
from repro.core.calibration import CalibrationEntry, CalibrationTable, OverheadParams
from repro.core.executor import BaremetalExecutor, RunStats
from repro.core.fastpath import (
    FastPathEstimate,
    FastPathExecutor,
    FastPathRunRequest,
    FastPathRunResult,
    ResidentStats,
    calibrate,
)
from repro.core.nvdla_wrapper import NvdlaWrapper
from repro.core.soc import Soc, SocRunResult
from repro.core.system_builder import TestSystem, ZynqPreloader

__all__ = [
    "AddressMap",
    "BaremetalExecutor",
    "CalibrationEntry",
    "CalibrationTable",
    "DEFAULT_MAP",
    "DramArbiter",
    "FastPathEstimate",
    "FastPathExecutor",
    "FastPathRunRequest",
    "FastPathRunResult",
    "NvdlaWrapper",
    "OverheadParams",
    "ResidentStats",
    "RunStats",
    "Soc",
    "SocRunResult",
    "TestSystem",
    "ZynqPreloader",
    "calibrate",
]
