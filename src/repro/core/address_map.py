"""The system-bus decoder map (paper §IV-A2).

Two slave windows, exactly as published:

- **NVDLA**: ``0x0 -- 0xFFFFF`` — "covering all configuration
  register addresses of the NVDLA" (the CSB space proper ends at
  0x10FFF; the window is generous),
- **DRAM**: ``0x100000 -- 0x200FFFFF`` — 512 MB of data memory.

This mapping lets the RISC-V program NVDLA with ordinary load/store
instructions — no custom instructions — which is what makes the
generated bare-metal assembly portable to any RV32 core.

Program memory hangs off the core's instruction-side AHB port (the
Codasip testbench wires it separately), so it does not occupy a data
window.
"""

from __future__ import annotations

from dataclasses import dataclass

NVDLA_BASE = 0x0
NVDLA_LIMIT = 0xFFFFF
DRAM_BASE = 0x100000
DRAM_LIMIT = 0x200FFFFF
DRAM_SIZE = DRAM_LIMIT - DRAM_BASE + 1  # exactly 512 MiB

PROGRAM_MEMORY_BASE = 0x0  # on the instruction port's own address space
PROGRAM_MEMORY_SIZE = 1 << 20  # 1 MiB of BRAM (232 tiles in Table I)

STATUS_PAGE_BASE = DRAM_BASE  # bare-metal status words (first DRAM page)
STATUS_PAGE_SIZE = 0x1000


@dataclass(frozen=True)
class AddressMap:
    """The SoC decoder windows."""

    nvdla_base: int = NVDLA_BASE
    nvdla_limit: int = NVDLA_LIMIT
    dram_base: int = DRAM_BASE
    dram_limit: int = DRAM_LIMIT

    @property
    def dram_size(self) -> int:
        return self.dram_limit - self.dram_base + 1

    def describe(self) -> str:
        return (
            f"NVDLA 0x{self.nvdla_base:x}..0x{self.nvdla_limit:x}, "
            f"DRAM 0x{self.dram_base:x}..0x{self.dram_limit:x} "
            f"({self.dram_size // (1 << 20)} MiB)"
        )


DEFAULT_MAP = AddressMap()

assert DEFAULT_MAP.dram_size == 512 * 1024 * 1024, "paper's map is exactly 512 MiB"
