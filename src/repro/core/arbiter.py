"""The DRAM arbiter (paper §IV-A2).

"The arbiter component coordinates DRAM access between the NVDLA (via
its DBB interface) and the RISC-V processor (via its AHB interface),
ensuring mutual exclusion and efficient memory utilization."

Model: CPU-side transfers pay a grant penalty whenever an NVDLA DMA
window is active at that simulation instant (the accelerator holds
the bank); NVDLA streams pay a small fixed arbitration cost per burst
(folded into the MCIF efficiency factor).  Mutual exclusion is exact
in function — both masters address the same backing store through one
port — and first-order in timing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bus.types import BusPort, Reply, Transfer
from repro.clock import Clock
from repro.mem.dram import Dram
from repro.nvdla.mcif import Mcif


@dataclass
class ArbiterStats:
    cpu_grants: int = 0
    nvdla_streams: int = 0
    cpu_stall_cycles: int = 0
    contended_grants: int = 0


class DramArbiter(BusPort):
    """Two-master front end over the DRAM."""

    def __init__(self, dram: Dram, grant_penalty: int = 4) -> None:
        self.dram = dram
        self.grant_penalty = grant_penalty
        self.stats = ArbiterStats()
        self._clock: Clock | None = None
        self._mcif: Mcif | None = None

    def attach_contention_source(self, mcif: Mcif, clock: Clock) -> None:
        """Wire in the NVDLA's DMA-window log for contention checks."""
        self._mcif = mcif
        self._clock = clock

    # ------------------------------------------------------------------
    # CPU-side port (through the AHB→AXI bridge).
    # ------------------------------------------------------------------

    def transfer(self, xfer: Transfer) -> Reply:
        reply = self.dram.transfer(xfer)
        cycles = reply.cycles
        self.stats.cpu_grants += 1
        if self._busy_now():
            cycles += self.grant_penalty
            self.stats.contended_grants += 1
            self.stats.cpu_stall_cycles += self.grant_penalty
        return Reply(data=reply.data, cycles=cycles, ok=reply.ok)

    def _busy_now(self) -> bool:
        if self._mcif is None or self._clock is None:
            return False
        return self._mcif.busy_during(self._clock.now)

    # ------------------------------------------------------------------
    # NVDLA-side bulk port (behind the width converter).
    # ------------------------------------------------------------------

    def stream_read(self, address: int, nbytes: int) -> tuple[bytes, int]:
        self.stats.nvdla_streams += 1
        return self.dram.stream_read(address, nbytes)

    def stream_write(self, address: int, data: bytes) -> int:
        self.stats.nvdla_streams += 1
        return self.dram.stream_write(address, data)

    def stream_cycles(self, address: int, nbytes: int, burst_bytes: int = 256) -> int:
        """Timing-only pricing of an NVDLA stream (no data movement)."""
        bursts = max(1, -(-nbytes // burst_bytes))
        beats = max(1, -(-nbytes // self.dram.timing.width_bytes))
        rows = max(1, -(-nbytes // self.dram.timing.row_bytes))
        return (
            bursts * self.dram.timing.controller_latency
            + rows * self.dram.timing.row_miss_extra
            + beats * self.dram.timing.beat_cycles
        )
