"""The fast-path execution tier: functional NumPy + analytic cycles.

Serving pays the full cycle-accurate CPU+bus simulation per request on
the default tier, which caps throughput far below what the functional
work actually costs.  :class:`FastPathExecutor` is the decoupled tier
(the FireSim/ESP functional-vs-timing split): it replays a bare-metal
bundle without the ISS or any bus transaction —

- **function** — the loadable's layer sequence runs straight through
  the NVDLA unit kernels (:mod:`repro.nvdla.fastpath`) on a private
  DRAM image, producing output tensors bit-identical to a
  cycle-accurate SoC run of the same bundle;
- **timing** — reported cycles come from the engine's analytic per-op
  model, priced through the *same* converter + arbiter memory chain
  the SoC wrapper uses, plus a calibrated linear model of the CPU's
  CSB-programming and polling overhead
  (:mod:`repro.core.calibration`).

Results come back as :class:`~repro.core.soc.SocRunResult`, so the
serving layer treats both tiers uniformly.  Fast mode is refused for
any (model, config, precision) deployment the calibration table has
never validated against a measured run.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.baremetal.codegen import MAGIC_DONE
from repro.baremetal.pipeline import BaremetalBundle
from repro.bus.width_converter import AxiWidthConverter
from repro.core.address_map import AddressMap, DEFAULT_MAP
from repro.core.arbiter import DramArbiter
from repro.core.calibration import (
    DEFAULT_ERROR_BAND,
    CalibrationTable,
    Observation,
    fit_overheads,
)
from repro.core.executor import RunStats
from repro.core.nvdla_wrapper import WrapperDbbPort
from repro.core.soc import SocRunResult, read_output_tensor
from repro.errors import ReproError
from repro.mem.dram import Dram, DramTiming
from repro.mem.sparse_memory import SparseMemory
from repro.nvdla.config import HardwareConfig, NV_SMALL, Precision
from repro.nvdla.engine import OpRecord
from repro.nvdla.fastpath import (
    estimate_op_timings,
    execute_op,
    lower_loadable,
    pack_input,
)
from repro.nvdla.mcif import Mcif
from repro.nvdla.timing import TimingParams


@dataclass(frozen=True)
class FastPathRunRequest:
    """Spawn-safe description of one inference run.

    Everything a worker *process* needs to serve a request, reduced to
    picklable primitives: no bundle object crosses the process
    boundary.  The bundle travels as its deployment cache key
    (``bundle_key``, see
    :func:`repro.baremetal.pipeline.bundle_cache_key`) and is
    rehydrated on the far side from the shared
    :class:`~repro.store.BundleStore` — or recompiled deterministically
    on a store miss, which yields bit-identical artifacts by
    construction.

    ``input_seed`` carries the per-request determinism convention of
    :func:`repro.serve.request.request_rng`: when ``input_image`` is
    ``None`` for a functional deployment, the executing worker draws
    the input from ``default_rng(input_seed)``, so the tensor a request
    receives is independent of which process serves it.
    """

    request_id: int
    model: str
    config: str
    precision: str
    fidelity: str = "functional"
    execution_mode: str = "fast"
    frequency_hz: float = 100e6
    memory_bus_width_bits: int = 32
    flow_seed: int = 2024  # the offline flow's calibration-input seed
    bundle_key: tuple | None = None
    input_image: np.ndarray | None = None
    input_seed: tuple[int, int] | None = None  # (service seed, request id)
    # Tracing context (trace_id, parent span_id) from Tracer.context():
    # the worker process parents its spans under the plane's request
    # span so the trace stitches across the process boundary.
    trace_ctx: tuple[str, str] | None = None


@dataclass(frozen=True)
class FastPathRunResult:
    """Picklable outcome of one :class:`FastPathRunRequest`."""

    request_id: int
    ok: bool
    output: np.ndarray | None
    cycles: int
    sim_seconds: float
    wall_seconds: float  # host time inside the worker's run()
    worker_id: int = 0  # in-process worker id within its process
    # Finished span dicts recorded in the worker process for this
    # request (empty when tracing is off); the plane ingests them.
    spans: tuple = ()


@dataclass(frozen=True)
class FastPathEstimate:
    """One bundle's whole-run cycle estimate, term by term."""

    op_cycles: int  # Σ analytic hardware-layer totals
    csb_writes: int
    polls: int
    programming_cycles: int  # calibrated CPU-side overhead
    total_cycles: int
    timings: tuple = ()  # per-op OpTiming, schedule order

    @property
    def overhead_fraction(self) -> float:
        return self.programming_cycles / self.total_cycles if self.total_cycles else 0.0


def command_counts(bundle: BaremetalBundle) -> tuple[int, int]:
    """(write_reg, read_reg) counts of a bundle's register program."""
    writes = sum(1 for c in bundle.commands if c.kind == "write_reg")
    return writes, len(bundle.commands) - writes


@dataclass
class ResidentStats:
    """Warm-state accounting of the executor's resident-bundle LRU.

    A *hit* serves from resident state (no lowering, no DRAM preload
    replay of weights); a *miss* pays the full warm-up.  Fleet
    simulations (:mod:`repro.cluster`) mirror this LRU to price
    replica warm-up, and `tests/cluster` pins the two views equal.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


@dataclass
class _BundleState:
    """Resident serving state for one bundle (multi-tenant worker).

    Each bundle gets its own DRAM image plus the derived artefacts
    that are invariant across requests — lowered descriptors, the
    cycle estimate and the unpacked-weight cache — so an interleaved
    workload (the scheduler round-robins deployments) never pays the
    model-switch teardown the single-SoC tier pays.  ``bundle`` is a
    strong reference on purpose: states are keyed by ``id(bundle)``.
    """

    bundle: BaremetalBundle
    storage: SparseMemory
    ops: list
    estimate: "FastPathEstimate"
    weight_cache: dict = field(default_factory=dict)


class FastPathExecutor:
    """Calibrated functional execution of bare-metal bundles.

    Mirrors the SoC's constructor surface (config, frequency, memory
    width, DRAM timing) so a deployment spec maps onto either tier
    unchanged; `calibration` gates `run` (see module docstring).
    """

    def __init__(
        self,
        config: HardwareConfig = NV_SMALL,
        frequency_hz: float = 100e6,
        calibration: CalibrationTable | None = None,
        address_map: AddressMap = DEFAULT_MAP,
        dram_timing: DramTiming | None = None,
        timing_params: TimingParams | None = None,
        dma_efficiency: float = 0.5,
        memory_bus_width_bits: int = 32,
        max_resident_bundles: int = 8,
    ) -> None:
        self.config = config
        self.frequency_hz = frequency_hz
        self.calibration = calibration
        self.address_map = address_map
        self.memory_bus_width_bits = memory_bus_width_bits
        self.timing_params = timing_params or TimingParams()
        # The exact memory chain of Soc + NvdlaWrapper, minus the CPU:
        # identical stream pricing means identical per-op totals.
        if dram_timing is None:
            dram_timing = DramTiming(data_width_bits=memory_bus_width_bits)
        self.dram = Dram(size=address_map.dram_size, timing=dram_timing)
        self.arbiter = DramArbiter(self.dram)
        self.width_converter = AxiWidthConverter(
            downstream=self.arbiter,
            master_width_bits=config.dbb_width_bits,
            slave_width_bits=memory_bus_width_bits,
        )
        self.mcif = Mcif(
            WrapperDbbPort(
                self.arbiter, self.width_converter, dram_base=address_map.dram_base
            ),
            dma_efficiency=dma_efficiency,
        )
        if max_resident_bundles <= 0:
            raise ReproError("executor needs at least one resident bundle slot")
        self.max_resident_bundles = max_resident_bundles
        self._states: "OrderedDict[int, _BundleState]" = OrderedDict()
        self.resident_stats = ResidentStats()

    @property
    def resident_count(self) -> int:
        """Bundles currently holding resident serving state."""
        return len(self._states)

    # ------------------------------------------------------------------
    # Estimation.
    # ------------------------------------------------------------------

    def estimate(
        self, bundle: BaremetalBundle, lowered_ops: list | None = None
    ) -> FastPathEstimate:
        """Whole-run cycle estimate (no execution, no guard).

        Deterministic per bundle: the terms depend only on the bundle's
        artefacts and this executor's memory model.  ``lowered_ops``
        lets a caller that already lowered the loadable skip the second
        lowering pass.
        """
        if lowered_ops is None:
            timings = estimate_op_timings(
                bundle.loadable, self.config, self.mcif, self.timing_params
            )
        else:
            from repro.nvdla.cbuf import Cbuf
            from repro.nvdla.fastpath import op_timing

            cbuf = Cbuf(self.config)
            timings = [
                op_timing(op, self.config, cbuf, self.mcif, self.timing_params)
                for op in lowered_ops
            ]
        op_cycles = sum(t.total for t in timings)
        writes, polls = command_counts(bundle)
        params = (self.calibration or CalibrationTable()).params
        programming = params.programming_cycles(writes, polls)
        return FastPathEstimate(
            op_cycles=op_cycles,
            csb_writes=writes,
            polls=polls,
            programming_cycles=programming,
            total_cycles=op_cycles + programming,
            timings=tuple(timings),
        )

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def run(
        self, bundle: BaremetalBundle, input_image: np.ndarray | None = None
    ) -> SocRunResult:
        """Replay one bundle functionally; cycles from the estimator."""
        if self.calibration is None:
            raise ReproError(
                "fast-path execution needs a CalibrationTable; build one with "
                "repro.core.calibrate() or `repro calibrate`"
            )
        self.calibration.require(
            bundle.network,
            bundle.config,
            bundle.precision,
            memory_bus_width_bits=self.memory_bus_width_bits,
        )
        if bundle.config != self.config.name:
            raise ReproError(
                f"bundle built for {bundle.config}, executor is {self.config.name}"
            )

        state = self._states.get(id(bundle))
        if state is None:
            self.resident_stats.misses += 1
            ops = lower_loadable(bundle.loadable, self.config)
            state = _BundleState(
                bundle=bundle,
                storage=SparseMemory(self.address_map.dram_size),
                ops=ops,
                estimate=self.estimate(bundle, lowered_ops=ops),
            )
            self.dram.storage = state.storage
            for image in bundle.images.preload:
                self._preload(image.load_address, image.data)
            self._states[id(bundle)] = state
            while len(self._states) > self.max_resident_bundles:
                self._states.popitem(last=False)
                self.resident_stats.evictions += 1
        else:
            self.resident_stats.hits += 1
            self._states.move_to_end(id(bundle))
            self.dram.storage = state.storage
            for image in bundle.images.preload:
                if image.name == "weights.bin":
                    continue  # read-only during a run; still loaded
                if image.name == "input.bin" and input_image is not None:
                    continue  # about to be overwritten below
                self._preload(image.load_address, image.data)
        if input_image is not None:
            address, packed = pack_input(bundle.loadable, self.config, input_image)
            self._preload(address, packed)

        if bundle.fidelity == "functional":
            for op in state.ops:
                execute_op(op, self.config, self.mcif, weight_cache=state.weight_cache)

        estimate = state.estimate
        stats = RunStats(
            cycles=estimate.total_cycles,
            instructions=0,
            seconds=estimate.total_cycles / self.frequency_hz,
            active_cycles=estimate.total_cycles,
            halted=True,
        )
        output = None
        if bundle.fidelity == "functional":
            output = self._read_output(bundle)
        return SocRunResult(
            ok=True,
            cycles=estimate.total_cycles,
            seconds=stats.seconds,
            stats=stats,
            status_word=MAGIC_DONE,
            output=output,
            op_records=self._op_records(estimate),
        )

    def _preload(self, address: int, data: bytes) -> None:
        self.dram.storage.write(address - self.address_map.dram_base, data)

    def _read_output(self, bundle: BaremetalBundle) -> np.ndarray:
        return read_output_tensor(
            self.dram.storage, bundle, self.config, self.address_map.dram_base
        )

    def _op_records(self, estimate: FastPathEstimate) -> list[OpRecord]:
        """Estimated schedule: ops in sequence, programming between."""
        timings = estimate.timings
        gap = estimate.programming_cycles // (len(timings) + 1) if timings else 0
        records: list[OpRecord] = []
        now = 0
        for index, timing in enumerate(timings):
            start = now + gap
            end = start + timing.total
            sink = {"conv": "SDP", "sdp": "SDP", "pdp": "PDP", "cdp": "CDP"}.get(
                timing.kind, timing.kind.upper()
            )
            if timing.kind == "conv" and timing.detail.get("fused"):
                sink = "PDP"  # fused conv+SDP+PDP chains complete at the PDP
            records.append(
                OpRecord(
                    index=index,
                    kind=timing.kind,
                    sink=sink,
                    group=index % 2,
                    start_cycle=start,
                    end_cycle=end,
                    timing=timing,
                    detail=dict(timing.detail),
                )
            )
            now = end
        return records


# ----------------------------------------------------------------------
# Calibration driver.
# ----------------------------------------------------------------------


def calibrate(
    models: tuple[str, ...] = ("lenet5", "resnet18"),
    config: HardwareConfig | str = NV_SMALL,
    precision: Precision = Precision.INT8,
    fidelity: str = "functional",
    cache=None,
    frequency_hz: float = 100e6,
    memory_bus_width_bits: int = 32,
    max_error: float | None = DEFAULT_ERROR_BAND,
) -> CalibrationTable:
    """Fit and validate a calibration table against cycle-accurate runs.

    For every model: build (or fetch) the deployment's bundle, run it
    on a cycle-accurate SoC for the measured cycle count, and reduce
    the bundle to the estimator's terms.  The overhead parameters are
    least-squares fitted over all runs, then each pair is admitted to
    the table with its estimate-vs-measurement record — which is what
    unlocks fast mode for it.  A fit whose in-sample error exceeds
    ``max_error`` raises instead of returning a table that would serve
    out-of-band estimates (pass ``None`` to inspect such a fit anyway).
    """
    from repro.core.soc import Soc
    from repro.nvdla.config import get_config

    hw = get_config(config) if isinstance(config, str) else config
    if cache is None:
        from repro.serve.cache import shared_cache

        cache = shared_cache()

    probe = FastPathExecutor(
        hw,
        frequency_hz=frequency_hz,
        memory_bus_width_bits=memory_bus_width_bits,
    )
    observations: list[Observation] = []
    for model in models:
        bundle = cache.bundle_for(model, hw, precision=precision, fidelity=fidelity)
        soc = Soc(
            hw,
            frequency_hz=frequency_hz,
            fidelity=fidelity,
            memory_bus_width_bits=memory_bus_width_bits,
        )
        soc.load_bundle(bundle)
        result = soc.run_inference(bundle)
        if not result.ok:
            raise ReproError(f"calibration run of {model} failed on the SoC")
        terms = probe.estimate(bundle)
        observations.append(
            Observation(
                model=model,
                config=hw.name,
                precision=precision.value,
                op_cycles=terms.op_cycles,
                csb_writes=terms.csb_writes,
                polls=terms.polls,
                measured_cycles=result.cycles,
            )
        )

    table = CalibrationTable(fit_overheads(observations))
    for obs in observations:
        estimated = obs.op_cycles + table.params.programming_cycles(
            obs.csb_writes, obs.polls
        )
        table.admit(
            obs.model,
            obs.config,
            obs.precision,
            obs.measured_cycles,
            estimated,
            memory_bus_width_bits=memory_bus_width_bits,
            op_cycles=obs.op_cycles,
            csb_writes=obs.csb_writes,
            polls=obs.polls,
        )
    if max_error is not None and table.worst_error() > max_error:
        raise ReproError(
            f"calibration fit error {table.worst_error():.2%} exceeds the "
            f"±{max_error:.0%} band:\n{table.render()}"
        )
    return table
