"""The bare-metal run loop with poll fast-forwarding.

Executes the generated program on the ISS cycle-accountably.  When the
CPU settles into a register poll loop (detected by the CPU's poll
tracker: identical load, address and value repeating), simulated time
jumps to the next scheduled NVDLA event instead of spinning through
millions of identical iterations.  Skipped cycles still count — the
reported latency is what the RTL system would measure — but wall-clock
simulation time collapses from hours to seconds for the big models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clock import Clock
from repro.errors import CpuFault
from repro.riscv.cpu import Cpu


@dataclass
class RunStats:
    """Result of one bare-metal execution."""

    cycles: int = 0
    instructions: int = 0
    seconds: float = 0.0
    fast_forwards: int = 0
    active_cycles: int = 0  # cycles the CPU actually executed
    skipped_cycles: int = 0  # cycles fast-forwarded through poll loops
    halted: bool = False
    by_class: dict[str, int] = field(default_factory=dict)

    @property
    def poll_fraction(self) -> float:
        """Share of total cycles fast-forwarded through poll loops.

        ``active_cycles`` and ``skipped_cycles`` are accumulated
        independently and partition ``cycles`` exactly — the property
        ``tests/core/test_fastpath.py`` pins down — so this fraction is
        unambiguous: it is *skipped* (NVDLA-wait) time, not a share of
        some third accounting.
        """
        return self.skipped_cycles / self.cycles if self.cycles else 0.0


class BaremetalExecutor:
    """Couples a CPU and the shared clock for a full program run."""

    POLL_STREAK_THRESHOLD = 8
    #: Stalled poll iterations tolerated with no pending NVDLA event
    #: before declaring a deadlock.  Generous enough that a generated
    #: program with a modest poll budget reaches its own FAIL path.
    POLL_DEADLOCK_GRACE = 20_000

    def __init__(self, cpu: Cpu, clock: Clock) -> None:
        self.cpu = cpu
        self.clock = clock

    def run(self, max_instructions: int = 200_000_000) -> RunStats:
        cpu = self.cpu
        clock = self.clock
        stats = RunStats()
        stalled_polls = 0
        while not cpu.halted:
            if cpu.instret >= max_instructions:
                raise CpuFault(
                    f"program exceeded {max_instructions} instructions", pc=cpu.pc
                )
            cost = cpu.step()
            clock.advance(cost)
            stats.active_cycles += cost
            if cpu.poll.streak >= self.POLL_STREAK_THRESHOLD:
                before = clock.now
                if clock.fast_forward_to_next_event():
                    skipped = clock.now - before
                    cpu.cycles += skipped  # keep mcycle consistent
                    stats.fast_forwards += 1
                    stats.skipped_cycles += skipped
                    cpu.poll.reset()
                    stalled_polls = 0
                else:
                    stalled_polls += 1
                    if stalled_polls > self.POLL_DEADLOCK_GRACE:
                        raise CpuFault(
                            "poll loop will never complete: no pending NVDLA events "
                            f"while polling 0x{cpu.poll.address:08x}",
                            pc=cpu.pc,
                        )
        stats.cycles = clock.now
        stats.instructions = cpu.instret
        stats.seconds = clock.seconds()
        stats.halted = True
        stats.by_class = dict(cpu.pipeline.stats.by_class)
        return stats
