"""Fast-path NVDLA execution: loadable → descriptors → kernels.

The cycle-accurate path reaches the functional unit kernels through
five indirections: generated RISC-V code, the ISS, the bus fabric,
CSB register decode, and the engine's shadow-group launch logic.  The
fast path removes all of them while keeping the *leaf* code identical:
it lowers a compiled :class:`~repro.compiler.loadable.Loadable`
straight into the same :mod:`repro.nvdla.descriptors` the engine
would parse from its shadow registers, executes them through the same
unit kernels (:mod:`repro.nvdla.units`), and prices them through the
same analytic timing functions (:mod:`repro.nvdla.timing`).

Because descriptor construction mirrors the VP runtime's register
programming field by field (:class:`repro.vp.runtime.NvdlaRuntime`),
the tensors a fast-path run writes to memory are bit-identical to a
cycle-accurate SoC run of the same bundle — the property
``tests/nvdla/test_fastpath_differential.py`` gates on every zoo
model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compiler.loadable import Loadable
from repro.compiler.ops import (
    ConvOp,
    CpuSoftmaxOp,
    EltwiseOpKind,
    HwOp,
    LrnOp,
    PoolOp,
    SdpOp,
    TensorRef,
)
from repro.errors import ConfigurationError
from repro.nvdla.cbuf import Cbuf
from repro.nvdla.config import HardwareConfig, Precision
from repro.nvdla.descriptors import (
    CdpDescriptor,
    ConvDescriptor,
    EltwiseOp,
    OpTiming,
    PdpDescriptor,
    PoolMode,
    SdpDescriptor,
    SdpSource,
    TensorDesc,
    bits_to_f32,
    f32_to_bits,
)
from repro.nvdla.layout import feature_strides, pack_feature
from repro.nvdla.mcif import Mcif
from repro.nvdla.timing import (
    TimingParams,
    cdp_op_timing,
    conv_op_timing,
    fused_conv_pool_op_timing,
    pdp_op_timing,
    sdp_op_timing,
)
from repro.nvdla.units import cdp as cdp_mod
from repro.nvdla.units import conv_pipeline
from repro.nvdla.units import pdp as pdp_mod
from repro.nvdla.units import sdp as sdp_mod

_ELTWISE = {
    EltwiseOpKind.ADD: EltwiseOp.ADD,
    EltwiseOpKind.MUL: EltwiseOp.MUL,
    EltwiseOpKind.MAX: EltwiseOp.MAX,
}
_POOL = {"max": PoolMode.MAX, "avg": PoolMode.AVG}


@dataclass(frozen=True)
class FastPathOp:
    """One hardware layer, lowered to engine descriptors."""

    name: str
    kind: str  # 'conv' | 'sdp' | 'pdp' | 'cdp'
    sink: str  # 'SDP' | 'PDP' | 'CDP'
    descriptor: SdpDescriptor | PdpDescriptor | CdpDescriptor
    conv: ConvDescriptor | None = None  # the producer half of a fused conv
    pool: PdpDescriptor | None = None  # fused PDP epilogue (streams from SDP)


def _tensor_desc(ref: TensorRef, precision: Precision, config: HardwareConfig) -> TensorDesc:
    """Mirror of runtime ``_write_tensor`` + unit ``parse_tensor``."""
    atom = config.atom_channels(ref.precision)
    c, h, w = ref.shape
    line, surf = feature_strides((c, h, w), atom, ref.precision)
    return TensorDesc(
        address=ref.require_address(),
        width=w,
        height=h,
        channels=c,
        precision=precision,
        line_stride=line,
        surf_stride=surf,
    )


def _flying_tensor_desc(
    shape: tuple[int, int, int], precision: Precision, config: HardwareConfig
) -> TensorDesc:
    """On-chip link geometry: null address, canonical strides."""
    atom = config.atom_channels(precision)
    c, h, w = shape
    line, surf = feature_strides((c, h, w), atom, precision)
    return TensorDesc(
        address=0,
        width=w,
        height=h,
        channels=c,
        precision=precision,
        line_stride=line,
        surf_stride=surf,
    )


def _conv_descriptors(
    op: ConvOp, loadable: Loadable, config: HardwareConfig
) -> tuple[ConvDescriptor, SdpDescriptor]:
    k, c, r, s = op.kernel_shape
    _, out_h, out_w = op.sdp_out_shape
    pad_top, pad_bottom, pad_left, pad_right = op.pad
    conv = ConvDescriptor(
        input=_tensor_desc(op.input, op.precision, config),
        weight_address=loadable.weight_base + (op.weight_offset or 0),
        kernel_k=k,
        kernel_c=c,
        kernel_r=r,
        kernel_s=s,
        stride_x=op.stride[1],
        stride_y=op.stride[0],
        pad_left=pad_left,
        pad_top=pad_top,
        pad_right=pad_right,
        pad_bottom=pad_bottom,
        precision=op.precision,
        out_width=out_w,
        out_height=out_h,
    )
    sdp = _sdp_descriptor(op, loadable, config, source=SdpSource.FLYING)
    return conv, sdp


def _sdp_descriptor(
    op: ConvOp | SdpOp,
    loadable: Loadable,
    config: HardwareConfig,
    source: SdpSource,
) -> SdpDescriptor:
    eltwise = getattr(op, "eltwise", None)
    eltwise_input = None
    if eltwise is not None:
        assert op.eltwise_input is not None
        eltwise_input = _tensor_desc(op.eltwise_input, op.precision, config)
    bias_address = None
    if isinstance(op, ConvOp) and op.bias_offset is not None:
        bias_address = loadable.weight_base + op.bias_offset
    input_desc = None
    if source is SdpSource.MEMORY:
        input_desc = _tensor_desc(op.input, op.precision, config)
    dst_flying = isinstance(op, ConvOp) and op.has_pool_epilogue
    if dst_flying:
        output_desc = _flying_tensor_desc(op.sdp_out_shape, op.output.precision, config)
    else:
        output_desc = _tensor_desc(op.output, op.output.precision, config)
    return SdpDescriptor(
        source=source,
        output=output_desc,
        out_precision=op.output.precision,
        input=input_desc,
        dst_flying=dst_flying,
        bias_address=bias_address,
        eltwise=EltwiseOp.NONE if eltwise is None else _ELTWISE[eltwise],
        eltwise_input=eltwise_input,
        relu=op.relu,
        cvt_multiplier=op.cvt_mult or 1,
        cvt_shift=op.cvt_shift,
        ew_cvt_multiplier=getattr(op, "ew_cvt_mult", 1) or 1,
        ew_cvt_shift=getattr(op, "ew_cvt_shift", 0),
    )


def _lower_one(op: HwOp, loadable: Loadable, config: HardwareConfig) -> FastPathOp:
    if isinstance(op, ConvOp):
        conv, sdp = _conv_descriptors(op, loadable, config)
        if op.has_pool_epilogue:
            pad_top, pad_bottom, pad_left, pad_right = op.pool_pad
            pool = PdpDescriptor(
                input=_flying_tensor_desc(op.sdp_out_shape, op.output.precision, config),
                output=_tensor_desc(op.output, op.output.precision, config),
                mode=_POOL[op.pool_mode],
                kernel_w=op.pool_kernel[1],
                kernel_h=op.pool_kernel[0],
                stride_x=op.pool_stride[1],
                stride_y=op.pool_stride[0],
                pad_left=pad_left,
                pad_top=pad_top,
                pad_right=pad_right,
                pad_bottom=pad_bottom,
                src_flying=True,
            )
            return FastPathOp(op.name, "conv", "PDP", sdp, conv=conv, pool=pool)
        return FastPathOp(op.name, "conv", "SDP", sdp, conv=conv)
    if isinstance(op, SdpOp):
        sdp = _sdp_descriptor(op, loadable, config, source=SdpSource.MEMORY)
        return FastPathOp(op.name, "sdp", "SDP", sdp)
    if isinstance(op, PoolOp):
        pad_top, pad_bottom, pad_left, pad_right = op.pad
        desc = PdpDescriptor(
            input=_tensor_desc(op.input, op.precision, config),
            output=_tensor_desc(op.output, op.precision, config),
            mode=_POOL[op.mode],
            kernel_w=op.kernel[1],
            kernel_h=op.kernel[0],
            stride_x=op.stride[1],
            stride_y=op.stride[0],
            pad_left=pad_left,
            pad_top=pad_top,
            pad_right=pad_right,
            pad_bottom=pad_bottom,
        )
        return FastPathOp(op.name, "pdp", "PDP", desc)
    if isinstance(op, LrnOp):
        desc = CdpDescriptor(
            input=_tensor_desc(op.input, op.precision, config),
            output=_tensor_desc(op.output, op.precision, config),
            local_size=op.local_size,
            # Floats reach the engine as IEEE-754 register bit patterns;
            # round-trip them so estimates match the programmed values.
            alpha=bits_to_f32(f32_to_bits(op.alpha)),
            beta=bits_to_f32(f32_to_bits(op.beta)),
            k=bits_to_f32(f32_to_bits(op.k)),
        )
        return FastPathOp(op.name, "cdp", "CDP", desc)
    raise ConfigurationError(f"fast path cannot lower op kind {op.kind!r}")


def lower_loadable(loadable: Loadable, config: HardwareConfig) -> list[FastPathOp]:
    """Lower every hardware op of a loadable to engine descriptors."""
    if not config.supports(loadable.precision):
        raise ConfigurationError(
            f"{config.name} does not support {loadable.precision.value}"
        )
    return [
        _lower_one(op, loadable, config)
        for op in loadable.schedule.ops
        if not isinstance(op, CpuSoftmaxOp)
    ]


def execute_op(
    op: FastPathOp,
    config: HardwareConfig,
    mcif: Mcif,
    weight_cache: dict | None = None,
) -> None:
    """Run one lowered op through the unit kernels (moves real bytes)."""
    if op.kind == "conv":
        assert op.conv is not None
        acc = conv_pipeline.execute(op.conv, config, mcif, weight_cache=weight_cache)
        result = sdp_mod.execute(op.descriptor, config, mcif, flying_input=acc)
        if op.pool is not None:
            pdp_mod.execute(op.pool, config, mcif, flying_input=result)
    elif op.kind == "sdp":
        sdp_mod.execute(op.descriptor, config, mcif)
    elif op.kind == "pdp":
        pdp_mod.execute(op.descriptor, config, mcif)
    elif op.kind == "cdp":
        cdp_mod.execute(op.descriptor, config, mcif)
    else:  # pragma: no cover - lower_loadable only emits the four kinds
        raise ConfigurationError(f"unknown fast-path op kind {op.kind!r}")


def op_timing(
    op: FastPathOp,
    config: HardwareConfig,
    cbuf: Cbuf,
    mcif: Mcif,
    params: TimingParams,
) -> OpTiming:
    """Price one lowered op with the engine's analytic model."""
    if op.kind == "conv":
        assert op.conv is not None
        if op.pool is not None:
            return fused_conv_pool_op_timing(
                op.conv, op.descriptor, op.pool, config, cbuf, mcif, params
            )
        return conv_op_timing(op.conv, op.descriptor, config, cbuf, mcif, params)
    if op.kind == "sdp":
        return sdp_op_timing(op.descriptor, config, mcif, params)
    if op.kind == "pdp":
        return pdp_op_timing(op.descriptor, config, mcif, params)
    if op.kind == "cdp":
        return cdp_op_timing(op.descriptor, config, mcif, params)
    raise ConfigurationError(f"unknown fast-path op kind {op.kind!r}")  # pragma: no cover


def pack_input(
    loadable: Loadable, config: HardwareConfig, image: np.ndarray
) -> tuple[int, bytes]:
    """Quantise/cast and pack a fresh input exactly like the VP runtime.

    Returns ``(address, packed_bytes)`` ready to overwrite the input
    region; shared by the fast path and the serve-layer SoC workers so
    every execution tier feeds the hardware identical bytes.
    """
    ref = loadable.input_tensor
    if tuple(image.shape) != tuple(ref.shape):
        raise ConfigurationError(
            f"input shape {image.shape} != network input {ref.shape}"
        )
    if ref.precision is Precision.INT8:
        q = np.clip(np.rint(image / ref.scale), -128, 127).astype(np.int8)
    else:
        q = image.astype(np.float16)
    atom = config.atom_channels(ref.precision)
    return ref.require_address(), pack_feature(q, atom, ref.precision)


def estimate_op_timings(
    loadable: Loadable,
    config: HardwareConfig,
    mcif: Mcif,
    params: TimingParams | None = None,
) -> list[OpTiming]:
    """Per-op cycle estimates for a whole loadable.

    Uses the same timing functions the engine schedules completions
    with, so for a given memory port the totals are *equal to* the
    cycle-accurate per-op latencies, not an approximation of them.
    """
    params = params or TimingParams()
    cbuf = Cbuf(config)
    return [
        op_timing(op, config, cbuf, mcif, params)
        for op in lower_loadable(loadable, config)
    ]
