"""CBUF — the convolution buffer.

The banked SRAM between CDMA and the MAC array: 32 banks × 1 KiB on
nv_small, 16 banks × 32 KiB on nv_full.  Banks are partitioned between
feature data and weights per hardware layer (CDMA's ``D_BANK_DATA`` /
``D_BANK_WEIGHT``); when a layer's packed weights exceed the weight
partition the compiler must split the kernel along K and re-stream the
input feature map once per split — the dominant extra-traffic term for
the large ResNet-50 layers on nv_small (see
:mod:`repro.nvdla.timing`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TilingError
from repro.nvdla.config import HardwareConfig
from repro.nvdla.layout import ceil_div


@dataclass(frozen=True)
class CbufAllocation:
    """A bank split for one convolution layer."""

    data_banks: int
    weight_banks: int
    bank_bytes: int

    @property
    def data_bytes(self) -> int:
        return self.data_banks * self.bank_bytes

    @property
    def weight_bytes(self) -> int:
        return self.weight_banks * self.bank_bytes


class Cbuf:
    """Convolution-buffer capacity model."""

    def __init__(self, config: HardwareConfig) -> None:
        self.banks = config.cbuf_banks
        self.bank_bytes = config.cbuf_bank_bytes

    @property
    def total_bytes(self) -> int:
        return self.banks * self.bank_bytes

    def allocate(self, data_banks: int, weight_banks: int) -> CbufAllocation:
        """Validate a bank split requested by CDMA registers."""
        if data_banks < 1 or weight_banks < 1:
            raise TilingError("CBUF needs at least one bank each for data and weights")
        if data_banks + weight_banks > self.banks:
            raise TilingError(
                f"CBUF over-allocated: {data_banks}+{weight_banks} banks > {self.banks}"
            )
        return CbufAllocation(data_banks=data_banks, weight_banks=weight_banks, bank_bytes=self.bank_bytes)

    def default_split(self, weight_bytes: int) -> CbufAllocation:
        """Bank split the compiler uses: weights get what they need (up
        to half the buffer), data gets the rest."""
        max_weight_banks = self.banks // 2
        weight_banks = min(max_weight_banks, max(1, ceil_div(weight_bytes, self.bank_bytes)))
        return CbufAllocation(
            data_banks=self.banks - weight_banks,
            weight_banks=weight_banks,
            bank_bytes=self.bank_bytes,
        )

    def kernel_splits(self, weight_bytes: int, weight_banks: int) -> int:
        """How many K-direction splits a layer needs.

        If the packed weights fit the weight partition, one pass
        suffices and the input is read once.  Otherwise the kernel is
        split; each split re-streams the input feature map.
        """
        capacity = weight_banks * self.bank_bytes
        if capacity <= 0:
            raise TilingError("weight partition is empty")
        return max(1, ceil_div(weight_bytes, capacity))
