"""The NVDLA engine: CSB decode, op launch, completion scheduling.

This is the top of the accelerator model.  Software (the VP runtime,
or the µRISC-V core through the bus fabric) programs unit registers
over CSB; writing ``D_OP_ENABLE`` marks a shadow group ready.  The
engine launches a hardware layer when its *sink* unit and every
required producer unit have the same group pending:

===========  ========================================================
sink         producers required
===========  ========================================================
SDP flying   CDMA, CSC, CMAC_A, CMAC_B, CACC  (fused convolution)
SDP memory   SDP_RDMA
PDP flying   CDMA, CSC, CMAC_A, CMAC_B, CACC, SDP  (fused conv+pool)
PDP memory   PDP_RDMA
CDP          CDP_RDMA
BDMA         —
RUBIK        —
===========  ========================================================

On launch the op executes functionally (unless the engine runs in
timing-only fidelity), its latency comes from
:mod:`repro.nvdla.timing`, and completion is scheduled on the shared
:class:`~repro.clock.Clock`; completion flips the shadow group back
to idle and raises the sink's GLB interrupt bit — which is what the
generated bare-metal code polls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.clock import Clock
from repro.errors import ConfigurationError, RegisterError
from repro.nvdla.cbuf import Cbuf
from repro.nvdla.config import HardwareConfig
from repro.nvdla.csb import decode_address
from repro.nvdla.descriptors import OpTiming, SdpSource
from repro.nvdla.mcif import DbbPort, Mcif, McifStats
from repro.nvdla.registers import GroupStatus
from repro.nvdla.timing import (
    TimingParams,
    bdma_op_timing,
    cdp_op_timing,
    conv_op_timing,
    fused_conv_pool_op_timing,
    pdp_op_timing,
    rubik_op_timing,
    sdp_op_timing,
)
from repro.nvdla.units import base as unit_base
from repro.nvdla.units import bdma as bdma_mod
from repro.nvdla.units import cacc as cacc_mod
from repro.nvdla.units import cdma as cdma_mod
from repro.nvdla.units import cdp as cdp_mod
from repro.nvdla.units import cmac as cmac_mod
from repro.nvdla.units import conv_pipeline
from repro.nvdla.units import csc as csc_mod
from repro.nvdla.units import pdp as pdp_mod
from repro.nvdla.units import rubik as rubik_mod
from repro.nvdla.units import sdp as sdp_mod
from repro.nvdla.units.glb import Glb

_SINKS = ("SDP", "PDP", "CDP", "BDMA", "RUBIK")

_MCIF_REGISTER_NAMES = ["CFG_RD_OUTSTANDING", "CFG_WR_OUTSTANDING", "CFG_FLUSH"]
_SRAMIF_REGISTER_NAMES = ["CFG_RD_OUTSTANDING", "CFG_WR_OUTSTANDING"]


@dataclass
class OpRecord:
    """One completed (or in-flight) hardware-layer operation."""

    index: int
    kind: str
    sink: str
    group: int
    start_cycle: int
    end_cycle: int
    timing: OpTiming
    detail: dict = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle


class NvdlaEngine:
    """Top-level NVDLA model.

    Parameters
    ----------
    config:
        Hardware build (nv_small / nv_full / custom).
    dbb:
        External memory port (see :class:`~repro.nvdla.mcif.DbbPort`).
    clock:
        Shared simulation clock; op completions are scheduled on it.
    timing_params:
        Calibration constants; defaults from :class:`TimingParams`.
    fidelity:
        ``"functional"`` moves and computes real tensor data;
        ``"timing"`` only prices the ops (for ResNet-50-class runs).
    dma_efficiency:
        MCIF queueing efficiency (see :class:`~repro.nvdla.mcif.Mcif`).
    """

    def __init__(
        self,
        config: HardwareConfig,
        dbb: DbbPort,
        clock: Clock,
        timing_params: TimingParams | None = None,
        fidelity: str = "functional",
        dma_efficiency: float = 0.75,
    ) -> None:
        if fidelity not in ("functional", "timing"):
            raise ConfigurationError(f"unknown fidelity {fidelity!r}")
        self.config = config
        self.clock = clock
        self.fidelity = fidelity
        self.mcif = Mcif(dbb, dma_efficiency=dma_efficiency)
        self.cbuf = Cbuf(config)
        self.timing_params = timing_params or TimingParams()
        self.glb = Glb()
        self.units: dict[str, unit_base.Unit] = {
            "MCIF": unit_base.Unit("MCIF", _MCIF_REGISTER_NAMES),
            "SRAMIF": unit_base.Unit("SRAMIF", _SRAMIF_REGISTER_NAMES),
            "BDMA": bdma_mod.make_unit(),
            "CDMA": cdma_mod.make_unit(),
            "CSC": csc_mod.make_unit(),
            "CMAC_A": cmac_mod.make_unit("A"),
            "CMAC_B": cmac_mod.make_unit("B"),
            "CACC": cacc_mod.make_unit(),
            "SDP_RDMA": sdp_mod.make_rdma_unit(),
            "SDP": sdp_mod.make_unit(),
            "PDP_RDMA": pdp_mod.make_rdma_unit(),
            "PDP": pdp_mod.make_unit(),
            "CDP_RDMA": cdp_mod.make_rdma_unit(),
            "CDP": cdp_mod.make_unit(),
            "RUBIK": rubik_mod.make_unit(),
        }
        self.records: list[OpRecord] = []
        self.on_op_complete: Callable[[OpRecord], None] | None = None
        self._op_index = 0

    # ------------------------------------------------------------------
    # CSB access (what the APB→CSB adapter drives).
    # ------------------------------------------------------------------

    CSB_ACCESS_CYCLES = 1

    def csb_read(self, offset: int) -> int:
        unit_name, reg_offset = decode_address(offset)
        if unit_name == "GLB":
            return self.glb.csb_read(reg_offset)
        return self.units[unit_name].csb_read(reg_offset)

    def csb_write(self, offset: int, value: int) -> None:
        unit_name, reg_offset = decode_address(offset)
        if unit_name == "GLB":
            self.glb.csb_write(reg_offset, value)
            return
        unit = self.units[unit_name]
        unit.csb_write(reg_offset, value)
        from repro.nvdla.registers import D_OP_ENABLE

        if reg_offset == D_OP_ENABLE and value & 1:
            self._maybe_launch()

    @property
    def irq_asserted(self) -> bool:
        return self.glb.pending() != 0

    def busy(self) -> bool:
        return any(self.units[name].block.busy() for name in _SINKS)

    def reset(self) -> None:
        self.glb.reset()
        for unit in self.units.values():
            unit.reset()
        # MCIF state must not survive a reset: with the clock back at
        # zero, stale DMA windows from the previous run would alias
        # the new run's cycle range and charge phantom arbiter
        # contention to the CPU.
        self.mcif.stats = McifStats()
        self.mcif.windows.clear()
        self.records.clear()
        self._op_index = 0

    # ------------------------------------------------------------------
    # Launch logic.
    # ------------------------------------------------------------------

    def _maybe_launch(self) -> None:
        progress = True
        while progress:
            progress = False
            for sink in _SINKS:
                if self._try_launch(sink):
                    progress = True

    def _try_launch(self, sink: str) -> bool:
        block = self.units[sink].block
        if block.busy():
            return False
        group = block.pending_group()
        if group is None:
            return False
        if sink == "SDP":
            return self._launch_sdp(group)
        if sink == "PDP":
            return self._launch_pdp(group)
        if sink == "CDP":
            return self._launch_with_rdma("CDP", "CDP_RDMA", group, cdp_mod, cdp_op_timing)
        if sink == "BDMA":
            desc = bdma_mod.parse(self.units, group, self.config)
            timing = bdma_op_timing(desc, self.config, self.mcif, self.timing_params)
            if self.fidelity == "functional":
                bdma_mod.execute(desc, self.config, self.mcif)
            self._commit("bdma", "BDMA", group, [self.units["BDMA"].block], timing)
            return True
        if sink == "RUBIK":
            desc = rubik_mod.parse(self.units, group, self.config)
            timing = rubik_op_timing(desc, self.config, self.mcif, self.timing_params)
            if self.fidelity == "functional":
                rubik_mod.execute(desc, self.config, self.mcif)
            self._commit("rubik", "RUBIK", group, [self.units["RUBIK"].block], timing)
            return True
        raise RegisterError(f"unknown sink {sink!r}")  # pragma: no cover

    def _launch_sdp(self, group: int) -> bool:
        sdp_desc = sdp_mod.parse(self.units, group, self.config)
        if sdp_desc.dst_flying:
            # The SDP result streams on-chip to PDP: the whole fused
            # chain launches from the PDP sink once PDP is enabled.
            return False
        if sdp_desc.source is SdpSource.FLYING:
            producer_blocks = [self.units[name].block for name in conv_pipeline.CONV_UNIT_NAMES]
            if not all(
                b.enabled[group] and b.status[group] is GroupStatus.PENDING
                for b in producer_blocks
            ):
                return False
            conv_desc = conv_pipeline.parse(self.units, group, self.config)
            if conv_desc.out_width != sdp_desc.output.width or conv_desc.out_height != sdp_desc.output.height:
                raise ConfigurationError(
                    "SDP output cube does not match convolution output dims"
                )
            timing = conv_op_timing(
                conv_desc, sdp_desc, self.config, self.cbuf, self.mcif, self.timing_params
            )
            if self.fidelity == "functional":
                acc = conv_pipeline.execute(conv_desc, self.config, self.mcif)
                sdp_mod.execute(sdp_desc, self.config, self.mcif, flying_input=acc)
            blocks = producer_blocks + [self.units["SDP"].block]
            self._commit("conv", "SDP", group, blocks, timing, detail=timing.detail)
            return True
        # Memory-sourced standalone SDP op.
        rdma_block = self.units["SDP_RDMA"].block
        if not (rdma_block.enabled[group] and rdma_block.status[group] is GroupStatus.PENDING):
            return False
        timing = sdp_op_timing(sdp_desc, self.config, self.mcif, self.timing_params)
        if self.fidelity == "functional":
            sdp_mod.execute(sdp_desc, self.config, self.mcif)
        self._commit("sdp", "SDP", group, [rdma_block, self.units["SDP"].block], timing)
        return True

    def _launch_pdp(self, group: int) -> bool:
        pdp_desc = pdp_mod.parse(self.units, group, self.config)
        if not pdp_desc.src_flying:
            return self._launch_with_rdma("PDP", "PDP_RDMA", group, pdp_mod, pdp_op_timing)
        # Fused conv → SDP → PDP chain: PDP is the sink and launches
        # only once SDP and the whole convolution pipeline have the
        # same group pending (PDP_RDMA and SDP_RDMA stay idle).
        sdp_block = self.units["SDP"].block
        if not (sdp_block.enabled[group] and sdp_block.status[group] is GroupStatus.PENDING):
            return False
        sdp_desc = sdp_mod.parse(self.units, group, self.config)
        if not sdp_desc.dst_flying:
            raise ConfigurationError(
                "PDP sources on-chip from SDP but the SDP destination is memory"
            )
        if sdp_desc.source is not SdpSource.FLYING:
            raise ConfigurationError(
                "fused SDP→PDP chains require a convolution-sourced SDP stage"
            )
        producer_blocks = [self.units[name].block for name in conv_pipeline.CONV_UNIT_NAMES]
        if not all(
            b.enabled[group] and b.status[group] is GroupStatus.PENDING
            for b in producer_blocks
        ):
            return False
        conv_desc = conv_pipeline.parse(self.units, group, self.config)
        if conv_desc.out_width != sdp_desc.output.width or conv_desc.out_height != sdp_desc.output.height:
            raise ConfigurationError(
                "SDP output cube does not match convolution output dims"
            )
        if sdp_desc.output.shape != pdp_desc.input.shape:
            raise ConfigurationError(
                "PDP source cube does not match the SDP output cube"
            )
        timing = fused_conv_pool_op_timing(
            conv_desc, sdp_desc, pdp_desc, self.config, self.cbuf, self.mcif,
            self.timing_params,
        )
        if self.fidelity == "functional":
            acc = conv_pipeline.execute(conv_desc, self.config, self.mcif)
            result = sdp_mod.execute(sdp_desc, self.config, self.mcif, flying_input=acc)
            pdp_mod.execute(pdp_desc, self.config, self.mcif, flying_input=result)
        blocks = producer_blocks + [sdp_block, self.units["PDP"].block]
        self._commit("conv", "PDP", group, blocks, timing, detail=timing.detail)
        return True

    def _launch_with_rdma(self, sink: str, rdma: str, group: int, module, timing_fn) -> bool:
        rdma_block = self.units[rdma].block
        if not (rdma_block.enabled[group] and rdma_block.status[group] is GroupStatus.PENDING):
            return False
        desc = module.parse(self.units, group, self.config)
        timing = timing_fn(desc, self.config, self.mcif, self.timing_params)
        if self.fidelity == "functional":
            module.execute(desc, self.config, self.mcif)
        self._commit(sink.lower(), sink, group, [rdma_block, self.units[sink].block], timing)
        return True

    def _commit(
        self,
        kind: str,
        sink: str,
        group: int,
        blocks: list,
        timing: OpTiming,
        detail: dict | None = None,
    ) -> None:
        for block in blocks:
            block.launch(group)
        start = self.clock.now
        end = start + timing.total
        record = OpRecord(
            index=self._op_index,
            kind=kind,
            sink=sink,
            group=group,
            start_cycle=start,
            end_cycle=end,
            timing=timing,
            detail=detail or {},
        )
        self._op_index += 1
        self.records.append(record)
        dma_cycles = timing.weight_dma + timing.input_dma + timing.output_dma
        if dma_cycles:
            self.mcif.record_window(start, dma_cycles, 0, "mixed")

        def complete() -> None:
            for block in blocks:
                block.complete(group)
            self.glb.raise_interrupt(sink, group)
            if self.on_op_complete is not None:
                self.on_op_complete(record)
            self._maybe_launch()

        self.clock.schedule_at(end, complete)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def total_op_cycles(self) -> int:
        return sum(r.cycles for r in self.records)

    def summary(self) -> dict:
        by_kind: dict[str, int] = {}
        for record in self.records:
            by_kind[record.kind] = by_kind.get(record.kind, 0) + 1
        return {
            "config": self.config.name,
            "ops": len(self.records),
            "by_kind": by_kind,
            "bytes_read": self.mcif.stats.bytes_read,
            "bytes_written": self.mcif.stats.bytes_written,
            "op_cycles": self.total_op_cycles(),
        }


def flying_accumulator_dtype(acc: np.ndarray) -> str:
    """Debug helper: which datapath produced these accumulators."""
    return "int8-acc" if acc.dtype == np.int64 else "fp16-acc"
