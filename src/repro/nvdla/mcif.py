"""MCIF — the memory-controller interface behind NVDLA's DBB port.

Every unit's DMA engine funnels through MCIF, which arbitrates access
to the single external DBB AXI port.  The model separates the two
concerns:

- **functional** — :meth:`Mcif.read`/:meth:`Mcif.write` move real
  bytes through the attached :class:`DbbPort` (the SoC wrapper's
  64→32-bit converter path, or the VP's direct memory),
- **timing** — :meth:`Mcif.stream_cycles` prices bulk traffic using
  the port's burst model, derated by a queueing-efficiency factor,
  and records busy windows that the SoC arbiter uses to model
  contention with the µRISC-V core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol


class DbbPort(Protocol):
    """What NVDLA needs from the external memory system."""

    def read(self, address: int, nbytes: int) -> bytes:
        """Functional block read."""
        ...

    def write(self, address: int, data: bytes) -> None:
        """Functional block write."""
        ...

    def stream_cycles(self, address: int, nbytes: int) -> int:
        """Cycle cost of streaming ``nbytes`` at ``address``."""
        ...


@dataclass
class McifStats:
    bytes_read: int = 0
    bytes_written: int = 0
    read_requests: int = 0
    write_requests: int = 0
    dma_cycles: int = 0


@dataclass
class DmaWindow:
    """One DMA busy interval, for arbiter contention modelling."""

    start: int
    cycles: int
    nbytes: int
    direction: str  # 'read' | 'write'

    @property
    def end(self) -> int:
        return self.start + self.cycles


class Mcif:
    """MCIF model: functional forwarding plus DMA cycle pricing.

    Parameters
    ----------
    port:
        The external memory port (SoC wrapper or VP memory).
    dma_efficiency:
        Fraction of theoretical burst throughput MCIF sustains; covers
        request-queue bubbles and read/write turnarounds.
    """

    def __init__(self, port: DbbPort, dma_efficiency: float = 0.75) -> None:
        if not 0.0 < dma_efficiency <= 1.0:
            raise ValueError("dma_efficiency must be in (0, 1]")
        self.port = port
        self.dma_efficiency = dma_efficiency
        self.stats = McifStats()
        self.windows: list[DmaWindow] = []

    # Functional ---------------------------------------------------------

    def read(self, address: int, nbytes: int) -> bytes:
        self.stats.read_requests += 1
        self.stats.bytes_read += nbytes
        return self.port.read(address, nbytes)

    def write(self, address: int, data: bytes) -> None:
        self.stats.write_requests += 1
        self.stats.bytes_written += len(data)
        self.port.write(address, data)

    # Timing -------------------------------------------------------------

    def stream_cycles(self, address: int, nbytes: int) -> int:
        """Price a bulk stream, including MCIF queueing inefficiency."""
        if nbytes <= 0:
            return 0
        raw = self.port.stream_cycles(address, nbytes)
        cycles = int(round(raw / self.dma_efficiency))
        self.stats.dma_cycles += cycles
        return cycles

    def record_window(self, start: int, cycles: int, nbytes: int, direction: str) -> None:
        """Log a busy interval on the DBB for arbiter contention."""
        self.windows.append(DmaWindow(start=start, cycles=cycles, nbytes=nbytes, direction=direction))

    def busy_during(self, cycle: int) -> bool:
        """Whether a DMA window covers ``cycle`` (linear scan of the
        recent tail; windows are appended in start order)."""
        for window in reversed(self.windows[-8:]):
            if window.start <= cycle < window.end:
                return True
        return False
