"""Typed hardware-layer descriptors.

When a unit's ``D_OP_ENABLE`` fires, the engine parses the raw shadow
registers of every participating unit into one of these descriptor
dataclasses, validates it, and hands it to the functional executor and
the timing model.  They are the model's equivalent of the parsed form
of an NVDLA hardware-layer register set.

Floating-point parameters (LRN alpha/beta, FP16 scales) travel through
32-bit registers as IEEE-754 bit patterns; INT8 requantisation uses
integer multiplier + right-shift pairs, as on real hardware.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import ConfigurationError
from repro.nvdla.config import Precision
from repro.nvdla.layout import ceil_div


def f32_to_bits(value: float) -> int:
    return struct.unpack("<I", struct.pack("<f", value))[0]


def bits_to_f32(bits: int) -> float:
    return struct.unpack("<f", struct.pack("<I", bits & 0xFFFFFFFF))[0]


class SdpSource(Enum):
    """Where SDP takes its input from."""

    FLYING = 0  # on-the-fly from the convolution accumulator
    MEMORY = 1


class EltwiseOp(Enum):
    NONE = 0
    ADD = 1
    MUL = 2
    MAX = 3


class PoolMode(Enum):
    MAX = 0
    AVG = 1
    MIN = 2


@dataclass(frozen=True)
class TensorDesc:
    """A tensor surface in external memory (NVDLA feature format)."""

    address: int
    width: int
    height: int
    channels: int
    precision: Precision
    line_stride: int = 0
    surf_stride: int = 0

    def __post_init__(self) -> None:
        if min(self.width, self.height, self.channels) <= 0:
            raise ConfigurationError(
                f"tensor dims must be positive, got {self.channels}x{self.height}x{self.width}"
            )
        if self.address < 0:
            raise ConfigurationError("tensor address must be non-negative")

    @property
    def shape(self) -> tuple[int, int, int]:
        return (self.channels, self.height, self.width)

    @property
    def elements(self) -> int:
        return self.channels * self.height * self.width

    def packed_bytes(self, atom_channels: int) -> int:
        surfaces = ceil_div(self.channels, atom_channels)
        return surfaces * self.height * self.width * atom_channels * self.precision.itemsize


@dataclass(frozen=True)
class ConvDescriptor:
    """Direct convolution across CDMA/CSC/CMAC/CACC."""

    input: TensorDesc
    weight_address: int
    kernel_k: int
    kernel_c: int
    kernel_r: int
    kernel_s: int
    stride_x: int
    stride_y: int
    pad_left: int
    pad_top: int
    pad_right: int
    pad_bottom: int
    precision: Precision
    out_width: int
    out_height: int

    def __post_init__(self) -> None:
        if self.kernel_c != self.input.channels:
            raise ConfigurationError(
                f"kernel C={self.kernel_c} does not match input C={self.input.channels}"
            )
        if min(self.kernel_k, self.kernel_r, self.kernel_s) <= 0:
            raise ConfigurationError("kernel dims must be positive")
        if min(self.stride_x, self.stride_y) <= 0:
            raise ConfigurationError("strides must be positive")
        if min(self.pad_left, self.pad_top, self.pad_right, self.pad_bottom) < 0:
            raise ConfigurationError("padding must be non-negative")
        expect_h = (
            self.input.height + self.pad_top + self.pad_bottom - self.kernel_r
        ) // self.stride_y + 1
        expect_w = (
            self.input.width + self.pad_left + self.pad_right - self.kernel_s
        ) // self.stride_x + 1
        if expect_h <= 0 or expect_w <= 0:
            raise ConfigurationError(
                f"kernel {self.kernel_r}x{self.kernel_s} does not fit the padded input"
            )
        if (self.out_height, self.out_width) != (expect_h, expect_w):
            raise ConfigurationError(
                f"output dims {self.out_height}x{self.out_width} do not match geometry "
                f"(expected {expect_h}x{expect_w})"
            )

    @property
    def weight_shape(self) -> tuple[int, int, int, int]:
        return (self.kernel_k, self.kernel_c, self.kernel_r, self.kernel_s)

    @property
    def macs(self) -> int:
        """True (unpadded) multiply-accumulates of this layer."""
        return (
            self.kernel_k
            * self.kernel_c
            * self.kernel_r
            * self.kernel_s
            * self.out_width
            * self.out_height
        )

    def padded_macs(self, atomic_c: int, atomic_k: int) -> int:
        """MAC slots consumed once channels are padded to atoms."""
        cg = ceil_div(self.kernel_c, atomic_c)
        kg = ceil_div(self.kernel_k, atomic_k)
        return (
            kg * atomic_k * cg * atomic_c * self.kernel_r * self.kernel_s
            * self.out_width * self.out_height
        )


@dataclass(frozen=True)
class SdpDescriptor:
    """Single-point data processor: bias / BN / eltwise / ReLU / requant."""

    source: SdpSource
    output: TensorDesc
    out_precision: Precision
    input: TensorDesc | None = None  # required when source is MEMORY
    bias_address: int | None = None  # per-channel operand blob (int32 / fp16)
    bn_mult_address: int | None = None  # per-channel scale blob
    eltwise: EltwiseOp = EltwiseOp.NONE
    eltwise_input: TensorDesc | None = None
    relu: bool = False
    cvt_multiplier: int = 1  # output converter: value * mult >> shift
    cvt_shift: int = 0
    # ERDMA operand converter: rescales the eltwise operand from its
    # own quantisation domain into the accumulator domain before the
    # add (INT8 fused residual adds; identity for FP16).
    ew_cvt_multiplier: int = 1
    ew_cvt_shift: int = 0
    # Fused-chain destination: the result streams on-chip to PDP
    # instead of being written to memory; ``output`` then carries the
    # cube geometry with a null address.
    dst_flying: bool = False

    def __post_init__(self) -> None:
        if self.source is SdpSource.MEMORY and self.input is None:
            raise ConfigurationError("memory-sourced SDP op needs an input tensor")
        if self.eltwise is not EltwiseOp.NONE and self.eltwise_input is None:
            raise ConfigurationError("eltwise op needs a second operand tensor")
        if self.cvt_shift < 0 or self.cvt_shift > 31:
            raise ConfigurationError("converter shift out of range")
        if self.cvt_multiplier <= 0 or self.cvt_multiplier >= (1 << 16):
            raise ConfigurationError("converter multiplier out of range")
        if self.ew_cvt_shift < 0 or self.ew_cvt_shift > 31:
            raise ConfigurationError("eltwise converter shift out of range")
        if self.ew_cvt_multiplier <= 0 or self.ew_cvt_multiplier >= (1 << 16):
            raise ConfigurationError("eltwise converter multiplier out of range")


@dataclass(frozen=True)
class PdpDescriptor:
    """Planar data processor: pooling."""

    input: TensorDesc
    output: TensorDesc
    mode: PoolMode
    kernel_w: int
    kernel_h: int
    stride_x: int
    stride_y: int
    pad_left: int = 0
    pad_top: int = 0
    pad_right: int = 0
    pad_bottom: int = 0
    # Fused-chain source: the input streams on-chip from SDP instead
    # of PDP_RDMA; ``input`` then carries the cube geometry with a
    # null address and PDP_RDMA stays disabled.
    src_flying: bool = False

    def __post_init__(self) -> None:
        if min(self.kernel_w, self.kernel_h) <= 0:
            raise ConfigurationError("pool kernel dims must be positive")
        if min(self.stride_x, self.stride_y) <= 0:
            raise ConfigurationError("pool strides must be positive")
        if self.input.channels != self.output.channels:
            raise ConfigurationError("pooling cannot change the channel count")
        expect_h = (
            self.input.height + self.pad_top + self.pad_bottom - self.kernel_h
        ) // self.stride_y + 1
        expect_w = (
            self.input.width + self.pad_left + self.pad_right - self.kernel_w
        ) // self.stride_x + 1
        if (self.output.height, self.output.width) != (expect_h, expect_w):
            raise ConfigurationError(
                f"pool output {self.output.height}x{self.output.width} does not match "
                f"geometry (expected {expect_h}x{expect_w})"
            )


@dataclass(frozen=True)
class CdpDescriptor:
    """Channel data processor: local response normalisation."""

    input: TensorDesc
    output: TensorDesc
    local_size: int
    alpha: float
    beta: float
    k: float

    def __post_init__(self) -> None:
        if self.local_size < 1 or self.local_size % 2 == 0:
            raise ConfigurationError("LRN local_size must be odd and positive")
        if self.input.shape != self.output.shape:
            raise ConfigurationError("LRN preserves tensor shape")


@dataclass(frozen=True)
class BdmaDescriptor:
    """Bulk memory copy."""

    src_address: int
    dst_address: int
    line_bytes: int
    lines: int
    src_stride: int = 0
    dst_stride: int = 0

    def __post_init__(self) -> None:
        if self.line_bytes <= 0 or self.lines <= 0:
            raise ConfigurationError("BDMA geometry must be positive")

    @property
    def total_bytes(self) -> int:
        return self.line_bytes * self.lines


@dataclass(frozen=True)
class RubikDescriptor:
    """Data-reshape engine (contract mode: channel regrouping)."""

    input: TensorDesc
    output: TensorDesc
    mode: str = "contract"

    def __post_init__(self) -> None:
        if self.mode not in ("contract", "split", "merge"):
            raise ConfigurationError(f"unsupported RUBIK mode {self.mode!r}")
        if self.input.elements != self.output.elements:
            raise ConfigurationError("RUBIK must preserve the element count")


@dataclass
class OpTiming:
    """Cycle breakdown of one hardware-layer operation."""

    kind: str
    fixed: int = 0
    weight_dma: int = 0
    input_dma: int = 0
    output_dma: int = 0
    compute: int = 0
    total: int = 0
    detail: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "fixed": self.fixed,
            "weight_dma": self.weight_dma,
            "input_dma": self.input_dma,
            "output_dma": self.output_dma,
            "compute": self.compute,
            "total": self.total,
            **self.detail,
        }
