"""NVDLA in-memory tensor and weight layouts.

Feature maps live in DRAM in NVDLA's *feature format*: channels are
grouped into memory atoms of ``atom_channels`` (8 INT8 lanes for
nv_small, 32 bytes worth for nv_full), laid out as::

    surface[ceil(C / atom)][H][W][atom]  (innermost = channel lanes)

Weights are packed per kernel group: output channels are grouped by
``atomic_k``; inside a group the elements are ordered ``[R][S]
[ceil(C/atomic_c)][atomic_c][atomic_k]`` with zero padding to full
atoms, which is what the CMAC array consumes stripe by stripe.

Both the compiler (producing DRAM images) and the convolution pipeline
(reading them back) use these functions, so functional simulation is
layout-faithful end to end: a corrupted stride or a wrong atom count
produces wrong numbers, exactly as on hardware.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.nvdla.config import Precision

_DTYPES = {Precision.INT8: np.int8, Precision.FP16: np.float16}


def dtype_for(precision: Precision) -> np.dtype:
    return np.dtype(_DTYPES[precision])


def ceil_div(a: int, b: int) -> int:
    return -(-a // b)


# ----------------------------------------------------------------------
# Feature maps.
# ----------------------------------------------------------------------


def feature_size_bytes(shape: tuple[int, int, int], atom_channels: int, precision: Precision) -> int:
    """Bytes of the packed feature surface for a CHW tensor."""
    c, h, w = shape
    surfaces = ceil_div(c, atom_channels)
    return surfaces * h * w * atom_channels * precision.itemsize


def pack_feature(tensor: np.ndarray, atom_channels: int, precision: Precision) -> bytes:
    """Pack a CHW tensor into NVDLA feature format bytes."""
    if tensor.ndim != 3:
        raise ConfigurationError(f"feature tensors are CHW, got shape {tensor.shape}")
    dtype = dtype_for(precision)
    tensor = np.ascontiguousarray(tensor, dtype=dtype)
    c, h, w = tensor.shape
    surfaces = ceil_div(c, atom_channels)
    padded = np.zeros((surfaces * atom_channels, h, w), dtype=dtype)
    padded[:c] = tensor
    # [S*atom, H, W] -> [S, atom, H, W] -> [S, H, W, atom]
    packed = padded.reshape(surfaces, atom_channels, h, w).transpose(0, 2, 3, 1)
    return np.ascontiguousarray(packed).tobytes()


def unpack_feature(
    blob: bytes,
    shape: tuple[int, int, int],
    atom_channels: int,
    precision: Precision,
) -> np.ndarray:
    """Inverse of :func:`pack_feature`; returns a CHW array."""
    c, h, w = shape
    dtype = dtype_for(precision)
    surfaces = ceil_div(c, atom_channels)
    expected = surfaces * h * w * atom_channels * dtype.itemsize
    if len(blob) < expected:
        raise ConfigurationError(
            f"feature blob too small: {len(blob)} bytes < expected {expected}"
        )
    packed = np.frombuffer(blob[:expected], dtype=dtype).reshape(surfaces, h, w, atom_channels)
    padded = packed.transpose(0, 3, 1, 2).reshape(surfaces * atom_channels, h, w)
    return padded[:c].copy()


def feature_strides(
    shape: tuple[int, int, int], atom_channels: int, precision: Precision
) -> tuple[int, int]:
    """(line_stride, surface_stride) in bytes for a packed CHW tensor."""
    _, h, w = shape
    line = w * atom_channels * precision.itemsize
    return line, line * h


# ----------------------------------------------------------------------
# Weights.
# ----------------------------------------------------------------------


def weight_size_bytes(
    shape: tuple[int, int, int, int],
    atomic_c: int,
    atomic_k: int,
    precision: Precision,
) -> int:
    """Bytes of the packed weight blob for a KCRS kernel tensor."""
    k, c, r, s = shape
    kg = ceil_div(k, atomic_k)
    cg = ceil_div(c, atomic_c)
    return kg * atomic_k * cg * atomic_c * r * s * precision.itemsize


def pack_weights(
    weights: np.ndarray,
    atomic_c: int,
    atomic_k: int,
    precision: Precision,
) -> bytes:
    """Pack a KCRS kernel tensor into CMAC stripe order.

    Layout: ``[kg][R][S][cg][atomic_c][atomic_k]`` with zero padding of
    both channel axes to whole atoms (padding participates in the MAC
    array, which is why low channel counts waste the array — the
    efficiency effect that dominates depthwise layers in Table III).
    """
    if weights.ndim != 4:
        raise ConfigurationError(f"weights are KCRS, got shape {weights.shape}")
    dtype = dtype_for(precision)
    weights = np.ascontiguousarray(weights, dtype=dtype)
    k, c, r, s = weights.shape
    kg = ceil_div(k, atomic_k)
    cg = ceil_div(c, atomic_c)
    padded = np.zeros((kg * atomic_k, cg * atomic_c, r, s), dtype=dtype)
    padded[:k, :c] = weights
    # [K', C', R, S] -> [kg, ak, cg, ac, R, S] -> [kg, R, S, cg, ac, ak]
    stacked = padded.reshape(kg, atomic_k, cg, atomic_c, r, s).transpose(0, 4, 5, 2, 3, 1)
    return np.ascontiguousarray(stacked).tobytes()


def unpack_weights(
    blob: bytes,
    shape: tuple[int, int, int, int],
    atomic_c: int,
    atomic_k: int,
    precision: Precision,
) -> np.ndarray:
    """Inverse of :func:`pack_weights`; returns a KCRS array."""
    k, c, r, s = shape
    dtype = dtype_for(precision)
    kg = ceil_div(k, atomic_k)
    cg = ceil_div(c, atomic_c)
    expected = kg * atomic_k * cg * atomic_c * r * s * dtype.itemsize
    if len(blob) < expected:
        raise ConfigurationError(f"weight blob too small: {len(blob)} < {expected}")
    stacked = np.frombuffer(blob[:expected], dtype=dtype).reshape(kg, r, s, cg, atomic_c, atomic_k)
    padded = stacked.transpose(0, 5, 3, 4, 1, 2).reshape(kg * atomic_k, cg * atomic_c, r, s)
    return padded[:k, :c].copy()
