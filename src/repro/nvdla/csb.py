"""CSB — configuration space bus address map and decode.

The CSB is NVDLA's register access port: single outstanding 32-bit
transactions.  In the paper's SoC it sits behind the AHB→APB bridge
and the APB→CSB adapter, occupying the decoder window ``0x0 --
0xFFFFF``.  Unit windows are 4 KiB each (RUBIK's window tops out the
map below 0x11000, well inside the 1 MiB window the paper reserves).
"""

from __future__ import annotations

from repro.errors import RegisterError

UNIT_WINDOW = 0x1000

UNIT_BASES: dict[str, int] = {
    "GLB": 0x0000,
    "MCIF": 0x2000,
    "SRAMIF": 0x3000,
    "BDMA": 0x4000,
    "CDMA": 0x5000,
    "CSC": 0x6000,
    "CMAC_A": 0x7000,
    "CMAC_B": 0x8000,
    "CACC": 0x9000,
    "SDP_RDMA": 0xA000,
    "SDP": 0xB000,
    "PDP_RDMA": 0xC000,
    "PDP": 0xD000,
    "CDP_RDMA": 0xE000,
    "CDP": 0xF000,
    "RUBIK": 0x10000,
}

CSB_SPACE_BYTES = 0x11000

_BASE_TO_UNIT = {base: name for name, base in UNIT_BASES.items()}


def decode_address(offset: int) -> tuple[str, int]:
    """Split a CSB byte offset into (unit name, register offset)."""
    if offset < 0 or offset >= CSB_SPACE_BYTES:
        raise RegisterError(f"CSB offset 0x{offset:05x} outside register space", offset)
    base = offset & ~(UNIT_WINDOW - 1)
    unit = _BASE_TO_UNIT.get(base)
    if unit is None:
        raise RegisterError(f"no unit mapped at CSB window 0x{base:05x}", offset)
    return unit, offset - base


def register_address(unit: str, register_offset: int) -> int:
    """Compose a CSB byte offset from unit name and register offset."""
    try:
        base = UNIT_BASES[unit]
    except KeyError:
        raise RegisterError(f"unknown unit {unit!r}") from None
    if not 0 <= register_offset < UNIT_WINDOW:
        raise RegisterError(f"register offset 0x{register_offset:x} outside unit window")
    return base + register_offset
