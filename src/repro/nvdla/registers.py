"""Register-file infrastructure for the NVDLA units.

Every NVDLA sub-unit exposes the same CSB idiom, which the bare-metal
flow depends on:

- ``S_STATUS`` — state of the two shadow register groups,
- ``S_POINTER`` — the *producer* bit selects which shadow group CPU
  writes land in; the *consumer* bit shows which group the hardware is
  executing,
- a set of ``D_*`` configuration registers, double-buffered per group,
- ``D_OP_ENABLE`` — written last; marks the group ready to launch.

:class:`RegisterBlock` implements that idiom generically; each unit
declares its registers as a list of :class:`RegisterSpec` and reads
back typed descriptor values when an op launches.

The register *names* follow the NVDLA hardware manual; offsets use one
32-bit word per logical field (real NVDLA bit-packs several fields per
word).  This keeps traces the same order of magnitude as the paper's
while keeping descriptor parsing readable; the divergence is recorded
in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.errors import RegisterError


class GroupStatus(IntEnum):
    """Shadow-group state encoded in ``S_STATUS``."""

    IDLE = 0
    RUNNING = 1
    PENDING = 2  # enabled, waiting for the other group to finish


@dataclass(frozen=True)
class RegisterSpec:
    """One register: word offset within the unit and behaviour flags."""

    name: str
    offset: int
    reset: int = 0
    read_only: bool = False
    shadowed: bool = True  # duplicated per ping-pong group

    def __post_init__(self) -> None:
        if self.offset % 4:
            raise RegisterError(f"register {self.name} offset must be word-aligned", self.offset)


# Offsets shared by every unit.
S_STATUS = 0x000
S_POINTER = 0x004
D_OP_ENABLE = 0x008
FIRST_DESCRIPTOR_OFFSET = 0x00C


@dataclass(frozen=True)
class FieldSpec:
    """Legality metadata for one descriptor register's value.

    Our register files dedicate a full 32-bit word to each logical
    field, so the hardware's bit-packing constraints survive only as
    metadata: ``width`` bounds the value to ``[0, 2**width)`` and
    ``enum``, when present, restricts it to an explicit set of codes.
    The static analyzer's register-legality pass checks every chain
    write against this table; widths are sized to the NVDLA manual's
    field widths (generous where our word-per-field encoding has no
    exact counterpart).
    """

    width: int = 32
    enum: tuple[int, ...] | None = None

    def check(self, value: int) -> str | None:
        """Reason the value is illegal, or ``None`` when it is fine."""
        if self.enum is not None:
            if value not in self.enum:
                allowed = ",".join(str(v) for v in self.enum)
                return f"value {value} not in enum {{{allowed}}}"
            return None
        if not 0 <= value < (1 << self.width):
            return f"value 0x{value:x} exceeds {self.width}-bit field"
        return None


_DEFAULT_FIELD = FieldSpec()

# Exact-name field table (precision/config codes, converter constants,
# geometry fields whose hardware counterparts are narrow).
_EXACT_FIELDS: dict[str, FieldSpec] = {
    "D_MISC_CFG": FieldSpec(enum=(0, 1)),  # precision code
    "D_OUT_PRECISION": FieldSpec(enum=(0, 1)),
    "D_FEATURE_MODE_CFG": FieldSpec(width=1),
    "D_BRDMA_CFG": FieldSpec(width=1),
    "D_NRDMA_CFG": FieldSpec(width=1),
    "D_ERDMA_CFG": FieldSpec(width=1),
    "D_DP_BS_CFG": FieldSpec(width=1),
    "D_DP_BN_CFG": FieldSpec(width=1),
    "D_ACT_CFG": FieldSpec(width=1),
    "D_DP_EW_CFG": FieldSpec(enum=(0, 1, 2, 3)),  # EltwiseOp code
    "D_POOLING_METHOD": FieldSpec(enum=(0, 1, 2)),  # PoolMode code
    "D_LRN_LOCAL_SIZE": FieldSpec(enum=(1, 3, 5, 7, 9)),
    "D_CVT_MULT": FieldSpec(width=16),
    "D_EW_CVT_MULT": FieldSpec(width=16),
    "D_CVT_SHIFT": FieldSpec(width=6),
    "D_EW_CVT_SHIFT": FieldSpec(width=6),
    "D_CONV_STRIDE_X": FieldSpec(width=4),
    "D_CONV_STRIDE_Y": FieldSpec(width=4),
    "D_POOLING_STRIDE_X": FieldSpec(width=4),
    "D_POOLING_STRIDE_Y": FieldSpec(width=4),
    "D_POOLING_KERNEL_WIDTH": FieldSpec(width=4),
    "D_POOLING_KERNEL_HEIGHT": FieldSpec(width=4),
    "D_ZERO_PADDING_LEFT": FieldSpec(width=5),
    "D_ZERO_PADDING_RIGHT": FieldSpec(width=5),
    "D_ZERO_PADDING_TOP": FieldSpec(width=5),
    "D_ZERO_PADDING_BOTTOM": FieldSpec(width=5),
    "D_POOLING_PAD_LEFT": FieldSpec(width=5),
    "D_POOLING_PAD_RIGHT": FieldSpec(width=5),
    "D_POOLING_PAD_TOP": FieldSpec(width=5),
    "D_POOLING_PAD_BOTTOM": FieldSpec(width=5),
    "D_WEIGHT_SIZE_K": FieldSpec(width=13),
    "D_WEIGHT_SIZE_C": FieldSpec(width=13),
    "D_WEIGHT_SIZE_R": FieldSpec(width=5),
    "D_WEIGHT_SIZE_S": FieldSpec(width=5),
    "D_BANK_DATA": FieldSpec(width=6),
    "D_BANK_WEIGHT": FieldSpec(width=6),
    # Fused-chain streaming flags: SDP result flies to PDP on-chip.
    "D_DST_FLYING": FieldSpec(width=1),
    "D_SRC_FLYING": FieldSpec(width=1),
}

# Suffix table for the tensor-surface register families
# (<prefix>_ADDR_HIGH/.../_SURF_STRIDE) and cube-size registers.
_SUFFIX_FIELDS: tuple[tuple[str, FieldSpec], ...] = (
    ("_WIDTH", FieldSpec(width=13)),
    ("_HEIGHT", FieldSpec(width=13)),
    ("_CHANNEL", FieldSpec(width=13)),
    ("_LINE_STRIDE", FieldSpec(width=28)),
    ("_SURF_STRIDE", FieldSpec(width=28)),
    ("_ADDR_HIGH", FieldSpec(width=32)),
    ("_ADDR_LOW", FieldSpec(width=32)),
)


def field_spec(register: str) -> FieldSpec:
    """Legality spec for a descriptor register, by name.

    Field semantics are uniform across units (every ``D_MISC_CFG`` is a
    precision code, every ``*_WIDTH`` a cube width), so lookup is
    name-based: exact names first, then the tensor-family suffixes,
    falling back to a full 32-bit field.
    """
    spec = _EXACT_FIELDS.get(register)
    if spec is not None:
        return spec
    for suffix, suffix_spec in _SUFFIX_FIELDS:
        if register.endswith(suffix):
            return suffix_spec
    return _DEFAULT_FIELD


def check_field(register: str, value: int) -> str | None:
    """Reason ``register = value`` is illegal, or ``None`` if legal."""
    return field_spec(register).check(value)


class RegisterBlock:
    """A unit's register file with dual shadow groups.

    Parameters
    ----------
    unit_name:
        For error messages and traces.
    specs:
        Descriptor registers (offsets >= ``FIRST_DESCRIPTOR_OFFSET``).
        ``S_STATUS``/``S_POINTER``/``D_OP_ENABLE`` are implicit.
    """

    def __init__(self, unit_name: str, specs: list[RegisterSpec]) -> None:
        self.unit_name = unit_name
        self._specs: dict[int, RegisterSpec] = {}
        self._by_name: dict[str, RegisterSpec] = {}
        for spec in specs:
            if spec.offset < FIRST_DESCRIPTOR_OFFSET:
                raise RegisterError(
                    f"{unit_name}.{spec.name}: descriptor registers start at "
                    f"0x{FIRST_DESCRIPTOR_OFFSET:03x}",
                    spec.offset,
                )
            if spec.offset in self._specs:
                raise RegisterError(f"{unit_name}: duplicate offset for {spec.name}", spec.offset)
            if spec.name in self._by_name:
                raise RegisterError(f"{unit_name}: duplicate register name {spec.name}")
            self._specs[spec.offset] = spec
            self._by_name[spec.name] = spec
        self._groups: list[dict[int, int]] = [
            {s.offset: s.reset for s in specs},
            {s.offset: s.reset for s in specs},
        ]
        self.producer = 0
        self.consumer = 0
        self.status: list[GroupStatus] = [GroupStatus.IDLE, GroupStatus.IDLE]
        self.enabled: list[bool] = [False, False]

    # ------------------------------------------------------------------
    # CSB-facing access.
    # ------------------------------------------------------------------

    def csb_read(self, offset: int) -> int:
        if offset == S_STATUS:
            return int(self.status[0]) | (int(self.status[1]) << 16)
        if offset == S_POINTER:
            return self.producer | (self.consumer << 16)
        if offset == D_OP_ENABLE:
            return int(self.enabled[self.producer])
        spec = self._specs.get(offset)
        if spec is None:
            raise RegisterError(f"{self.unit_name}: no register at +0x{offset:03x}", offset)
        return self._groups[self.producer][offset]

    def csb_write(self, offset: int, value: int) -> None:
        value &= 0xFFFFFFFF
        if offset == S_STATUS:
            raise RegisterError(f"{self.unit_name}: S_STATUS is read-only", offset)
        if offset == S_POINTER:
            self.producer = value & 1
            return
        if offset == D_OP_ENABLE:
            if value & 1:
                self.enable_group(self.producer)
            return
        spec = self._specs.get(offset)
        if spec is None:
            raise RegisterError(f"{self.unit_name}: no register at +0x{offset:03x}", offset)
        if spec.read_only:
            raise RegisterError(f"{self.unit_name}.{spec.name} is read-only", offset)
        group = self.producer if spec.shadowed else 0
        self._groups[group][offset] = value
        if not spec.shadowed:
            self._groups[1][offset] = value

    # ------------------------------------------------------------------
    # Hardware-side state machine.
    # ------------------------------------------------------------------

    def enable_group(self, group: int) -> None:
        if self.status[group] is not GroupStatus.IDLE or self.enabled[group]:
            raise RegisterError(
                f"{self.unit_name}: group {group} enabled while {self.status[group].name}"
            )
        self.enabled[group] = True
        self.status[group] = GroupStatus.PENDING

    def launch(self, group: int) -> None:
        if not self.enabled[group]:
            raise RegisterError(f"{self.unit_name}: launching group {group} that is not enabled")
        self.status[group] = GroupStatus.RUNNING
        self.consumer = group

    def complete(self, group: int) -> None:
        self.enabled[group] = False
        self.status[group] = GroupStatus.IDLE
        self.consumer = group ^ 1

    def pending_group(self) -> int | None:
        """Group that is enabled but not yet running, if any."""
        for group in (self.consumer, self.consumer ^ 1):
            if self.enabled[group] and self.status[group] is GroupStatus.PENDING:
                return group
        return None

    def busy(self) -> bool:
        return any(s is GroupStatus.RUNNING for s in self.status)

    # ------------------------------------------------------------------
    # Descriptor access for the engine.
    # ------------------------------------------------------------------

    def value(self, name: str, group: int) -> int:
        spec = self._by_name.get(name)
        if spec is None:
            raise RegisterError(f"{self.unit_name}: unknown register {name!r}")
        return self._groups[group][spec.offset]

    def value64(self, name_high: str, name_low: str, group: int) -> int:
        return (self.value(name_high, group) << 32) | self.value(name_low, group)

    def offset_of(self, name: str) -> int:
        spec = self._by_name.get(name)
        if spec is None:
            raise RegisterError(f"{self.unit_name}: unknown register {name!r}")
        return spec.offset

    def register_names(self) -> list[str]:
        return [s.name for s in sorted(self._specs.values(), key=lambda s: s.offset)]

    def reset(self) -> None:
        for group in self._groups:
            for offset, spec in self._specs.items():
                group[offset] = spec.reset
        self.producer = 0
        self.consumer = 0
        self.status = [GroupStatus.IDLE, GroupStatus.IDLE]
        self.enabled = [False, False]
