"""Register-file infrastructure for the NVDLA units.

Every NVDLA sub-unit exposes the same CSB idiom, which the bare-metal
flow depends on:

- ``S_STATUS`` — state of the two shadow register groups,
- ``S_POINTER`` — the *producer* bit selects which shadow group CPU
  writes land in; the *consumer* bit shows which group the hardware is
  executing,
- a set of ``D_*`` configuration registers, double-buffered per group,
- ``D_OP_ENABLE`` — written last; marks the group ready to launch.

:class:`RegisterBlock` implements that idiom generically; each unit
declares its registers as a list of :class:`RegisterSpec` and reads
back typed descriptor values when an op launches.

The register *names* follow the NVDLA hardware manual; offsets use one
32-bit word per logical field (real NVDLA bit-packs several fields per
word).  This keeps traces the same order of magnitude as the paper's
while keeping descriptor parsing readable; the divergence is recorded
in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.errors import RegisterError


class GroupStatus(IntEnum):
    """Shadow-group state encoded in ``S_STATUS``."""

    IDLE = 0
    RUNNING = 1
    PENDING = 2  # enabled, waiting for the other group to finish


@dataclass(frozen=True)
class RegisterSpec:
    """One register: word offset within the unit and behaviour flags."""

    name: str
    offset: int
    reset: int = 0
    read_only: bool = False
    shadowed: bool = True  # duplicated per ping-pong group

    def __post_init__(self) -> None:
        if self.offset % 4:
            raise RegisterError(f"register {self.name} offset must be word-aligned", self.offset)


# Offsets shared by every unit.
S_STATUS = 0x000
S_POINTER = 0x004
D_OP_ENABLE = 0x008
FIRST_DESCRIPTOR_OFFSET = 0x00C


class RegisterBlock:
    """A unit's register file with dual shadow groups.

    Parameters
    ----------
    unit_name:
        For error messages and traces.
    specs:
        Descriptor registers (offsets >= ``FIRST_DESCRIPTOR_OFFSET``).
        ``S_STATUS``/``S_POINTER``/``D_OP_ENABLE`` are implicit.
    """

    def __init__(self, unit_name: str, specs: list[RegisterSpec]) -> None:
        self.unit_name = unit_name
        self._specs: dict[int, RegisterSpec] = {}
        self._by_name: dict[str, RegisterSpec] = {}
        for spec in specs:
            if spec.offset < FIRST_DESCRIPTOR_OFFSET:
                raise RegisterError(
                    f"{unit_name}.{spec.name}: descriptor registers start at "
                    f"0x{FIRST_DESCRIPTOR_OFFSET:03x}",
                    spec.offset,
                )
            if spec.offset in self._specs:
                raise RegisterError(f"{unit_name}: duplicate offset for {spec.name}", spec.offset)
            if spec.name in self._by_name:
                raise RegisterError(f"{unit_name}: duplicate register name {spec.name}")
            self._specs[spec.offset] = spec
            self._by_name[spec.name] = spec
        self._groups: list[dict[int, int]] = [
            {s.offset: s.reset for s in specs},
            {s.offset: s.reset for s in specs},
        ]
        self.producer = 0
        self.consumer = 0
        self.status: list[GroupStatus] = [GroupStatus.IDLE, GroupStatus.IDLE]
        self.enabled: list[bool] = [False, False]

    # ------------------------------------------------------------------
    # CSB-facing access.
    # ------------------------------------------------------------------

    def csb_read(self, offset: int) -> int:
        if offset == S_STATUS:
            return int(self.status[0]) | (int(self.status[1]) << 16)
        if offset == S_POINTER:
            return self.producer | (self.consumer << 16)
        if offset == D_OP_ENABLE:
            return int(self.enabled[self.producer])
        spec = self._specs.get(offset)
        if spec is None:
            raise RegisterError(f"{self.unit_name}: no register at +0x{offset:03x}", offset)
        return self._groups[self.producer][offset]

    def csb_write(self, offset: int, value: int) -> None:
        value &= 0xFFFFFFFF
        if offset == S_STATUS:
            raise RegisterError(f"{self.unit_name}: S_STATUS is read-only", offset)
        if offset == S_POINTER:
            self.producer = value & 1
            return
        if offset == D_OP_ENABLE:
            if value & 1:
                self.enable_group(self.producer)
            return
        spec = self._specs.get(offset)
        if spec is None:
            raise RegisterError(f"{self.unit_name}: no register at +0x{offset:03x}", offset)
        if spec.read_only:
            raise RegisterError(f"{self.unit_name}.{spec.name} is read-only", offset)
        group = self.producer if spec.shadowed else 0
        self._groups[group][offset] = value
        if not spec.shadowed:
            self._groups[1][offset] = value

    # ------------------------------------------------------------------
    # Hardware-side state machine.
    # ------------------------------------------------------------------

    def enable_group(self, group: int) -> None:
        if self.status[group] is not GroupStatus.IDLE or self.enabled[group]:
            raise RegisterError(
                f"{self.unit_name}: group {group} enabled while {self.status[group].name}"
            )
        self.enabled[group] = True
        self.status[group] = GroupStatus.PENDING

    def launch(self, group: int) -> None:
        if not self.enabled[group]:
            raise RegisterError(f"{self.unit_name}: launching group {group} that is not enabled")
        self.status[group] = GroupStatus.RUNNING
        self.consumer = group

    def complete(self, group: int) -> None:
        self.enabled[group] = False
        self.status[group] = GroupStatus.IDLE
        self.consumer = group ^ 1

    def pending_group(self) -> int | None:
        """Group that is enabled but not yet running, if any."""
        for group in (self.consumer, self.consumer ^ 1):
            if self.enabled[group] and self.status[group] is GroupStatus.PENDING:
                return group
        return None

    def busy(self) -> bool:
        return any(s is GroupStatus.RUNNING for s in self.status)

    # ------------------------------------------------------------------
    # Descriptor access for the engine.
    # ------------------------------------------------------------------

    def value(self, name: str, group: int) -> int:
        spec = self._by_name.get(name)
        if spec is None:
            raise RegisterError(f"{self.unit_name}: unknown register {name!r}")
        return self._groups[group][spec.offset]

    def value64(self, name_high: str, name_low: str, group: int) -> int:
        return (self.value(name_high, group) << 32) | self.value(name_low, group)

    def offset_of(self, name: str) -> int:
        spec = self._by_name.get(name)
        if spec is None:
            raise RegisterError(f"{self.unit_name}: unknown register {name!r}")
        return spec.offset

    def register_names(self) -> list[str]:
        return [s.name for s in sorted(self._specs.values(), key=lambda s: s.offset)]

    def reset(self) -> None:
        for group in self._groups:
            for offset, spec in self._specs.items():
                group[offset] = spec.reset
        self.producer = 0
        self.consumer = 0
        self.status = [GroupStatus.IDLE, GroupStatus.IDLE]
        self.enabled = [False, False]
