"""Pure descriptor-chain construction for NVDLA hardware layers.

The user-mode driver (:mod:`repro.vp.runtime`) used to compute its CSB
register sequence inline while writing it to the bus, which meant the
only way to know what a compiled op *programs* was to execute it.  This
module extracts that logic into a pure function: :func:`program_op`
turns one scheduled :class:`~repro.compiler.ops.HwOp` into a
:class:`LayerChain` — the exact ordered sequence of shadow-group
selects, descriptor-register writes, and ``D_OP_ENABLE`` kicks the
runtime performs.

Two consumers share it:

- the runtime replays the events through the CSB (so traces, and the
  golden bare-metal configs derived from them, are byte-for-byte what
  they were when the logic lived inline), and
- the static analyzer (:mod:`repro.analyze`) applies the same events to
  fresh register blocks and parses typed descriptors out of them
  without ever touching an ISS, a bus, or an engine.

Event order is load-bearing: the golden-config regression fixtures pin
the byte-exact CSB sequence, so any reordering here is a deliberate,
fixture-updating change.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.compiler.loadable import Loadable
from repro.compiler.ops import (
    ConvOp,
    CpuSoftmaxOp,
    EltwiseOpKind,
    HwOp,
    LrnOp,
    PoolOp,
    SdpOp,
    TensorRef,
)
from repro.nvdla.cbuf import Cbuf
from repro.nvdla.config import HardwareConfig, Precision
from repro.nvdla.descriptors import f32_to_bits
from repro.nvdla.layout import feature_strides

ELTWISE_CODE = {EltwiseOpKind.ADD: 1, EltwiseOpKind.MUL: 2, EltwiseOpKind.MAX: 3}
POOL_CODE = {"max": 0, "avg": 1}

SELECT = "select"
WRITE = "write"
ENABLE = "enable"


@dataclass(frozen=True)
class ChainEvent:
    """One CSB-visible step of programming a hardware layer.

    ``kind`` is one of :data:`SELECT` (write ``S_POINTER`` = ``value``),
    :data:`WRITE` (write descriptor register ``register`` = ``value``)
    or :data:`ENABLE` (write ``D_OP_ENABLE`` = 1).  ``register`` is
    empty for selects and enables.
    """

    kind: str
    unit: str
    register: str = ""
    value: int = 0


@dataclass
class LayerChain:
    """The full descriptor chain for one scheduled hardware op."""

    op_index: int
    op_name: str
    op_kind: str
    group: int
    sink: str
    events: list[ChainEvent] = field(default_factory=list)

    def writes(self) -> list[ChainEvent]:
        return [e for e in self.events if e.kind == WRITE]


class _ChainBuilder:
    """Accumulates events in exactly the runtime's historical order."""

    def __init__(self, config: HardwareConfig) -> None:
        self.config = config
        self.events: list[ChainEvent] = []

    def select(self, unit: str, group: int) -> None:
        self.events.append(ChainEvent(SELECT, unit, value=group))

    def write(self, unit: str, register: str, value: int) -> None:
        self.events.append(ChainEvent(WRITE, unit, register, value & 0xFFFFFFFF))

    def enable(self, unit: str) -> None:
        self.events.append(ChainEvent(ENABLE, unit, value=1))

    def write_tensor(self, unit: str, prefix: str, ref: TensorRef) -> None:
        atom = self.config.atom_channels(ref.precision)
        c, h, w = ref.shape
        line, surf = feature_strides((c, h, w), atom, ref.precision)
        address = ref.require_address()
        self.write(unit, f"{prefix}_ADDR_HIGH", address >> 32)
        self.write(unit, f"{prefix}_ADDR_LOW", address & 0xFFFFFFFF)
        self.write(unit, f"{prefix}_WIDTH", w)
        self.write(unit, f"{prefix}_HEIGHT", h)
        self.write(unit, f"{prefix}_CHANNEL", c)
        self.write(unit, f"{prefix}_LINE_STRIDE", line)
        self.write(unit, f"{prefix}_SURF_STRIDE", surf)

    def write_flying_tensor(
        self, unit: str, prefix: str, shape: tuple[int, int, int], precision: Precision
    ) -> None:
        """Cube geometry for an on-chip link: null address, real dims.

        The strides stay canonical for the shape so the layout pass can
        validate fused stages exactly like memory surfaces.
        """
        atom = self.config.atom_channels(precision)
        c, h, w = shape
        line, surf = feature_strides((c, h, w), atom, precision)
        self.write(unit, f"{prefix}_ADDR_HIGH", 0)
        self.write(unit, f"{prefix}_ADDR_LOW", 0)
        self.write(unit, f"{prefix}_WIDTH", w)
        self.write(unit, f"{prefix}_HEIGHT", h)
        self.write(unit, f"{prefix}_CHANNEL", c)
        self.write(unit, f"{prefix}_LINE_STRIDE", line)
        self.write(unit, f"{prefix}_SURF_STRIDE", surf)


def _precision_code(precision: Precision) -> int:
    return 0 if precision is Precision.INT8 else 1


def _sdp_stage(b: _ChainBuilder, op: ConvOp | SdpOp, bias: bool) -> None:
    """Common SDP core registers (fused conv or standalone).

    With a fused pooling epilogue the SDP destination is the on-chip
    link to PDP: the cube geometry is the *conv* output shape and the
    address is null.  ``D_DST_FLYING`` is written unconditionally
    because shadow groups are reused across chains — a stale flying
    flag from a previous layer must never leak into this one.
    """
    out = op.output
    flying = isinstance(op, ConvOp) and op.has_pool_epilogue
    out_shape = op.sdp_out_shape if isinstance(op, ConvOp) else out.shape
    b.write("SDP", "D_MISC_CFG", _precision_code(op.precision))
    b.write("SDP", "D_DATA_CUBE_WIDTH", out_shape[2])
    b.write("SDP", "D_DATA_CUBE_HEIGHT", out_shape[1])
    b.write("SDP", "D_DATA_CUBE_CHANNEL", out_shape[0])
    if flying:
        b.write_flying_tensor("SDP", "D_DST", out_shape, out.precision)
    else:
        b.write_tensor("SDP", "D_DST", out)
    b.write("SDP", "D_DP_BS_CFG", 1 if bias else 0)
    b.write("SDP", "D_DP_BN_CFG", 0)
    eltwise = getattr(op, "eltwise", None)
    b.write("SDP", "D_DP_EW_CFG", 0 if eltwise is None else ELTWISE_CODE[eltwise])
    b.write("SDP", "D_EW_CVT_MULT", getattr(op, "ew_cvt_mult", 1))
    b.write("SDP", "D_EW_CVT_SHIFT", getattr(op, "ew_cvt_shift", 0))
    b.write("SDP", "D_ACT_CFG", 1 if op.relu else 0)
    b.write("SDP", "D_CVT_MULT", op.cvt_mult)
    b.write("SDP", "D_CVT_SHIFT", op.cvt_shift)
    b.write("SDP", "D_OUT_PRECISION", _precision_code(out.precision))
    b.write("SDP", "D_DST_FLYING", 1 if flying else 0)


def _program_conv(b: _ChainBuilder, op: ConvOp, group: int, weight_base: int) -> str:
    prec = _precision_code(op.precision)
    k, c, r, s = op.kernel_shape
    _, out_h, out_w = op.sdp_out_shape
    weight_address = weight_base + (op.weight_offset or 0)
    pad_top, pad_bottom, pad_left, pad_right = op.pad
    conv_units = ("CACC", "CMAC_A", "CMAC_B", "CSC", "CDMA", "SDP_RDMA", "SDP")
    if op.has_pool_epilogue:
        conv_units += ("PDP_RDMA", "PDP")
    for unit in conv_units:
        b.select(unit, group)

    b.write("CDMA", "D_MISC_CFG", prec)
    b.write_tensor("CDMA", "D_DAIN", op.input)
    b.write("CDMA", "D_WEIGHT_ADDR_HIGH", weight_address >> 32)
    b.write("CDMA", "D_WEIGHT_ADDR_LOW", weight_address & 0xFFFFFFFF)
    b.write("CDMA", "D_WEIGHT_BYTES", op.weight_bytes or 0)
    b.write("CDMA", "D_CONV_STRIDE_X", op.stride[1])
    b.write("CDMA", "D_CONV_STRIDE_Y", op.stride[0])
    b.write("CDMA", "D_ZERO_PADDING_LEFT", pad_left)
    b.write("CDMA", "D_ZERO_PADDING_RIGHT", pad_right)
    b.write("CDMA", "D_ZERO_PADDING_TOP", pad_top)
    b.write("CDMA", "D_ZERO_PADDING_BOTTOM", pad_bottom)
    banks = Cbuf(b.config).default_split(op.weight_bytes or 0)
    b.write("CDMA", "D_BANK_DATA", banks.data_banks)
    b.write("CDMA", "D_BANK_WEIGHT", banks.weight_banks)

    b.write("CSC", "D_MISC_CFG", prec)
    b.write("CSC", "D_WEIGHT_SIZE_K", k)
    b.write("CSC", "D_WEIGHT_SIZE_C", c)
    b.write("CSC", "D_WEIGHT_SIZE_R", r)
    b.write("CSC", "D_WEIGHT_SIZE_S", s)
    b.write("CSC", "D_DATAOUT_WIDTH", out_w)
    b.write("CSC", "D_DATAOUT_HEIGHT", out_h)

    b.write("CMAC_A", "D_MISC_CFG", prec)
    b.write("CMAC_B", "D_MISC_CFG", prec)

    b.write("CACC", "D_MISC_CFG", prec)
    b.write("CACC", "D_DATAOUT_WIDTH", out_w)
    b.write("CACC", "D_DATAOUT_HEIGHT", out_h)
    b.write("CACC", "D_DATAOUT_CHANNEL", k)

    b.write("SDP_RDMA", "D_FEATURE_MODE_CFG", 0)  # flying from CACC
    if op.bias_offset is not None:
        bias_address = weight_base + op.bias_offset
        b.write("SDP_RDMA", "D_BRDMA_CFG", 1)
        b.write("SDP_RDMA", "D_BS_BASE_ADDR_HIGH", bias_address >> 32)
        b.write("SDP_RDMA", "D_BS_BASE_ADDR_LOW", bias_address & 0xFFFFFFFF)
    else:
        b.write("SDP_RDMA", "D_BRDMA_CFG", 0)
    b.write("SDP_RDMA", "D_NRDMA_CFG", 0)
    if op.eltwise_input is not None:  # fused residual add (FP16)
        b.write("SDP_RDMA", "D_ERDMA_CFG", 1)
        b.write_tensor("SDP_RDMA", "D_EW", op.eltwise_input)
    else:
        b.write("SDP_RDMA", "D_ERDMA_CFG", 0)

    _sdp_stage(b, op, bias=op.bias_offset is not None)

    if op.has_pool_epilogue:
        # Fused PDP epilogue: the pool streams the SDP result on-chip.
        # PDP_RDMA carries only the source cube geometry (null address)
        # and, like SDP_RDMA in flying mode, is never enabled.
        b.write_flying_tensor("PDP_RDMA", "D_SRC", op.sdp_out_shape, op.output.precision)
        b.write("PDP", "D_MISC_CFG", _precision_code(op.precision))
        b.write("PDP", "D_SRC_FLYING", 1)
        b.write("PDP", "D_POOLING_METHOD", POOL_CODE[op.pool_mode])
        b.write("PDP", "D_POOLING_KERNEL_WIDTH", op.pool_kernel[1])
        b.write("PDP", "D_POOLING_KERNEL_HEIGHT", op.pool_kernel[0])
        b.write("PDP", "D_POOLING_STRIDE_X", op.pool_stride[1])
        b.write("PDP", "D_POOLING_STRIDE_Y", op.pool_stride[0])
        pool_pad_top, pool_pad_bottom, pool_pad_left, pool_pad_right = op.pool_pad
        b.write("PDP", "D_POOLING_PAD_LEFT", pool_pad_left)
        b.write("PDP", "D_POOLING_PAD_RIGHT", pool_pad_right)
        b.write("PDP", "D_POOLING_PAD_TOP", pool_pad_top)
        b.write("PDP", "D_POOLING_PAD_BOTTOM", pool_pad_bottom)
        b.write_tensor("PDP", "D_DST", op.output)

    # SDP_RDMA only carries the BRDMA configuration here; in flying
    # mode its DMA block is not part of the launched group, so it is
    # not enabled (enabling it would leave a group pending forever).
    for unit in ("CACC", "CMAC_A", "CMAC_B", "CSC", "CDMA"):
        b.enable(unit)
    b.enable("SDP")
    if op.has_pool_epilogue:
        b.enable("PDP")
        return "PDP"
    return "SDP"


def _program_sdp(b: _ChainBuilder, op: SdpOp, group: int) -> str:
    for unit in ("SDP_RDMA", "SDP"):
        b.select(unit, group)
    b.write("SDP_RDMA", "D_FEATURE_MODE_CFG", 1)  # memory source
    b.write_tensor("SDP_RDMA", "D_SRC", op.input)
    b.write("SDP_RDMA", "D_BRDMA_CFG", 0)
    b.write("SDP_RDMA", "D_NRDMA_CFG", 0)
    if op.eltwise_input is not None:
        b.write("SDP_RDMA", "D_ERDMA_CFG", 1)
        b.write_tensor("SDP_RDMA", "D_EW", op.eltwise_input)
    else:
        b.write("SDP_RDMA", "D_ERDMA_CFG", 0)
    _sdp_stage(b, op, bias=False)
    b.enable("SDP_RDMA")
    b.enable("SDP")
    return "SDP"


def _program_pool(b: _ChainBuilder, op: PoolOp, group: int) -> str:
    for unit in ("PDP_RDMA", "PDP"):
        b.select(unit, group)
    b.write_tensor("PDP_RDMA", "D_SRC", op.input)
    b.write("PDP", "D_MISC_CFG", _precision_code(op.precision))
    b.write("PDP", "D_SRC_FLYING", 0)
    b.write("PDP", "D_POOLING_METHOD", POOL_CODE[op.mode])
    b.write("PDP", "D_POOLING_KERNEL_WIDTH", op.kernel[1])
    b.write("PDP", "D_POOLING_KERNEL_HEIGHT", op.kernel[0])
    b.write("PDP", "D_POOLING_STRIDE_X", op.stride[1])
    b.write("PDP", "D_POOLING_STRIDE_Y", op.stride[0])
    pad_top, pad_bottom, pad_left, pad_right = op.pad
    b.write("PDP", "D_POOLING_PAD_LEFT", pad_left)
    b.write("PDP", "D_POOLING_PAD_RIGHT", pad_right)
    b.write("PDP", "D_POOLING_PAD_TOP", pad_top)
    b.write("PDP", "D_POOLING_PAD_BOTTOM", pad_bottom)
    b.write_tensor("PDP", "D_DST", op.output)
    b.enable("PDP_RDMA")
    b.enable("PDP")
    return "PDP"


def _program_lrn(b: _ChainBuilder, op: LrnOp, group: int) -> str:
    for unit in ("CDP_RDMA", "CDP"):
        b.select(unit, group)
    b.write_tensor("CDP_RDMA", "D_SRC", op.input)
    b.write("CDP", "D_MISC_CFG", _precision_code(op.precision))
    b.write("CDP", "D_LRN_LOCAL_SIZE", op.local_size)
    b.write("CDP", "D_LRN_ALPHA", f32_to_bits(op.alpha))
    b.write("CDP", "D_LRN_BETA", f32_to_bits(op.beta))
    b.write("CDP", "D_LRN_K", f32_to_bits(op.k))
    b.write_tensor("CDP", "D_DST", op.output)
    b.enable("CDP_RDMA")
    b.enable("CDP")
    return "CDP"


def program_op(
    op: HwOp,
    config: HardwareConfig,
    weight_base: int,
    group: int,
    op_index: int = 0,
) -> LayerChain:
    """Build the descriptor chain for one hardware op.

    Raises :class:`~repro.errors.ConfigurationError` for op kinds the
    driver cannot program (host-side ops never reach here).
    """
    b = _ChainBuilder(config)
    if isinstance(op, ConvOp):
        sink = _program_conv(b, op, group, weight_base)
    elif isinstance(op, SdpOp):
        sink = _program_sdp(b, op, group)
    elif isinstance(op, PoolOp):
        sink = _program_pool(b, op, group)
    elif isinstance(op, LrnOp):
        sink = _program_lrn(b, op, group)
    else:
        raise ConfigurationError(f"cannot program op kind {op.kind!r}")
    return LayerChain(
        op_index=op_index,
        op_name=op.name,
        op_kind=op.kind,
        group=group,
        sink=sink,
        events=b.events,
    )


def build_chains(
    loadable: Loadable,
    config: HardwareConfig,
    first_group: int = 0,
) -> list[LayerChain]:
    """Descriptor chains for every hardware op of a loadable, in
    schedule order, alternating ping-pong groups like the runtime."""
    chains: list[LayerChain] = []
    group = first_group
    for index, op in enumerate(loadable.schedule.ops):
        if isinstance(op, CpuSoftmaxOp):
            continue
        chains.append(program_op(op, config, loadable.weight_base, group, op_index=index))
        group ^= 1
    return chains
