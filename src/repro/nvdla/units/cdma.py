"""CDMA — convolution DMA.

Fetches feature data and packed weights from external memory (through
MCIF/DBB) into the convolution buffer.  Its registers describe the
input surface, the weight blob, padding and stride — the memory-facing
half of a convolution hardware layer.
"""

from __future__ import annotations

from repro.nvdla.units.base import Unit, tensor_register_names

REGISTER_NAMES: list[str] = [
    "D_MISC_CFG",  # bit0: precision (0=int8, 1=fp16)
    *tensor_register_names("D_DAIN"),
    "D_WEIGHT_ADDR_HIGH",
    "D_WEIGHT_ADDR_LOW",
    "D_WEIGHT_BYTES",
    "D_CONV_STRIDE_X",
    "D_CONV_STRIDE_Y",
    "D_ZERO_PADDING_LEFT",
    "D_ZERO_PADDING_RIGHT",
    "D_ZERO_PADDING_TOP",
    "D_ZERO_PADDING_BOTTOM",
    "D_PADDING_VALUE",
    "D_BANK_DATA",  # CBUF banks reserved for feature data
    "D_BANK_WEIGHT",  # CBUF banks reserved for weights
]


def make_unit() -> Unit:
    return Unit("CDMA", REGISTER_NAMES)
