"""BDMA — bulk data mover.

Strided 2-D memory copies: used by the flow for tensor relocation
(e.g. staging an input image from the preload area into the working
region) without CPU involvement.
"""

from __future__ import annotations

from repro.nvdla.config import HardwareConfig
from repro.nvdla.descriptors import BdmaDescriptor
from repro.nvdla.mcif import Mcif
from repro.nvdla.units.base import Unit

REGISTER_NAMES: list[str] = [
    "D_SRC_ADDR_HIGH",
    "D_SRC_ADDR_LOW",
    "D_DST_ADDR_HIGH",
    "D_DST_ADDR_LOW",
    "D_LINE_BYTES",
    "D_LINE_REPEAT",
    "D_SRC_STRIDE",
    "D_DST_STRIDE",
]


def make_unit() -> Unit:
    return Unit("BDMA", REGISTER_NAMES)


def parse(units: dict[str, Unit], group: int, config: HardwareConfig) -> BdmaDescriptor:
    bdma = units["BDMA"]
    line_bytes = bdma.reg("D_LINE_BYTES", group)
    return BdmaDescriptor(
        src_address=bdma.reg64("D_SRC_ADDR_HIGH", "D_SRC_ADDR_LOW", group),
        dst_address=bdma.reg64("D_DST_ADDR_HIGH", "D_DST_ADDR_LOW", group),
        line_bytes=line_bytes,
        lines=bdma.reg("D_LINE_REPEAT", group) or 1,
        src_stride=bdma.reg("D_SRC_STRIDE", group) or line_bytes,
        dst_stride=bdma.reg("D_DST_STRIDE", group) or line_bytes,
    )


def execute(desc: BdmaDescriptor, config: HardwareConfig, mcif: Mcif) -> None:
    for line in range(desc.lines):
        src = desc.src_address + line * desc.src_stride
        dst = desc.dst_address + line * desc.dst_stride
        mcif.write(dst, mcif.read(src, desc.line_bytes))
