"""CSC — convolution sequence controller.

Sequences CBUF stripes into the MAC array: holds the kernel geometry
and the output tile dimensions of the running convolution layer.
"""

from __future__ import annotations

from repro.nvdla.units.base import Unit

REGISTER_NAMES: list[str] = [
    "D_MISC_CFG",  # bit0: precision
    "D_WEIGHT_SIZE_K",
    "D_WEIGHT_SIZE_C",
    "D_WEIGHT_SIZE_R",
    "D_WEIGHT_SIZE_S",
    "D_DATAOUT_WIDTH",
    "D_DATAOUT_HEIGHT",
    "D_ATOMICS",  # atoms per output stripe (informational)
    "D_RELEASE",  # CBUF slice release policy (informational)
]


def make_unit() -> Unit:
    return Unit("CSC", REGISTER_NAMES)
