"""CDP — channel data processor (+ read DMA): LRN.

Local response normalisation across channels, needed by AlexNet and
GoogleNet.  Floating parameters travel as IEEE-754 bit patterns in the
32-bit registers.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.nvdla.compute import lrn
from repro.nvdla.config import HardwareConfig
from repro.nvdla.descriptors import CdpDescriptor, bits_to_f32
from repro.nvdla.layout import pack_feature, unpack_feature
from repro.nvdla.mcif import Mcif
from repro.nvdla.units.base import Unit, parse_precision, parse_tensor, tensor_register_names

RDMA_REGISTER_NAMES: list[str] = [
    *tensor_register_names("D_SRC"),
]

CDP_REGISTER_NAMES: list[str] = [
    "D_MISC_CFG",  # bit0: precision
    "D_LRN_LOCAL_SIZE",
    "D_LRN_ALPHA",  # f32 bits
    "D_LRN_BETA",  # f32 bits
    "D_LRN_K",  # f32 bits
    *tensor_register_names("D_DST"),
]


def make_rdma_unit() -> Unit:
    return Unit("CDP_RDMA", RDMA_REGISTER_NAMES)


def make_unit() -> Unit:
    return Unit("CDP", CDP_REGISTER_NAMES)


def parse(units: dict[str, Unit], group: int, config: HardwareConfig) -> CdpDescriptor:
    cdp = units["CDP"]
    rdma = units["CDP_RDMA"]
    precision = parse_precision(cdp.reg("D_MISC_CFG", group) & 1, "CDP")
    if not config.supports(precision):
        raise ConfigurationError(f"{config.name} does not support {precision.value}")
    return CdpDescriptor(
        input=parse_tensor(rdma, group, "D_SRC", precision),
        output=parse_tensor(cdp, group, "D_DST", precision),
        local_size=cdp.reg("D_LRN_LOCAL_SIZE", group),
        alpha=bits_to_f32(cdp.reg("D_LRN_ALPHA", group)),
        beta=bits_to_f32(cdp.reg("D_LRN_BETA", group)),
        k=bits_to_f32(cdp.reg("D_LRN_K", group)),
    )


def execute(desc: CdpDescriptor, config: HardwareConfig, mcif: Mcif) -> None:
    atom = config.atom_channels(desc.input.precision)
    blob = mcif.read(desc.input.address, desc.input.packed_bytes(atom))
    x = unpack_feature(blob, desc.input.shape, atom, desc.input.precision)
    result = lrn(x, desc.local_size, desc.alpha, desc.beta, desc.k)
    mcif.write(desc.output.address, pack_feature(result, atom, desc.output.precision))
