"""SDP — single-point data processor (+ its read DMA).

The post-processing stage behind every convolution and the engine for
standalone element-wise layers: per-channel bias, folded batch-norm
multipliers, eltwise add/mul/max with a second tensor, ReLU, and the
output converter (requantisation to INT8 or FP16 cast).  SDP owns the
write of the result cube to external memory.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.nvdla.compute import (
    apply_batchnorm,
    apply_bias,
    apply_eltwise,
    apply_relu,
    convert_fp16,
    requantize_int8,
)
from repro.nvdla.config import HardwareConfig, Precision
from repro.nvdla.descriptors import EltwiseOp, SdpDescriptor, SdpSource, TensorDesc
from repro.nvdla.layout import pack_feature, unpack_feature
from repro.nvdla.mcif import Mcif
from repro.nvdla.units.base import Unit, parse_precision, parse_tensor, tensor_register_names

RDMA_REGISTER_NAMES: list[str] = [
    "D_FEATURE_MODE_CFG",  # bit0: 0 = flying (from CACC), 1 = memory source
    *tensor_register_names("D_SRC"),
    "D_BRDMA_CFG",  # bit0: bias read enable
    "D_BS_BASE_ADDR_HIGH",
    "D_BS_BASE_ADDR_LOW",
    "D_NRDMA_CFG",  # bit0: batch-norm multiplier read enable
    "D_BN_BASE_ADDR_HIGH",
    "D_BN_BASE_ADDR_LOW",
    "D_ERDMA_CFG",  # bit0: eltwise operand read enable
    *tensor_register_names("D_EW"),
]

SDP_REGISTER_NAMES: list[str] = [
    "D_MISC_CFG",  # bit0: input precision
    "D_DATA_CUBE_WIDTH",
    "D_DATA_CUBE_HEIGHT",
    "D_DATA_CUBE_CHANNEL",
    *tensor_register_names("D_DST"),
    "D_DP_BS_CFG",  # bit0: bias stage enable
    "D_DP_BN_CFG",  # bit0: batch-norm stage enable
    "D_DP_EW_CFG",  # eltwise op code (EltwiseOp value)
    "D_EW_CVT_MULT",  # ERDMA operand converter (into the acc domain)
    "D_EW_CVT_SHIFT",
    "D_ACT_CFG",  # bit0: ReLU enable
    "D_CVT_MULT",
    "D_CVT_SHIFT",
    "D_OUT_PRECISION",  # 0 = int8, 1 = fp16
    "D_DST_FLYING",  # bit0: result streams on-chip to PDP (no memory write)
]


def make_rdma_unit() -> Unit:
    return Unit("SDP_RDMA", RDMA_REGISTER_NAMES)


def make_unit() -> Unit:
    return Unit("SDP", SDP_REGISTER_NAMES)


def parse(units: dict[str, Unit], group: int, config: HardwareConfig) -> SdpDescriptor:
    """Parse SDP(+RDMA) group registers into a descriptor."""
    sdp = units["SDP"]
    rdma = units["SDP_RDMA"]
    in_precision = parse_precision(sdp.reg("D_MISC_CFG", group) & 1, "SDP")
    out_precision = parse_precision(sdp.reg("D_OUT_PRECISION", group) & 1, "SDP")
    for precision in (in_precision, out_precision):
        if not config.supports(precision):
            raise ConfigurationError(f"{config.name} does not support {precision.value}")
    source = SdpSource.MEMORY if rdma.reg("D_FEATURE_MODE_CFG", group) & 1 else SdpSource.FLYING
    input_desc: TensorDesc | None = None
    if source is SdpSource.MEMORY:
        input_desc = parse_tensor(rdma, group, "D_SRC", in_precision)
    output = parse_tensor(sdp, group, "D_DST", out_precision)

    bias_address = None
    if sdp.reg("D_DP_BS_CFG", group) & 1:
        if not rdma.reg("D_BRDMA_CFG", group) & 1:
            raise ConfigurationError("SDP bias stage enabled without BRDMA read")
        bias_address = rdma.reg64("D_BS_BASE_ADDR_HIGH", "D_BS_BASE_ADDR_LOW", group)
    bn_address = None
    if sdp.reg("D_DP_BN_CFG", group) & 1:
        if not rdma.reg("D_NRDMA_CFG", group) & 1:
            raise ConfigurationError("SDP BN stage enabled without NRDMA read")
        bn_address = rdma.reg64("D_BN_BASE_ADDR_HIGH", "D_BN_BASE_ADDR_LOW", group)
    eltwise = EltwiseOp(sdp.reg("D_DP_EW_CFG", group) & 0x3)
    eltwise_input = None
    if eltwise is not EltwiseOp.NONE:
        if not rdma.reg("D_ERDMA_CFG", group) & 1:
            raise ConfigurationError("SDP eltwise enabled without ERDMA read")
        eltwise_input = parse_tensor(rdma, group, "D_EW", in_precision)

    return SdpDescriptor(
        source=source,
        output=output,
        out_precision=out_precision,
        input=input_desc,
        bias_address=bias_address,
        bn_mult_address=bn_address,
        eltwise=eltwise,
        eltwise_input=eltwise_input,
        relu=bool(sdp.reg("D_ACT_CFG", group) & 1),
        cvt_multiplier=sdp.reg("D_CVT_MULT", group) or 1,
        cvt_shift=sdp.reg("D_CVT_SHIFT", group),
        ew_cvt_multiplier=sdp.reg("D_EW_CVT_MULT", group) or 1,
        ew_cvt_shift=sdp.reg("D_EW_CVT_SHIFT", group),
        dst_flying=bool(sdp.reg("D_DST_FLYING", group) & 1),
    )


def execute(
    desc: SdpDescriptor,
    config: HardwareConfig,
    mcif: Mcif,
    flying_input: np.ndarray | None = None,
) -> np.ndarray | None:
    """Run the SDP chain; write the result cube to memory.

    ``flying_input`` carries the convolution accumulators when the op
    is fused (source = FLYING).  When the *destination* is flying
    (``desc.dst_flying``) nothing is written: the result array is
    returned for the downstream PDP stage instead.
    """
    channels = desc.output.channels
    if desc.source is SdpSource.FLYING:
        if flying_input is None:
            raise ConfigurationError("flying SDP op launched without conv accumulators")
        acc = flying_input
        in_precision = Precision.INT8 if acc.dtype == np.int64 else Precision.FP16
    else:
        assert desc.input is not None
        atom = config.atom_channels(desc.input.precision)
        blob = mcif.read(desc.input.address, desc.input.packed_bytes(atom))
        x = unpack_feature(blob, desc.input.shape, atom, desc.input.precision)
        in_precision = desc.input.precision
        acc = x.astype(np.int64 if in_precision is Precision.INT8 else np.float32)

    if acc.shape[0] != channels:
        raise ConfigurationError(
            f"SDP output channels {channels} != datapath channels {acc.shape[0]}"
        )

    integer = acc.dtype == np.int64
    if desc.bias_address is not None:
        count = channels * (4 if integer else 2)
        raw = mcif.read(desc.bias_address, count)
        bias = np.frombuffer(raw, dtype=np.int32 if integer else np.float16)[:channels]
        acc = apply_bias(acc, bias.astype(acc.dtype))
    if desc.bn_mult_address is not None:
        count = channels * (4 if integer else 2)
        raw = mcif.read(desc.bn_mult_address, count)
        mult = np.frombuffer(raw, dtype=np.int32 if integer else np.float16)[:channels]
        acc = apply_batchnorm(acc, mult.astype(np.float64 if integer else np.float32))
        if integer:
            acc = np.rint(acc).astype(np.int64)
    if desc.eltwise is not EltwiseOp.NONE:
        assert desc.eltwise_input is not None
        atom = config.atom_channels(desc.eltwise_input.precision)
        blob = mcif.read(desc.eltwise_input.address, desc.eltwise_input.packed_bytes(atom))
        operand = unpack_feature(
            blob, desc.eltwise_input.shape, atom, desc.eltwise_input.precision
        )
        if integer and (desc.ew_cvt_multiplier, desc.ew_cvt_shift) != (1, 0):
            # ERDMA converter: operand -> accumulator domain.
            scaled = operand.astype(np.int64) * desc.ew_cvt_multiplier
            if desc.ew_cvt_shift > 0:
                half = np.int64(1) << (desc.ew_cvt_shift - 1)
                scaled = (scaled + np.sign(scaled) * half) >> desc.ew_cvt_shift
            operand = scaled
        acc = apply_eltwise(acc, desc.eltwise, operand)
    acc = apply_relu(acc, desc.relu)

    if desc.out_precision is Precision.INT8:
        result = requantize_int8(acc, desc.cvt_multiplier, desc.cvt_shift)
    else:
        result = convert_fp16(acc, desc.cvt_multiplier, desc.cvt_shift)

    expected_shape = desc.output.shape
    if result.shape != expected_shape:
        raise ConfigurationError(
            f"SDP result shape {result.shape} != output descriptor {expected_shape}"
        )
    if desc.dst_flying:
        return result
    atom_out = config.atom_channels(desc.out_precision)
    mcif.write(desc.output.address, pack_feature(result, atom_out, desc.out_precision))
    return None
