"""NVDLA sub-unit register models.

One module per hardware block, mirroring the NVDLA unit inventory:

==========  ====================================================
GLB         interrupt controller + hardware version
MCIF        external-memory interface (DBB side, shared)
BDMA        bulk data mover
CDMA        convolution DMA (feature/weight fetch into CBUF)
CSC         convolution sequence controller
CMAC_A/B    multiply-accumulate array halves
CACC        convolution accumulator
SDP(+RDMA)  single-point processor: bias/BN/eltwise/ReLU/requant
PDP(+RDMA)  planar processor: pooling
CDP(+RDMA)  channel processor: LRN
RUBIK       tensor reshape
==========  ====================================================

Each module declares the unit's register list and a ``parse`` function
that turns the shadow registers of one ping-pong group into a typed
descriptor from :mod:`repro.nvdla.descriptors`.
"""

from repro.nvdla.units.base import Unit, parse_tensor

__all__ = ["Unit", "parse_tensor"]
