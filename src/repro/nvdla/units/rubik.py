"""RUBIK — tensor reshape engine (contract mode).

Repacks a feature surface whose channel padding no longer matches the
consumer's expectation (e.g. after channel-wise concatenation in
GoogleNet's inception blocks).  Only ``contract`` mode is modelled —
the only mode the compiler emits here.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.nvdla.config import HardwareConfig
from repro.nvdla.descriptors import RubikDescriptor
from repro.nvdla.layout import pack_feature, unpack_feature
from repro.nvdla.mcif import Mcif
from repro.nvdla.units.base import Unit, parse_precision, parse_tensor, tensor_register_names

REGISTER_NAMES: list[str] = [
    "D_MISC_CFG",  # bit0: precision; bits 2:1 mode
    *tensor_register_names("D_DAIN"),
    *tensor_register_names("D_DAOUT"),
]

_MODES = {0: "contract", 1: "split", 2: "merge"}


def make_unit() -> Unit:
    return Unit("RUBIK", REGISTER_NAMES)


def parse(units: dict[str, Unit], group: int, config: HardwareConfig) -> RubikDescriptor:
    rubik = units["RUBIK"]
    if not config.rubik_supported:
        raise ConfigurationError(f"{config.name} does not include RUBIK")
    misc = rubik.reg("D_MISC_CFG", group)
    precision = parse_precision(misc & 1, "RUBIK")
    mode = _MODES.get((misc >> 1) & 0x3)
    if mode is None:
        raise ConfigurationError(f"RUBIK: unknown mode code {(misc >> 1) & 0x3}")
    return RubikDescriptor(
        input=parse_tensor(rubik, group, "D_DAIN", precision),
        output=parse_tensor(rubik, group, "D_DAOUT", precision),
        mode=mode,
    )


def execute(desc: RubikDescriptor, config: HardwareConfig, mcif: Mcif) -> None:
    if desc.mode != "contract":
        raise ConfigurationError(f"RUBIK mode {desc.mode!r} is not implemented")
    atom = config.atom_channels(desc.input.precision)
    blob = mcif.read(desc.input.address, desc.input.packed_bytes(atom))
    x = unpack_feature(blob, desc.input.shape, atom, desc.input.precision)
    reshaped = x.reshape(desc.output.shape)
    mcif.write(desc.output.address, pack_feature(reshaped, atom, desc.output.precision))
