"""CACC — convolution accumulator.

Collects partial sums from the MAC array and streams finished output
stripes to the SDP on the fly.  Registers describe the accumulated
output cube; the actual memory write belongs to SDP.
"""

from __future__ import annotations

from repro.nvdla.units.base import Unit

REGISTER_NAMES: list[str] = [
    "D_MISC_CFG",  # bit0: precision
    "D_DATAOUT_WIDTH",
    "D_DATAOUT_HEIGHT",
    "D_DATAOUT_CHANNEL",
    "D_CLIP_CFG",  # accumulator saturation shift (informational)
]


def make_unit() -> Unit:
    return Unit("CACC", REGISTER_NAMES)
