"""GLB — global block: hardware version and the interrupt controller.

The bare-metal flow's whole synchronisation model rests on this unit:
after kicking off a hardware layer, the generated RISC-V code polls
``INTR_STATUS`` until the expected completion bit is set, then clears
it with a write-1-to-clear.  The Linux-driver baseline instead routes
the same bit through the kernel's interrupt path (see
:mod:`repro.baseline.linux_driver`).

Each op sink owns two status bits, one per ping-pong group:

========  =====  =====
unit      g0     g1
========  =====  =====
CACC       0      1
SDP        2      3
CDP        4      5
RUBIK      6      7
PDP        8      9
BDMA      10     11
========  =====  =====
"""

from __future__ import annotations

from repro.errors import RegisterError

HW_VERSION = 0x000
INTR_MASK = 0x004
INTR_SET = 0x008
INTR_STATUS = 0x00C

#: Version word: "repro NVDLA" 1.0 (major.minor in the low bytes).
HW_VERSION_VALUE = 0x52500100

INTR_BIT: dict[str, int] = {
    "CACC": 0,
    "SDP": 2,
    "CDP": 4,
    "RUBIK": 6,
    "PDP": 8,
    "BDMA": 10,
}


def interrupt_bit(unit: str, group: int) -> int:
    """Bit index in ``INTR_STATUS`` for a unit/group completion."""
    try:
        return INTR_BIT[unit] + (group & 1)
    except KeyError:
        raise RegisterError(f"unit {unit!r} does not raise interrupts") from None


class Glb:
    """Interrupt status/mask block (not ping-pong shadowed)."""

    def __init__(self) -> None:
        self.intr_mask = 0
        self.intr_status = 0

    def csb_read(self, offset: int) -> int:
        if offset == HW_VERSION:
            return HW_VERSION_VALUE
        if offset == INTR_MASK:
            return self.intr_mask
        if offset == INTR_STATUS:
            return self.intr_status
        if offset == INTR_SET:
            return 0
        raise RegisterError(f"GLB: no register at +0x{offset:03x}", offset)

    def csb_write(self, offset: int, value: int) -> None:
        value &= 0xFFFFFFFF
        if offset == INTR_MASK:
            self.intr_mask = value
            return
        if offset == INTR_SET:
            self.intr_status |= value
            return
        if offset == INTR_STATUS:
            self.intr_status &= ~value  # write-1-to-clear
            return
        if offset == HW_VERSION:
            raise RegisterError("GLB: HW_VERSION is read-only", offset)
        raise RegisterError(f"GLB: no register at +0x{offset:03x}", offset)

    def raise_interrupt(self, unit: str, group: int) -> None:
        self.intr_status |= 1 << interrupt_bit(unit, group)

    def pending(self) -> int:
        """Unmasked pending interrupt bits (the IRQ line state)."""
        return self.intr_status & ~self.intr_mask

    def reset(self) -> None:
        self.intr_mask = 0
        self.intr_status = 0
