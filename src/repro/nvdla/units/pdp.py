"""PDP — planar data processor (+ read DMA): pooling."""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.nvdla.compute import pool2d
from repro.nvdla.config import HardwareConfig
from repro.nvdla.descriptors import PdpDescriptor, PoolMode
from repro.nvdla.layout import pack_feature, unpack_feature
from repro.nvdla.mcif import Mcif
from repro.nvdla.units.base import Unit, parse_precision, parse_tensor, tensor_register_names

RDMA_REGISTER_NAMES: list[str] = [
    *tensor_register_names("D_SRC"),
]

PDP_REGISTER_NAMES: list[str] = [
    "D_MISC_CFG",  # bit0: precision
    "D_POOLING_METHOD",  # PoolMode value
    "D_POOLING_KERNEL_WIDTH",
    "D_POOLING_KERNEL_HEIGHT",
    "D_POOLING_STRIDE_X",
    "D_POOLING_STRIDE_Y",
    "D_POOLING_PAD_LEFT",
    "D_POOLING_PAD_RIGHT",
    "D_POOLING_PAD_TOP",
    "D_POOLING_PAD_BOTTOM",
    *tensor_register_names("D_DST"),
    "D_SRC_FLYING",  # bit0: input streams on-chip from SDP (PDP_RDMA idle)
]


def make_rdma_unit() -> Unit:
    return Unit("PDP_RDMA", RDMA_REGISTER_NAMES)


def make_unit() -> Unit:
    return Unit("PDP", PDP_REGISTER_NAMES)


def parse(units: dict[str, Unit], group: int, config: HardwareConfig) -> PdpDescriptor:
    pdp = units["PDP"]
    rdma = units["PDP_RDMA"]
    precision = parse_precision(pdp.reg("D_MISC_CFG", group) & 1, "PDP")
    if not config.supports(precision):
        raise ConfigurationError(f"{config.name} does not support {precision.value}")
    method = pdp.reg("D_POOLING_METHOD", group)
    try:
        mode = PoolMode(method)
    except ValueError:
        raise ConfigurationError(f"PDP: unknown pooling method {method}") from None
    return PdpDescriptor(
        input=parse_tensor(rdma, group, "D_SRC", precision),
        output=parse_tensor(pdp, group, "D_DST", precision),
        mode=mode,
        kernel_w=pdp.reg("D_POOLING_KERNEL_WIDTH", group),
        kernel_h=pdp.reg("D_POOLING_KERNEL_HEIGHT", group),
        stride_x=pdp.reg("D_POOLING_STRIDE_X", group),
        stride_y=pdp.reg("D_POOLING_STRIDE_Y", group),
        pad_left=pdp.reg("D_POOLING_PAD_LEFT", group),
        pad_right=pdp.reg("D_POOLING_PAD_RIGHT", group),
        pad_top=pdp.reg("D_POOLING_PAD_TOP", group),
        pad_bottom=pdp.reg("D_POOLING_PAD_BOTTOM", group),
        src_flying=bool(pdp.reg("D_SRC_FLYING", group) & 1),
    )


def execute(desc: PdpDescriptor, config: HardwareConfig, mcif: Mcif, flying_input=None) -> None:
    """Pool the source cube and write the result.

    ``flying_input`` carries the SDP result when the chain is fused
    (``desc.src_flying``); otherwise the input is read through MCIF.
    """
    atom = config.atom_channels(desc.input.precision)
    if desc.src_flying:
        if flying_input is None:
            raise ConfigurationError("flying PDP op launched without an SDP result")
        x = flying_input
        if x.shape != desc.input.shape:
            raise ConfigurationError(
                f"PDP flying input shape {x.shape} != source descriptor {desc.input.shape}"
            )
    else:
        blob = mcif.read(desc.input.address, desc.input.packed_bytes(atom))
        x = unpack_feature(blob, desc.input.shape, atom, desc.input.precision)
    result = pool2d(
        x,
        desc.mode,
        kernel=(desc.kernel_h, desc.kernel_w),
        stride=(desc.stride_y, desc.stride_x),
        pad=(desc.pad_top, desc.pad_bottom, desc.pad_left, desc.pad_right),
    )
    if result.shape != desc.output.shape:
        raise ConfigurationError(
            f"PDP result shape {result.shape} != output descriptor {desc.output.shape}"
        )
    mcif.write(desc.output.address, pack_feature(result, atom, desc.output.precision))
