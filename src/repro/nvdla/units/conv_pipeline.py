"""Convolution pipeline: CDMA → CBUF → CSC → CMAC → CACC.

Assembles a :class:`~repro.nvdla.descriptors.ConvDescriptor` from the
shadow registers of the four conv units and executes it functionally:
unpack the feature surface and the stripe-packed weights from external
memory, run the direct convolution, and hand raw accumulators to the
SDP stage (conv output always flows through SDP on NVDLA).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.nvdla.compute import conv2d_direct
from repro.nvdla.config import HardwareConfig
from repro.nvdla.descriptors import ConvDescriptor
from repro.nvdla.layout import unpack_feature, unpack_weights, weight_size_bytes
from repro.nvdla.mcif import Mcif
from repro.nvdla.units.base import Unit, parse_precision, parse_tensor

CONV_UNIT_NAMES = ("CDMA", "CSC", "CMAC_A", "CMAC_B", "CACC")


def parse(units: dict[str, Unit], group: int, config: HardwareConfig) -> ConvDescriptor:
    """Parse the conv units' group registers into a descriptor."""
    cdma = units["CDMA"]
    csc = units["CSC"]
    precision = parse_precision(cdma.reg("D_MISC_CFG", group) & 1, "CDMA")
    if not config.supports(precision):
        raise ConfigurationError(f"{config.name} does not support {precision.value}")
    for unit_name in ("CSC", "CMAC_A", "CMAC_B", "CACC"):
        other = units[unit_name].reg("D_MISC_CFG", group) & 1
        if parse_precision(other, unit_name) is not precision:
            raise ConfigurationError(
                f"{unit_name} precision disagrees with CDMA for group {group}"
            )
    input_desc = parse_tensor(cdma, group, "D_DAIN", precision)
    desc = ConvDescriptor(
        input=input_desc,
        weight_address=cdma.reg64("D_WEIGHT_ADDR_HIGH", "D_WEIGHT_ADDR_LOW", group),
        kernel_k=csc.reg("D_WEIGHT_SIZE_K", group),
        kernel_c=csc.reg("D_WEIGHT_SIZE_C", group),
        kernel_r=csc.reg("D_WEIGHT_SIZE_R", group),
        kernel_s=csc.reg("D_WEIGHT_SIZE_S", group),
        stride_x=cdma.reg("D_CONV_STRIDE_X", group),
        stride_y=cdma.reg("D_CONV_STRIDE_Y", group),
        pad_left=cdma.reg("D_ZERO_PADDING_LEFT", group),
        pad_right=cdma.reg("D_ZERO_PADDING_RIGHT", group),
        pad_top=cdma.reg("D_ZERO_PADDING_TOP", group),
        pad_bottom=cdma.reg("D_ZERO_PADDING_BOTTOM", group),
        precision=precision,
        out_width=csc.reg("D_DATAOUT_WIDTH", group),
        out_height=csc.reg("D_DATAOUT_HEIGHT", group),
    )
    declared_bytes = cdma.reg("D_WEIGHT_BYTES", group)
    atomic_c, atomic_k = config.atoms(precision)
    expected = weight_size_bytes(desc.weight_shape, atomic_c, atomic_k, precision)
    if declared_bytes != expected:
        raise ConfigurationError(
            f"CDMA weight bytes {declared_bytes} != packed size {expected} for "
            f"kernel {desc.weight_shape}"
        )
    return desc


def execute(
    desc: ConvDescriptor,
    config: HardwareConfig,
    mcif: Mcif,
    weight_cache: dict | None = None,
) -> np.ndarray:
    """Run the convolution functionally; returns raw accumulators.

    Output dtype is int64 for INT8 layers (hardware int32 accumulation
    saturates only at the SDP converter) and float32 for FP16.

    ``weight_cache`` memoises the unpacked kernel per (address, shape,
    precision) — weights are read-only across a deployment's runs, so
    the fast-path executor passes a per-bundle dict to skip the
    re-read/unpack on every replay.  Values are cached *after* unpack,
    so cached and uncached runs see bit-identical kernels.
    """
    atom_channels = config.atom_channels(desc.precision)
    atomic_c, atomic_k = config.atoms(desc.precision)
    input_blob = mcif.read(desc.input.address, desc.input.packed_bytes(atom_channels))
    x = unpack_feature(input_blob, desc.input.shape, atom_channels, desc.precision)
    cache_key = (desc.weight_address, desc.weight_shape, desc.precision)
    w = weight_cache.get(cache_key) if weight_cache is not None else None
    if w is None:
        weight_bytes = weight_size_bytes(desc.weight_shape, atomic_c, atomic_k, desc.precision)
        weight_blob = mcif.read(desc.weight_address, weight_bytes)
        w = unpack_weights(weight_blob, desc.weight_shape, atomic_c, atomic_k, desc.precision)
        if weight_cache is not None:
            weight_cache[cache_key] = w
    return conv2d_direct(
        x,
        w,
        stride=(desc.stride_y, desc.stride_x),
        pad=(desc.pad_top, desc.pad_bottom, desc.pad_left, desc.pad_right),
    )
