"""Shared infrastructure for NVDLA sub-units."""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.nvdla.config import Precision
from repro.nvdla.descriptors import TensorDesc
from repro.nvdla.registers import FIRST_DESCRIPTOR_OFFSET, RegisterBlock, RegisterSpec


class Unit:
    """One sub-unit: a named register block at a CSB base address.

    Register offsets are assigned in declaration order starting at
    :data:`~repro.nvdla.registers.FIRST_DESCRIPTOR_OFFSET`, one 32-bit
    word each.
    """

    def __init__(self, name: str, register_names: list[str]) -> None:
        specs = [
            RegisterSpec(name=reg, offset=FIRST_DESCRIPTOR_OFFSET + 4 * index)
            for index, reg in enumerate(register_names)
        ]
        self.name = name
        self.block = RegisterBlock(name, specs)

    # Convenience pass-throughs -----------------------------------------

    def csb_read(self, offset: int) -> int:
        return self.block.csb_read(offset)

    def csb_write(self, offset: int, value: int) -> None:
        self.block.csb_write(offset, value)

    def reg(self, name: str, group: int) -> int:
        return self.block.value(name, group)

    def reg64(self, high: str, low: str, group: int) -> int:
        return self.block.value64(high, low, group)

    def offset_of(self, name: str) -> int:
        return self.block.offset_of(name)

    def reset(self) -> None:
        self.block.reset()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Unit({self.name})"


def parse_precision(value: int, unit: str) -> Precision:
    if value == 0:
        return Precision.INT8
    if value == 1:
        return Precision.FP16
    raise ConfigurationError(f"{unit}: unknown precision code {value}")


def precision_code(precision: Precision) -> int:
    return 0 if precision is Precision.INT8 else 1


def parse_tensor(unit: Unit, group: int, prefix: str, precision: Precision) -> TensorDesc:
    """Build a :class:`TensorDesc` from ``<prefix>_*`` registers.

    Expects the register family ``ADDR_HIGH/ADDR_LOW/WIDTH/HEIGHT/
    CHANNEL/LINE_STRIDE/SURF_STRIDE``.
    """
    return TensorDesc(
        address=unit.reg64(f"{prefix}_ADDR_HIGH", f"{prefix}_ADDR_LOW", group),
        width=unit.reg(f"{prefix}_WIDTH", group),
        height=unit.reg(f"{prefix}_HEIGHT", group),
        channels=unit.reg(f"{prefix}_CHANNEL", group),
        precision=precision,
        line_stride=unit.reg(f"{prefix}_LINE_STRIDE", group),
        surf_stride=unit.reg(f"{prefix}_SURF_STRIDE", group),
    )


def tensor_register_names(prefix: str) -> list[str]:
    """The seven registers that describe one tensor surface."""
    return [
        f"{prefix}_ADDR_HIGH",
        f"{prefix}_ADDR_LOW",
        f"{prefix}_WIDTH",
        f"{prefix}_HEIGHT",
        f"{prefix}_CHANNEL",
        f"{prefix}_LINE_STRIDE",
        f"{prefix}_SURF_STRIDE",
    ]
