"""CMAC — the multiply-accumulate array (halves A and B).

The MAC array is configuration-only at the register level: both
halves just need the datapath precision.  Array geometry (atomic_c ×
atomic_k) is a hardware build parameter from
:class:`~repro.nvdla.config.HardwareConfig`.
"""

from __future__ import annotations

from repro.nvdla.units.base import Unit

REGISTER_NAMES: list[str] = [
    "D_MISC_CFG",  # bit0: precision
]


def make_unit(half: str) -> Unit:
    if half not in ("A", "B"):
        raise ValueError("CMAC half must be 'A' or 'B'")
    return Unit(f"CMAC_{half}", REGISTER_NAMES)
