"""Register-accurate functional + timing model of NVDLA.

The model exposes exactly the two interfaces the paper's SoC uses:

- **CSB** — the configuration space bus: 32-bit register reads/writes
  decoded to per-unit register files with ping-pong (dual-group)
  shadows, kick-off via ``D_OP_ENABLE`` and completion interrupts in
  the GLB unit (:mod:`repro.nvdla.csb`, :mod:`repro.nvdla.registers`),
- **DBB** — the data backbone: bulk memory traffic for weights,
  feature maps and intermediate tensors (:mod:`repro.nvdla.mcif`).

Two hardware configurations ship, matching the paper: ``nv_small``
(8×8 INT8 atomics, 32 KiB CBUF) and ``nv_full`` (64×32 atomics, INT8 +
FP16, 512 KiB CBUF); :mod:`repro.nvdla.config` can also express custom
points for design-space exploration.

Functional execution computes real tensors (NumPy); timing is an
analytic per-op cycle model (:mod:`repro.nvdla.timing`) calibrated
against the paper's Tables II/III regimes.
"""

from repro.nvdla.config import HardwareConfig, NV_FULL, NV_SMALL, Precision
from repro.nvdla.engine import NvdlaEngine, OpRecord
from repro.nvdla.fastpath import (
    FastPathOp,
    estimate_op_timings,
    lower_loadable,
    pack_input,
)
from repro.nvdla.registers import RegisterBlock, RegisterSpec
from repro.nvdla.timing import TimingParams

__all__ = [
    "FastPathOp",
    "HardwareConfig",
    "NV_FULL",
    "NV_SMALL",
    "NvdlaEngine",
    "OpRecord",
    "Precision",
    "RegisterBlock",
    "RegisterSpec",
    "TimingParams",
    "estimate_op_timings",
    "lower_loadable",
    "pack_input",
]
