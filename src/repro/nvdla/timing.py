"""Analytic per-op cycle model.

Latency of one hardware layer is dominated by three overlapping
activities, and the model takes the slowest (they are pipelined
against each other by CDMA prefetch and the double-buffered CBUF):

- **DBB traffic** — weights (once), input feature map (once per
  kernel split, see :class:`~repro.nvdla.cbuf.Cbuf`), SDP operand
  blobs, and the output write-back; priced by the memory port's burst
  model via :meth:`~repro.nvdla.mcif.Mcif.stream_cycles`,
- **MAC compute** — padded MACs over the array's per-cycle capacity,
  derated by a stripe-sequencing efficiency,
- **post-processor throughput** — SDP/PDP/CDP elements per cycle.

A fixed per-op cost covers descriptor launch and pipeline fill/drain.

Regimes this reproduces (paper Tables II/III): LeNet-5-class models
are weight-DMA bound on nv_small (≈1.7 MB of weights through a 32-bit
memory); ResNet-50 is MAC bound on nv_small (64 INT8 MACs) but
DMA/efficiency bound on nv_full; depthwise and low-channel layers
waste the wide nv_full array through atom padding, which is why
GoogleNet is the slowest Table III entry despite mid-pack model size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nvdla.cbuf import Cbuf
from repro.nvdla.config import HardwareConfig, Precision
from repro.nvdla.descriptors import (
    BdmaDescriptor,
    CdpDescriptor,
    ConvDescriptor,
    EltwiseOp,
    OpTiming,
    PdpDescriptor,
    RubikDescriptor,
    SdpDescriptor,
    SdpSource,
)
from repro.nvdla.layout import weight_size_bytes
from repro.nvdla.mcif import Mcif


@dataclass(frozen=True)
class TimingParams:
    """Calibration constants of the analytic model.

    Values are physically motivated and were fitted once against the
    regimes of the paper's Tables II/III (see EXPERIMENTS.md for the
    paper-vs-measured deltas).
    """

    op_fixed_cycles: int = 400  # descriptor launch + pipeline fill
    op_drain_cycles: int = 200  # write-back tail not hidden by compute
    conv_stripe_efficiency: float = 0.70  # CSC stripe sequencing efficiency
    post_throughput_derate: float = 0.85  # SDP/PDP/CDP sustained vs peak
    lrn_work_factor: float = 3.0  # CDP passes per element vs plain SDP
    rubik_bytes_per_cycle: float = 4.0


def conv_op_timing(
    conv: ConvDescriptor,
    sdp: SdpDescriptor,
    config: HardwareConfig,
    cbuf: Cbuf,
    mcif: Mcif,
    params: TimingParams,
) -> OpTiming:
    """Fused convolution + SDP hardware layer."""
    atomic_c, atomic_k = config.atoms(conv.precision)
    atom = config.atom_channels(conv.precision)

    w_bytes = weight_size_bytes(conv.weight_shape, atomic_c, atomic_k, conv.precision)
    alloc = cbuf.default_split(w_bytes)
    splits = cbuf.kernel_splits(w_bytes, alloc.weight_banks)

    in_bytes = conv.input.packed_bytes(atom)
    weight_dma = mcif.stream_cycles(conv.weight_address, w_bytes)
    input_dma = mcif.stream_cycles(conv.input.address, in_bytes) * splits

    operand_dma = _sdp_operand_dma(sdp, config, mcif)
    out_atom = config.atom_channels(sdp.out_precision)
    out_bytes = sdp.output.packed_bytes(out_atom)
    output_dma = mcif.stream_cycles(sdp.output.address, out_bytes)

    mac_cycles = int(
        round(
            conv.padded_macs(atomic_c, atomic_k)
            / config.macs_per_cycle(conv.precision)
            / params.conv_stripe_efficiency
        )
    )
    sdp_cycles = int(
        round(
            sdp.output.elements / (config.sdp_throughput * params.post_throughput_derate)
        )
    )

    dma_total = weight_dma + input_dma + operand_dma + output_dma
    busy = max(dma_total, mac_cycles, sdp_cycles)
    total = params.op_fixed_cycles + busy + params.op_drain_cycles
    return OpTiming(
        kind="conv",
        fixed=params.op_fixed_cycles + params.op_drain_cycles,
        weight_dma=weight_dma,
        input_dma=input_dma + operand_dma,
        output_dma=output_dma,
        compute=max(mac_cycles, sdp_cycles),
        total=total,
        detail={
            "kernel_splits": splits,
            "weight_bytes": w_bytes,
            "macs": conv.macs,
            "padded_macs": conv.padded_macs(atomic_c, atomic_k),
            "mac_cycles": mac_cycles,
            "sdp_cycles": sdp_cycles,
        },
    )


def fused_conv_pool_op_timing(
    conv: ConvDescriptor,
    sdp: SdpDescriptor,
    pdp: PdpDescriptor,
    config: HardwareConfig,
    cbuf: Cbuf,
    mcif: Mcif,
    params: TimingParams,
) -> OpTiming:
    """Fully fused conv → SDP → PDP pipelined chain.

    Versus the unfused pair, the intermediate surface never crosses the
    DBB (no SDP write-back, no PDP_RDMA read) and the chain pays one
    fixed launch + drain instead of two; the three compute stages are
    pipelined, so the compute term is the max of the stage rates.
    """
    atomic_c, atomic_k = config.atoms(conv.precision)
    atom = config.atom_channels(conv.precision)

    w_bytes = weight_size_bytes(conv.weight_shape, atomic_c, atomic_k, conv.precision)
    alloc = cbuf.default_split(w_bytes)
    splits = cbuf.kernel_splits(w_bytes, alloc.weight_banks)

    in_bytes = conv.input.packed_bytes(atom)
    weight_dma = mcif.stream_cycles(conv.weight_address, w_bytes)
    input_dma = mcif.stream_cycles(conv.input.address, in_bytes) * splits
    operand_dma = _sdp_operand_dma(sdp, config, mcif)

    out_atom = config.atom_channels(pdp.output.precision)
    output_dma = mcif.stream_cycles(pdp.output.address, pdp.output.packed_bytes(out_atom))

    mac_cycles = int(
        round(
            conv.padded_macs(atomic_c, atomic_k)
            / config.macs_per_cycle(conv.precision)
            / params.conv_stripe_efficiency
        )
    )
    sdp_cycles = int(
        round(
            sdp.output.elements / (config.sdp_throughput * params.post_throughput_derate)
        )
    )
    pdp_cycles = int(
        round(pdp.input.elements / (config.pdp_throughput * params.post_throughput_derate))
    )

    dma_total = weight_dma + input_dma + operand_dma + output_dma
    compute = max(mac_cycles, sdp_cycles, pdp_cycles)
    busy = max(dma_total, compute)
    total = params.op_fixed_cycles + busy + params.op_drain_cycles
    return OpTiming(
        kind="conv",
        fixed=params.op_fixed_cycles + params.op_drain_cycles,
        weight_dma=weight_dma,
        input_dma=input_dma + operand_dma,
        output_dma=output_dma,
        compute=compute,
        total=total,
        detail={
            "kernel_splits": splits,
            "weight_bytes": w_bytes,
            "macs": conv.macs,
            "padded_macs": conv.padded_macs(atomic_c, atomic_k),
            "mac_cycles": mac_cycles,
            "sdp_cycles": sdp_cycles,
            "pdp_cycles": pdp_cycles,
            "fused": "conv+sdp+pdp",
        },
    )


def sdp_op_timing(
    sdp: SdpDescriptor,
    config: HardwareConfig,
    mcif: Mcif,
    params: TimingParams,
) -> OpTiming:
    """Standalone (memory-sourced) SDP layer."""
    assert sdp.input is not None
    atom_in = config.atom_channels(sdp.input.precision)
    input_dma = mcif.stream_cycles(sdp.input.address, sdp.input.packed_bytes(atom_in))
    operand_dma = _sdp_operand_dma(sdp, config, mcif)
    atom_out = config.atom_channels(sdp.out_precision)
    output_dma = mcif.stream_cycles(sdp.output.address, sdp.output.packed_bytes(atom_out))
    compute = int(
        round(sdp.output.elements / (config.sdp_throughput * params.post_throughput_derate))
    )
    busy = max(input_dma + operand_dma + output_dma, compute)
    total = params.op_fixed_cycles + busy + params.op_drain_cycles
    return OpTiming(
        kind="sdp",
        fixed=params.op_fixed_cycles + params.op_drain_cycles,
        input_dma=input_dma + operand_dma,
        output_dma=output_dma,
        compute=compute,
        total=total,
    )


def pdp_op_timing(
    pdp: PdpDescriptor,
    config: HardwareConfig,
    mcif: Mcif,
    params: TimingParams,
) -> OpTiming:
    atom = config.atom_channels(pdp.input.precision)
    input_dma = mcif.stream_cycles(pdp.input.address, pdp.input.packed_bytes(atom))
    output_dma = mcif.stream_cycles(pdp.output.address, pdp.output.packed_bytes(atom))
    # PDP reads every input element through its line buffers.
    compute = int(
        round(pdp.input.elements / (config.pdp_throughput * params.post_throughput_derate))
    )
    busy = max(input_dma + output_dma, compute)
    total = params.op_fixed_cycles + busy + params.op_drain_cycles
    return OpTiming(
        kind="pdp",
        fixed=params.op_fixed_cycles + params.op_drain_cycles,
        input_dma=input_dma,
        output_dma=output_dma,
        compute=compute,
        total=total,
    )


def cdp_op_timing(
    cdp: CdpDescriptor,
    config: HardwareConfig,
    mcif: Mcif,
    params: TimingParams,
) -> OpTiming:
    atom = config.atom_channels(cdp.input.precision)
    input_dma = mcif.stream_cycles(cdp.input.address, cdp.input.packed_bytes(atom))
    output_dma = mcif.stream_cycles(cdp.output.address, cdp.output.packed_bytes(atom))
    compute = int(
        round(
            cdp.input.elements
            * params.lrn_work_factor
            / (config.cdp_throughput * params.post_throughput_derate)
        )
    )
    busy = max(input_dma + output_dma, compute)
    total = params.op_fixed_cycles + busy + params.op_drain_cycles
    return OpTiming(
        kind="cdp",
        fixed=params.op_fixed_cycles + params.op_drain_cycles,
        input_dma=input_dma,
        output_dma=output_dma,
        compute=compute,
        total=total,
    )


def bdma_op_timing(
    bdma: BdmaDescriptor,
    config: HardwareConfig,
    mcif: Mcif,
    params: TimingParams,
) -> OpTiming:
    read_dma = mcif.stream_cycles(bdma.src_address, bdma.total_bytes)
    write_dma = mcif.stream_cycles(bdma.dst_address, bdma.total_bytes)
    total = params.op_fixed_cycles + read_dma + write_dma
    return OpTiming(
        kind="bdma",
        fixed=params.op_fixed_cycles,
        input_dma=read_dma,
        output_dma=write_dma,
        total=total,
    )


def rubik_op_timing(
    rubik: RubikDescriptor,
    config: HardwareConfig,
    mcif: Mcif,
    params: TimingParams,
) -> OpTiming:
    atom = config.atom_channels(rubik.input.precision)
    nbytes = rubik.input.packed_bytes(atom)
    input_dma = mcif.stream_cycles(rubik.input.address, nbytes)
    output_dma = mcif.stream_cycles(rubik.output.address, nbytes)
    compute = int(round(nbytes / params.rubik_bytes_per_cycle))
    busy = max(input_dma + output_dma, compute)
    total = params.op_fixed_cycles + busy
    return OpTiming(
        kind="rubik",
        fixed=params.op_fixed_cycles,
        input_dma=input_dma,
        output_dma=output_dma,
        compute=compute,
        total=total,
    )


def _sdp_operand_dma(sdp: SdpDescriptor, config: HardwareConfig, mcif: Mcif) -> int:
    """DBB cycles for bias/BN blobs and the eltwise operand tensor."""
    cycles = 0
    channels = sdp.output.channels
    operand_item = 4 if sdp.out_precision is Precision.INT8 else 2
    if sdp.bias_address is not None:
        cycles += mcif.stream_cycles(sdp.bias_address, channels * operand_item)
    if sdp.bn_mult_address is not None:
        cycles += mcif.stream_cycles(sdp.bn_mult_address, channels * operand_item)
    if sdp.eltwise is not EltwiseOp.NONE and sdp.eltwise_input is not None:
        atom = config.atom_channels(sdp.eltwise_input.precision)
        cycles += mcif.stream_cycles(
            sdp.eltwise_input.address, sdp.eltwise_input.packed_bytes(atom)
        )
    return cycles


def estimate_csb_config_writes(kind: str) -> int:
    """Approximate register writes needed to program one op.

    Used by planning reports only; real counts come from traces.
    """
    return {"conv": 80, "sdp": 45, "pdp": 30, "cdp": 25, "bdma": 12, "rubik": 17}.get(kind, 30)
