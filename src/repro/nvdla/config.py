"""NVDLA hardware configurations.

NVDLA is parameterised RTL; the paper uses the two official
configurations:

- ``nv_small`` — 8 channel-atoms × 8 kernel-atoms = 64 INT8 MACs,
  32 KiB convolution buffer, INT8 only, 64-bit DBB.  This is what fits
  on the ZCU102 and produces Table II.
- ``nv_full`` — 64 × 32 = 2048 INT8 MACs (1024 FP16), 512 KiB CBUF,
  INT8 + FP16, 512-bit-capable DBB.  Too large for the ZCU102
  (Table I discussion); evaluated in simulation for Table III.

:class:`HardwareConfig` captures the parameters our model consumes and
supports custom points for the design-space-exploration example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import ConfigurationError


class Precision(Enum):
    """Datapath element type."""

    INT8 = "int8"
    FP16 = "fp16"

    @property
    def itemsize(self) -> int:
        return 1 if self is Precision.INT8 else 2


@dataclass(frozen=True)
class HardwareConfig:
    """One NVDLA hardware build.

    Attributes
    ----------
    name:
        Configuration name (``nv_small``, ``nv_full``, or custom).
    atomic_c:
        Channel atoms — input channels consumed per MAC-array cycle.
    atomic_k:
        Kernel atoms — output channels produced per MAC-array cycle
        (INT8; FP16 halves this because MAC cells pair up).
    cbuf_banks / cbuf_bank_bytes:
        Convolution-buffer geometry; total capacity is their product.
    precisions:
        Supported datapath element types.
    dbb_width_bits:
        Native width of the data-backbone AXI interface.
    memory_atom_bytes:
        Size of the feature/weight memory atom (packing granularity).
    sdp_throughput / pdp_throughput / cdp_throughput:
        Post-processor elements per cycle.
    mac_cells:
        Derived: total INT8 multipliers.
    """

    name: str
    atomic_c: int
    atomic_k: int
    cbuf_banks: int
    cbuf_bank_bytes: int
    precisions: tuple[Precision, ...] = (Precision.INT8,)
    dbb_width_bits: int = 64
    memory_atom_bytes: int = 8
    sdp_throughput: int = 1
    pdp_throughput: int = 1
    cdp_throughput: int = 1
    bdma_supported: bool = True
    rubik_supported: bool = True
    extra: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.atomic_c <= 0 or self.atomic_k <= 0:
            raise ConfigurationError("atomic dimensions must be positive")
        if self.atomic_c % 8 or (self.atomic_k % 4 and self.atomic_k != 1):
            raise ConfigurationError("atomics must be multiples of the memory atom lanes")
        if self.cbuf_banks <= 0 or self.cbuf_bank_bytes <= 0:
            raise ConfigurationError("CBUF geometry must be positive")
        if not self.precisions:
            raise ConfigurationError("at least one precision is required")
        if self.dbb_width_bits % 8:
            raise ConfigurationError("DBB width must be a whole number of bytes")

    @property
    def mac_cells(self) -> int:
        return self.atomic_c * self.atomic_k

    @property
    def cbuf_bytes(self) -> int:
        return self.cbuf_banks * self.cbuf_bank_bytes

    @property
    def dbb_width_bytes(self) -> int:
        return self.dbb_width_bits // 8

    def supports(self, precision: Precision) -> bool:
        return precision in self.precisions

    def macs_per_cycle(self, precision: Precision) -> int:
        """MAC operations retired per cycle at the given precision."""
        if not self.supports(precision):
            raise ConfigurationError(f"{self.name} does not support {precision.value}")
        if precision is Precision.FP16:
            return self.atomic_c * max(1, self.atomic_k // 2)
        return self.mac_cells

    def atoms(self, precision: Precision) -> tuple[int, int]:
        """(atomic_c, atomic_k) effective at the given precision."""
        if precision is Precision.FP16:
            return self.atomic_c, max(1, self.atomic_k // 2)
        return self.atomic_c, self.atomic_k

    def atom_channels(self, precision: Precision) -> int:
        """Channels per memory atom in the packed feature format."""
        return max(1, self.memory_atom_bytes // precision.itemsize)

    def describe(self) -> str:
        precisions = "+".join(p.value for p in self.precisions)
        return (
            f"{self.name}: {self.atomic_c}x{self.atomic_k} atomics "
            f"({self.mac_cells} INT8 MACs), CBUF {self.cbuf_bytes // 1024} KiB, "
            f"{precisions}, DBB {self.dbb_width_bits}-bit"
        )


NV_SMALL = HardwareConfig(
    name="nv_small",
    atomic_c=8,
    atomic_k=8,
    cbuf_banks=32,
    cbuf_bank_bytes=1024,
    precisions=(Precision.INT8,),
    dbb_width_bits=64,
    memory_atom_bytes=8,
    sdp_throughput=1,
    pdp_throughput=1,
    cdp_throughput=1,
    rubik_supported=False,
)

NV_FULL = HardwareConfig(
    name="nv_full",
    atomic_c=64,
    atomic_k=32,
    cbuf_banks=16,
    cbuf_bank_bytes=32 * 1024,
    precisions=(Precision.INT8, Precision.FP16),
    dbb_width_bits=512,
    memory_atom_bytes=32,
    sdp_throughput=16,
    pdp_throughput=8,
    cdp_throughput=8,
)

CONFIGS: dict[str, HardwareConfig] = {
    "nv_small": NV_SMALL,
    "nv_full": NV_FULL,
}


def get_config(name: str) -> HardwareConfig:
    """Look up a named configuration."""
    try:
        return CONFIGS[name]
    except KeyError:
        known = ", ".join(sorted(CONFIGS))
        raise ConfigurationError(f"unknown NVDLA config {name!r} (known: {known})") from None
