"""Functional kernels for the NVDLA datapath.

These implement the arithmetic of the hardware units on NumPy arrays:
direct convolution (im2col), the SDP post-processing chain, pooling,
LRN and eltwise.  Integer paths accumulate in int64 (hardware uses
int32 accumulators with saturation applied by the SDP converter —
saturation is applied at the same point here); FP16 paths accumulate
in float32, like CMAC's FP16 pipeline.

They are intentionally *not* shared with :mod:`repro.nn.reference`
(the float reference executor) so that an arithmetic bug in one cannot
cancel out in validation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.nvdla.descriptors import EltwiseOp, PoolMode


def conv2d_direct(
    x: np.ndarray,
    w: np.ndarray,
    stride: tuple[int, int],
    pad: tuple[int, int, int, int],
) -> np.ndarray:
    """Direct convolution, CHW input and KCRS weights.

    Returns int64 accumulators for integer inputs and float32 for
    floating inputs (matching CMAC/CACC accumulation).
    ``pad`` is (top, bottom, left, right).
    """
    if x.ndim != 3 or w.ndim != 4:
        raise ConfigurationError("conv2d expects CHW input and KCRS weights")
    c, h, width = x.shape
    k, wc, r, s = w.shape
    if wc != c:
        raise ConfigurationError(f"channel mismatch: input {c}, weights {wc}")
    stride_y, stride_x = stride
    pad_top, pad_bottom, pad_left, pad_right = pad

    integer = np.issubdtype(x.dtype, np.integer)
    acc_dtype = np.int64 if integer else np.float32
    # Integer products are computed exactly in float64 (|a*b| <= 127^2,
    # sums below 2^53 for any layer in the zoo), then rounded back —
    # this keeps the hot path in BLAS instead of slow object loops.
    compute_dtype = np.float64 if integer else np.float32

    padded = np.pad(
        x.astype(compute_dtype),
        ((0, 0), (pad_top, pad_bottom), (pad_left, pad_right)),
        mode="constant",
    )
    ph, pw = padded.shape[1], padded.shape[2]
    out_h = (ph - r) // stride_y + 1
    out_w = (pw - s) // stride_x + 1
    if out_h <= 0 or out_w <= 0:
        raise ConfigurationError("convolution output would be empty")

    # im2col via stride tricks: windows[c, r, s, oh, ow]
    cs, hs, ws = padded.strides
    windows = np.lib.stride_tricks.as_strided(
        padded,
        shape=(c, r, s, out_h, out_w),
        strides=(cs, hs, ws, hs * stride_y, ws * stride_x),
        writeable=False,
    )
    cols = windows.reshape(c * r * s, out_h * out_w)
    kernel = w.astype(compute_dtype).reshape(k, c * r * s)
    acc = kernel @ cols
    result = acc.reshape(k, out_h, out_w)
    if integer:
        return np.rint(result).astype(acc_dtype)
    return result.astype(acc_dtype)


def apply_bias(acc: np.ndarray, bias: np.ndarray | None) -> np.ndarray:
    """Per-output-channel bias addition on the accumulator."""
    if bias is None:
        return acc
    if bias.shape[0] != acc.shape[0]:
        raise ConfigurationError(f"bias channels {bias.shape[0]} != output channels {acc.shape[0]}")
    return acc + bias.reshape(-1, 1, 1).astype(acc.dtype)


def apply_batchnorm(acc: np.ndarray, mult: np.ndarray | None) -> np.ndarray:
    """Per-channel multiplier (folded batch-norm scale)."""
    if mult is None:
        return acc
    if mult.shape[0] != acc.shape[0]:
        raise ConfigurationError("batch-norm multiplier channel mismatch")
    return acc * mult.reshape(-1, 1, 1)


def apply_eltwise(acc: np.ndarray, op: EltwiseOp, operand: np.ndarray | None) -> np.ndarray:
    if op is EltwiseOp.NONE:
        return acc
    if operand is None:
        raise ConfigurationError("eltwise operand missing")
    operand = operand.astype(acc.dtype)
    if op is EltwiseOp.ADD:
        return acc + operand
    if op is EltwiseOp.MUL:
        return acc * operand
    return np.maximum(acc, operand)


def apply_relu(acc: np.ndarray, enabled: bool) -> np.ndarray:
    if not enabled:
        return acc
    return np.maximum(acc, 0)


def requantize_int8(acc: np.ndarray, multiplier: int, shift: int) -> np.ndarray:
    """Output converter: ``clamp(round(acc * mult / 2^shift))`` to int8."""
    scaled = acc.astype(np.int64) * int(multiplier)
    if shift > 0:
        half = np.int64(1) << (shift - 1)
        scaled = (scaled + np.sign(scaled) * half) >> shift
    return np.clip(scaled, -128, 127).astype(np.int8)


def convert_fp16(acc: np.ndarray, multiplier: int = 1, shift: int = 0) -> np.ndarray:
    """FP16 output converter with an optional power-of-two rescale."""
    scale = multiplier / float(1 << shift)
    return (acc.astype(np.float32) * scale).astype(np.float16)


def pool2d(
    x: np.ndarray,
    mode: PoolMode,
    kernel: tuple[int, int],
    stride: tuple[int, int],
    pad: tuple[int, int, int, int],
) -> np.ndarray:
    """Pooling on a CHW tensor.  ``pad`` is (top, bottom, left, right).

    Average pooling divides by the full window size with zero padding
    (NVDLA PDP behaviour with exclusive-pad disabled).
    """
    kernel_h, kernel_w = kernel
    stride_y, stride_x = stride
    pad_top, pad_bottom, pad_left, pad_right = pad
    integer = np.issubdtype(x.dtype, np.integer)
    work = x.astype(np.float64 if integer else np.float32)

    if mode is PoolMode.MAX:
        fill = -np.inf
    elif mode is PoolMode.MIN:
        fill = np.inf
    else:
        fill = 0.0
    padded = np.pad(
        work,
        ((0, 0), (pad_top, pad_bottom), (pad_left, pad_right)),
        mode="constant",
        constant_values=fill,
    )
    c, ph, pw = padded.shape
    out_h = (ph - kernel_h) // stride_y + 1
    out_w = (pw - kernel_w) // stride_x + 1
    cs, hs, ws = padded.strides
    windows = np.lib.stride_tricks.as_strided(
        padded,
        shape=(c, out_h, out_w, kernel_h, kernel_w),
        strides=(cs, hs * stride_y, ws * stride_x, hs, ws),
        writeable=False,
    )
    if mode is PoolMode.MAX:
        result = windows.max(axis=(3, 4))
    elif mode is PoolMode.MIN:
        result = windows.min(axis=(3, 4))
    else:
        result = windows.sum(axis=(3, 4)) / float(kernel_h * kernel_w)
    if integer:
        return np.clip(np.rint(result), -128, 127).astype(x.dtype)
    return result.astype(x.dtype)


def lrn(x: np.ndarray, local_size: int, alpha: float, beta: float, k: float) -> np.ndarray:
    """Local response normalisation across channels (AlexNet/GoogleNet).

    ``y_c = x_c / (k + alpha/n * sum_{c'} x_{c'}^2) ** beta`` over a
    window of ``n = local_size`` channels centred on ``c``.
    """
    work = x.astype(np.float32)
    c = work.shape[0]
    squared = work * work
    half = local_size // 2
    sums = np.zeros_like(work)
    for offset in range(-half, half + 1):
        lo = max(0, -offset)
        hi = min(c, c - offset)
        sums[lo:hi] += squared[lo + offset : hi + offset]
    denom = (k + (alpha / local_size) * sums) ** beta
    result = work / denom
    if np.issubdtype(x.dtype, np.integer):
        return np.clip(np.rint(result), -128, 127).astype(x.dtype)
    return result.astype(x.dtype)
