"""Baselines the paper compares against.

The Table II comparison column is Giri et al. [8] — "Ariane + NVDLA:
seamless third-party IP integration with ESP" — a 64-bit RISC-V SoC
running NVDLA at 50 MHz under a Linux kernel driver stack.  The paper
credits its speedup to removing exactly that stack, so the baseline
model here keeps the *same accelerator timing model* and adds the
software overheads a kernel-mediated flow pays:

- one-time runtime initialisation (device open, loadable parse, DMA
  buffer allocation and input copy),
- per-hardware-layer submission (ioctl into the KMD, descriptor
  validation, MMIO programming at kernel latency),
- per-completion interrupt delivery (top half → bottom half → user
  wakeup),
- output copy back to user space.

Constants are calibrated against the two published ESP data points
(LeNet-5 263 ms, ResNet-50 2.5 s at 50 MHz) and documented in
EXPERIMENTS.md.
"""

from repro.baseline.linux_driver import LinuxDriverModel, LinuxOverheadParams, LinuxRunResult
from repro.baseline.esp_platform import EspPlatform, run_esp_baseline

__all__ = [
    "EspPlatform",
    "LinuxDriverModel",
    "LinuxOverheadParams",
    "LinuxRunResult",
    "run_esp_baseline",
]
