"""The ESP comparison platform (Giri et al. [8]).

Ariane (64-bit RISC-V) + NVDLA nv_small on an FPGA at 50 MHz, with
the standard Linux user-mode/kernel-mode NVDLA driver stack — the
"Proc. Time @50MHz" column of the paper's Table II (LeNet-5 263 ms,
ResNet-50 2.5 s, ResNet-18 not reported).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baseline.linux_driver import LinuxDriverModel, LinuxOverheadParams, LinuxRunResult
from repro.compiler import CompileOptions, compile_network
from repro.compiler.loadable import Loadable
from repro.nn.graph import Network
from repro.nvdla.config import HardwareConfig, NV_SMALL, Precision

#: Published measurements (milliseconds at 50 MHz) from [8] as quoted
#: in the paper's Table II.
ESP_PUBLISHED_MS = {"lenet5": 263.0, "resnet50": 2500.0}


@dataclass
class EspPlatform:
    """Ariane + NVDLA under ESP/Linux at 50 MHz."""

    config: HardwareConfig = NV_SMALL
    frequency_hz: float = 50e6
    params: LinuxOverheadParams = LinuxOverheadParams()

    def run(self, loadable: Loadable) -> LinuxRunResult:
        model = LinuxDriverModel(
            self.config, frequency_hz=self.frequency_hz, params=self.params
        )
        return model.run(loadable)


def run_esp_baseline(
    net: Network,
    config: HardwareConfig = NV_SMALL,
    precision: Precision = Precision.INT8,
) -> LinuxRunResult:
    """Compile and time ``net`` on the ESP baseline platform."""
    loadable = compile_network(net, config, CompileOptions(precision=precision))
    return EspPlatform(config=config).run(loadable)
