"""Linux kernel driver-stack overhead model.

The accelerator does the same work in the same number of accelerator
cycles; what changes against the bare-metal flow is everything around
it.  The model's terms, in CPU cycles at the platform frequency:

``total = runtime_init + input_copy + Σ_ops (submit + hw_op + irq_path)
          + output_copy``

Defaults are calibrated so the ESP data points the paper quotes are
reproduced: the dominant term for small models is the fixed runtime
initialisation (loadable parsing + DMA buffer setup, ~250 ms at
50 MHz), which is why the paper's bare-metal LeNet-5 beats the ESP
number by ~55x while ResNet-50 — dominated by accelerator time —
improves only ~2.3x.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.loadable import Loadable
from repro.errors import ExperimentError
from repro.nvdla.config import HardwareConfig
from repro.vp import NvdlaRuntime, VirtualPlatform


@dataclass(frozen=True)
class LinuxOverheadParams:
    """Software-stack cost model (cycles at the platform clock)."""

    runtime_init_cycles: int = 12_200_000  # open/mmap/parse/alloc (~244 ms @50 MHz)
    submit_cycles_per_op: int = 30_000  # ioctl + KMD descriptor validation
    irq_path_cycles_per_op: int = 12_000  # irq → bottom half → user wakeup
    copy_bytes_per_cycle: float = 4.0  # kernel memcpy bandwidth


@dataclass
class LinuxRunResult:
    """Latency breakdown of one kernel-mediated inference."""

    cycles: int
    seconds: float
    hw_cycles: int
    init_cycles: int
    submit_cycles: int
    irq_cycles: int
    copy_cycles: int
    ops: int
    breakdown: dict = field(default_factory=dict)

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3

    @property
    def software_fraction(self) -> float:
        return 1.0 - self.hw_cycles / self.cycles if self.cycles else 0.0


class LinuxDriverModel:
    """Executes a loadable under the modelled kernel driver stack."""

    def __init__(
        self,
        config: HardwareConfig,
        frequency_hz: float = 50e6,
        params: LinuxOverheadParams | None = None,
    ) -> None:
        self.config = config
        self.frequency_hz = frequency_hz
        self.params = params or LinuxOverheadParams()

    def run(self, loadable: Loadable) -> LinuxRunResult:
        """Time one inference (accelerator timing via the VP model)."""
        if loadable.config != self.config.name:
            raise ExperimentError(
                f"loadable is for {loadable.config}, baseline is {self.config.name}"
            )
        platform = VirtualPlatform(self.config, fidelity="timing", trace=False)
        runtime = NvdlaRuntime(platform)
        runtime.deploy(loadable)
        hw_cycles = 0
        op_count = loadable.hw_op_count()
        import numpy as np

        runtime.set_input(np.zeros(loadable.input_tensor.shape, dtype=np.float32))
        result = runtime.execute()
        hw_cycles = result.cycles

        params = self.params
        input_bytes = loadable.memory_map.input.size
        output_bytes = loadable.output_tensor.packed_bytes(
            self.config.atom_channels(loadable.output_tensor.precision)
        )
        copy_cycles = int((input_bytes + output_bytes) / params.copy_bytes_per_cycle)
        submit = params.submit_cycles_per_op * op_count
        irq = params.irq_path_cycles_per_op * op_count
        total = params.runtime_init_cycles + copy_cycles + submit + irq + hw_cycles
        return LinuxRunResult(
            cycles=total,
            seconds=total / self.frequency_hz,
            hw_cycles=hw_cycles,
            init_cycles=params.runtime_init_cycles,
            submit_cycles=submit,
            irq_cycles=irq,
            copy_cycles=copy_cycles,
            ops=op_count,
            breakdown={
                "init_ms": params.runtime_init_cycles / self.frequency_hz * 1e3,
                "hw_ms": hw_cycles / self.frequency_hz * 1e3,
                "submit_ms": submit / self.frequency_hz * 1e3,
                "irq_ms": irq / self.frequency_hz * 1e3,
                "copy_ms": copy_cycles / self.frequency_hz * 1e3,
            },
        )
