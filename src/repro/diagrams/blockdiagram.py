"""ASCII block diagrams generated from live objects.

Each renderer takes the object it depicts (a
:class:`~repro.baremetal.pipeline.BaremetalBundle`, a
:class:`~repro.core.soc.Soc`, a
:class:`~repro.vp.platform.VirtualPlatform`, a
:class:`~repro.core.system_builder.TestSystem`) and annotates the
boxes with that instance's real parameters — artefact sizes, bus
widths, address windows, clock frequencies.
"""

from __future__ import annotations

from repro.baremetal.pipeline import BaremetalBundle
from repro.core.soc import Soc
from repro.core.system_builder import TestSystem
from repro.vp.platform import VirtualPlatform


def _box(lines: list[str], width: int | None = None) -> list[str]:
    width = width or max(len(line) for line in lines)
    top = "+" + "-" * (width + 2) + "+"
    body = [f"| {line:<{width}} |" for line in lines]
    return [top, *body, top]


def render_fig1_software_flow(bundle: BaremetalBundle) -> str:
    """Fig. 1: the offline software-generation flow, with the sizes of
    this bundle's actual artefacts on the arrows."""
    stages = [
        _box([f"trained model: {bundle.network}", f"precision: {bundle.precision.value}"]),
        _box(
            [
                "NVDLA compiler",
                f"{bundle.loadable.hw_op_count()} hw ops, "
                f"{len(bundle.loadable.weight_blob) // 1024} KiB weights",
            ]
        ),
        _box(
            [
                "virtual platform (QEMU+SystemC equiv.)",
                f"trace: {len(bundle.trace.csb)} csb + {len(bundle.trace.dbb)} dbb",
            ]
        ),
        _box(
            [
                "trace converter",
                f"config file: {len(bundle.commands)} read/write_reg commands",
            ]
        ),
        _box(
            [
                "RISC-V assembler (Codasip SDK equiv.)",
                f"program: {len(bundle.program.words)} words "
                f"({bundle.program.size_bytes // 1024} KiB .mem)",
            ]
        ),
        _box(
            [
                "deployment images",
                *(
                    f"{img.name}: {img.size // 1024} KiB @ 0x{img.load_address:08x}"
                    for img in bundle.images.preload
                ),
            ]
        ),
    ]
    arrow = "          |\n          v"
    parts: list[str] = ["Fig. 1 — software generation flow (offline, model-specific)"]
    for index, stage in enumerate(stages):
        parts.extend(stage)
        if index < len(stages) - 1:
            parts.append(arrow)
    return "\n".join(parts)


def render_fig2_soc(soc: Soc) -> str:
    """Fig. 2: the SoC, annotated from the live instance."""
    m = soc.address_map
    mhz = soc.clock.frequency_hz / 1e6
    dbb = soc.config.dbb_width_bits
    mem = soc.memory_bus_width_bits
    return f"""Fig. 2 — the system-on-chip ({mhz:g} MHz system clock)

 +----------------+   AHB-Lite    +---------------------------------+
 | uRISC-V core   |==============>| system bus                      |
 | RV32IM 4-stage |  (I: BRAM     |  decoder:                       |
 +----------------+   D: below)   |   NVDLA 0x{m.nvdla_base:06x}..0x{m.nvdla_limit:06x}    |
        ^                         |   DRAM  0x{m.dram_base:06x}..0x{m.dram_limit:06x}  |
        | 1-cycle                 +----+-------------------------+--+
 +------+---------+                    | AHB                     | AHB
 | program memory |                    v                         v
 | BRAM {soc.program_memory.size // 1024:>4} KiB  |      +-------------------+     +-------------+
 +----------------+      | NVDLA wrapper     |     | AHB->AXI    |
                          |  AHB->APB bridge  |     | bridge      |
                          |  APB->CSB adapter |     +------+------+
                          |  +-------------+  |            |
                          |  | NVDLA       |  |            v
                          |  | {soc.config.name:<11} |  |     +-------------+
                          |  | {soc.config.mac_cells:>4} MACs   |  |     | arbiter     |
                          |  +------+------+  |     | cpu | dbb  |
                          |         | DBB {dbb:>3}b |     +------+------+
                          |         v         |            |
                          |  +-------------+  |            v
                          |  | AXI width   |  |     +-------------+
                          |  | conv {dbb:>3}->{mem:<3}|==+====>| DRAM        |
                          |  +-------------+  |     | {soc.dram.size // (1 << 20):>4} MiB    |
                          +-------------------+     +-------------+
"""


def render_fig3_virtual_platform(platform: VirtualPlatform) -> str:
    """Fig. 3: the NVDLA virtual platform."""
    trace = platform.trace
    csb = len(trace.csb) if trace else 0
    dbb = len(trace.dbb) if trace else 0
    return f"""Fig. 3 — NVDLA virtual platform ({platform.config.name})

 +------------------+   csb_adaptor    +------------------+
 | runtime (UMD/KMD |=================>| NVDLA model      |
 | equivalent)      |  {csb:>7} logged  |  {platform.config.mac_cells:>5} MACs      |
 +------------------+  register ops    |  CBUF {platform.config.cbuf_bytes // 1024:>4} KiB   |
          |                            +---------+--------+
          | deploy loadable,                     | dbb_adaptor
          | preload weights/input                | {dbb:>7} logged lines
          v                                      v
 +--------------------------------------------------------+
 | flat system memory ({platform.memory.size // (1 << 20)} MiB window)                   |
 | same address map as the SoC -> traces replay unchanged |
 +--------------------------------------------------------+
"""


def render_fig4_test_setup(system: TestSystem) -> str:
    """Fig. 4: the Vivado block design of the overall test setup."""
    soc = system.soc
    preload = system.preload_result
    preload_note = (
        f"{preload.bytes_loaded // 1024} KiB preloaded in {preload.seconds * 1e3:.2f} ms"
        if preload
        else "not yet preloaded"
    )
    return f"""Fig. 4 — overall system set-up on the ZCU102 ({preload_note})

 +-----------+     +--------------+     +-----------------+     +----------+
 | Zynq PS   |====>| AXI          |====>| AXI Interconnect|====>| MIG DDR4 |
 | (ARM)     |     | SmartConnect |     | {system.axi_interconnect.fast_hz / 1e6:g}/{system.axi_interconnect.slow_hz / 1e6:g} MHz CDC  |     | {soc.dram.size // (1 << 20)} MiB  |
 | preloads  |     | owner: {system.smartconnect.selected:<5} |     +-----------------+     +----+-----+
 | .bin files|     +------+-------+                                  ^
 +-----------+            ^                                          |
                           |  (exclusive mux)                        |
                    +------+-------------------------------------+   |
                    | our SoC (Fig. 2) @ {soc.clock.frequency_hz / 1e6:g} MHz               |===+
                    | uRISC-V + {soc.config.name} NVDLA + program BRAM   |
                    +--------------------------------------------+
"""
