"""Diagram renderers for the paper's figures.

The paper's four figures are architecture/flow diagrams, so their
reproduction is a renderer that draws each one *from the live system
objects* — if the SoC wiring or the flow stages change, the diagrams
change with them, which keeps them honest.
"""

from repro.diagrams.blockdiagram import (
    render_fig1_software_flow,
    render_fig2_soc,
    render_fig3_virtual_platform,
    render_fig4_test_setup,
)

__all__ = [
    "render_fig1_software_flow",
    "render_fig2_soc",
    "render_fig3_virtual_platform",
    "render_fig4_test_setup",
]
