"""Command-line interface.

Exposes the flows a downstream user runs most::

    python -m repro info
    python -m repro run --model lenet5 --config nv_small
    python -m repro run --model lenet5 --mode fast
    python -m repro analyze --models all --config nv_small --out diags.json
    python -m repro flow --model lenet5 --out artifacts/
    python -m repro table1 | table2 | table3
    python -m repro serve --models lenet5,resnet18 --requests 32
    python -m repro serve --mode fast --calibration cal.json
    python -m repro serve --processes 4 --arrival poisson --rps 200
    python -m repro bench-serve --requests 8
    python -m repro bench-serve --mode fast --processes 4
    python -m repro bench-cluster --policy all --arrival poisson --rps 100 --seed 7
    python -m repro calibrate --models lenet5,resnet18 --out cal.json
    python -m repro synth --config nv_full
    python -m repro sanity --trace conv
    python -m repro warmup --models lenet5,resnet18 --store .repro-store
    python -m repro store ls | verify | gc
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.nvdla.config import CONFIGS, Precision, get_config


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.nn.zoo import ZOO

    print("NVDLA configurations:")
    for config in CONFIGS.values():
        print(f"  {config.describe()}")
    print("\nmodel zoo:")
    for name, builder in ZOO.items():
        net = builder()
        print(
            f"  {name:<10} {net.layer_count():>4} layers "
            f"{net.parameter_count():>12,} params "
            f"{net.model_size_bytes() / 1e6:>7.1f} MB fp32  in={net.input_shape}"
        )
    return 0


def _calibration_for_cli(
    models: list[str],
    config,
    precision: Precision,
    fidelity: str,
    path: str | None,
    memory_bus_width_bits: int = 32,
):
    """Load a saved calibration table, or fit one and optionally save it.

    A loaded table must cover every requested model (at the requested
    memory width); if it does not, the requested set is recalibrated
    and the old table's other entries are merged back in before
    re-saving, so accumulated validation work is never dropped.
    """
    from pathlib import Path as _Path

    from repro.core import CalibrationTable, calibrate

    saved = None
    if path and _Path(path).exists():
        saved = CalibrationTable.load(path)
        if all(
            saved.has(m, config.name, precision, memory_bus_width_bits) for m in models
        ):
            print(f"calibration: loaded {path} ({len(saved)} entries)")
            return saved
        print(f"calibration: {path} missing entries, recalibrating...")
    print(f"calibrating {','.join(models)} on {config.name} (one cycle-accurate run each)...")
    table = calibrate(
        tuple(models),
        config,
        precision=precision,
        fidelity=fidelity,
        memory_bus_width_bits=memory_bus_width_bits,
    )
    if saved is not None:
        table.merge(saved)
    if path:
        table.save(path)
        print(f"calibration: saved {path}")
    return table


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.baremetal import execute_bundle, generate_baremetal
    from repro.nn.zoo import ZOO
    from repro.serve import shared_cache

    config = get_config(args.config)
    precision = Precision(args.precision)
    print(
        f"running {args.model} on {config.name} "
        f"({precision.value}, {args.fidelity}, {args.mode})..."
    )
    from repro.compiler import CompileOptions

    options = CompileOptions(precision=precision, fusion=args.fusion)
    calibration = None
    if args.mode == "fast":
        calibration = _calibration_for_cli(
            [args.model], config, precision, args.fidelity, args.calibration,
            memory_bus_width_bits=args.memory_width,
        )
        bundle = shared_cache().bundle_for(
            args.model, config, precision=precision, fidelity=args.fidelity,
            compile_options=options,
        )
    else:
        bundle = generate_baremetal(
            ZOO[args.model](), config, precision=precision, fidelity=args.fidelity,
            compile_options=options,
        )
    if args.verify:
        from repro.analyze import analyze_bundle

        analysis = analyze_bundle(bundle)
        if not analysis.clean:
            print(analysis.render())
            return 1
        print(
            f"static analysis: clean ({analysis.chains} chains, "
            f"{analysis.surfaces} surfaces)"
        )
    result = execute_bundle(
        bundle,
        execution_mode=args.mode,
        frequency_hz=args.frequency_mhz * 1e6,
        memory_bus_width_bits=args.memory_width,
        calibration=calibration,
    )
    status = "DONE" if result.ok else f"FAIL (command {result.fail_index})"
    print(f"status:  {status}")
    print(f"latency: {result.cycles:,} cycles = {result.milliseconds:.3f} ms @ {args.frequency_mhz:g} MHz")
    print(f"hw ops:  {len(result.op_records)}  program: {len(bundle.program.words)} words")
    return 0 if result.ok else 1


def _cmd_analyze(args: argparse.Namespace) -> int:
    """Compile-only static verification: no VP, no ISS, no engine."""
    import json
    import time

    from repro.analyze import analyze_loadable, pass_ids
    from repro.compiler import CompileOptions, compile_network
    from repro.nn.zoo import ZOO

    config = get_config(args.config)
    precision = Precision(args.precision)
    models = _parse_models(args.models)
    print(
        f"analyzing {len(models)} model(s) on {config.name} ({precision.value}); "
        f"passes: {', '.join(pass_ids())}"
    )
    reports = []
    failures = 0
    for model in models:
        loadable = compile_network(
            ZOO[model](), config, CompileOptions(precision=precision, fusion=args.fusion)
        )
        began = time.perf_counter()
        report = analyze_loadable(loadable, config, artifact=f"{model}/{config.name}")
        elapsed_ms = (time.perf_counter() - began) * 1e3
        verdict = "clean" if report.clean else f"{len(report.errors)} error(s)"
        print(
            f"  {model:<10} {report.chains} chains, {report.surfaces} surfaces: "
            f"{verdict} ({elapsed_ms:.1f} ms)"
        )
        if not report.clean or args.verbose:
            print(report.render(verbose=args.verbose))
        failures += 0 if report.clean else 1
        reports.append(report.to_dict())
    if args.out:
        out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(json.dumps(
            {"config": config.name, "precision": precision.value, "reports": reports},
            indent=2, sort_keys=True,
        ))
        print(f"diagnostics written to {args.out}")
    return 1 if failures else 0


def _cmd_flow(args: argparse.Namespace) -> int:
    from repro.baremetal import generate_baremetal
    from repro.nn.caffe_proto import to_prototxt
    from repro.nn.zoo import ZOO

    config = get_config(args.config)
    net = ZOO[args.model]()
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    bundle = generate_baremetal(net, config, precision=Precision(args.precision))
    (out / f"{args.model}.prototxt").write_text(to_prototxt(net))
    (out / f"{args.model}.cfg").write_text(bundle.config_file_text)
    (out / f"{args.model}.S").write_text(bundle.assembly)
    (out / f"{args.model}.mem").write_text(bundle.images.program_mem)
    (out / "vp_trace.log").write_text(bundle.trace.render())
    for image in bundle.images.preload:
        (out / image.name).write_bytes(image.data)
    print(bundle.describe())
    print(f"artefacts written to {out.resolve()}")
    return 0


def _cmd_table(args: argparse.Namespace, which: int) -> int:
    from repro.harness import format_table, run_table1, run_table2, run_table3

    if which == 1:
        print(run_table1().render())
        return 0
    if which == 2:
        rows = run_table2()
        print(
            format_table(
                ["model", "ms@100MHz", "paper ms", "ratio", "ESP ms"],
                [
                    [r.model, f"{r.ms_at_100mhz:.1f}", f"{r.paper_ms:g}", f"{r.ratio:.2f}",
                     f"{r.baseline_ms:.0f}" if r.baseline_ms else "-"]
                    for r in rows
                ],
                title="Table II — nv_small FPGA results",
            )
        )
        return 0
    rows = run_table3()
    print(
        format_table(
            ["model", "cycles", "paper cycles", "ratio"],
            [[r.model, f"{r.cycles:,}", f"{r.paper_cycles:,}", f"{r.ratio:.2f}"] for r in rows],
            title="Table III — nv_full simulation results (FP16)",
        )
    )
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    from repro.fpga import DEVICES, synthesize

    config = get_config(args.config)
    device = DEVICES[args.device]
    result = synthesize(config, device)
    print(result.render())
    return 0 if result.fits else 2


def _parse_models(models_arg: str) -> list[str]:
    """Validated zoo-model list from a comma-separated CLI value."""
    from repro.nn.zoo import ZOO

    if models_arg.strip() == "all":
        return sorted(ZOO)
    models = [m.strip() for m in models_arg.split(",") if m.strip()]
    if not models:
        raise SystemExit("--models needs at least one zoo model")
    unknown = [m for m in models if m not in ZOO]
    if unknown:
        raise SystemExit(f"unknown zoo model(s) {unknown}; known: {sorted(ZOO)}")
    return models


def _build_workload(args: argparse.Namespace):
    """Round-robin mixed-model request list from the CLI options."""
    import numpy as np

    from repro.nn.zoo import ZOO
    from repro.serve import DeploymentSpec, make_input_for

    models = _parse_models(args.models)
    deployments = [
        DeploymentSpec(
            model,
            config=args.config,
            precision=Precision(args.precision),
            fidelity=args.fidelity,
            execution_mode=getattr(args, "mode", "cycle_accurate"),
        )
        for model in models
    ]
    rng = np.random.default_rng(args.seed)
    # Build each zoo network once per deployment, not once per request
    # (instantiation initialises every weight tensor).
    nets = {d.model: ZOO[d.model]() for d in deployments}
    workload = []
    for index in range(args.requests):
        deployment = deployments[index % len(deployments)]
        workload.append((deployment, make_input_for(nets[deployment.model], rng)))
    return workload


def _serve_calibration(args: argparse.Namespace):
    """The calibration table a fast-mode serve workload needs."""
    if getattr(args, "mode", "cycle_accurate") != "fast":
        return None
    models = [m.strip() for m in args.models.split(",") if m.strip()]
    return _calibration_for_cli(
        models,
        get_config(args.config),
        Precision(args.precision),
        args.fidelity,
        args.calibration,
    )


def _arrival_gaps(args: argparse.Namespace, count: int) -> list[float] | None:
    """Inter-arrival delays for the plane's streaming intake."""
    import numpy as np

    arrival = getattr(args, "arrival", "none")
    if arrival == "none" or count == 0:
        return None
    if args.rps <= 0:
        raise SystemExit("--rps must be positive for paced arrivals")
    if arrival == "constant":
        return [1.0 / args.rps] * count
    rng = np.random.default_rng((args.seed, 0xA221))  # arrivals stream
    return list(rng.exponential(1.0 / args.rps, size=count))


def _serve_tracer(args: argparse.Namespace):
    """An enabled tracer when --trace-out was given, else the null one."""
    from repro.obs import NULL_TRACER, Tracer

    if getattr(args, "trace_out", None):
        return Tracer(enabled=True, process=-1)
    return NULL_TRACER


def _write_trace_out(args: argparse.Namespace, tracer) -> None:
    """Flush collected spans to --trace-out (.jsonl or Perfetto .json)."""
    if not tracer.enabled:
        return
    from repro.obs import write_trace

    count = write_trace(args.trace_out, tracer.finished)
    print(f"{count} spans written to {args.trace_out}")


def _write_metrics_out(args: argparse.Namespace, registry) -> None:
    """Dump a MetricsRegistry snapshot to --metrics-out as JSON."""
    import json

    if not getattr(args, "metrics_out", None):
        return
    Path(args.metrics_out).write_text(
        json.dumps(registry.to_dict(), indent=2, sort_keys=True)
    )
    print(f"metrics written to {args.metrics_out}")


def _cmd_serve_plane(args: argparse.Namespace, store) -> int:
    """`serve --processes N`: the process-parallel plane."""
    from repro.serve import BundleCache, ServingPlane

    tracer = _serve_tracer(args)
    plane = ServingPlane(
        processes=args.processes,
        max_batch_size=args.batch_size,
        input_seed=args.seed,
        calibration=_serve_calibration(args),
        cache=BundleCache(store=store) if store is not None else None,
        tracer=tracer,
    )
    workload = _build_workload(args)
    print(
        f"serving {len(workload)} requests over "
        f"{len({d for d, _ in workload})} deployment(s) on {args.config} "
        f"across {args.processes} worker processes..."
    )
    with plane:
        requests = [plane.request(d, image) for d, image in workload]
        responses = plane.serve(requests, _arrival_gaps(args, len(requests)))
    failures = [r for r in responses if not r.ok]
    print(plane.metrics.render())
    _write_trace_out(args, tracer)
    _write_metrics_out(args, plane.metrics.registry)
    if failures:
        print(f"FAILED requests: {[r.request_id for r in failures]}")
    return 1 if failures else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import BundleCache, InferenceService, shared_cache

    if args.processes > 1:
        return _cmd_serve_plane(args, _open_store(args))

    # The shared cache keeps fast-mode calibration (which already built
    # every deployment's bundle) and the service on one set of builds.
    # One --seed drives both the workload inputs and anything the
    # service synthesises itself, so a serve run replays exactly.
    # With --store, misses try the persistent store before compiling
    # (and the shared in-process cache is bypassed so the store path is
    # actually exercised).
    store = _open_store(args)
    tracer = _serve_tracer(args)
    service = InferenceService(
        cache=BundleCache(store=store) if store is not None else shared_cache(),
        max_batch_size=args.batch_size,
        workers_per_key=args.workers,
        input_seed=args.seed,
        calibration=_serve_calibration(args),
        tracer=tracer,
    )
    workload = _build_workload(args)
    print(
        f"serving {len(workload)} requests over "
        f"{len({d for d, _ in workload})} deployment(s) on {args.config}..."
    )
    for deployment, image in workload:
        service.request(deployment, image)
    responses = service.run_pending()
    failures = [r for r in responses if not r.ok]
    print(service.metrics.render())
    _write_trace_out(args, tracer)
    _write_metrics_out(args, service.metrics.registry)
    if failures:
        print(f"FAILED requests: {[r.request_id for r in failures]}")
    return 1 if failures else 0


def _bench_serve_processes(args: argparse.Namespace) -> int:
    """`bench-serve --processes N`: N worker processes vs the
    single-process service, same workload, bit-identity checked."""
    import time

    import numpy as np

    from repro.serve import BundleCache, InferenceService, ServingPlane, shared_cache

    workload = _build_workload(args)
    n = len(workload)
    unique = list(dict.fromkeys(d for d, _ in workload))
    calibration = _serve_calibration(args)
    store = _open_store(args)
    cache = BundleCache(store=store) if store is not None else shared_cache()

    service = InferenceService(
        cache=cache,
        max_batch_size=args.batch_size,
        workers_per_key=args.workers,
        input_seed=args.seed,
        calibration=calibration,
    )
    # Warm: compile every deployment once so both timed windows measure
    # steady-state serving, not the offline flow.
    for deployment, image in workload[: len(unique)]:
        service.request(deployment, image)
    service.run_pending()

    began = time.perf_counter()
    for deployment, image in workload:
        service.request(deployment, image)
    # Sorted by id = workload order, matching the plane's return order.
    single_responses = sorted(service.run_pending(), key=lambda r: r.request_id)
    single_s = time.perf_counter() - began

    tracer = _serve_tracer(args)
    plane = ServingPlane(
        processes=args.processes,
        max_batch_size=args.batch_size,
        input_seed=args.seed,
        calibration=calibration,
        cache=cache,
        tracer=tracer,
    )
    with plane:
        plane.warm(unique)
        requests = [plane.request(d, image) for d, image in workload]
        began = time.perf_counter()
        multi_responses = plane.serve(requests, _arrival_gaps(args, n))
        multi_s = time.perf_counter() - began

    if any(not r.ok for r in single_responses + multi_responses):
        print("serve run failed")
        return 1
    mismatches = [
        s.request_id
        for s, m in zip(single_responses, multi_responses)
        if not np.array_equal(s.output, m.output) or s.cycles != m.cycles
    ]
    print(f"1 process      : {single_s:.2f} s  ({n / single_s:.2f} req/s)")
    print(
        f"{args.processes} processes    : {multi_s:.2f} s  "
        f"({n / multi_s:.2f} req/s)"
    )
    print(f"speedup: {single_s / multi_s:.2f}x on {args.processes} processes")
    print(
        "outputs bit-identical to single-process: "
        + ("yes" if not mismatches else f"NO — requests {mismatches}")
    )
    print()
    print(plane.metrics.render())
    _write_trace_out(args, tracer)
    _write_metrics_out(args, plane.metrics.registry)
    return 1 if mismatches else 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    """Head-to-head serving benchmarks.

    - ``--mode cycle_accurate`` (default): cold per-request offline
      flow vs the cached cycle-accurate service (the PR-1 comparison);
    - ``--mode fast``: cached cycle-accurate service vs the calibrated
      fast tier, same workload, shared bundle cache;
    - ``--processes N`` (N > 1): the process-parallel plane vs the
      single-process service, with a bit-identity check.
    """
    import time

    from dataclasses import replace

    from repro.baremetal import generate_baremetal
    from repro.core import Soc
    from repro.nn.zoo import ZOO
    from repro.serve import BundleCache, InferenceService, shared_cache

    if args.processes > 1:
        return _bench_serve_processes(args)

    workload = _build_workload(args)
    config = get_config(args.config)
    n = len(workload)
    store = _open_store(args)

    if args.mode == "fast":
        calibration = _serve_calibration(args)
        # Calibration already built these bundles into the shared
        # cache; --store swaps in a store-backed cache instead.
        cache = BundleCache(store=store) if store is not None else shared_cache()
        baseline = InferenceService(
            cache=cache,
            max_batch_size=args.batch_size,
            workers_per_key=args.workers,
            input_seed=args.seed,
        )
        tracer = _serve_tracer(args)
        fast_service = InferenceService(
            cache=cache,
            max_batch_size=args.batch_size,
            workers_per_key=args.workers,
            input_seed=args.seed,
            calibration=calibration,
            tracer=tracer,
        )
        results = {}
        for label, service, mode in (
            ("cycle-accurate", baseline, "cycle_accurate"),
            ("fast tier", fast_service, "fast"),
        ):
            # Warm the caches/workers so the measured window is the
            # steady-state serving regime for both tiers.
            for deployment, image in workload[: min(n, 4)]:
                service.request(replace(deployment, execution_mode=mode), image)
            service.run_pending()
            began = time.perf_counter()
            for deployment, image in workload:
                service.request(replace(deployment, execution_mode=mode), image)
            responses = service.run_pending()
            elapsed = time.perf_counter() - began
            if any(not r.ok for r in responses):
                print(f"{label} run failed")
                return 1
            results[label] = elapsed
            print(f"{label:<15}: {elapsed:.2f} s  ({n / elapsed:.2f} req/s)")
        print(f"speedup: {results['cycle-accurate'] / results['fast tier']:.1f}x")
        print()
        print(fast_service.metrics.render())
        _write_trace_out(args, tracer)
        _write_metrics_out(args, fast_service.metrics.registry)
        return 0

    began = time.perf_counter()
    for deployment, image in workload:
        bundle = generate_baremetal(
            ZOO[deployment.model](),
            config,
            precision=deployment.precision,
            fidelity=deployment.fidelity,
            input_image=image,
        )
        soc = Soc(config, fidelity=deployment.fidelity)
        soc.load_bundle(bundle)
        if not soc.run_inference(bundle).ok:
            print("cold-path run failed")
            return 1
    cold = time.perf_counter() - began

    tracer = _serve_tracer(args)
    service = InferenceService(
        cache=BundleCache(store=store) if store is not None else None,
        max_batch_size=args.batch_size,
        workers_per_key=args.workers,
        input_seed=args.seed,
        tracer=tracer,
    )
    began = time.perf_counter()
    for deployment, image in workload:
        service.request(deployment, image)
    responses = service.run_pending()
    warm = time.perf_counter() - began
    if any(not r.ok for r in responses):
        print("served run failed")
        return 1

    print(f"cold path (per-request offline flow): {cold:.2f} s  ({n / cold:.2f} req/s)")
    print(f"served    (bundle cache + reuse):     {warm:.2f} s  ({n / warm:.2f} req/s)")
    print(f"speedup: {cold / warm:.1f}x")
    print()
    print(service.metrics.render())
    _write_trace_out(args, tracer)
    _write_metrics_out(args, service.metrics.registry)
    return 0


def _cluster_deployments(args: argparse.Namespace) -> list:
    from repro.serve import DeploymentSpec

    return [
        DeploymentSpec(model, config=args.config, precision=Precision(args.precision))
        for model in _parse_models(args.models)
    ]


def _cmd_bench_cluster(args: argparse.Namespace) -> int:
    """Fleet simulation: one workload, one or all routing policies.

    Virtual-time only (no functional execution), so hundreds of
    requests simulate in seconds; every number is reproducible from
    ``--seed``.
    """
    import json

    from repro.cluster import (
        POLICIES,
        AdmissionController,
        Autoscaler,
        ClusterSimulation,
        SloPolicy,
        generate_workload,
        load_trace,
        make_arrivals,
        make_router,
        offered_rps,
    )
    from repro.serve import shared_cache

    if args.trace:
        # Virtual-time replay needs no input tensors, so the seed has
        # nothing to drive: the trace alone fixes the workload.
        workload = load_trace(args.trace)
        arrival_name = f"trace:{args.trace}"
    else:
        arrivals = make_arrivals(args.arrival, args.rps)
        workload = generate_workload(
            arrivals, _cluster_deployments(args), args.requests, seed=args.seed
        )
        arrival_name = args.arrival
    slo = SloPolicy(
        slo_latency_s=args.slo_ms / 1e3,
        max_rejection_rate=args.max_rejection_rate,
        max_queue_depth=args.queue_depth,
    )
    autoscaler = None
    if args.autoscale:
        autoscaler = Autoscaler(
            min_replicas=args.replicas,
            max_replicas=args.max_replicas,
            target_p99_s=args.slo_ms / 1e3,
        )
    policies = sorted(POLICIES) if args.policy == "all" else [args.policy]
    print(
        f"simulating {len(workload)} requests ({arrival_name}, "
        f"{offered_rps(workload):.1f} rps offered) on {args.replicas} replica(s), "
        f"seed {args.seed}..."
    )
    store = _open_store(args)
    from repro.serve import BundleCache

    cache = BundleCache(store=store) if store is not None else shared_cache()
    # One tracer across policies: trace ids carry the policy prefix, so
    # a multi-policy sweep exports into one comparable timeline.
    tracer = _serve_tracer(args)
    summaries = {}
    for policy in policies:
        simulation = ClusterSimulation(
            make_router(policy),
            replicas=args.replicas,
            admission=AdmissionController(slo),
            autoscaler=autoscaler,
            cache=cache,
            resident_capacity=args.resident_capacity,
            store=store,
            tracer=tracer,
        )
        metrics = simulation.run(workload).metrics
        metrics.arrival_name = arrival_name
        summaries[policy] = metrics
        print()
        print(metrics.render())
    if len(summaries) > 1:
        print()
        print(f"{'policy':<18} {'goodput':>8} {'p99 ms':>8} {'hit %':>6} {'rej %':>6}")
        for policy, metrics in summaries.items():
            print(
                f"{policy:<18} {metrics.goodput_rps:>8.1f} "
                f"{metrics.latency_summary().p99 * 1e3:>8.1f} "
                f"{metrics.resident_hit_rate * 100:>6.0f} "
                f"{metrics.rejection_rate * 100:>6.1f}"
            )
    if args.out:
        payload = {policy: metrics.to_dict() for policy, metrics in summaries.items()}
        Path(args.out).write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"\nmetrics written to {args.out}")
    _write_trace_out(args, tracer)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Inspect and convert span traces (JSONL and Perfetto JSON)."""
    from repro.obs import build_trees, read_trace, render_summary, render_tree, write_trace

    if args.action == "vp":
        from repro.vp.trace_log import parse_trace

        log = parse_trace(Path(args.infile).read_text())
        spans = log.to_spans(frequency_hz=args.frequency_mhz * 1e6)
        count = write_trace(args.out or "vp_trace.json", spans,
                            process_names={0: "csb", 1: "dbb"})
        print(f"{count} transactions written to {args.out or 'vp_trace.json'}")
        return 0

    spans = read_trace(args.infile)
    if args.action == "export":
        if not args.out:
            raise SystemExit("trace export needs --out")
        count = write_trace(args.out, spans)
        print(f"{count} spans written to {args.out}")
        return 0
    if args.action == "summarize":
        print(render_summary(spans))
        return 0
    assert args.action == "view"
    trees = build_trees(spans)
    shown = trees if args.limit is None else trees[: args.limit]
    for tree in shown:
        print(render_tree(tree))
        print()
    if len(shown) < len(trees):
        print(f"... {len(trees) - len(shown)} more traces "
              f"({len(spans)} spans total)")
    orphans = sum(len(t.orphans) for t in trees)
    return 1 if orphans else 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Render (and merge) MetricsRegistry JSON snapshots."""
    import json

    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    for path in args.inputs:
        registry.merge_dict(json.loads(Path(path).read_text()))
    print(registry.render())
    if args.out:
        Path(args.out).write_text(
            json.dumps(registry.to_dict(), indent=2, sort_keys=True)
        )
        print(f"merged metrics written to {args.out}")
    return 0


def _store_path(args: argparse.Namespace) -> str:
    """--store, else $REPRO_STORE_DIR, else ./.repro-store."""
    import os

    from repro.store import DEFAULT_STORE_DIR, STORE_ENV_VAR

    return args.store or os.environ.get(STORE_ENV_VAR) or DEFAULT_STORE_DIR


def _open_store(args: argparse.Namespace):
    """The store named by --store, or None when the flag is absent."""
    from repro.store import BundleStore

    if getattr(args, "store", None) is None:
        return None
    return BundleStore(args.store)


def _cmd_warmup(args: argparse.Namespace) -> int:
    """Pre-compile deployments into the store so later runs only fetch."""
    import json
    import time

    from repro.serve import BundleCache
    from repro.store import BundleStore

    store = BundleStore(_store_path(args))
    cache = BundleCache(store=store)
    models = _parse_models(args.models)
    precision = Precision(args.precision)
    print(f"warming {_store_path(args)} with {len(models)} deployment(s)...")
    for model in models:
        compiles_before = cache.stats.compiles
        began = time.perf_counter()
        bundle = cache.bundle_for(
            model, args.config, precision=precision, fidelity=args.fidelity,
            seed=args.seed,
        )
        verb = "compiled" if cache.stats.compiles > compiles_before else "fetched"
        print(
            f"  {model:<10} {args.config}/{precision.value}/{args.fidelity}: "
            f"{verb} in {time.perf_counter() - began:.2f} s"
        )
        if args.verify:
            from repro.analyze import analyze_bundle

            analysis = analyze_bundle(bundle)
            if not analysis.clean:
                print(analysis.render())
                return 1
            print(f"             static analysis: clean "
                  f"({analysis.chains} chains, {analysis.surfaces} surfaces)")
    payload = {
        "store": _store_path(args),
        "entries": len(store),
        "total_bytes": store.total_bytes(),
        "cache": cache.stats.to_dict(),
        "stats": store.stats.to_dict(),
    }
    print(
        f"store: {payload['entries']} artifact(s), "
        f"{payload['total_bytes'] / 1024 / 1024:.1f} MiB "
        f"({cache.stats.compiles} compiled, {cache.stats.store_hits} already present)"
    )
    if args.out:
        out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"warmup stats written to {args.out}")
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    """Inventory / integrity / eviction over the persistent store."""
    from repro.store import BundleStore

    store = BundleStore(_store_path(args))
    if args.action == "ls":
        entries = store.ls()
        for entry in entries:
            print(entry.render())
        print(
            f"{len(entries)} artifact(s), "
            f"{store.total_bytes() / 1024 / 1024:.1f} MiB in {_store_path(args)}"
        )
        return 0
    if args.action == "verify":
        report = store.verify(static=args.static)
        print(report.render())
        return 0 if report.clean else 1
    assert args.action == "gc"
    max_bytes = int(args.max_mib * 1024 * 1024) if args.max_mib is not None else None
    evicted = store.gc(max_bytes=max_bytes, max_objects=args.max_objects)
    for entry in evicted:
        print(f"evicted {entry.render()}")
    print(
        f"{len(evicted)} evicted; {len(store)} artifact(s), "
        f"{store.total_bytes() / 1024 / 1024:.1f} MiB remain"
    )
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.core import calibrate

    models = [m.strip() for m in args.models.split(",") if m.strip()]
    if not models:
        raise SystemExit("--models needs at least one zoo model")
    config = get_config(args.config)
    print(f"calibrating {','.join(models)} on {config.name} ({args.precision})...")
    # max_error=None: this command reports the fit and applies its own
    # --max-error gate below instead of raising mid-run.
    table = calibrate(
        tuple(models),
        config,
        precision=Precision(args.precision),
        fidelity=args.fidelity,
        memory_bus_width_bits=args.memory_width,
        max_error=None,
    )
    print(table.render())
    if args.out:
        path = table.save(args.out)
        print(f"table written to {path}")
    if table.worst_error() > args.max_error:
        print(f"FAIL: worst error {table.worst_error():.2%} > {args.max_error:.0%}")
        return 1
    return 0


def _cmd_sanity(args: argparse.Namespace) -> int:
    from repro.baremetal.sanity import ALL_TRACES, run_on_soc
    from repro.core import Soc

    config = get_config(args.config)
    names = [args.trace] if args.trace else list(ALL_TRACES)
    failures = 0
    for name in names:
        ok = run_on_soc(ALL_TRACES[name](config), Soc(config))
        print(f"{name:<12} {'PASS' if ok else 'FAIL'}")
        failures += 0 if ok else 1
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bare-metal RISC-V + NVDLA SoC reproduction flows",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list configurations and zoo models")

    run = sub.add_parser("run", help="full bare-metal inference of a zoo model")
    run.add_argument("--model", default="lenet5")
    run.add_argument("--config", default="nv_small", choices=sorted(CONFIGS))
    run.add_argument("--precision", default="int8", choices=[p.value for p in Precision])
    run.add_argument("--fidelity", default="functional", choices=["functional", "timing"])
    run.add_argument("--frequency-mhz", type=float, default=100.0)
    run.add_argument("--memory-width", type=int, default=32)
    run.add_argument("--mode", default="cycle_accurate", choices=["cycle_accurate", "fast"],
                     help="execution tier: full SoC simulation or the calibrated fast path")
    run.add_argument("--calibration", default=None,
                     help="calibration table JSON to load/save for --mode fast")
    run.add_argument("--fusion", default="descriptor",
                     choices=["off", "graph", "descriptor"],
                     help="operator fusion level: descriptor fuses conv+SDP+PDP "
                          "chains on-chip, graph stops at IR absorption, off "
                          "disables fusion entirely")
    run.add_argument("--verify", action="store_true",
                     help="statically analyze the bundle before executing; "
                          "fail on any ERROR diagnostic")

    analyze = sub.add_parser(
        "analyze",
        help="static descriptor-chain verification of compiled models (no execution)",
    )
    analyze.add_argument("--models", default="lenet5,resnet18",
                         help="comma-separated zoo models, or 'all'")
    analyze.add_argument("--config", default="nv_small", choices=sorted(CONFIGS))
    analyze.add_argument("--precision", default="int8",
                         choices=[p.value for p in Precision])
    analyze.add_argument("--fusion", default="descriptor",
                         choices=["off", "graph", "descriptor"],
                         help="operator fusion level to compile with before "
                              "analyzing")
    analyze.add_argument("--out", default=None,
                         help="write machine-readable diagnostics JSON here")
    analyze.add_argument("--verbose", action="store_true",
                         help="show INFO diagnostics and clean-report details")

    flow = sub.add_parser("flow", help="dump every offline-flow artefact")
    flow.add_argument("--model", default="lenet5")
    flow.add_argument("--config", default="nv_small", choices=sorted(CONFIGS))
    flow.add_argument("--precision", default="int8", choices=[p.value for p in Precision])
    flow.add_argument("--out", default="flow_artifacts")

    for index in (1, 2, 3):
        sub.add_parser(f"table{index}", help=f"regenerate paper Table {'I' * index}")

    synth = sub.add_parser("synth", help="resource feasibility on a device")
    synth.add_argument("--config", default="nv_small", choices=sorted(CONFIGS))
    synth.add_argument("--device", default="ZCU102")

    for name, help_text in (
        ("serve", "serve a mixed-model request workload"),
        ("bench-serve", "cached service vs per-request flow, head to head"),
    ):
        serve = sub.add_parser(name, help=help_text)
        serve.add_argument("--models", default="lenet5,resnet18",
                           help="comma-separated zoo models")
        serve.add_argument("--config", default="nv_small", choices=sorted(CONFIGS))
        serve.add_argument("--precision", default="int8", choices=[p.value for p in Precision])
        serve.add_argument("--fidelity", default="functional", choices=["functional", "timing"])
        serve.add_argument("--requests", type=int, default=16)
        serve.add_argument("--batch-size", type=int, default=8)
        serve.add_argument("--workers", type=int, default=1)
        serve.add_argument("--seed", type=int, default=7)
        serve.add_argument("--mode", default="cycle_accurate",
                           choices=["cycle_accurate", "fast"],
                           help="execution tier for the workload's deployments")
        serve.add_argument("--calibration", default=None,
                           help="calibration table JSON to load/save for --mode fast")
        serve.add_argument("--store", default=None,
                           help="persistent bundle store directory: misses fetch "
                                "verified artifacts from disk before compiling")
        serve.add_argument("--processes", type=int, default=1,
                           help="worker processes; >1 serves on the "
                                "process-parallel plane (bundles shipped by "
                                "digest via the store)")
        serve.add_argument("--arrival", default="none",
                           choices=["none", "constant", "poisson"],
                           help="stream arrivals into the plane instead of "
                                "offering the whole workload at once")
        serve.add_argument("--rps", type=float, default=50.0,
                           help="arrival rate for --arrival constant/poisson")
        serve.add_argument("--trace-out", default=None,
                           help="write request spans here: .jsonl for the "
                                "event log, .json for a Perfetto/Chrome "
                                "trace (ui.perfetto.dev)")
        serve.add_argument("--metrics-out", default=None,
                           help="write the metrics-registry snapshot JSON here")

    cluster = sub.add_parser(
        "bench-cluster",
        help="simulate a replica fleet under load, per routing policy",
    )
    cluster.add_argument("--models", default="lenet5,resnet18",
                         help="comma-separated zoo models (the workload mix)")
    cluster.add_argument("--config", default="nv_small", choices=sorted(CONFIGS))
    cluster.add_argument("--precision", default="int8",
                         choices=[p.value for p in Precision])
    cluster.add_argument("--policy", default="all",
                         choices=["all", "cache_affinity", "least_outstanding",
                                  "round_robin"],
                         help="routing policy (or all, for a comparison table)")
    cluster.add_argument("--arrival", default="poisson",
                         choices=["constant", "poisson", "bursty"],
                         help="arrival process of the open-loop workload")
    cluster.add_argument("--rps", type=float, default=100.0,
                         help="offered request rate (base rate for bursty)")
    cluster.add_argument("--requests", type=int, default=300)
    cluster.add_argument("--replicas", type=int, default=2,
                         help="initial fleet size (autoscaler minimum)")
    cluster.add_argument("--resident-capacity", type=int, default=8,
                         help="bundles each replica keeps warm (the fast-path LRU)")
    cluster.add_argument("--autoscale", action="store_true",
                         help="enable the SLO-aware autoscaler")
    cluster.add_argument("--max-replicas", type=int, default=8)
    cluster.add_argument("--slo-ms", type=float, default=100.0,
                         help="latency SLO (goodput cut-off and autoscaler target)")
    cluster.add_argument("--queue-depth", type=int, default=16,
                         help="admission control: shed past this per-replica depth")
    cluster.add_argument("--max-rejection-rate", type=float, default=0.05,
                         help="fleet SLO on the shed fraction (reported)")
    cluster.add_argument("--seed", type=int, default=7,
                         help="one seed drives generated arrivals and the model "
                              "mix (unused with --trace: the trace is the workload)")
    cluster.add_argument("--trace", default=None,
                         help="replay a JSONL trace instead of generating arrivals")
    cluster.add_argument("--store", default=None,
                         help="persistent bundle store: replicas acquire artifacts "
                              "by fetching from it instead of recompiling")
    cluster.add_argument("--out", default=None,
                         help="write per-policy metrics JSON to this path")
    cluster.add_argument("--trace-out", default=None,
                         help="write virtual-clock request spans here "
                              "(.jsonl or Perfetto .json)")

    cal = sub.add_parser(
        "calibrate",
        help="fit + validate the fast-path cycle model against cycle-accurate runs",
    )
    cal.add_argument("--models", default="lenet5,resnet18",
                     help="comma-separated zoo models to calibrate")
    cal.add_argument("--config", default="nv_small", choices=sorted(CONFIGS))
    cal.add_argument("--precision", default="int8", choices=[p.value for p in Precision])
    cal.add_argument("--fidelity", default="functional", choices=["functional", "timing"])
    cal.add_argument("--memory-width", type=int, default=32)
    cal.add_argument("--max-error", type=float, default=0.10,
                     help="fail when any validated pair exceeds this relative error")
    cal.add_argument("--out", default=None, help="write the table to this JSON path")

    warm = sub.add_parser(
        "warmup",
        help="pre-compile deployments into the persistent bundle store",
    )
    warm.add_argument("--models", default="lenet5,resnet18",
                      help="comma-separated zoo models to warm")
    warm.add_argument("--config", default="nv_small", choices=sorted(CONFIGS))
    warm.add_argument("--precision", default="int8", choices=[p.value for p in Precision])
    warm.add_argument("--fidelity", default="functional", choices=["functional", "timing"])
    warm.add_argument("--seed", type=int, default=2024,
                      help="flow seed (part of the deployment key)")
    warm.add_argument("--store", default=None,
                      help="store directory (default: $REPRO_STORE_DIR or .repro-store)")
    warm.add_argument("--out", default=None,
                      help="write warmup/store stats JSON to this path")
    warm.add_argument("--verify", action="store_true",
                      help="statically analyze each warmed bundle; fail on ERROR")

    store = sub.add_parser("store", help="inspect the persistent bundle store")
    store.add_argument("action", choices=["ls", "verify", "gc"],
                       help="ls: inventory; verify: deep integrity check; "
                            "gc: evict LRU artifacts past the caps")
    store.add_argument("--static", action="store_true",
                       help="verify: also run the static descriptor-chain "
                            "analyzer over each artifact")
    store.add_argument("--store", default=None,
                       help="store directory (default: $REPRO_STORE_DIR or .repro-store)")
    store.add_argument("--max-mib", type=float, default=None,
                       help="gc: evict LRU artifacts beyond this total size")
    store.add_argument("--max-objects", type=int, default=None,
                       help="gc: evict LRU artifacts beyond this count")

    trace = sub.add_parser(
        "trace",
        help="inspect span traces: view trees, summarize, convert formats",
    )
    trace.add_argument("action", choices=["view", "summarize", "export", "vp"],
                       help="view: span trees; summarize: per-span latency "
                            "table; export: convert .jsonl <-> Perfetto "
                            ".json; vp: convert a VP transaction log")
    trace.add_argument("--in", dest="infile", required=True,
                       help="input trace (.jsonl, .json, or VP text log)")
    trace.add_argument("--out", default=None,
                       help="output path for export/vp (.jsonl or .json)")
    trace.add_argument("--limit", type=int, default=None,
                       help="view: show at most this many traces")
    trace.add_argument("--frequency-mhz", type=float, default=100.0,
                       help="vp: clock for cycle->seconds conversion")

    metrics = sub.add_parser(
        "metrics",
        help="render and merge metrics-registry JSON snapshots",
    )
    metrics.add_argument("inputs", nargs="+",
                         help="registry snapshot JSON files (--metrics-out)")
    metrics.add_argument("--out", default=None,
                         help="write the merged registry snapshot here")

    sanity = sub.add_parser("sanity", help="run the NVDLA sanity test traces")
    sanity.add_argument("--trace", default=None)
    sanity.add_argument("--config", default="nv_small", choices=sorted(CONFIGS))

    report = sub.add_parser("report", help="regenerate all experiments as markdown")
    report.add_argument("--out", default="report.md")
    report.add_argument("--full", action="store_true", help="all six Table III models")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "flow":
        return _cmd_flow(args)
    if args.command in ("table1", "table2", "table3"):
        return _cmd_table(args, int(args.command[-1]))
    if args.command == "synth":
        return _cmd_synth(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "bench-serve":
        return _cmd_bench_serve(args)
    if args.command == "bench-cluster":
        return _cmd_bench_cluster(args)
    if args.command == "warmup":
        return _cmd_warmup(args)
    if args.command == "store":
        return _cmd_store(args)
    if args.command == "calibrate":
        return _cmd_calibrate(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "sanity":
        return _cmd_sanity(args)
    if args.command == "report":
        from pathlib import Path

        from repro.harness.report_md import generate_report

        models = (
            ("lenet5", "resnet18", "resnet50", "mobilenet", "googlenet", "alexnet")
            if args.full
            else ("lenet5", "resnet18", "resnet50")
        )
        text = generate_report(table3_models=models)
        Path(args.out).write_text(text)
        print(f"report written to {args.out}")
        return 0
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
