"""Block-RAM program memory.

The bare-metal machine code is held in FPGA block RAM (Table I row
"Program Memory": 232 BRAM tiles) and read by the µRISC-V core over
AHB-Lite with single-cycle access.  The model also implements the
``.mem`` initialisation-file format the paper's flow loads into the
BRAMs at bitstream/boot time.
"""

from __future__ import annotations

from repro.bus.types import AccessType, BusPort, Reply, Transfer
from repro.errors import MemoryError_
from repro.mem.sparse_memory import SparseMemory


class Bram(BusPort):
    """Single-cycle on-chip RAM of a fixed size."""

    ACCESS_CYCLES = 1

    def __init__(self, size: int = 1 << 20, read_only: bool = False) -> None:
        self.storage = SparseMemory(size)
        self.read_only = read_only

    @property
    def size(self) -> int:
        return self.storage.size

    def transfer(self, xfer: Transfer) -> Reply:
        if xfer.access is AccessType.WRITE:
            if self.read_only:
                raise MemoryError_("program memory is read-only at run time")
            assert xfer.data is not None
            self.storage.write(xfer.address, xfer.data)
            return Reply(cycles=self.ACCESS_CYCLES)
        data = self.storage.read(xfer.address, xfer.total_bytes)
        return Reply(data=data, cycles=self.ACCESS_CYCLES)

    def load_image(self, image: bytes, base: int = 0) -> None:
        """Load a raw binary image (ignores the read-only latch)."""
        self.storage.write(base, image)

    def load_mem_file(self, text: str, base: int = 0) -> int:
        """Load a Vivado-style ``.mem`` file.

        Format: optional ``@ADDRESS`` (hex, word address) directives
        followed by whitespace-separated 32-bit hex words.  Returns the
        number of words loaded.
        """
        word_address = base // 4
        words = 0
        for raw_line in text.splitlines():
            line = raw_line.split("//")[0].strip()
            if not line:
                continue
            for token in line.split():
                if token.startswith("@"):
                    word_address = int(token[1:], 16)
                    continue
                value = int(token, 16)
                self.storage.write_u32(word_address * 4, value)
                word_address += 1
                words += 1
        return words

    def dump_mem_file(self, nbytes: int, base: int = 0) -> str:
        """Serialise ``nbytes`` starting at ``base`` as a ``.mem`` file."""
        if nbytes % 4 != 0:
            raise MemoryError_(".mem dumps must be whole words")
        lines = [f"@{base // 4:08X}"]
        for offset in range(0, nbytes, 4):
            lines.append(f"{self.storage.read_u32(base + offset):08X}")
        return "\n".join(lines) + "\n"
