"""Memory models: sparse backing store, DDR4 DRAM, and BRAM.

The paper's SoC uses three kinds of storage:

- 512 MB of DDR4 behind a MIG controller, shared by the µRISC-V core
  and NVDLA's DBB port and preloaded with weights/input by the Zynq PS,
- FPGA block-RAM program memory holding the bare-metal machine code,
- NVDLA's internal convolution buffer (modelled in
  :mod:`repro.nvdla.cbuf`).

Storage (a paged sparse byte store) is separated from timing (cycle
cost of bursts) so functional and timing simulation share one substrate.
"""

from repro.mem.sparse_memory import SparseMemory
from repro.mem.dram import Dram, DramTiming
from repro.mem.bram import Bram

__all__ = ["Bram", "Dram", "DramTiming", "SparseMemory"]
