"""DDR4 DRAM model (the MIG-controlled 512 MB of the ZCU102 setup).

Storage is a :class:`~repro.mem.sparse_memory.SparseMemory`; timing is
a compact DDR model: a fixed controller latency per transaction, one
cycle per data-bus beat, and a row-activation penalty whenever a
transaction opens a different row than the last one in its bank.

The model is deliberately first-order — the quantity that matters for
the paper's results is sustained streaming bandwidth (weights in,
activations in/out) versus random single-beat latency (CPU loads and
register polling), both of which this reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bus.types import AccessType, BusPort, Reply, Transfer
from repro.mem.sparse_memory import SparseMemory


@dataclass(frozen=True)
class DramTiming:
    """Timing parameters, in memory-controller clock cycles.

    Defaults approximate a DDR4-2400 MIG running its user interface at
    100 MHz with a 32-bit user data path (the paper's configuration:
    "the DDR4 runs at 100 MHz" behind a 32-bit data memory port).
    """

    controller_latency: int = 10
    beat_cycles: int = 1
    row_hit_extra: int = 0
    row_miss_extra: int = 8
    row_bytes: int = 2048
    banks: int = 16
    data_width_bits: int = 32

    @property
    def width_bytes(self) -> int:
        return self.data_width_bits // 8


@dataclass
class DramStats:
    transactions: int = 0
    beats: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    row_hits: int = 0
    row_misses: int = 0
    busy_cycles: int = 0


class Dram(BusPort):
    """DRAM with first-order DDR timing.

    The port-level :meth:`transfer` serves CPU-side traffic; bulk DMA
    uses :meth:`stream_read` / :meth:`stream_write`, which move whole
    blocks functionally and report an analytic cycle cost so that
    100 MB-class weight streams do not require beat-level simulation.
    """

    def __init__(self, size: int = 512 * 1024 * 1024, timing: DramTiming | None = None) -> None:
        self.storage = SparseMemory(size)
        self.timing = timing or DramTiming()
        self.stats = DramStats()
        self._open_rows: dict[int, int] = {}

    @property
    def size(self) -> int:
        return self.storage.size

    def _row_cycles(self, address: int) -> int:
        """Account a row-buffer lookup and return its extra cycles."""
        row = address // self.timing.row_bytes
        bank = row % self.timing.banks
        if self._open_rows.get(bank) == row:
            self.stats.row_hits += 1
            return self.timing.row_hit_extra
        self._open_rows[bank] = row
        self.stats.row_misses += 1
        return self.timing.row_miss_extra

    def _beats(self, nbytes: int) -> int:
        return max(1, -(-nbytes // self.timing.width_bytes))

    def transfer(self, xfer: Transfer) -> Reply:
        beats = self._beats(xfer.total_bytes)
        cycles = self.timing.controller_latency + self._row_cycles(xfer.address)
        cycles += beats * self.timing.beat_cycles
        self.stats.transactions += 1
        self.stats.beats += beats
        self.stats.busy_cycles += cycles
        if xfer.access is AccessType.WRITE:
            assert xfer.data is not None
            self.storage.write(xfer.address, xfer.data)
            self.stats.bytes_written += xfer.total_bytes
            return Reply(cycles=cycles)
        data = self.storage.read(xfer.address, xfer.total_bytes)
        self.stats.bytes_read += xfer.total_bytes
        return Reply(data=data, cycles=cycles)

    def _stream_cycles(self, address: int, nbytes: int, burst_bytes: int) -> int:
        bursts = max(1, -(-nbytes // burst_bytes))
        beats = self._beats(nbytes)
        row_crossings = max(1, -(-nbytes // self.timing.row_bytes))
        cycles = bursts * self.timing.controller_latency
        cycles += row_crossings * self.timing.row_miss_extra
        cycles += beats * self.timing.beat_cycles
        self.stats.transactions += bursts
        self.stats.beats += beats
        self.stats.busy_cycles += cycles
        return cycles

    def stream_read(self, address: int, nbytes: int, burst_bytes: int = 256) -> tuple[bytes, int]:
        """Read a block, returning ``(data, cycles)`` with burst timing."""
        cycles = self._stream_cycles(address, nbytes, burst_bytes)
        self.stats.bytes_read += nbytes
        return self.storage.read(address, nbytes), cycles

    def stream_write(self, address: int, data: bytes, burst_bytes: int = 256) -> int:
        """Write a block, returning its cycle cost with burst timing."""
        cycles = self._stream_cycles(address, len(data), burst_bytes)
        self.stats.bytes_written += len(data)
        self.storage.write(address, data)
        return cycles

    def peak_bandwidth_bytes_per_cycle(self) -> float:
        """Ideal data-bus limit, ignoring controller overheads."""
        return self.timing.width_bytes / self.timing.beat_cycles

    def effective_stream_bandwidth(self, nbytes: int = 1 << 20, burst_bytes: int = 256) -> float:
        """Sustained streaming bytes/cycle for a ``nbytes`` block."""
        bursts = max(1, -(-nbytes // burst_bytes))
        beats = self._beats(nbytes)
        rows = max(1, -(-nbytes // self.timing.row_bytes))
        cycles = (
            bursts * self.timing.controller_latency
            + rows * self.timing.row_miss_extra
            + beats * self.timing.beat_cycles
        )
        return nbytes / cycles
