"""Paged sparse byte store.

Backs every memory in the system.  Pages are allocated lazily so a
512 MB DRAM costs nothing until written, which matters when streaming
the 100 MB-class weight files of ResNet-50/AlexNet through the flow.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MemoryError_

_PAGE_BITS = 16
_PAGE_SIZE = 1 << _PAGE_BITS
_PAGE_MASK = _PAGE_SIZE - 1


class SparseMemory:
    """A byte-addressable sparse memory of a fixed size.

    Reads from never-written locations return ``fill`` (default 0),
    like zero-initialised simulation memory.
    """

    def __init__(self, size: int, fill: int = 0) -> None:
        if size <= 0:
            raise MemoryError_("memory size must be positive")
        if not 0 <= fill <= 0xFF:
            raise MemoryError_("fill byte out of range")
        self.size = size
        self.fill = fill
        self._pages: dict[int, bytearray] = {}
        self.reads = 0
        self.writes = 0

    def _check_range(self, address: int, nbytes: int) -> None:
        if address < 0 or nbytes < 0 or address + nbytes > self.size:
            raise MemoryError_(
                f"access [0x{address:x}, 0x{address + nbytes:x}) outside memory of size 0x{self.size:x}"
            )

    def _page(self, index: int) -> bytearray:
        page = self._pages.get(index)
        if page is None:
            page = bytearray([self.fill]) * _PAGE_SIZE
            self._pages[index] = page
        return page

    def read(self, address: int, nbytes: int) -> bytes:
        """Read ``nbytes`` starting at ``address``."""
        self._check_range(address, nbytes)
        self.reads += 1
        out = bytearray(nbytes)
        offset = 0
        while offset < nbytes:
            addr = address + offset
            page_index = addr >> _PAGE_BITS
            in_page = addr & _PAGE_MASK
            chunk = min(nbytes - offset, _PAGE_SIZE - in_page)
            page = self._pages.get(page_index)
            if page is None:
                if self.fill:
                    out[offset : offset + chunk] = bytes([self.fill]) * chunk
            else:
                out[offset : offset + chunk] = page[in_page : in_page + chunk]
            offset += chunk
        return bytes(out)

    def write(self, address: int, data: bytes | bytearray | memoryview) -> None:
        """Write ``data`` starting at ``address``."""
        nbytes = len(data)
        self._check_range(address, nbytes)
        self.writes += 1
        view = memoryview(data)
        offset = 0
        while offset < nbytes:
            addr = address + offset
            page_index = addr >> _PAGE_BITS
            in_page = addr & _PAGE_MASK
            chunk = min(nbytes - offset, _PAGE_SIZE - in_page)
            self._page(page_index)[in_page : in_page + chunk] = view[offset : offset + chunk]
            offset += chunk

    def read_u8(self, address: int) -> int:
        return self.read(address, 1)[0]

    def read_u16(self, address: int) -> int:
        return int.from_bytes(self.read(address, 2), "little")

    def read_u32(self, address: int) -> int:
        return int.from_bytes(self.read(address, 4), "little")

    def read_u64(self, address: int) -> int:
        return int.from_bytes(self.read(address, 8), "little")

    def write_u8(self, address: int, value: int) -> None:
        self.write(address, (value & 0xFF).to_bytes(1, "little"))

    def write_u16(self, address: int, value: int) -> None:
        self.write(address, (value & 0xFFFF).to_bytes(2, "little"))

    def write_u32(self, address: int, value: int) -> None:
        self.write(address, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def write_u64(self, address: int, value: int) -> None:
        self.write(address, (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little"))

    def read_array(self, address: int, count: int, dtype: np.dtype | str) -> np.ndarray:
        """Read ``count`` elements of ``dtype`` as a numpy array."""
        dt = np.dtype(dtype)
        raw = self.read(address, count * dt.itemsize)
        return np.frombuffer(raw, dtype=dt).copy()

    def write_array(self, address: int, array: np.ndarray) -> None:
        """Write a numpy array's raw little-endian bytes."""
        contiguous = np.ascontiguousarray(array)
        self.write(address, contiguous.tobytes())

    @property
    def resident_bytes(self) -> int:
        """Bytes of host memory actually allocated for pages."""
        return len(self._pages) * _PAGE_SIZE

    def touched_ranges(self) -> list[tuple[int, int]]:
        """Coalesced [start, end) page ranges that have been written."""
        if not self._pages:
            return []
        indices = sorted(self._pages)
        ranges: list[tuple[int, int]] = []
        start = prev = indices[0]
        for index in indices[1:]:
            if index == prev + 1:
                prev = index
                continue
            ranges.append((start << _PAGE_BITS, (prev + 1) << _PAGE_BITS))
            start = prev = index
        ranges.append((start << _PAGE_BITS, (prev + 1) << _PAGE_BITS))
        return ranges

    def clear(self) -> None:
        """Drop all pages (memory reads as ``fill`` again)."""
        self._pages.clear()
