"""Determinism lint: keep wall clocks out of virtual-clock code.

The cluster simulation, the virtual platform, and the serving
scheduler all run on *virtual* clocks — reproducibility of every
benchmark gate depends on no code path in them consulting the host's
wall clock or an unseeded RNG.  This AST-based checker forbids, inside
the modules named by :data:`DEFAULT_TARGETS`:

- wall-clock reads: ``time.time()``, ``time.time_ns()``,
  ``time.monotonic()``, ``time.perf_counter()`` (and ``_ns``
  variants), ``datetime.now()`` / ``utcnow()`` / ``today()``,
- unseeded randomness: module-level ``random.*`` draws,
  ``random.Random()`` with no seed, ``numpy.random.*`` draws from the
  global state, ``default_rng()`` with no seed.

Allowlist convention: a site that *intentionally* reads the wall clock
(e.g. an operator-facing log timestamp) carries an inline
``# wall-clock: <why>`` comment on the offending line; the checker
skips marked lines.  Entries can also be allowlisted centrally by
``<path>:<name>`` via the ``allow`` parameter (what
``tools/lint_determinism.py`` exposes), so every exemption is an
explicit, reviewable decision.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

#: Virtual-clock modules, relative to the repo root.
DEFAULT_TARGETS: tuple[str, ...] = (
    "src/repro/cluster",
    "src/repro/vp",
    "src/repro/serve/scheduler.py",
)

ALLOW_MARKER = "wall-clock:"

_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.clock_gettime",
}

_DATETIME_TAILS = ("datetime.now", "datetime.utcnow", "datetime.today", "date.today")

_RANDOM_DRAWS = {
    "random",
    "randint",
    "randrange",
    "random_sample",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "gauss",
    "normal",
    "getrandbits",
    "randbytes",
    "rand",
    "randn",
    "permutation",
}


@dataclass(frozen=True)
class Violation:
    """One forbidden call site."""

    path: str
    line: int
    col: int
    call: str  # dotted call name as written, e.g. "time.time"
    code: str  # "wall-clock" | "unseeded-random"
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.code}] {self.message}"


def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for attribute chains rooted at a plain name."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _classify(call: ast.Call) -> tuple[str, str] | None:
    """(code, message) when the call is forbidden, else ``None``."""
    name = _dotted_name(call.func)
    if name is None:
        return None
    has_args = bool(call.args or call.keywords)
    if name in _WALL_CLOCK_CALLS or any(name.endswith(t) for t in _DATETIME_TAILS):
        return "wall-clock", f"{name}() reads the host wall clock in virtual-clock code"
    parts = name.split(".")
    if parts[0] in ("random", "numpy", "np"):
        tail = parts[-1]
        if tail == "Random" and not has_args:
            return "unseeded-random", f"{name}() constructed without a seed"
        if tail in _RANDOM_DRAWS and (parts[0] == "random" or "random" in parts[1:2]):
            return (
                "unseeded-random",
                f"{name}() draws from global RNG state; use a seeded Generator",
            )
    if parts[-1] == "default_rng" and not has_args:
        return "unseeded-random", f"{name}() constructed without a seed"
    return None


def scan_source(
    source: str, path: str = "<string>", allow: set[str] | None = None
) -> list[Violation]:
    """Lint one module's source text."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Violation(
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                call="",
                code="syntax-error",
                message=f"cannot parse: {exc.msg}",
            )
        ]
    lines = source.splitlines()
    violations: list[Violation] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        verdict = _classify(node)
        if verdict is None:
            continue
        line_text = lines[node.lineno - 1] if 0 < node.lineno <= len(lines) else ""
        if ALLOW_MARKER in line_text:
            continue
        name = _dotted_name(node.func) or "?"
        if allow and f"{path}:{name}" in allow:
            continue
        code, message = verdict
        violations.append(
            Violation(
                path=path,
                line=node.lineno,
                col=node.col_offset,
                call=name,
                code=code,
                message=message,
            )
        )
    return violations


def scan_paths(
    paths: list[Path], root: Path | None = None, allow: set[str] | None = None
) -> list[Violation]:
    """Lint files and directories (recursively, ``*.py`` only)."""
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    violations: list[Violation] = []
    for file_path in files:
        rel = str(file_path)
        if root is not None:
            try:
                rel = str(file_path.resolve().relative_to(Path(root).resolve()))
            except ValueError:
                pass  # outside the root: report as given
        violations.extend(scan_source(file_path.read_text(), path=rel, allow=allow))
    return violations


def lint_repo(
    repo_root: Path, targets: tuple[str, ...] = DEFAULT_TARGETS,
    allow: set[str] | None = None,
) -> list[Violation]:
    """Lint the virtual-clock modules of a repo checkout."""
    paths = [repo_root / target for target in targets if (repo_root / target).exists()]
    return scan_paths(paths, root=repo_root, allow=allow)
