"""repro.analyze — static verification of compiled artifacts.

A compile-time sanitizer for descriptor chains: builds the surface /
dependency graph of a loadable or bundle from the same pure
register-programming logic the runtime replays
(:mod:`repro.nvdla.programming`), runs bounds/hazard/budget/legality
passes over it, and reports typed diagnostics — all without executing
a single simulated instruction.  See README's "Static analysis"
section for the pass taxonomy and CLI usage.
"""

import repro.nvdla  # noqa: F401  — resolve the compiler<->nvdla import cycle first

from repro.analyze.analyzer import (
    analyze_bundle,
    analyze_chains,
    analyze_loadable,
    pass_ids,
)
from repro.analyze.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.analyze.surfaces import ParsedLayer, Surface, parse_chain

__all__ = [
    "AnalysisReport",
    "Diagnostic",
    "ParsedLayer",
    "Severity",
    "Surface",
    "analyze_bundle",
    "analyze_chains",
    "analyze_loadable",
    "parse_chain",
    "pass_ids",
]
