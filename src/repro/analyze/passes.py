"""The analyzer's pass library.

Each pass is a function ``(AnalysisContext) -> list[Diagnostic]`` over
the parsed layers (descriptor chains replayed into fresh register
blocks, surfaces extracted — see :mod:`repro.analyze.surfaces`).  The
default pipeline, in the order :func:`repro.analyze.analyzer.
analyze_chains` runs it:

``memory-map``
    Artifact-level sanity of the allocator's plan: regions inside the
    DRAM window, mutually disjoint, clear of the bare-metal status
    page; network input/output tensors inside their regions.
``chain``
    Structural legality of each descriptor chain: writes target
    selected groups, nothing is written after its unit launched,
    enables hit configured units, and fused flying links are paired —
    an SDP streaming on-chip must feed a PDP that reads on-chip, and
    vice versa (replay failures — unknown register, double enable —
    are reported by the surface builder under the same pass id).
``register-field``
    Every written value fits its field's width/enum per the table in
    :mod:`repro.nvdla.registers`.
``dma-bounds``
    Every read/write surface against the SoC address map and its
    allocated region: weights/bias inside the weights region, feature
    traffic inside input+activations, nothing touching the status
    page, writes never landing on the input region.
``hazard``
    Byte-granular RAW/WAW timeline across the schedule: reads must be
    fully produced (by earlier writes, the preloaded weights, or the
    input image) and the *latest* writer of every byte read must be
    the tensor the compiler intended — catches clobbers both within a
    layer and across adjacent layers.
``dependency``
    Blob-level dataflow: dangling producers, use-before-def (swapped
    producer/consumer), dependency cycles.
``cbuf``
    The CDMA bank split against CBUF capacity
    (:class:`repro.nvdla.cbuf.Cbuf`), plus kernel-split INFO when the
    weight partition forces K-splitting.
``layout``
    Precision/stride/shape consistency: descriptor strides must equal
    the canonical :func:`repro.nvdla.layout.feature_strides`, shapes
    and precisions must match the loadable's tensor metadata, and the
    conv pipeline's cube dimensions must agree across CSC/CACC/SDP —
    and, in a fused conv+SDP+PDP chain, across the SDP→PDP flying link.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.allocator import MemoryMap, Region
from repro.compiler.loadable import Loadable
from repro.compiler.ops import ConvOp, TensorRef
from repro.core.address_map import AddressMap, DEFAULT_MAP, STATUS_PAGE_BASE, STATUS_PAGE_SIZE
from repro.errors import TilingError
from repro.nvdla.cbuf import Cbuf
from repro.nvdla.config import HardwareConfig
from repro.nvdla.descriptors import TensorDesc
from repro.nvdla.layout import feature_strides
from repro.nvdla.programming import ENABLE, SELECT, WRITE as EV_WRITE, LayerChain
from repro.nvdla.registers import check_field
from repro.analyze.diagnostics import Diagnostic, Severity
from repro.analyze.surfaces import ParsedLayer, READ, WRITE, Surface

Interval = tuple[int, int]  # [start, end)


@dataclass
class AnalysisContext:
    """Everything a pass may look at."""

    loadable: Loadable
    config: HardwareConfig
    layers: list[ParsedLayer]
    address_map: AddressMap = field(default_factory=lambda: DEFAULT_MAP)

    @property
    def memory_map(self) -> MemoryMap:
        return self.loadable.memory_map

    def surfaces(self) -> list[Surface]:
        return [s for layer in self.layers for s in layer.surfaces]


def _diag(
    severity: Severity, pass_id: str, code: str, message: str, **kw
) -> Diagnostic:
    return Diagnostic(severity=severity, pass_id=pass_id, code=code, message=message, **kw)


def _surface_diag(
    severity: Severity, pass_id: str, code: str, message: str, surface: Surface
) -> Diagnostic:
    return _diag(
        severity,
        pass_id,
        code,
        message,
        layer=surface.op_name,
        op_index=surface.op_index,
        unit=surface.unit,
        surface=surface.label,
    )


def _contains(region: Region, start: int, end: int) -> bool:
    return region.address <= start and end <= region.end


def _overlap(a_start: int, a_end: int, b_start: int, b_end: int) -> bool:
    return a_start < b_end and b_start < a_end


def _subtract(intervals: list[Interval], cut: Interval) -> list[Interval]:
    """Remove ``cut`` from a list of disjoint intervals."""
    out: list[Interval] = []
    c0, c1 = cut
    for start, end in intervals:
        if c1 <= start or end <= c0:
            out.append((start, end))
            continue
        if start < c0:
            out.append((start, c0))
        if c1 < end:
            out.append((c1, end))
    return out


# ----------------------------------------------------------------------
# memory-map
# ----------------------------------------------------------------------


def pass_memory_map(ctx: AnalysisContext) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    mm = ctx.memory_map
    regions = [mm.weights, mm.input, mm.activations]
    dram = (ctx.address_map.dram_base, ctx.address_map.dram_limit + 1)
    for region in regions:
        if not (dram[0] <= region.address and region.end <= dram[1]):
            diags.append(
                _diag(
                    Severity.ERROR,
                    "memory-map",
                    "region-out-of-window",
                    f"region {region.name} [0x{region.address:x}, 0x{region.end:x}) "
                    f"outside DRAM window [0x{dram[0]:x}, 0x{dram[1]:x})",
                    surface=region.name,
                )
            )
        if _overlap(region.address, region.end, STATUS_PAGE_BASE,
                    STATUS_PAGE_BASE + STATUS_PAGE_SIZE):
            diags.append(
                _diag(
                    Severity.ERROR,
                    "memory-map",
                    "region-on-status-page",
                    f"region {region.name} overlaps the bare-metal status page",
                    surface=region.name,
                )
            )
    for i, a in enumerate(regions):
        for b in regions[i + 1:]:
            if a.size and b.size and _overlap(a.address, a.end, b.address, b.end):
                diags.append(
                    _diag(
                        Severity.ERROR,
                        "memory-map",
                        "region-overlap",
                        f"regions {a.name} and {b.name} overlap",
                        surface=f"{a.name}+{b.name}",
                    )
                )
    if len(ctx.loadable.weight_blob) > mm.weights.size:
        diags.append(
            _diag(
                Severity.ERROR,
                "memory-map",
                "weights-overflow",
                f"weight blob {len(ctx.loadable.weight_blob)} B exceeds weights "
                f"region {mm.weights.size} B",
                surface="weights",
            )
        )
    for name, ref, region in (
        ("input", ctx.loadable.input_tensor, mm.input),
        ("output", ctx.loadable.output_tensor, mm.activations),
    ):
        atom = ctx.config.atom_channels(ref.precision)
        address = ref.address
        if address is None:
            diags.append(
                _diag(
                    Severity.ERROR,
                    "memory-map",
                    "unallocated-tensor",
                    f"network {name} tensor {ref.blob!r} has no address",
                    surface=ref.blob,
                )
            )
            continue
        if not _contains(region, address, address + ref.packed_bytes(atom)):
            diags.append(
                _diag(
                    Severity.ERROR,
                    "memory-map",
                    "tensor-outside-region",
                    f"network {name} tensor {ref.blob!r} outside {region.name} region",
                    surface=ref.blob,
                )
            )
    return diags


# ----------------------------------------------------------------------
# chain
# ----------------------------------------------------------------------


def pass_chain(ctx: AnalysisContext) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    for layer in ctx.layers:
        chain = layer.chain
        selected: dict[str, int] = {}
        enabled: set[str] = set()
        wrote: set[str] = set()
        for event in chain.events:
            if event.kind == SELECT:
                selected[event.unit] = event.value
                continue
            if event.unit not in selected:
                diags.append(
                    _diag(
                        Severity.ERROR,
                        "chain",
                        "unselected-group",
                        f"{event.kind} before any S_POINTER select of {event.unit}",
                        layer=chain.op_name,
                        op_index=chain.op_index,
                        unit=event.unit,
                        register=event.register,
                    )
                )
            elif selected[event.unit] != chain.group:
                diags.append(
                    _diag(
                        Severity.ERROR,
                        "chain",
                        "wrong-group",
                        f"{event.unit} selected to group {selected[event.unit]}, "
                        f"chain targets group {chain.group}",
                        layer=chain.op_name,
                        op_index=chain.op_index,
                        unit=event.unit,
                    )
                )
            if event.kind == EV_WRITE:
                if event.unit in enabled:
                    diags.append(
                        _diag(
                            Severity.ERROR,
                            "chain",
                            "write-after-enable",
                            f"descriptor write to {event.unit}.{event.register} after "
                            f"the unit's group was enabled",
                            layer=chain.op_name,
                            op_index=chain.op_index,
                            unit=event.unit,
                            register=event.register,
                        )
                    )
                wrote.add(event.unit)
            elif event.kind == ENABLE:
                enabled.add(event.unit)
                if event.unit not in wrote:
                    diags.append(
                        _diag(
                            Severity.WARNING,
                            "chain",
                            "enable-without-writes",
                            f"{event.unit} enabled with no descriptor writes in "
                            f"this chain",
                            layer=chain.op_name,
                            op_index=chain.op_index,
                            unit=event.unit,
                        )
                    )
        if chain.sink not in enabled:
            diags.append(
                _diag(
                    Severity.ERROR,
                    "chain",
                    "sink-not-enabled",
                    f"sink {chain.sink} never enabled",
                    layer=chain.op_name,
                    op_index=chain.op_index,
                    unit=chain.sink,
                )
            )
    return diags


# ----------------------------------------------------------------------
# register-field
# ----------------------------------------------------------------------


def pass_register_fields(ctx: AnalysisContext) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    for layer in ctx.layers:
        chain = layer.chain
        for event in chain.writes():
            reason = check_field(event.register, event.value)
            if reason is not None:
                diags.append(
                    _diag(
                        Severity.ERROR,
                        "register-field",
                        "illegal-field",
                        f"{event.unit}.{event.register}: {reason}",
                        layer=chain.op_name,
                        op_index=chain.op_index,
                        unit=event.unit,
                        register=event.register,
                    )
                )
    return diags


# ----------------------------------------------------------------------
# dma-bounds
# ----------------------------------------------------------------------


def pass_dma_bounds(ctx: AnalysisContext) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    mm = ctx.memory_map
    dram = (ctx.address_map.dram_base, ctx.address_map.dram_limit + 1)
    status = (STATUS_PAGE_BASE, STATUS_PAGE_BASE + STATUS_PAGE_SIZE)
    for surface in ctx.surfaces():
        if surface.size <= 0:
            diags.append(
                _surface_diag(
                    Severity.ERROR, "dma-bounds", "empty-surface",
                    f"surface has non-positive size {surface.size}", surface,
                )
            )
            continue
        if not (dram[0] <= surface.address and surface.end <= dram[1]):
            diags.append(
                _surface_diag(
                    Severity.ERROR,
                    "dma-bounds",
                    "dma-out-of-window",
                    f"{surface.describe()} outside DRAM window "
                    f"[0x{dram[0]:x}, 0x{dram[1]:x})",
                    surface,
                )
            )
            continue
        if _overlap(surface.address, surface.end, *status):
            diags.append(
                _surface_diag(
                    Severity.ERROR,
                    "dma-bounds",
                    "status-page-access",
                    f"{surface.describe()} overlaps the bare-metal status page",
                    surface,
                )
            )
        if surface.kind in ("weight", "bias"):
            if not _contains(mm.weights, surface.address, surface.end):
                diags.append(
                    _surface_diag(
                        Severity.ERROR,
                        "dma-bounds",
                        "outside-weights-region",
                        f"{surface.describe()} outside weights region "
                        f"[0x{mm.weights.address:x}, 0x{mm.weights.end:x})",
                        surface,
                    )
                )
            continue
        # Feature traffic.
        if surface.direction == WRITE:
            if not _contains(mm.activations, surface.address, surface.end):
                diags.append(
                    _surface_diag(
                        Severity.ERROR,
                        "dma-bounds",
                        "write-outside-activations",
                        f"{surface.describe()} outside activations region "
                        f"[0x{mm.activations.address:x}, 0x{mm.activations.end:x})",
                        surface,
                    )
                )
            if _overlap(surface.address, surface.end, mm.input.address, mm.input.end):
                diags.append(
                    _surface_diag(
                        Severity.ERROR,
                        "dma-bounds",
                        "input-region-clobber",
                        f"{surface.describe()} writes over the network input region",
                        surface,
                    )
                )
        else:
            if not (
                _contains(mm.input, surface.address, surface.end)
                or _contains(mm.activations, surface.address, surface.end)
            ):
                diags.append(
                    _surface_diag(
                        Severity.ERROR,
                        "dma-bounds",
                        "read-outside-regions",
                        f"{surface.describe()} not contained in the input or "
                        f"activations region",
                        surface,
                    )
                )
    return diags


# ----------------------------------------------------------------------
# hazard
# ----------------------------------------------------------------------


def pass_hazard(ctx: AnalysisContext) -> list[Diagnostic]:
    """Byte-granular RAW/WAW timeline over the schedule."""
    diags: list[Diagnostic] = []
    mm = ctx.memory_map
    input_label = ctx.loadable.input_tensor.blob
    # Last schedule position that reads each blob (for WAW liveness).
    last_read: dict[str, int] = {}
    for layer in ctx.layers:
        for surface in layer.surfaces:
            if surface.direction == READ and surface.kind == "feature":
                last_read[surface.label] = max(
                    last_read.get(surface.label, -1), surface.op_index
                )
    writes: list[Surface] = []  # in schedule order
    for layer in ctx.layers:
        for surface in layer.surfaces:
            if surface.direction != READ or surface.kind != "feature":
                continue
            remaining: list[Interval] = [(surface.address, surface.end)]
            for writer in reversed(writes):  # newest first = latest writer
                if not remaining:
                    break
                overlapped = [
                    (max(s, writer.address), min(e, writer.end))
                    for s, e in remaining
                    if _overlap(s, e, writer.address, writer.end)
                ]
                if not overlapped:
                    continue
                if writer.label != surface.label:
                    lo, hi = overlapped[0]
                    diags.append(
                        _surface_diag(
                            Severity.ERROR,
                            "hazard",
                            "raw-clobbered",
                            f"read of {surface.label!r} sees bytes "
                            f"[0x{lo:x}, 0x{hi:x}) last written by "
                            f"{writer.label!r} ({writer.op_name})",
                            surface,
                        )
                    )
                for cut in overlapped:
                    remaining = _subtract(remaining, cut)
            # Bytes no scheduled op wrote: legitimate only if preloaded.
            for start, end in remaining:
                if _contains(mm.input, start, end):
                    if surface.label != input_label:
                        diags.append(
                            _surface_diag(
                                Severity.ERROR,
                                "hazard",
                                "raw-clobbered",
                                f"read of {surface.label!r} aliases the network "
                                f"input image",
                                surface,
                            )
                        )
                    continue
                if _contains(mm.weights, start, end):
                    continue  # preloaded weight blob
                diags.append(
                    _surface_diag(
                        Severity.ERROR,
                        "hazard",
                        "read-uninitialized",
                        f"read of {surface.label!r} covers bytes "
                        f"[0x{start:x}, 0x{end:x}) no earlier op produced",
                        surface,
                    )
                )
        for surface in layer.surfaces:
            if surface.direction != WRITE:
                continue
            for writer in writes:
                if writer.label == surface.label:
                    continue
                if not writer.overlaps(surface):
                    continue
                if last_read.get(writer.label, -1) > surface.op_index:
                    diags.append(
                        _surface_diag(
                            Severity.ERROR,
                            "hazard",
                            "waw-live-overwrite",
                            f"write of {surface.label!r} overwrites "
                            f"{writer.label!r} (written by {writer.op_name}) "
                            f"which is still read later",
                            surface,
                        )
                    )
            writes.append(surface)
    return diags


# ----------------------------------------------------------------------
# dependency
# ----------------------------------------------------------------------


def pass_dependency(ctx: AnalysisContext) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    input_label = ctx.loadable.input_tensor.blob
    producers: dict[str, list[int]] = {}
    for layer in ctx.layers:
        for surface in layer.surfaces:
            if surface.direction == WRITE and surface.kind == "feature":
                producers.setdefault(surface.label, []).append(surface.op_index)
    edges: dict[int, set[int]] = {}
    for layer in ctx.layers:
        for surface in layer.surfaces:
            if surface.direction != READ or surface.kind != "feature":
                continue
            if surface.label == input_label:
                continue
            made = producers.get(surface.label)
            if not made:
                diags.append(
                    _surface_diag(
                        Severity.ERROR,
                        "dependency",
                        "dangling-producer",
                        f"{surface.op_name} reads {surface.label!r} which no op "
                        f"produces and which is not the network input",
                        surface,
                    )
                )
                continue
            if min(made) > surface.op_index:
                diags.append(
                    _surface_diag(
                        Severity.ERROR,
                        "dependency",
                        "use-before-def",
                        f"{surface.op_name} (op {surface.op_index}) reads "
                        f"{surface.label!r} first produced by op {min(made)} — "
                        f"producer/consumer order violated",
                        surface,
                    )
                )
            for producer_index in made:
                edges.setdefault(producer_index, set()).add(surface.op_index)
    # Cycle detection over op-level dataflow.
    seen: dict[int, int] = {}  # 0 = visiting, 1 = done

    def visit(node: int, stack: list[int]) -> list[int] | None:
        state = seen.get(node)
        if state == 1:
            return None
        if state == 0:
            return stack[stack.index(node):] + [node]
        seen[node] = 0
        stack.append(node)
        for nxt in sorted(edges.get(node, ())):
            if nxt == node:
                continue
            cycle = visit(nxt, stack)
            if cycle is not None:
                return cycle
        stack.pop()
        seen[node] = 1
        return None

    for node in sorted(edges):
        cycle = visit(node, [])
        if cycle is not None:
            diags.append(
                _diag(
                    Severity.ERROR,
                    "dependency",
                    "dependency-cycle",
                    f"dataflow cycle through ops {cycle}",
                    op_index=cycle[0],
                )
            )
            break
    return diags


# ----------------------------------------------------------------------
# cbuf
# ----------------------------------------------------------------------


def pass_cbuf(ctx: AnalysisContext) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    cbuf = Cbuf(ctx.config)
    for layer in ctx.layers:
        if not isinstance(layer.op, ConvOp):
            continue
        chain = layer.chain
        values = {e.register: e.value for e in chain.writes() if e.unit == "CDMA"}
        data_banks = values.get("D_BANK_DATA")
        weight_banks = values.get("D_BANK_WEIGHT")
        if data_banks is None or weight_banks is None:
            diags.append(
                _diag(
                    Severity.ERROR,
                    "cbuf",
                    "missing-bank-split",
                    "conv chain programs no CBUF bank split",
                    layer=chain.op_name,
                    op_index=chain.op_index,
                    unit="CDMA",
                )
            )
            continue
        try:
            allocation = cbuf.allocate(data_banks, weight_banks)
        except TilingError as exc:
            diags.append(
                _diag(
                    Severity.ERROR,
                    "cbuf",
                    "bank-overbudget",
                    str(exc),
                    layer=chain.op_name,
                    op_index=chain.op_index,
                    unit="CDMA",
                    register="D_BANK_DATA",
                )
            )
            continue
        weight_bytes = values.get("D_WEIGHT_BYTES", 0)
        splits = cbuf.kernel_splits(weight_bytes, allocation.weight_banks)
        if splits > 1:
            diags.append(
                _diag(
                    Severity.INFO,
                    "cbuf",
                    "kernel-splits",
                    f"weights ({weight_bytes} B) exceed the weight partition "
                    f"({allocation.weight_bytes} B): {splits} K-splits, input "
                    f"re-streamed per split",
                    layer=chain.op_name,
                    op_index=chain.op_index,
                    unit="CDMA",
                )
            )
    return diags


# ----------------------------------------------------------------------
# layout
# ----------------------------------------------------------------------


def _check_tensor_layout(
    diags: list[Diagnostic],
    chain: LayerChain,
    unit: str,
    what: str,
    desc: TensorDesc,
    ref: TensorRef | None,
    config: HardwareConfig,
) -> None:
    atom = config.atom_channels(desc.precision)
    expected_line, expected_surf = feature_strides(desc.shape, atom, desc.precision)
    if (desc.line_stride, desc.surf_stride) != (expected_line, expected_surf):
        diags.append(
            _diag(
                Severity.ERROR,
                "layout",
                "stride-mismatch",
                f"{what} strides (line={desc.line_stride}, surf={desc.surf_stride}) "
                f"!= canonical ({expected_line}, {expected_surf}) for shape "
                f"{desc.shape} {desc.precision.value}",
                layer=chain.op_name,
                op_index=chain.op_index,
                unit=unit,
                surface=ref.blob if ref is not None else "",
            )
        )
    if ref is None:
        return
    if desc.shape != ref.shape:
        diags.append(
            _diag(
                Severity.ERROR,
                "layout",
                "shape-mismatch",
                f"{what} descriptor shape {desc.shape} != compiled tensor "
                f"{ref.blob!r} shape {ref.shape}",
                layer=chain.op_name,
                op_index=chain.op_index,
                unit=unit,
                surface=ref.blob,
            )
        )
    if desc.precision is not ref.precision:
        diags.append(
            _diag(
                Severity.ERROR,
                "layout",
                "precision-mismatch",
                f"{what} descriptor precision {desc.precision.value} != compiled "
                f"tensor {ref.blob!r} precision {ref.precision.value}",
                layer=chain.op_name,
                op_index=chain.op_index,
                unit=unit,
                surface=ref.blob,
            )
        )


def pass_layout(ctx: AnalysisContext) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    for layer in ctx.layers:
        chain = layer.chain
        op = layer.op
        conv = layer.descriptors.get("conv")
        sdp = layer.descriptors.get("sdp")
        if conv is not None:
            _check_tensor_layout(
                diags, chain, "CDMA", "conv input", conv.input, op.input, ctx.config
            )
            if sdp is not None:
                out = sdp.output
                if (conv.out_width, conv.out_height) != (out.width, out.height):
                    diags.append(
                        _diag(
                            Severity.ERROR,
                            "layout",
                            "pipeline-dims-mismatch",
                            f"CSC dataout {conv.out_width}x{conv.out_height} != SDP "
                            f"destination {out.width}x{out.height}",
                            layer=chain.op_name,
                            op_index=chain.op_index,
                            unit="CSC",
                        )
                    )
                if conv.kernel_k != out.channels:
                    diags.append(
                        _diag(
                            Severity.ERROR,
                            "layout",
                            "pipeline-dims-mismatch",
                            f"kernel K={conv.kernel_k} != SDP output channels "
                            f"{out.channels}",
                            layer=chain.op_name,
                            op_index=chain.op_index,
                            unit="CACC",
                        )
                    )
                in_c = conv.input.channels
                if conv.kernel_c != in_c:
                    diags.append(
                        _diag(
                            Severity.ERROR,
                            "layout",
                            "pipeline-dims-mismatch",
                            f"kernel C={conv.kernel_c} != input channels {in_c}",
                            layer=chain.op_name,
                            op_index=chain.op_index,
                            unit="CSC",
                        )
                    )
        if sdp is not None:
            if sdp.input is not None and hasattr(op, "input"):
                _check_tensor_layout(
                    diags, chain, "SDP_RDMA", "SDP source", sdp.input, op.input, ctx.config
                )
            eltwise_ref = getattr(op, "eltwise_input", None)
            if sdp.eltwise_input is not None and eltwise_ref is not None:
                _check_tensor_layout(
                    diags, chain, "SDP_RDMA", "eltwise operand", sdp.eltwise_input,
                    eltwise_ref, ctx.config,
                )
            if sdp.dst_flying:
                # Flying destination: no compiled tensor backs the on-chip
                # link (address 0), but the cube geometry must still carry
                # canonical strides for the downstream consumer.
                _check_tensor_layout(
                    diags, chain, "SDP", "SDP flying destination", sdp.output, None,
                    ctx.config,
                )
                if sdp.output.address != 0:
                    diags.append(
                        _diag(
                            Severity.ERROR,
                            "layout",
                            "flying-nonnull-address",
                            f"SDP flying destination carries address "
                            f"0x{sdp.output.address:x}; an on-chip link must be "
                            f"programmed with a null address",
                            layer=chain.op_name,
                            op_index=chain.op_index,
                            unit="SDP",
                        )
                    )
            else:
                _check_tensor_layout(
                    diags, chain, "SDP", "SDP destination", sdp.output, op.output,
                    ctx.config,
                )
        pdp = layer.descriptors.get("pdp")
        cdp = layer.descriptors.get("cdp")
        if pdp is not None and sdp is not None and sdp.dst_flying:
            # Fused conv+SDP+PDP epilogue: the SDP flying cube must feed the
            # PDP source exactly, and only the pooled output is memory-backed.
            src = pdp.input
            if (sdp.output.width, sdp.output.height, sdp.output.channels) != (
                src.width, src.height, src.channels,
            ):
                diags.append(
                    _diag(
                        Severity.ERROR,
                        "layout",
                        "pipeline-dims-mismatch",
                        f"SDP flying cube {sdp.output.width}x{sdp.output.height}"
                        f"x{sdp.output.channels} != fused PDP source "
                        f"{src.width}x{src.height}x{src.channels}",
                        layer=chain.op_name,
                        op_index=chain.op_index,
                        unit="PDP_RDMA",
                    )
                )
            _check_tensor_layout(
                diags, chain, "PDP_RDMA", "fused PDP source", src, None, ctx.config
            )
            _check_tensor_layout(
                diags, chain, "PDP", "fused PDP destination", pdp.output, op.output,
                ctx.config,
            )
        else:
            simple = pdp or cdp
            if simple is not None:
                rdma = "PDP_RDMA" if pdp is not None else "CDP_RDMA"
                sink = "PDP" if pdp is not None else "CDP"
                _check_tensor_layout(
                    diags, chain, rdma, f"{sink} source", simple.input, op.input,
                    ctx.config,
                )
                _check_tensor_layout(
                    diags, chain, sink, f"{sink} destination", simple.output, op.output,
                    ctx.config,
                )
    return diags


#: The default pipeline, in execution order.
DEFAULT_PASSES: tuple[tuple[str, object], ...] = (
    ("memory-map", pass_memory_map),
    ("chain", pass_chain),
    ("register-field", pass_register_fields),
    ("dma-bounds", pass_dma_bounds),
    ("hazard", pass_hazard),
    ("dependency", pass_dependency),
    ("cbuf", pass_cbuf),
    ("layout", pass_layout),
)
