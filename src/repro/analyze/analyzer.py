"""The analyzer driver: artifact in, :class:`AnalysisReport` out.

Three entry points, all execution-free:

- :func:`analyze_loadable` — build descriptor chains from a compiled
  loadable with the shared :mod:`repro.nvdla.programming` builder and
  analyze them (the compile-pipeline ``--verify`` path),
- :func:`analyze_chains` — analyze an explicit chain list against a
  loadable (what the mutation harness uses to inject miscompiles at
  the register level),
- :func:`analyze_bundle` — a built bare-metal bundle: the loadable
  analysis plus a decode check of the generated command stream against
  the CSB address map.

A pass that itself crashes is downgraded to an ``analyzer-crash``
ERROR diagnostic — a corrupted artifact must always yield a report (or
a typed :class:`~repro.errors.StaticAnalysisError` via
``raise_for_errors``), never a stray traceback.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.compiler.loadable import Loadable
from repro.nvdla.config import HardwareConfig, get_config
from repro.nvdla.csb import decode_address
from repro.nvdla.programming import LayerChain, build_chains
from repro.nvdla.registers import D_OP_ENABLE, S_POINTER, S_STATUS
from repro.analyze.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.analyze.passes import DEFAULT_PASSES, AnalysisContext
from repro.analyze.surfaces import fresh_units, parse_chain

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.baremetal.pipeline import BaremetalBundle


def pass_ids() -> list[str]:
    """Names of the default passes, in execution order."""
    return [name for name, _ in DEFAULT_PASSES]


def analyze_chains(
    chains: list[LayerChain],
    loadable: Loadable,
    config: HardwareConfig | None = None,
    passes: list[str] | None = None,
    artifact: str | None = None,
) -> AnalysisReport:
    """Analyze explicit descriptor chains against their loadable."""
    config = config or get_config(loadable.config)
    selected = set(passes) if passes is not None else None
    report = AnalysisReport(
        artifact=artifact or f"{loadable.network}/{loadable.config}",
        config=config.name,
    )
    ops = loadable.schedule.ops
    layers = []
    for chain in chains:
        if not 0 <= chain.op_index < len(ops):
            report.add(
                Diagnostic(
                    severity=Severity.ERROR,
                    pass_id="chain",
                    code="bad-op-index",
                    message=f"chain references schedule op {chain.op_index} "
                    f"(schedule has {len(ops)})",
                    layer=chain.op_name,
                    op_index=chain.op_index,
                )
            )
            continue
        layer = parse_chain(chain, ops[chain.op_index], config)
        report.extend(layer.diagnostics)
        layers.append(layer)
    report.chains = len(layers)
    report.surfaces = sum(len(layer.surfaces) for layer in layers)
    ctx = AnalysisContext(loadable=loadable, config=config, layers=layers)
    for name, pass_fn in DEFAULT_PASSES:
        if selected is not None and name not in selected:
            continue
        report.passes.append(name)
        try:
            report.extend(pass_fn(ctx))
        except Exception as exc:  # analyzer bug — surface it as a finding
            report.add(
                Diagnostic(
                    severity=Severity.ERROR,
                    pass_id=name,
                    code="analyzer-crash",
                    message=f"pass crashed: {type(exc).__name__}: {exc}",
                )
            )
    return report


def analyze_loadable(
    loadable: Loadable,
    config: HardwareConfig | None = None,
    passes: list[str] | None = None,
    artifact: str | None = None,
) -> AnalysisReport:
    """Build the canonical descriptor chains and analyze them."""
    config = config or get_config(loadable.config)
    chains = build_chains(loadable, config)
    return analyze_chains(chains, loadable, config, passes=passes, artifact=artifact)


def _check_command_stream(bundle: "BaremetalBundle", report: AnalysisReport) -> None:
    """Every generated register command must decode to a known unit
    register (or one of the per-unit control words)."""
    units = fresh_units()
    for position, command in enumerate(bundle.commands):
        try:
            unit_name, reg_offset = decode_address(command.address)
        except Exception as exc:
            report.add(
                Diagnostic(
                    severity=Severity.ERROR,
                    pass_id="command-stream",
                    code="undecodable-address",
                    message=f"command {position}: {exc}",
                )
            )
            continue
        if reg_offset in (S_STATUS, S_POINTER, D_OP_ENABLE):
            continue
        unit = units.get(unit_name)
        if unit is None:
            continue  # GLB/MCIF/... control traffic has no descriptor file here
        if reg_offset not in unit.block._specs:
            report.add(
                Diagnostic(
                    severity=Severity.ERROR,
                    pass_id="command-stream",
                    code="unknown-register",
                    message=f"command {position}: {unit_name} has no register at "
                    f"+0x{reg_offset:03x}",
                    unit=unit_name,
                )
            )


def analyze_bundle(
    bundle: "BaremetalBundle",
    config: HardwareConfig | None = None,
    passes: list[str] | None = None,
    artifact: str | None = None,
) -> AnalysisReport:
    """Analyze a built bundle: loadable chains + command-stream decode."""
    report = analyze_loadable(
        bundle.loadable,
        config=config,
        passes=passes,
        artifact=artifact or f"{bundle.loadable.network}/{bundle.loadable.config}",
    )
    if passes is None or "command-stream" in passes:
        report.passes.append("command-stream")
        try:
            _check_command_stream(bundle, report)
        except Exception as exc:
            report.add(
                Diagnostic(
                    severity=Severity.ERROR,
                    pass_id="command-stream",
                    code="analyzer-crash",
                    message=f"pass crashed: {type(exc).__name__}: {exc}",
                )
            )
    return report
