"""Typed, machine-readable diagnostics for the static analyzer.

Every finding the analyzer makes is a :class:`Diagnostic` — severity,
the pass that produced it, a stable machine code, and the offending
layer/unit/register/surface — collected into an
:class:`AnalysisReport`.  Reports serialize to JSON (the CI artifact
format) and convert to a typed
:class:`~repro.errors.StaticAnalysisError` when a caller asked for
verification to be fatal, mirroring how the bundle store surfaces
:class:`~repro.errors.StoreIntegrityError`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace as dc_replace
from enum import Enum

from repro.errors import StaticAnalysisError


class Severity(str, Enum):
    """How bad a finding is.

    ``ERROR`` findings mean the artifact must not be executed; a report
    is *clean* iff it has none.  ``WARNING`` marks legal-but-suspect
    programming; ``INFO`` carries capacity/perf observations (kernel
    splits, CBUF band refetch) that are expected on large layers.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding, addressable down to the offending field."""

    severity: Severity
    pass_id: str  # which analysis pass produced it
    code: str  # stable machine code, e.g. "dma-out-of-window"
    message: str  # human-readable explanation
    layer: str = ""  # scheduled op name, e.g. "conv1"
    op_index: int = -1  # position in the schedule (-1: artifact-level)
    unit: str = ""  # NVDLA unit, e.g. "CDMA"
    register: str = ""  # offending register, e.g. "D_DAIN_ADDR_LOW"
    surface: str = ""  # offending surface label, e.g. "conv1_out"

    def to_dict(self) -> dict:
        return {
            "severity": self.severity.value,
            "pass": self.pass_id,
            "code": self.code,
            "message": self.message,
            "layer": self.layer,
            "op_index": self.op_index,
            "unit": self.unit,
            "register": self.register,
            "surface": self.surface,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Diagnostic":
        return cls(
            severity=Severity(data["severity"]),
            pass_id=data["pass"],
            code=data["code"],
            message=data["message"],
            layer=data.get("layer", ""),
            op_index=data.get("op_index", -1),
            unit=data.get("unit", ""),
            register=data.get("register", ""),
            surface=data.get("surface", ""),
        )

    def render(self) -> str:
        where = []
        if self.layer:
            where.append(self.layer)
        if self.unit:
            where.append(self.unit)
        if self.register:
            where.append(self.register)
        if self.surface:
            where.append(f"surface={self.surface}")
        location = " ".join(where)
        head = f"{self.severity.value}[{self.pass_id}/{self.code}]"
        return f"{head} {location}: {self.message}" if location else f"{head} {self.message}"


@dataclass
class AnalysisReport:
    """Everything one analysis run found about one artifact."""

    artifact: str  # e.g. "lenet5/nv_small"
    config: str = ""
    passes: list[str] = field(default_factory=list)
    diagnostics: list[Diagnostic] = field(default_factory=list)
    chains: int = 0  # hardware layers analyzed
    surfaces: int = 0  # DMA surfaces extracted

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, diags: list[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def clean(self) -> bool:
        """No errors.  Warnings and infos do not spoil cleanliness."""
        return not self.errors

    def sorted_diagnostics(self) -> list[Diagnostic]:
        return sorted(
            self.diagnostics, key=lambda d: (d.severity.rank, d.op_index, d.pass_id, d.code)
        )

    def raise_for_errors(self) -> None:
        """Raise a typed :class:`StaticAnalysisError` if any error."""
        errors = self.errors
        if not errors:
            return
        head = "; ".join(d.render() for d in errors[:3])
        more = f" (+{len(errors) - 3} more)" if len(errors) > 3 else ""
        raise StaticAnalysisError(
            f"{self.artifact}: static analysis found {len(errors)} error(s): {head}{more}",
            diagnostics=errors,
        )

    def to_dict(self) -> dict:
        return {
            "artifact": self.artifact,
            "config": self.config,
            "passes": list(self.passes),
            "chains": self.chains,
            "surfaces": self.surfaces,
            "clean": self.clean,
            "counts": {
                "error": len(self.errors),
                "warning": len(self.warnings),
                "info": len(self.diagnostics) - len(self.errors) - len(self.warnings),
            },
            "diagnostics": [d.to_dict() for d in self.sorted_diagnostics()],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AnalysisReport":
        return cls(
            artifact=data["artifact"],
            config=data.get("config", ""),
            passes=list(data.get("passes", [])),
            diagnostics=[Diagnostic.from_dict(d) for d in data.get("diagnostics", [])],
            chains=data.get("chains", 0),
            surfaces=data.get("surfaces", 0),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self, verbose: bool = False) -> str:
        lines = [
            f"{self.artifact}: {'clean' if self.clean else 'FAILED'} "
            f"({self.chains} chains, {self.surfaces} surfaces, "
            f"{len(self.errors)} errors, {len(self.warnings)} warnings)"
        ]
        for diag in self.sorted_diagnostics():
            if diag.severity is Severity.INFO and not verbose:
                continue
            lines.append(f"  {diag.render()}")
        return "\n".join(lines)


def relabel(diag: Diagnostic, **overrides) -> Diagnostic:
    """A copy of ``diag`` with some location fields replaced."""
    return dc_replace(diag, **overrides)
