"""Descriptor-chain → surface extraction, without execution.

The analyzer's front end: replay a :class:`~repro.nvdla.programming.
LayerChain`'s events into a *fresh* set of unit register blocks (the
same ``make_unit`` factories the engine uses), then reuse the units'
own ``parse()`` functions to recover typed descriptors — so the
analyzer sees exactly what the hardware model would see at launch,
with zero ISS/bus/engine involvement.

From the descriptors it extracts :class:`Surface` records: every DMA
read and write the layer performs, sized in packed bytes, labeled with
the compiler's blob name so dataflow passes can reason about intent
(which tensor *should* live there) versus mechanics (which addresses
the registers *actually* touch).

Anything that goes wrong while replaying or parsing — unknown
register, double enable, inconsistent descriptor, nonsense field
values — becomes an ``ERROR`` diagnostic on the layer, never an
exception: a corrupted artifact must produce findings, not a crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.ops import ConvOp, HwOp, LrnOp, PoolOp, SdpOp
from repro.nvdla.config import HardwareConfig, Precision
from repro.nvdla.descriptors import (
    CdpDescriptor,
    ConvDescriptor,
    PdpDescriptor,
    SdpDescriptor,
    TensorDesc,
)
from repro.nvdla.layout import weight_size_bytes
from repro.nvdla.programming import ENABLE, SELECT, LayerChain
from repro.nvdla.registers import D_OP_ENABLE, S_POINTER
from repro.nvdla.units import cacc as cacc_mod
from repro.nvdla.units import cdma as cdma_mod
from repro.nvdla.units import cdp as cdp_mod
from repro.nvdla.units import cmac as cmac_mod
from repro.nvdla.units import conv_pipeline
from repro.nvdla.units import csc as csc_mod
from repro.nvdla.units import pdp as pdp_mod
from repro.nvdla.units import sdp as sdp_mod
from repro.nvdla.units.base import Unit
from repro.analyze.diagnostics import Diagnostic, Severity

READ = "read"
WRITE = "write"


@dataclass(frozen=True)
class Surface:
    """One DMA-visible byte range a layer reads or writes."""

    op_index: int
    op_name: str
    unit: str  # unit whose DMA touches it
    direction: str  # READ or WRITE
    kind: str  # "feature" | "weight" | "bias"
    label: str  # compiler blob name (or weights:/bias: tag)
    address: int
    size: int

    @property
    def end(self) -> int:
        return self.address + self.size

    def overlaps(self, other: "Surface") -> bool:
        return self.address < other.end and other.address < self.end

    def describe(self) -> str:
        return (
            f"{self.op_name}/{self.unit} {self.direction} {self.label} "
            f"[0x{self.address:x}, 0x{self.end:x})"
        )


@dataclass
class ParsedLayer:
    """One chain's replayed registers, descriptors and surfaces."""

    chain: LayerChain
    op: HwOp
    units: dict[str, Unit] = field(default_factory=dict)
    descriptors: dict[str, object] = field(default_factory=dict)
    surfaces: list[Surface] = field(default_factory=list)
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def parsed(self) -> bool:
        return bool(self.descriptors) and not any(
            d.severity is Severity.ERROR for d in self.diagnostics
        )


def fresh_units() -> dict[str, Unit]:
    """A standalone register file per unit the driver programs."""
    return {
        "CDMA": cdma_mod.make_unit(),
        "CSC": csc_mod.make_unit(),
        "CMAC_A": cmac_mod.make_unit("A"),
        "CMAC_B": cmac_mod.make_unit("B"),
        "CACC": cacc_mod.make_unit(),
        "SDP_RDMA": sdp_mod.make_rdma_unit(),
        "SDP": sdp_mod.make_unit(),
        "PDP_RDMA": pdp_mod.make_rdma_unit(),
        "PDP": pdp_mod.make_unit(),
        "CDP_RDMA": cdp_mod.make_rdma_unit(),
        "CDP": cdp_mod.make_unit(),
    }


def _error(chain: LayerChain, pass_id: str, code: str, message: str, **kw) -> Diagnostic:
    return Diagnostic(
        severity=Severity.ERROR,
        pass_id=pass_id,
        code=code,
        message=message,
        layer=chain.op_name,
        op_index=chain.op_index,
        **kw,
    )


def replay_chain(chain: LayerChain, units: dict[str, Unit]) -> list[Diagnostic]:
    """Apply chain events to the register blocks; findings, not raises."""
    diags: list[Diagnostic] = []
    for event in chain.events:
        unit = units.get(event.unit)
        if unit is None:
            diags.append(
                _error(chain, "chain", "unknown-unit", f"no such unit {event.unit!r}",
                       unit=event.unit)
            )
            continue
        try:
            if event.kind == SELECT:
                unit.csb_write(S_POINTER, event.value)
            elif event.kind == ENABLE:
                unit.csb_write(D_OP_ENABLE, 1)
            else:
                unit.csb_write(unit.offset_of(event.register), event.value)
        except Exception as exc:  # RegisterError and friends → finding
            diags.append(
                _error(
                    chain,
                    "chain",
                    "replay-failed",
                    f"{type(exc).__name__}: {exc}",
                    unit=event.unit,
                    register=event.register,
                )
            )
    return diags


def _tensor_surface(
    chain: LayerChain,
    unit: str,
    direction: str,
    label: str,
    desc: TensorDesc,
    config: HardwareConfig,
) -> Surface:
    atom = config.atom_channels(desc.precision)
    return Surface(
        op_index=chain.op_index,
        op_name=chain.op_name,
        unit=unit,
        direction=direction,
        kind="feature",
        label=label,
        address=desc.address,
        size=desc.packed_bytes(atom),
    )


def _extract_conv(
    layer: ParsedLayer,
    config: HardwareConfig,
    conv: ConvDescriptor,
    sdp: SdpDescriptor,
    pdp: PdpDescriptor | None = None,
) -> None:
    chain, op = layer.chain, layer.op
    assert isinstance(op, ConvOp)
    surfaces = layer.surfaces
    surfaces.append(
        _tensor_surface(chain, "CDMA", READ, op.input.blob, conv.input, config)
    )
    atomic_c, atomic_k = config.atoms(conv.precision)
    surfaces.append(
        Surface(
            op_index=chain.op_index,
            op_name=chain.op_name,
            unit="CDMA",
            direction=READ,
            kind="weight",
            label=f"weights:{op.name}",
            address=conv.weight_address,
            size=weight_size_bytes(conv.weight_shape, atomic_c, atomic_k, conv.precision),
        )
    )
    if sdp.bias_address is not None:
        per_channel = 4 if conv.precision is Precision.INT8 else 2
        surfaces.append(
            Surface(
                op_index=chain.op_index,
                op_name=chain.op_name,
                unit="SDP_RDMA",
                direction=READ,
                kind="bias",
                label=f"bias:{op.name}",
                address=sdp.bias_address,
                size=sdp.output.channels * per_channel,
            )
        )
    if sdp.eltwise_input is not None and op.eltwise_input is not None:
        surfaces.append(
            _tensor_surface(
                chain, "SDP_RDMA", READ, op.eltwise_input.blob, sdp.eltwise_input, config
            )
        )
    if pdp is not None:
        # Fused epilogue: the SDP result streams on-chip (no DMA write,
        # no PDP_RDMA read) and only the pooled output touches memory.
        surfaces.append(
            _tensor_surface(chain, "PDP", WRITE, op.output.blob, pdp.output, config)
        )
    else:
        surfaces.append(
            _tensor_surface(chain, "SDP", WRITE, op.output.blob, sdp.output, config)
        )


def _extract_sdp(layer: ParsedLayer, config: HardwareConfig, sdp: SdpDescriptor) -> None:
    chain, op = layer.chain, layer.op
    assert isinstance(op, SdpOp)
    if sdp.input is not None:
        layer.surfaces.append(
            _tensor_surface(chain, "SDP_RDMA", READ, op.input.blob, sdp.input, config)
        )
    if sdp.eltwise_input is not None and op.eltwise_input is not None:
        layer.surfaces.append(
            _tensor_surface(
                chain, "SDP_RDMA", READ, op.eltwise_input.blob, sdp.eltwise_input, config
            )
        )
    layer.surfaces.append(
        _tensor_surface(chain, "SDP", WRITE, op.output.blob, sdp.output, config)
    )


def _extract_simple(
    layer: ParsedLayer,
    config: HardwareConfig,
    desc: PdpDescriptor | CdpDescriptor,
    rdma: str,
    sink: str,
) -> None:
    chain, op = layer.chain, layer.op
    layer.surfaces.append(
        _tensor_surface(chain, rdma, READ, op.input.blob, desc.input, config)
    )
    layer.surfaces.append(
        _tensor_surface(chain, sink, WRITE, op.output.blob, desc.output, config)
    )


def parse_chain(chain: LayerChain, op: HwOp, config: HardwareConfig) -> ParsedLayer:
    """Replay + parse one chain into descriptors and surfaces."""
    layer = ParsedLayer(chain=chain, op=op, units=fresh_units())
    layer.diagnostics.extend(replay_chain(chain, layer.units))
    group = chain.group
    try:
        if isinstance(op, ConvOp):
            conv = conv_pipeline.parse(layer.units, group, config)
            sdp = sdp_mod.parse(layer.units, group, config)
            layer.descriptors = {"conv": conv, "sdp": sdp}
            pdp = None
            if sdp.dst_flying:
                pdp = pdp_mod.parse(layer.units, group, config)
                layer.descriptors["pdp"] = pdp
                if not pdp.src_flying:
                    layer.diagnostics.append(
                        _error(
                            chain,
                            "chain",
                            "dangling-flying-producer",
                            "SDP streams its result on-chip (D_DST_FLYING) but "
                            "PDP reads from memory — the SDP output has no "
                            "consumer and the pooled input is unproduced",
                            unit="SDP",
                        )
                    )
            _extract_conv(layer, config, conv, sdp, pdp=pdp)
        elif isinstance(op, SdpOp):
            sdp = sdp_mod.parse(layer.units, group, config)
            layer.descriptors = {"sdp": sdp}
            _extract_sdp(layer, config, sdp)
        elif isinstance(op, PoolOp):
            pdp = pdp_mod.parse(layer.units, group, config)
            layer.descriptors = {"pdp": pdp}
            if pdp.src_flying:
                layer.diagnostics.append(
                    _error(
                        chain,
                        "chain",
                        "flying-source-without-producer",
                        "standalone PDP chain claims an on-chip source "
                        "(D_SRC_FLYING) but no SDP streams into it",
                        unit="PDP",
                    )
                )
            _extract_simple(layer, config, pdp, "PDP_RDMA", "PDP")
        elif isinstance(op, LrnOp):
            cdp = cdp_mod.parse(layer.units, group, config)
            layer.descriptors = {"cdp": cdp}
            _extract_simple(layer, config, cdp, "CDP_RDMA", "CDP")
        else:
            layer.diagnostics.append(
                _error(chain, "descriptor", "unmodeled-op", f"op kind {op.kind!r}")
            )
    except Exception as exc:  # ConfigurationError etc. → finding
        layer.diagnostics.append(
            _error(chain, "descriptor", "parse-failed", f"{type(exc).__name__}: {exc}")
        )
    return layer
