"""Exception hierarchy for the repro package.

Every subsystem raises exceptions derived from :class:`ReproError` so
callers can catch one base type at the flow level while still being able
to discriminate bus faults from compiler errors in targeted handlers.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class BusError(ReproError):
    """A bus transaction failed (decode error, slave error response)."""

    def __init__(self, message: str, address: int | None = None) -> None:
        super().__init__(message)
        self.address = address


class AddressDecodeError(BusError):
    """No slave is mapped at the requested address."""


class AlignmentError(BusError):
    """A transfer was not aligned to its own size."""


class MemoryError_(ReproError):
    """A backing-store access was invalid (out of range, bad size)."""


class IsaError(ReproError):
    """Assembler/disassembler/ISS error (bad mnemonic, bad encoding)."""


class AssemblerError(IsaError):
    """Assembly source could not be translated into machine code."""

    def __init__(self, message: str, line: int | None = None) -> None:
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class CpuFault(IsaError):
    """The ISS hit an unrecoverable condition (illegal instruction...)."""

    def __init__(self, message: str, pc: int | None = None) -> None:
        if pc is not None:
            message = f"pc=0x{pc:08x}: {message}"
        super().__init__(message)
        self.pc = pc


class NvdlaError(ReproError):
    """NVDLA model error (bad register, invalid op configuration)."""


class RegisterError(NvdlaError):
    """A CSB access hit an unmapped or read-only register."""

    def __init__(self, message: str, offset: int | None = None) -> None:
        if offset is not None:
            message = f"offset 0x{offset:05x}: {message}"
        super().__init__(message)
        self.offset = offset


class ConfigurationError(NvdlaError):
    """A hardware-layer descriptor is inconsistent or unsupported."""


class GraphError(ReproError):
    """Neural-network graph construction or validation error."""


class CompilerError(ReproError):
    """The NVDLA compiler could not lower or schedule the network."""


class TilingError(CompilerError):
    """A layer cannot be tiled into the convolution buffer."""


class LoadableError(CompilerError):
    """A compiled loadable is malformed or version-incompatible."""


class TraceError(ReproError):
    """A virtual-platform trace log could not be parsed or replayed."""


class StoreError(ReproError):
    """The persistent bundle store could not complete an operation."""


class StoreIntegrityError(StoreError):
    """A stored artifact failed integrity verification.

    Raised whenever on-disk bytes cannot be trusted: bad magic or
    version, a section digest mismatch, truncation, a dangling
    reference, or a reconstructed bundle whose artifact digest
    disagrees with the one recorded at write time.  The store NEVER
    returns a bundle from a path that raised this — callers fall back
    to recompilation.
    """

    def __init__(self, message: str, path: str | None = None) -> None:
        if path is not None:
            message = f"{path}: {message}"
        super().__init__(message)
        self.path = path


class AnalysisError(ReproError):
    """The static analyzer could not analyze an artifact at all.

    Raised for *analyzer-side* failures — an op kind it cannot model, a
    loadable it cannot walk — as opposed to findings *about* the
    artifact, which travel as diagnostics inside an
    :class:`StaticAnalysisError` / analysis report.
    """


class StaticAnalysisError(AnalysisError):
    """A verified artifact failed static analysis.

    The machine-readable findings ride along in ``diagnostics`` (a list
    of :class:`repro.analyze.diagnostics.Diagnostic`); the message
    carries a human-readable summary.  Modeled on
    :class:`StoreIntegrityError`: callers that opted into verification
    (``--verify``, ``store verify --static``) catch this one type and
    can render or serialize the findings without string parsing.
    """

    def __init__(self, message: str, diagnostics: list | None = None) -> None:
        super().__init__(message)
        self.diagnostics = list(diagnostics or [])


class CodegenError(ReproError):
    """Bare-metal code generation failed."""


class SynthesisError(ReproError):
    """FPGA resource estimation / feasibility check failed."""


class OverUtilizationError(SynthesisError):
    """The design does not fit the target device."""

    def __init__(self, message: str, resource: str, used: float, available: float) -> None:
        super().__init__(message)
        self.resource = resource
        self.used = used
        self.available = available


class ExperimentError(ReproError):
    """A benchmark-harness experiment failed to run."""
