"""Persistent content-addressed store for compiled artifacts.

``repro.store`` persists the expensive products of the bare-metal
pipeline — compiled loadables and full deployment bundles — under
content-addressed digest keys so that a process (or a freshly
provisioned replica) can warm up by *fetching* instead of
*recompiling*.  See :mod:`repro.store.format` for the container
format, :mod:`repro.store.serialize` for the bundle mapping and
:mod:`repro.store.store` for the on-disk layout, atomic writes,
integrity verification and LRU eviction.
"""

from repro.errors import StoreError, StoreIntegrityError
from repro.store.format import (
    FORMAT_VERSION,
    MAGIC,
    Section,
    canonical_json,
    read_container,
    sha256_hex,
    write_container,
)
from repro.store.serialize import (
    BUNDLE_KIND,
    LOADABLE_KIND,
    SERIAL_VERSION,
    deserialize_bundle,
    deserialize_loadable,
    serialize_bundle,
    serialize_loadable,
)
from repro.store.store import (
    DEFAULT_STORE_DIR,
    GC_GRACE_SECONDS,
    STORE_ENV_VAR,
    BundleStore,
    StoreEntry,
    StoreStats,
    VerifyReport,
    key_digest,
)

__all__ = [
    "BUNDLE_KIND",
    "BundleStore",
    "DEFAULT_STORE_DIR",
    "FORMAT_VERSION",
    "GC_GRACE_SECONDS",
    "LOADABLE_KIND",
    "MAGIC",
    "SERIAL_VERSION",
    "STORE_ENV_VAR",
    "Section",
    "StoreEntry",
    "StoreError",
    "StoreIntegrityError",
    "StoreStats",
    "VerifyReport",
    "canonical_json",
    "deserialize_bundle",
    "deserialize_loadable",
    "key_digest",
    "read_container",
    "serialize_bundle",
    "serialize_loadable",
    "sha256_hex",
    "write_container",
]
