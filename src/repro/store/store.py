"""The content-addressed on-disk artifact store.

Layout (everything under one root directory)::

    store.json                      # layout version marker
    objects/<dd>/<digest>           # immutable containers; digest =
                                    #   SHA-256 of the file bytes
    refs/<key-digest>.json          # deployment key → object digest,
                                    #   byte size, created / last_used

Objects are *content addressed*: the file name is the SHA-256 of the
file's own bytes, so verification needs no side channel and two
writers racing on one deployment key converge on the same object.
Every publish is a write-to-temp-file-then-``os.replace`` in the
target directory — readers either see the complete old file, the
complete new file, or nothing; a crashed writer leaves only a
``.tmp-*`` turd that the next :meth:`gc` sweeps.

Loads verify three layers before returning a bundle: the file digest
against the ref, every section's SHA-256 inside the container, and
the reconstructed bundle's :meth:`artifact_digest` against the one
recorded at write time.  Any mismatch raises
:class:`~repro.errors.StoreIntegrityError`; :class:`BundleStore`
never returns bytes it could not verify.

Eviction is LRU over refs (``last_used`` is touched on every hit) with
optional caps on total bytes and object count, applied on every put
and on demand via :meth:`gc`.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.baremetal.pipeline import BaremetalBundle
from repro.compiler.loadable import Loadable
from repro.errors import StoreError, StoreIntegrityError
from repro.store.format import canonical_json, sha256_hex
from repro.store.serialize import (
    BUNDLE_KIND,
    LOADABLE_KIND,
    bundle_meta,
    deserialize_bundle,
    deserialize_loadable,
    serialize_bundle,
    serialize_loadable,
)

LAYOUT_VERSION = 1

#: Environment variable the CLI reads for a default store root.
STORE_ENV_VAR = "REPRO_STORE_DIR"
DEFAULT_STORE_DIR = ".repro-store"

#: How old (seconds since mtime) an *unreferenced* object or a writer's
#: temp file must be before :meth:`BundleStore.gc` will sweep it.  A
#: concurrent ``put`` publishes object-then-ref, so a just-written
#: object can legitimately have no ref yet; sweeping it would leave the
#: racing writer with a dangling ref.  Anything a put is mid-way
#: through is seconds old at most; a minute of grace closes the race
#: without keeping real garbage around.
GC_GRACE_SECONDS = 60.0


def key_digest(key: tuple) -> str:
    """Stable SHA-256 of a deployment key (str/int/float items only)."""
    return sha256_hex(canonical_json(list(key)))


@dataclass
class StoreStats:
    """Counters for one :class:`BundleStore` instance's lifetime."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    integrity_failures: int = 0
    evictions: int = 0
    bytes_written: int = 0
    bytes_read: int = 0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "integrity_failures": self.integrity_failures,
            "evictions": self.evictions,
            "bytes_written": self.bytes_written,
            "bytes_read": self.bytes_read,
        }


@dataclass(frozen=True)
class StoreEntry:
    """One ``ls`` row: a ref plus its object's vitals."""

    key_digest: str
    object_digest: str
    kind: str
    name: str  # "network/config/precision/fidelity" for bundles
    bytes: int
    created: float
    last_used: float

    def render(self) -> str:
        return (
            f"{self.object_digest[:12]}  {self.bytes / 1024:>9.1f} KiB  "
            f"{self.kind:<16} {self.name}"
        )


@dataclass
class VerifyReport:
    """Outcome of a full-store verification sweep."""

    checked: int = 0
    ok: int = 0
    problems: list[tuple[str, str]] = field(default_factory=list)  # (path, reason)

    @property
    def clean(self) -> bool:
        return not self.problems

    def render(self) -> str:
        lines = [f"verified {self.checked} object(s): {self.ok} ok, "
                 f"{len(self.problems)} problem(s)"]
        lines.extend(f"  BAD {path}: {reason}" for path, reason in self.problems)
        return "\n".join(lines)


class BundleStore:
    """Content-addressed persistent store for compiled artifacts."""

    def __init__(
        self,
        root: str | os.PathLike,
        max_bytes: int | None = None,
        max_objects: int | None = None,
        gc_grace_seconds: float = GC_GRACE_SECONDS,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise StoreError("max_bytes must be positive (or None for no cap)")
        if max_objects is not None and max_objects <= 0:
            raise StoreError("max_objects must be positive (or None for no cap)")
        if gc_grace_seconds < 0:
            raise StoreError("gc_grace_seconds must be non-negative")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.max_objects = max_objects
        self.gc_grace_seconds = gc_grace_seconds
        self.stats = StoreStats()
        (self.root / "objects").mkdir(parents=True, exist_ok=True)
        (self.root / "refs").mkdir(parents=True, exist_ok=True)
        marker = self.root / "store.json"
        if marker.exists():
            try:
                layout = json.loads(marker.read_text())["layout"]
            except (ValueError, KeyError) as exc:
                raise StoreError(f"{marker}: unreadable store marker: {exc}") from exc
            if layout != LAYOUT_VERSION:
                raise StoreError(
                    f"{self.root}: store layout {layout} != supported {LAYOUT_VERSION}"
                )
        else:
            self._atomic_write(marker, canonical_json({"layout": LAYOUT_VERSION}))

    # ------------------------------------------------------------------
    # Paths and atomic publishing.
    # ------------------------------------------------------------------

    def _object_path(self, digest: str) -> Path:
        return self.root / "objects" / digest[:2] / digest

    def _ref_path(self, kdigest: str) -> Path:
        return self.root / "refs" / f"{kdigest}.json"

    def _atomic_write(self, path: Path, data: bytes) -> None:
        """Publish via temp file + rename: no reader ever sees a torn file."""
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = path.parent / f".tmp-{os.getpid()}-{os.urandom(4).hex()}"
        try:
            temp.write_bytes(data)
            os.replace(temp, path)
        finally:
            temp.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # Writing.
    # ------------------------------------------------------------------

    def _put_object(self, key: tuple, blob: bytes, ref_extra: dict) -> str:
        digest = sha256_hex(blob)
        object_path = self._object_path(digest)
        # An existing file only short-circuits the write if its bytes
        # still hash to the address — republishing heals in-place
        # corruption instead of silently keeping it.
        try:
            fresh = sha256_hex(object_path.read_bytes()) == digest
        except OSError:
            fresh = False
        if not fresh:
            self._atomic_write(object_path, blob)
            self.stats.bytes_written += len(blob)
        now = time.time()
        ref = {
            "key": list(key),
            "object": digest,
            "bytes": len(blob),
            "created": now,
            "last_used": now,
            **ref_extra,
        }
        self._atomic_write(self._ref_path(key_digest(key)), canonical_json(ref))
        self.stats.writes += 1
        self._enforce_capacity()
        return digest

    def put_bundle(self, key: tuple, bundle: BaremetalBundle) -> str:
        """Serialise and publish; returns the object digest."""
        meta = bundle_meta(bundle)
        return self._put_object(
            key,
            serialize_bundle(bundle),
            {
                "kind": BUNDLE_KIND,
                "name": f"{meta['network']}/{meta['config']}/"
                f"{meta['precision']}/{meta['fidelity']}",
                "artifact_digest": meta["artifact_digest"],
            },
        )

    def put_loadable(self, key: tuple, loadable: Loadable) -> str:
        return self._put_object(
            key,
            serialize_loadable(loadable),
            {
                "kind": LOADABLE_KIND,
                "name": f"{loadable.network}/{loadable.config}/"
                f"{loadable.precision.value}",
            },
        )

    # ------------------------------------------------------------------
    # Reading.
    # ------------------------------------------------------------------

    def _read_ref(self, kdigest: str) -> dict | None:
        ref_path = self._ref_path(kdigest)
        try:
            raw = ref_path.read_bytes()
        except FileNotFoundError:
            return None
        try:
            ref = json.loads(raw.decode())
            ref["object"], ref["bytes"]  # required fields
        except (ValueError, KeyError, UnicodeDecodeError) as exc:
            raise StoreIntegrityError(
                f"ref does not parse: {exc}", path=str(ref_path)
            ) from exc
        return ref

    def _read_object(self, ref: dict, kdigest: str) -> bytes:
        object_path = self._object_path(ref["object"])
        try:
            blob = object_path.read_bytes()
        except FileNotFoundError:
            raise StoreIntegrityError(
                f"ref {kdigest[:12]}… points at a missing object {ref['object'][:12]}…",
                path=str(object_path),
            ) from None
        if sha256_hex(blob) != ref["object"]:
            raise StoreIntegrityError(
                "object bytes do not hash to their content address",
                path=str(object_path),
            )
        self.stats.bytes_read += len(blob)
        return blob

    def _touch(self, kdigest: str, ref: dict) -> None:
        ref = dict(ref)
        ref["last_used"] = time.time()
        self._atomic_write(self._ref_path(kdigest), canonical_json(ref))

    def get_bundle(self, key: tuple) -> BaremetalBundle | None:
        """The stored bundle for a deployment key, fully verified.

        Returns ``None`` on a clean miss.  Raises
        :class:`StoreIntegrityError` — after counting it — when bytes
        exist but cannot be trusted; callers treat that as a miss and
        recompile (see :class:`repro.serve.cache.BundleCache`).
        """
        kdigest = key_digest(key)
        try:
            ref = self._read_ref(kdigest)
            if ref is None:
                self.stats.misses += 1
                return None
            blob = self._read_object(ref, kdigest)
            bundle = deserialize_bundle(blob, path=str(self._object_path(ref["object"])))
            recorded = ref.get("artifact_digest")
            if recorded is not None and bundle.artifact_digest() != recorded:
                raise StoreIntegrityError(
                    "bundle artifact digest disagrees with its ref",
                    path=str(self._object_path(ref["object"])),
                )
        except StoreIntegrityError:
            self.stats.integrity_failures += 1
            raise
        self._touch(kdigest, ref)
        self.stats.hits += 1
        return bundle

    def get_loadable(self, key: tuple) -> Loadable | None:
        kdigest = key_digest(key)
        try:
            ref = self._read_ref(kdigest)
            if ref is None:
                self.stats.misses += 1
                return None
            loadable = deserialize_loadable(self._read_object(ref, kdigest))
        except StoreIntegrityError:
            self.stats.integrity_failures += 1
            raise
        self._touch(kdigest, ref)
        self.stats.hits += 1
        return loadable

    def contains(self, key: tuple) -> bool:
        """Cheap presence probe (ref + object files exist; no hashing)."""
        try:
            ref = self._read_ref(key_digest(key))
        except StoreIntegrityError:
            return False
        return ref is not None and self._object_path(ref["object"]).exists()

    def discard(self, key: tuple) -> bool:
        """Drop a deployment's ref (and its object when unreferenced)."""
        kdigest = key_digest(key)
        try:
            ref = self._read_ref(kdigest)
        except StoreIntegrityError:
            ref = None
        self._ref_path(kdigest).unlink(missing_ok=True)
        if ref is not None:
            self._drop_if_unreferenced(ref["object"])
            return True
        return False

    # ------------------------------------------------------------------
    # Inventory, verification, eviction.
    # ------------------------------------------------------------------

    def _refs(self) -> list[tuple[str, dict]]:
        entries = []
        for path in sorted((self.root / "refs").glob("*.json")):
            try:
                ref = self._read_ref(path.stem)
            except StoreIntegrityError:
                continue  # verify() reports these; inventory skips them
            if ref is not None:
                entries.append((path.stem, ref))
        return entries

    def ls(self) -> list[StoreEntry]:
        """Every live ref, most recently used first."""
        entries = [
            StoreEntry(
                key_digest=kdigest,
                object_digest=ref["object"],
                kind=ref.get("kind", "?"),
                name=ref.get("name", "?"),
                bytes=ref["bytes"],
                created=ref.get("created", 0.0),
                last_used=ref.get("last_used", 0.0),
            )
            for kdigest, ref in self._refs()
        ]
        return sorted(entries, key=lambda e: e.last_used, reverse=True)

    def total_bytes(self) -> int:
        return sum(
            path.stat().st_size for path in (self.root / "objects").glob("*/*")
        )

    def __len__(self) -> int:
        return sum(1 for _ in (self.root / "refs").glob("*.json"))

    def verify(self, static: bool = False) -> VerifyReport:
        """Deep-check every ref and object; report, don't raise.

        ``static=True`` additionally runs the :mod:`repro.analyze`
        descriptor-chain verifier over each deserialized artifact, so a
        bit-exact but *miscompiled* object is flagged too.
        """
        report = VerifyReport()
        referenced: set[str] = set()
        for path in sorted((self.root / "refs").glob("*.json")):
            report.checked += 1
            try:
                ref = self._read_ref(path.stem)
                assert ref is not None
                referenced.add(ref["object"])
                blob = self._read_object(ref, path.stem)
                if ref.get("kind") == LOADABLE_KIND:
                    loadable = deserialize_loadable(blob)
                    if static:
                        self._verify_static(loadable, path)
                else:
                    bundle = deserialize_bundle(blob)
                    recorded = ref.get("artifact_digest")
                    if recorded is not None and bundle.artifact_digest() != recorded:
                        raise StoreIntegrityError(
                            "artifact digest disagrees with ref", path=str(path)
                        )
                    if static:
                        self._verify_static(bundle.loadable, path)
            except StoreIntegrityError as exc:
                report.problems.append((str(path), str(exc)))
            else:
                report.ok += 1
        for object_path in sorted((self.root / "objects").glob("*/*")):
            if object_path.name not in referenced:
                report.checked += 1
                report.problems.append((str(object_path), "unreferenced object"))
        return report

    @staticmethod
    def _verify_static(loadable, path: Path) -> None:
        """Run the descriptor-chain analyzer; fold errors into the sweep."""
        from repro.analyze import analyze_loadable

        analysis = analyze_loadable(loadable, artifact=path.stem)
        if not analysis.clean:
            errors = analysis.errors
            head = "; ".join(d.render() for d in errors[:3])
            more = f" (+{len(errors) - 3} more)" if len(errors) > 3 else ""
            raise StoreIntegrityError(
                f"static analysis found {len(errors)} error(s): {head}{more}",
                path=str(path),
            )

    def _drop_if_unreferenced(self, digest: str) -> None:
        if any(ref["object"] == digest for _, ref in self._refs()):
            return
        self._object_path(digest).unlink(missing_ok=True)

    def _past_grace(self, path: Path, grace_seconds: float) -> bool:
        """True when ``path`` is old enough to be swept as garbage.

        A vanished file (a racing writer just renamed or unlinked it)
        is not ours to sweep either.
        """
        try:
            age = time.time() - path.stat().st_mtime
        except OSError:
            return False
        return age >= grace_seconds

    def _sweep_turds(self, grace_seconds: float) -> None:
        for turd in self.root.glob("**/.tmp-*"):
            if self._past_grace(turd, grace_seconds):
                turd.unlink(missing_ok=True)

    def gc(
        self,
        max_bytes: int | None = None,
        max_objects: int | None = None,
        grace_seconds: float | None = None,
    ) -> list[StoreEntry]:
        """Evict least-recently-used refs until under the caps.

        Also drops crashed writers' temp files and any object no ref
        points at.  Returns the evicted entries, oldest first.

        The unreferenced-object sweep only removes objects (and temp
        files) whose mtime is at least ``grace_seconds`` old (default:
        the store's ``gc_grace_seconds``).  A concurrent ``put``
        publishes its object *before* its ref, so a fresh ref-less
        object is indistinguishable from a publish in flight — the
        grace window keeps the sweep from deleting it under the writer
        (``tests/store/test_concurrent.py`` pins the interleaving).
        Cap-driven evictions are exempt: there this store just unlinked
        the ref itself, so the object really is garbage.
        """
        if grace_seconds is None:
            grace_seconds = self.gc_grace_seconds
        self._sweep_turds(grace_seconds)
        max_bytes = self.max_bytes if max_bytes is None else max_bytes
        max_objects = self.max_objects if max_objects is None else max_objects
        entries = self.ls()  # most recently used first
        evicted: list[StoreEntry] = []
        live_bytes = sum(entry.bytes for entry in entries)
        while entries and (
            (max_objects is not None and len(entries) > max_objects)
            or (max_bytes is not None and live_bytes > max_bytes)
        ):
            victim = entries.pop()  # LRU tail
            self._ref_path(victim.key_digest).unlink(missing_ok=True)
            self._drop_if_unreferenced(victim.object_digest)
            live_bytes -= victim.bytes
            evicted.append(victim)
            self.stats.evictions += 1
        referenced = {entry.object_digest for entry in entries}
        for object_path in (self.root / "objects").glob("*/*"):
            if object_path.name not in referenced and self._past_grace(
                object_path, grace_seconds
            ):
                object_path.unlink(missing_ok=True)
        return evicted

    def _enforce_capacity(self) -> None:
        if self.max_bytes is None and self.max_objects is None:
            return
        # Cheap pre-check before the full inventory pass.
        if self.max_objects is not None and len(self) > self.max_objects:
            self.gc()
            return
        if self.max_bytes is not None and self.total_bytes() > self.max_bytes:
            self.gc()
