"""Bundle and loadable (de)serialisation for the persistent store.

A :class:`~repro.baremetal.pipeline.BaremetalBundle` is a bag of
heterogeneous artefacts — a compiled loadable, a VP trace, register
commands, assembly text, a machine-code image, preload blobs, the VP
reference result — each with an existing text or binary round-trip
(``Loadable.to_bytes``, ``TraceLog.render``/``parse_trace``, ...).
This module maps each onto one section of the container format, so a
deserialised bundle is field-for-field equivalent to the one written:
same :meth:`artifact_digest`, bit-identical execution on both tiers.

Sections (``*`` = optional): ``loadable``, ``program.json``,
``program.words``, ``assembly``, ``commands``, ``images.json``,
``images.preload.<i>``, ``trace`` (zlib: hex text compresses well),
``input_image``, ``vp_result.json``, ``vp_result.raw_output``,
``vp_result.output``, ``vp_result.probabilities``\\*.
"""

from __future__ import annotations

import io
import json

import numpy as np

from repro.baremetal.config_file import ConfigCommand
from repro.baremetal.image import BinImage, DeploymentImages
from repro.baremetal.pipeline import BaremetalBundle
from repro.compiler.loadable import Loadable
from repro.errors import StoreIntegrityError
from repro.nvdla.config import Precision
from repro.riscv.program import Program
from repro.store.format import Section, read_container, write_container
from repro.vp import InferenceResult
from repro.vp.trace_log import parse_trace

BUNDLE_KIND = "baremetal-bundle"
LOADABLE_KIND = "loadable"
SERIAL_VERSION = 1


def _array_bytes(array: np.ndarray) -> bytes:
    buffer = io.BytesIO()
    np.save(buffer, array, allow_pickle=False)
    return buffer.getvalue()


def _array_from(data: bytes, path: str | None = None) -> np.ndarray:
    try:
        return np.load(io.BytesIO(data), allow_pickle=False)
    except ValueError as exc:
        raise StoreIntegrityError(f"stored array does not parse: {exc}", path=path) from exc


def bundle_meta(bundle: BaremetalBundle) -> dict:
    """The identity recorded next to the sections (and in store refs)."""
    return {
        "kind": BUNDLE_KIND,
        "serial_version": SERIAL_VERSION,
        "network": bundle.network,
        "config": bundle.config,
        "precision": bundle.precision.value,
        "fidelity": bundle.fidelity,
        "artifact_digest": bundle.artifact_digest(),
        "notes": bundle.notes,
    }


def serialize_bundle(bundle: BaremetalBundle) -> bytes:
    """One deterministic container blob for the whole bundle."""
    program = bundle.program
    sections = [
        Section("loadable", bundle.loadable.to_bytes()),
        Section(
            "program.json",
            json.dumps(
                {
                    "base": program.base,
                    "entry": program.entry,
                    "symbols": program.symbols,
                },
                sort_keys=True,
                separators=(",", ":"),
            ).encode(),
        ),
        Section("program.words", program.to_bytes()),
        Section("assembly", bundle.assembly.encode(), compress=True),
        Section(
            "commands",
            json.dumps(
                [[c.kind, c.address, c.data, c.mask] for c in bundle.commands],
                separators=(",", ":"),
            ).encode(),
            compress=True,
        ),
        Section(
            "images.json",
            json.dumps(
                {
                    "program_mem": bundle.images.program_mem,
                    "preload": [
                        {"name": image.name, "load_address": image.load_address}
                        for image in bundle.images.preload
                    ],
                },
                sort_keys=True,
                separators=(",", ":"),
            ).encode(),
            compress=True,
        ),
        *(
            Section(f"images.preload.{index}", image.data)
            for index, image in enumerate(bundle.images.preload)
        ),
        Section("trace", bundle.trace.render().encode(), compress=True),
        Section("input_image", _array_bytes(bundle.input_image)),
        Section(
            "vp_result.json",
            json.dumps(
                {
                    "cycles": bundle.vp_result.cycles,
                    "ops": bundle.vp_result.ops,
                    "csb_accesses": bundle.vp_result.csb_accesses,
                    "op_cycles": bundle.vp_result.op_cycles,
                },
                sort_keys=True,
                separators=(",", ":"),
            ).encode(),
        ),
        Section("vp_result.raw_output", _array_bytes(bundle.vp_result.raw_output)),
        Section("vp_result.output", _array_bytes(bundle.vp_result.output)),
    ]
    if bundle.vp_result.probabilities is not None:
        sections.append(
            Section(
                "vp_result.probabilities", _array_bytes(bundle.vp_result.probabilities)
            )
        )
    return write_container(bundle_meta(bundle), sections)


def deserialize_bundle(blob: bytes, path: str | None = None) -> BaremetalBundle:
    """Reconstruct a bundle; integrity failures raise, never mis-load."""
    meta, sections = read_container(blob, path=path)
    if meta.get("kind") != BUNDLE_KIND:
        raise StoreIntegrityError(
            f"object is a {meta.get('kind')!r}, not a {BUNDLE_KIND!r}", path=path
        )
    if meta.get("serial_version") != SERIAL_VERSION:
        raise StoreIntegrityError(
            f"unsupported bundle serial version {meta.get('serial_version')!r}",
            path=path,
        )

    def section(name: str) -> bytes:
        try:
            return sections[name]
        except KeyError:
            raise StoreIntegrityError(f"missing section {name!r}", path=path) from None

    try:
        loadable = Loadable.from_bytes(section("loadable"))
        program_meta = json.loads(section("program.json").decode())
        program = Program.from_bytes(section("program.words"), base=program_meta["base"])
        program.entry = program_meta["entry"]
        program.symbols = program_meta["symbols"]
        assembly = section("assembly").decode()
        program.source = assembly
        commands = [
            ConfigCommand(kind, address, data, mask)
            for kind, address, data, mask in json.loads(section("commands").decode())
        ]
        images_meta = json.loads(section("images.json").decode())
        preload = [
            BinImage(
                name=entry["name"],
                load_address=entry["load_address"],
                data=section(f"images.preload.{index}"),
            )
            for index, entry in enumerate(images_meta["preload"])
        ]
        trace = parse_trace(section("trace").decode())
        vp_meta = json.loads(section("vp_result.json").decode())
    except StoreIntegrityError:
        raise
    except Exception as exc:  # malformed inner payloads are integrity failures too
        raise StoreIntegrityError(f"stored bundle does not decode: {exc}", path=path) from exc
    vp_result = InferenceResult(
        raw_output=_array_from(section("vp_result.raw_output"), path),
        output=_array_from(section("vp_result.output"), path),
        probabilities=(
            _array_from(sections["vp_result.probabilities"], path)
            if "vp_result.probabilities" in sections
            else None
        ),
        cycles=vp_meta["cycles"],
        ops=vp_meta["ops"],
        csb_accesses=vp_meta["csb_accesses"],
        op_cycles=vp_meta["op_cycles"],
    )
    bundle = BaremetalBundle(
        network=meta["network"],
        config=meta["config"],
        precision=Precision(meta["precision"]),
        loadable=loadable,
        trace=trace,
        commands=commands,
        assembly=assembly,
        program=program,
        images=DeploymentImages(
            program_mem=images_meta["program_mem"], program=program, preload=preload
        ),
        vp_result=vp_result,
        input_image=_array_from(section("input_image"), path),
        fidelity=meta["fidelity"],
        notes=meta.get("notes", {}),
    )
    recorded = meta.get("artifact_digest")
    if recorded is not None and bundle.artifact_digest() != recorded:
        raise StoreIntegrityError(
            "reconstructed bundle's artifact digest disagrees with the one "
            f"recorded at write time ({recorded[:12]}…)",
            path=path,
        )
    return bundle


def serialize_loadable(loadable: Loadable) -> bytes:
    """A standalone compiled loadable in the same container format."""
    return write_container(
        {
            "kind": LOADABLE_KIND,
            "serial_version": SERIAL_VERSION,
            "network": loadable.network,
            "config": loadable.config,
            "precision": loadable.precision.value,
        },
        [Section("loadable", loadable.to_bytes())],
    )


def deserialize_loadable(blob: bytes, path: str | None = None) -> Loadable:
    meta, sections = read_container(blob, path=path)
    if meta.get("kind") != LOADABLE_KIND:
        raise StoreIntegrityError(
            f"object is a {meta.get('kind')!r}, not a {LOADABLE_KIND!r}", path=path
        )
    if "loadable" not in sections:
        raise StoreIntegrityError("missing section 'loadable'", path=path)
    try:
        return Loadable.from_bytes(sections["loadable"])
    except Exception as exc:
        raise StoreIntegrityError(
            f"stored loadable does not decode: {exc}", path=path
        ) from exc
