"""The versioned binary container every stored artifact lives in.

One file = one artifact::

    RBST | version(2, LE) | index_len(4, LE) | index JSON |
    index SHA-256 (32 raw bytes) | payload

The index names every *section* of the payload — offset, stored
length, SHA-256 of the stored bytes, logical length and encoding —
plus a free-form ``meta`` dict for the object kind and identity.  A
reader verifies the index's own digest and then each section's digest
before decoding it, so a flipped byte *anywhere in the file* — header,
index, meta or payload — a truncated tail or a swapped payload is
always a typed :class:`~repro.errors.StoreIntegrityError`, never
silently wrong data.

The encoding is deterministic: JSON is emitted with sorted keys and
fixed separators, and zlib (the only compression used) is fixed at
one level — two processes serialising the same artifact produce
byte-identical containers, which is what makes content addressing
(digest = SHA-256 of the file) stable across writers.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import dataclass

from repro.errors import StoreIntegrityError

MAGIC = b"RBST"
FORMAT_VERSION = 1

_ZLIB_LEVEL = 6  # fixed: compression must be deterministic
_ENCODINGS = ("raw", "zlib")


def canonical_json(data: dict | list) -> bytes:
    """Deterministic JSON bytes (sorted keys, fixed separators)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":")).encode()


def sha256_hex(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


@dataclass(frozen=True)
class Section:
    """One named payload slice of a container."""

    name: str
    data: bytes
    compress: bool = False


def write_container(meta: dict, sections: list[Section]) -> bytes:
    """Serialise sections into one integrity-indexed blob."""
    names = [section.name for section in sections]
    if len(set(names)) != len(names):
        raise StoreIntegrityError(f"duplicate section names in {names}")
    payload = bytearray()
    index_sections = []
    for section in sections:
        stored = (
            zlib.compress(section.data, _ZLIB_LEVEL) if section.compress else section.data
        )
        index_sections.append(
            {
                "name": section.name,
                "offset": len(payload),
                "stored_length": len(stored),
                "length": len(section.data),
                "encoding": "zlib" if section.compress else "raw",
                "sha256": sha256_hex(stored),
            }
        )
        payload.extend(stored)
    index = canonical_json({"meta": meta, "sections": index_sections})
    return (
        MAGIC
        + FORMAT_VERSION.to_bytes(2, "little")
        + len(index).to_bytes(4, "little")
        + index
        + hashlib.sha256(index).digest()
        + bytes(payload)
    )


def read_container(blob: bytes, path: str | None = None) -> tuple[dict, dict[str, bytes]]:
    """Parse and verify a container; returns ``(meta, {name: data})``.

    Every anomaly — bad magic, unknown version, an index that does not
    parse, a section outside the payload, a digest mismatch, an
    undecodable zlib stream — raises :class:`StoreIntegrityError`.
    """

    def bad(reason: str) -> StoreIntegrityError:
        return StoreIntegrityError(reason, path=path)

    if len(blob) < 10:
        raise bad(f"container truncated to {len(blob)} bytes")
    if blob[:4] != MAGIC:
        raise bad(f"bad magic {blob[:4]!r} (want {MAGIC!r})")
    version = int.from_bytes(blob[4:6], "little")
    if version != FORMAT_VERSION:
        raise bad(f"unsupported container version {version}")
    index_len = int.from_bytes(blob[6:10], "little")
    if 10 + index_len + 32 > len(blob):
        raise bad(f"index length {index_len} overruns {len(blob)}-byte container")
    index_bytes = blob[10 : 10 + index_len]
    recorded_digest = blob[10 + index_len : 10 + index_len + 32]
    if hashlib.sha256(index_bytes).digest() != recorded_digest:
        raise bad("index SHA-256 mismatch (corrupted header/index/meta)")
    try:
        index = json.loads(index_bytes.decode())
        meta = index["meta"]
        entries = index["sections"]
    except (ValueError, KeyError, UnicodeDecodeError) as exc:
        raise bad(f"index does not parse: {exc}") from exc
    payload = blob[10 + index_len + 32 :]
    sections: dict[str, bytes] = {}
    for entry in entries:
        try:
            name = entry["name"]
            offset, stored_length = entry["offset"], entry["stored_length"]
            encoding, digest = entry["encoding"], entry["sha256"]
        except (KeyError, TypeError) as exc:
            raise bad(f"malformed section entry {entry!r}") from exc
        if encoding not in _ENCODINGS:
            raise bad(f"section {name!r}: unknown encoding {encoding!r}")
        if not (0 <= offset and offset + stored_length <= len(payload)):
            raise bad(
                f"section {name!r}: [{offset}, {offset + stored_length}) outside "
                f"{len(payload)}-byte payload (truncated?)"
            )
        stored = payload[offset : offset + stored_length]
        if sha256_hex(stored) != digest:
            raise bad(f"section {name!r}: SHA-256 mismatch (corrupted bytes)")
        if encoding == "zlib":
            try:
                data = zlib.decompress(stored)
            except zlib.error as exc:
                raise bad(f"section {name!r}: zlib stream corrupt: {exc}") from exc
        else:
            data = stored
        if len(data) != entry.get("length", len(data)):
            raise bad(
                f"section {name!r}: decoded {len(data)} bytes, "
                f"index records {entry['length']}"
            )
        if name in sections:
            raise bad(f"duplicate section {name!r}")
        sections[name] = data
    return meta, sections
