"""AHB-Lite protocol model.

The µRISC-V core talks AHB-Lite to both program memory and the system
bus.  AHB-Lite pipelines the address and data phases, so back-to-back
transfers cost one cycle each plus any wait states inserted by the
downstream slave; the very first transfer of a sequence additionally
pays the address phase.

This transaction-level model charges:

``cycles = address_phase (1) + burst_len * (1 + downstream_extra)``

where ``downstream_extra`` is whatever the wrapped port reports beyond
its own ideal single-cycle data phase.  That reproduces AHB's defining
property — pipelined single-cycle transfers into zero-wait-state
slaves — without simulating the HTRANS/HREADY signal pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bus.types import BusPort, Reply, Transfer


@dataclass
class AhbStats:
    """Cumulative traffic counters for one AHB segment."""

    transfers: int = 0
    beats: int = 0
    cycles: int = 0
    bytes: int = 0
    by_master: dict[str, int] = field(default_factory=dict)


class AhbLiteBus(BusPort):
    """An AHB-Lite segment in front of a downstream port.

    Parameters
    ----------
    downstream:
        The slave (or decoder) reached through this segment.
    address_phase_cycles:
        Cost of the (non-overlapped) address phase that starts every
        transaction; 1 for a standard AHB-Lite master.
    data_width_bits:
        Width of the data phase; beats wider than the bus are split.
    """

    def __init__(
        self,
        downstream: BusPort,
        address_phase_cycles: int = 1,
        data_width_bits: int = 32,
    ) -> None:
        if data_width_bits % 8 != 0:
            raise ValueError("data width must be a whole number of bytes")
        self._downstream = downstream
        self._address_phase = address_phase_cycles
        self._width_bytes = data_width_bits // 8
        self.stats = AhbStats()

    @property
    def downstream(self) -> BusPort:
        return self._downstream

    def transfer(self, xfer: Transfer) -> Reply:
        # Beats wider than the physical bus are sequenced as multiple
        # bus-width beats (matching an AHB master's narrow-bus behaviour).
        split = max(1, -(-xfer.size // self._width_bytes))
        reply = self._downstream.transfer(xfer)
        data_cycles = reply.cycles * split
        total = self._address_phase + data_cycles
        self.stats.transfers += 1
        self.stats.beats += xfer.burst_len * split
        self.stats.cycles += total
        self.stats.bytes += xfer.total_bytes
        self.stats.by_master[xfer.master] = self.stats.by_master.get(xfer.master, 0) + 1
        return Reply(data=reply.data, cycles=total, ok=reply.ok)
