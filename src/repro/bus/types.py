"""Core transaction types shared by every bus protocol model.

A :class:`Transfer` is one bus transaction: a single beat or an
incrementing burst.  A :class:`Reply` carries read data plus the number
of cycles the transaction occupied the initiating port, which masters
use to advance the simulation clock.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import Enum

from repro.errors import AlignmentError, BusError

_VALID_BEAT_SIZES = (1, 2, 4, 8)


class AccessType(Enum):
    """Direction of a bus transfer."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class Transfer:
    """A single bus transaction (one beat, or an incrementing burst).

    Attributes
    ----------
    address:
        Byte address of the first beat.
    size:
        Bytes per beat (1, 2, 4 or 8); must divide the address.
    access:
        Read or write.
    data:
        Payload for writes, ``len(data) == size * burst_len``.
    burst_len:
        Number of beats; addresses increment by ``size``.
    master:
        Initiator name, used by arbiters and tracing.
    """

    address: int
    size: int = 4
    access: AccessType = AccessType.READ
    data: bytes | None = None
    burst_len: int = 1
    master: str = "cpu"

    def __post_init__(self) -> None:
        if self.size not in _VALID_BEAT_SIZES:
            raise BusError(f"unsupported beat size {self.size}", self.address)
        if self.address % self.size != 0:
            raise AlignmentError(
                f"address 0x{self.address:08x} not aligned to {self.size}-byte beat",
                self.address,
            )
        if self.burst_len < 1:
            raise BusError("burst_len must be at least 1", self.address)
        if self.access is AccessType.WRITE:
            if self.data is None or len(self.data) != self.size * self.burst_len:
                got = None if self.data is None else len(self.data)
                raise BusError(
                    f"write payload must be size*burst_len={self.size * self.burst_len} bytes, got {got}",
                    self.address,
                )
        elif self.data is not None:
            raise BusError("read transfers must not carry data", self.address)

    @property
    def total_bytes(self) -> int:
        """Total payload bytes across all beats."""
        return self.size * self.burst_len

    @property
    def end_address(self) -> int:
        """One past the last byte touched by the burst."""
        return self.address + self.total_bytes


@dataclass
class Reply:
    """Result of a transfer: read data and cycle cost.

    ``cycles`` is the number of clock cycles the transaction held the
    initiating port, including every protocol hop downstream.
    """

    data: bytes = b""
    cycles: int = 1
    ok: bool = True

    def value(self) -> int:
        """Interpret the read data as a little-endian unsigned integer."""
        return int.from_bytes(self.data, "little")


class BusPort(ABC):
    """Anything that can accept bus transfers.

    Protocol models, bridges, decoders, peripherals and memories all
    implement this single-method interface, which makes the fabric
    freely composable: a bridge is a port that wraps another port.
    """

    @abstractmethod
    def transfer(self, xfer: Transfer) -> Reply:
        """Execute ``xfer`` and return data plus cycle cost."""

    def read(self, address: int, size: int = 4, master: str = "cpu") -> Reply:
        """Convenience single-beat read."""
        return self.transfer(Transfer(address=address, size=size, access=AccessType.READ, master=master))

    def write(self, address: int, value: int, size: int = 4, master: str = "cpu") -> Reply:
        """Convenience single-beat write of an unsigned integer."""
        data = int(value).to_bytes(size, "little")
        return self.transfer(
            Transfer(address=address, size=size, access=AccessType.WRITE, data=data, master=master)
        )

    def read_block(self, address: int, nbytes: int, master: str = "dma", beat: int = 4) -> Reply:
        """Burst-read ``nbytes`` starting at ``address``.

        The block is split into maximal aligned bursts of ``beat``-byte
        beats; replies are concatenated and cycle costs summed.
        """
        chunks: list[bytes] = []
        cycles = 0
        remaining = nbytes
        addr = address
        while remaining > 0:
            size = beat if addr % beat == 0 and remaining >= beat else 1
            beats = max(1, remaining // size) if size == beat else 1
            xfer = Transfer(address=addr, size=size, access=AccessType.READ, burst_len=beats, master=master)
            reply = self.transfer(xfer)
            chunks.append(reply.data)
            cycles += reply.cycles
            addr += xfer.total_bytes
            remaining -= xfer.total_bytes
        return Reply(data=b"".join(chunks), cycles=cycles)

    def write_block(self, address: int, data: bytes, master: str = "dma", beat: int = 4) -> Reply:
        """Burst-write ``data`` starting at ``address``."""
        cycles = 0
        addr = address
        view = memoryview(data)
        while view:
            size = beat if addr % beat == 0 and len(view) >= beat else 1
            beats = max(1, len(view) // size) if size == beat else 1
            payload = bytes(view[: size * beats])
            xfer = Transfer(
                address=addr,
                size=size,
                access=AccessType.WRITE,
                data=payload,
                burst_len=beats,
                master=master,
            )
            reply = self.transfer(xfer)
            cycles += reply.cycles
            addr += xfer.total_bytes
            view = view[xfer.total_bytes :]
        return Reply(cycles=cycles)
