"""AXI data-width converter.

NVDLA's data backbone (DBB) is 64 bits wide in the paper's SoC while
the shared data memory is 32 bits wide, so every DBB beat is split into
two beats on the memory side.  This halves the effective streaming
bandwidth of the accelerator — one of the first-order terms in the
nv_small inference latencies of Table II — and is the parameter the
paper's conclusion proposes widening (64 → 512 bits) to support
nv_full.

The converter is symmetric: it can also pack narrow-side beats into
wide-side beats when the master is narrower than the slave.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bus.types import BusPort, Reply, Transfer


@dataclass
class WidthConverterStats:
    transactions: int = 0
    master_beats: int = 0
    slave_beats: int = 0
    cycles: int = 0


class AxiWidthConverter(BusPort):
    """Converts between a master-side and a slave-side AXI width.

    Parameters
    ----------
    downstream:
        The slave-side port (e.g. the DRAM arbiter).
    master_width_bits / slave_width_bits:
        Data widths of the two sides; both must be powers of two
        multiples of a byte.
    packing_latency:
        Fixed cycles to fill/drain the internal packing register per
        transaction.
    """

    def __init__(
        self,
        downstream: BusPort,
        master_width_bits: int = 64,
        slave_width_bits: int = 32,
        packing_latency: int = 1,
    ) -> None:
        for width in (master_width_bits, slave_width_bits):
            if width < 8 or width % 8 != 0:
                raise ValueError(f"invalid AXI width {width}")
        self._downstream = downstream
        self.master_width_bits = master_width_bits
        self.slave_width_bits = slave_width_bits
        self._master_bytes = master_width_bits // 8
        self._slave_bytes = slave_width_bits // 8
        self._packing_latency = packing_latency
        self.stats = WidthConverterStats()

    @property
    def downstream(self) -> BusPort:
        return self._downstream

    @property
    def ratio(self) -> float:
        """Slave beats generated per master beat (may be fractional)."""
        return self._master_bytes / self._slave_bytes

    def transfer(self, xfer: Transfer) -> Reply:
        master_beats = max(1, -(-xfer.total_bytes // self._master_bytes))
        slave_beats = max(1, -(-xfer.total_bytes // self._slave_bytes))
        reply = self._downstream.transfer(xfer)
        # The slave side paces the transaction whenever it needs more
        # beats than the master side supplied (the down-conversion case
        # in the paper: 64-bit DBB feeding a 32-bit memory).
        pacing_beats = max(master_beats, slave_beats)
        local_cycles = self._packing_latency + pacing_beats
        total = max(local_cycles, reply.cycles + self._packing_latency)
        self.stats.transactions += 1
        self.stats.master_beats += master_beats
        self.stats.slave_beats += slave_beats
        self.stats.cycles += total
        return Reply(data=reply.data, cycles=total, ok=reply.ok)

    def stream_cycles(self, nbytes: int) -> int:
        """Pacing cost of ``nbytes`` of bulk traffic through the converter."""
        wide = -(-nbytes // self._master_bytes)
        narrow = -(-nbytes // self._slave_bytes)
        return self._packing_latency + max(wide, narrow)
