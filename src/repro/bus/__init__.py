"""Transaction-level models of the SoC bus fabric.

The paper's SoC (Fig. 2) mixes three on-chip protocols:

- **AHB-Lite** — the Codasip µRISC-V master interface,
- **APB** — the register path into NVDLA's configuration space bus
  (CSB), through an AHB→APB bridge and the APB→CSB adapter shipped
  with NVDLA,
- **AXI** — the data path: NVDLA's 64-bit DBB interface, a 64→32-bit
  data-width converter, and the AHB→AXI bridge in front of the shared
  data memory.

Each protocol model charges a per-transfer cycle cost that reflects its
handshake (AHB pipelining, APB setup+access phases, AXI burst beats) so
that end-to-end latencies — register programming over CSB, weight
streaming over DBB — reproduce the first-order timing behaviour of the
RTL system.
"""

from repro.bus.types import AccessType, BusPort, Reply, Transfer
from repro.bus.ahb import AhbLiteBus
from repro.bus.apb import ApbBus
from repro.bus.axi import AxiBus, AxiBurst
from repro.bus.bridges import AhbToApbBridge, AhbToAxiBridge, ApbToCsbAdapter
from repro.bus.width_converter import AxiWidthConverter
from repro.bus.interconnect import AddressDecoder, AxiInterconnect, AxiSmartConnect, Region

__all__ = [
    "AccessType",
    "AddressDecoder",
    "AhbLiteBus",
    "AhbToApbBridge",
    "AhbToAxiBridge",
    "ApbBus",
    "ApbToCsbAdapter",
    "AxiBurst",
    "AxiBus",
    "AxiInterconnect",
    "AxiSmartConnect",
    "AxiWidthConverter",
    "BusPort",
    "Region",
    "Reply",
    "Transfer",
]
