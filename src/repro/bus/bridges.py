"""Protocol bridges used by the NVDLA wrapper (paper Fig. 2).

Three bridges stitch the µRISC-V's AHB-Lite world to NVDLA:

- :class:`AhbToApbBridge` — the open-source ARM design the paper
  reuses; it resynchronises each AHB transfer into an APB setup/access
  pair.
- :class:`ApbToCsbAdapter` — shipped with the NVDLA package; turns APB
  reads/writes into CSB request/response cycles.
- :class:`AhbToAxiBridge` — lets the core reach the AXI data memory.

Each bridge is a :class:`~repro.bus.types.BusPort` wrapping another
port and adding its crossing latency, so fabric topology is expressed
by plain object composition.
"""

from __future__ import annotations

from repro.bus.types import BusPort, Reply, Transfer


class _LatencyBridge(BusPort):
    """Base for bridges that add a fixed per-transfer crossing cost."""

    CROSSING_CYCLES = 1

    def __init__(self, downstream: BusPort) -> None:
        self._downstream = downstream
        self.transfers = 0
        self.cycles = 0

    @property
    def downstream(self) -> BusPort:
        return self._downstream

    def transfer(self, xfer: Transfer) -> Reply:
        reply = self._downstream.transfer(xfer)
        total = reply.cycles + self.CROSSING_CYCLES
        self.transfers += 1
        self.cycles += total
        return Reply(data=reply.data, cycles=total, ok=reply.ok)


class AhbToApbBridge(_LatencyBridge):
    """AHB-Lite → APB bridge (ARM open-source design).

    The bridge registers the AHB address/data phases and replays them
    on APB, costing one cycle of resynchronisation on top of the APB
    transfer itself.
    """

    CROSSING_CYCLES = 1


class AhbToAxiBridge(_LatencyBridge):
    """AHB-Lite → AXI bridge for the core's data-memory path.

    Packs each AHB transfer into an AXI transaction; the extra cycle
    covers the AW/AR channel issue on the far side.
    """

    CROSSING_CYCLES = 1


class ApbToCsbAdapter(_LatencyBridge):
    """APB → CSB adapter from the NVDLA release.

    CSB is NVDLA's simple valid/ready request interface with a single
    outstanding transaction; the adapter holds PREADY low for one CSB
    round-trip cycle.
    """

    CROSSING_CYCLES = 1
