"""AXI protocol model.

AXI carries the high-bandwidth data traffic: NVDLA's 64-bit data
backbone (DBB) and the µRISC-V's bridged path to DRAM.  The model
charges per transaction:

``cycles = issue_latency + ceil(beats_on_this_bus) * beat_cycles + downstream_extra``

where ``issue_latency`` covers the AR/AW handshake and ``beats`` are
counted at this bus's data width (a 64-bit burst crossing a 32-bit
converter doubles its beat count there, see
:mod:`repro.bus.width_converter`).

:class:`AxiBurst` is a small helper describing how a block transfer is
chopped into protocol-legal bursts (max 256 beats, 4 KiB boundary
rule) — the MCIF and DMA models use it for cycle accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bus.types import BusPort, Reply, Transfer

AXI_MAX_BURST_BEATS = 256
AXI_BOUNDARY = 4096


@dataclass(frozen=True)
class AxiBurst:
    """One protocol-legal AXI burst: start address and beat count."""

    address: int
    beats: int
    size: int  # bytes per beat

    @property
    def nbytes(self) -> int:
        return self.beats * self.size


def split_into_bursts(address: int, nbytes: int, beat_size: int) -> list[AxiBurst]:
    """Chop a block transfer into legal AXI bursts.

    Bursts never cross a 4 KiB boundary and never exceed 256 beats,
    per the AXI specification.  Unaligned head/tail bytes are carried
    in single-beat narrow bursts.
    """
    bursts: list[AxiBurst] = []
    addr = address
    remaining = nbytes
    while remaining > 0:
        if addr % beat_size != 0 or remaining < beat_size:
            # Head/tail bytes go out as single-byte beats up to the next
            # beat boundary (or to the end of the block).
            to_boundary = beat_size - addr % beat_size if addr % beat_size else remaining
            step = min(remaining, to_boundary, beat_size)
            bursts.append(AxiBurst(address=addr, beats=step, size=1))
            addr += step
            remaining -= step
            continue
        to_boundary = AXI_BOUNDARY - (addr % AXI_BOUNDARY)
        max_bytes = min(remaining, to_boundary, AXI_MAX_BURST_BEATS * beat_size)
        beats = max(1, max_bytes // beat_size)
        bursts.append(AxiBurst(address=addr, beats=beats, size=beat_size))
        addr += beats * beat_size
        remaining -= beats * beat_size
    return bursts


@dataclass
class AxiStats:
    transactions: int = 0
    beats: int = 0
    bytes: int = 0
    cycles: int = 0
    by_master: dict[str, int] = field(default_factory=dict)


class AxiBus(BusPort):
    """An AXI segment with a given data width and issue latency.

    Parameters
    ----------
    downstream:
        Next hop (converter, interconnect, arbiter or memory).
    data_width_bits:
        Physical width of this segment (32/64/128/256/512).
    issue_latency:
        Cycles for the address-channel handshake per transaction.
    beat_cycles:
        Cycles per data beat at this width (1 for a well-formed fabric).
    """

    def __init__(
        self,
        downstream: BusPort,
        data_width_bits: int = 64,
        issue_latency: int = 2,
        beat_cycles: int = 1,
    ) -> None:
        if data_width_bits % 8 != 0 or data_width_bits < 8:
            raise ValueError("invalid AXI data width")
        self._downstream = downstream
        self.data_width_bits = data_width_bits
        self._width_bytes = data_width_bits // 8
        self._issue_latency = issue_latency
        self._beat_cycles = beat_cycles
        self.stats = AxiStats()

    @property
    def downstream(self) -> BusPort:
        return self._downstream

    @property
    def width_bytes(self) -> int:
        return self._width_bytes

    def transfer(self, xfer: Transfer) -> Reply:
        reply = self._downstream.transfer(xfer)
        beats_here = max(1, -(-xfer.total_bytes // self._width_bytes))
        # The downstream reply already includes its own beat costs; we
        # only add what this segment contributes beyond the downstream
        # time when it is the narrower (and hence pacing) element.
        local_cycles = self._issue_latency + beats_here * self._beat_cycles
        total = max(local_cycles, reply.cycles + self._issue_latency)
        self.stats.transactions += 1
        self.stats.beats += beats_here
        self.stats.bytes += xfer.total_bytes
        self.stats.cycles += total
        self.stats.by_master[xfer.master] = self.stats.by_master.get(xfer.master, 0) + 1
        return Reply(data=reply.data, cycles=total, ok=reply.ok)

    def stream_cycles(self, address: int, nbytes: int) -> int:
        """Cycle cost of streaming ``nbytes`` through this segment.

        Used by DMA timing models for bulk traffic: the cost of each
        legal burst is ``issue_latency + beats``, which captures the
        burst-length-dependent efficiency of the interface.
        """
        bursts = split_into_bursts(address, nbytes, self._width_bytes)
        return sum(self._issue_latency + b.beats * self._beat_cycles for b in bursts)
