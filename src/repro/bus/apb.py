"""APB protocol model.

APB is the low-cost register-access bus between the AHB→APB bridge and
the NVDLA CSB adapter.  Every APB transfer takes at least two cycles —
a SETUP phase and an ACCESS phase — plus any wait states the completer
inserts via PREADY.  APB does not support bursts; burst transfers are
sequenced as independent setup/access pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bus.types import AccessType, BusPort, Reply, Transfer


@dataclass
class ApbStats:
    transfers: int = 0
    cycles: int = 0


class ApbBus(BusPort):
    """An APB segment in front of a register-style completer."""

    SETUP_CYCLES = 1
    ACCESS_CYCLES = 1

    def __init__(self, downstream: BusPort) -> None:
        self._downstream = downstream
        self.stats = ApbStats()

    @property
    def downstream(self) -> BusPort:
        return self._downstream

    def transfer(self, xfer: Transfer) -> Reply:
        per_beat = self.SETUP_CYCLES + self.ACCESS_CYCLES
        total_cycles = 0
        data = bytearray()
        for beat in range(xfer.burst_len):
            address = xfer.address + beat * xfer.size
            if xfer.access is AccessType.WRITE:
                assert xfer.data is not None
                payload = xfer.data[beat * xfer.size : (beat + 1) * xfer.size]
                beat_xfer = Transfer(
                    address=address,
                    size=xfer.size,
                    access=AccessType.WRITE,
                    data=payload,
                    master=xfer.master,
                )
            else:
                beat_xfer = Transfer(
                    address=address, size=xfer.size, access=AccessType.READ, master=xfer.master
                )
            reply = self._downstream.transfer(beat_xfer)
            # The completer's own cost beyond one ideal cycle shows up
            # as PREADY wait states inside the ACCESS phase.
            wait_states = max(0, reply.cycles - 1)
            total_cycles += per_beat + wait_states
            data.extend(reply.data)
        self.stats.transfers += xfer.burst_len
        self.stats.cycles += total_cycles
        return Reply(data=bytes(data), cycles=total_cycles)
