"""Address decoding and AXI interconnect components.

:class:`AddressDecoder` is the system-bus decoder of the paper's SoC:
it assigns disjoint address windows to the NVDLA configuration space
(``0x0 -- 0xFFFFF``) and the DRAM data memory (``0x100000 --
0x200FFFFF``) and routes each transfer to the owning slave, optionally
rebasing the address into the slave's local space.

:class:`AxiSmartConnect` models the Vivado SmartConnect of the test
setup (paper Fig. 4), which "functions as a multiplexer" between the
Zynq PS (during preload) and the SoC (during inference).
:class:`AxiInterconnect` models the clock-domain-crossing interconnect
between the 300 MHz SoC and the 100 MHz MIG DDR4 controller.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bus.types import AccessType, BusPort, Reply, Transfer
from repro.errors import AddressDecodeError, BusError


@dataclass(frozen=True)
class Region:
    """One decoder window: ``[base, limit]`` inclusive, like Vivado maps."""

    name: str
    base: int
    limit: int
    port: BusPort
    rebase: bool = True

    def __post_init__(self) -> None:
        if self.limit < self.base:
            raise BusError(f"region {self.name!r}: limit below base")

    def contains(self, address: int) -> bool:
        return self.base <= address <= self.limit

    @property
    def size(self) -> int:
        return self.limit - self.base + 1


class AddressDecoder(BusPort):
    """Routes transfers to slave regions by address.

    Overlapping regions are rejected at construction time; transfers
    that straddle a region boundary are rejected at run time, matching
    the behaviour of a real bus decoder (a burst must stay inside one
    slave's window).
    """

    def __init__(self, regions: list[Region], decode_cycles: int = 0) -> None:
        ordered = sorted(regions, key=lambda r: r.base)
        for left, right in zip(ordered, ordered[1:]):
            if right.base <= left.limit:
                raise BusError(f"regions {left.name!r} and {right.name!r} overlap")
        self._regions = ordered
        self._decode_cycles = decode_cycles
        self.routed: dict[str, int] = {r.name: 0 for r in ordered}

    @property
    def regions(self) -> list[Region]:
        return list(self._regions)

    def region_for(self, address: int) -> Region:
        for region in self._regions:
            if region.contains(address):
                return region
        raise AddressDecodeError(f"no slave mapped at 0x{address:08x}", address)

    def transfer(self, xfer: Transfer) -> Reply:
        region = self.region_for(xfer.address)
        if not region.contains(xfer.end_address - 1):
            raise AddressDecodeError(
                f"burst 0x{xfer.address:08x}+{xfer.total_bytes} crosses out of region {region.name!r}",
                xfer.address,
            )
        address = xfer.address - region.base if region.rebase else xfer.address
        routed = Transfer(
            address=address,
            size=xfer.size,
            access=xfer.access,
            data=xfer.data,
            burst_len=xfer.burst_len,
            master=xfer.master,
        )
        reply = region.port.transfer(routed)
        self.routed[region.name] += 1
        return Reply(data=reply.data, cycles=reply.cycles + self._decode_cycles, ok=reply.ok)


class AxiSmartConnect(BusPort):
    """Two-upstream multiplexer in front of the DDR4 controller.

    Exactly one upstream (``"zynq"`` or ``"soc"``) owns the memory at a
    time; the owner is switched by :meth:`select`.  Transfers from the
    non-selected master raise, reproducing the exclusive-access design
    of the paper's test setup.
    """

    CROSSING_CYCLES = 1

    def __init__(self, downstream: BusPort, owners: tuple[str, str] = ("zynq", "soc")) -> None:
        self._downstream = downstream
        self._owners = owners
        self._selected = owners[0]
        self.switches = 0

    @property
    def selected(self) -> str:
        return self._selected

    def select(self, owner: str) -> None:
        if owner not in self._owners:
            raise BusError(f"unknown SmartConnect upstream {owner!r}")
        if owner != self._selected:
            self._selected = owner
            self.switches += 1

    def transfer(self, xfer: Transfer) -> Reply:
        if xfer.master != self._selected:
            raise BusError(
                f"SmartConnect: master {xfer.master!r} is not selected (owner is {self._selected!r})"
            )
        reply = self._downstream.transfer(xfer)
        return Reply(data=reply.data, cycles=reply.cycles + self.CROSSING_CYCLES, ok=reply.ok)


class AxiInterconnect(BusPort):
    """Clock-domain-crossing interconnect (SoC 300 MHz ↔ MIG 100 MHz).

    Cycle costs reported by the downstream (measured in slow-side
    cycles) are scaled by the clock ratio into fast-side cycles, plus a
    fixed synchroniser penalty per transaction.
    """

    def __init__(self, downstream: BusPort, fast_hz: float = 300e6, slow_hz: float = 100e6, sync_cycles: int = 2) -> None:
        if fast_hz <= 0 or slow_hz <= 0:
            raise ValueError("clock frequencies must be positive")
        self._downstream = downstream
        self.fast_hz = fast_hz
        self.slow_hz = slow_hz
        self._ratio = fast_hz / slow_hz
        self._sync_cycles = sync_cycles

    @property
    def ratio(self) -> float:
        return self._ratio

    def transfer(self, xfer: Transfer) -> Reply:
        reply = self._downstream.transfer(xfer)
        fast_cycles = int(round(reply.cycles * self._ratio)) + self._sync_cycles
        return Reply(data=reply.data, cycles=fast_cycles, ok=reply.ok)


class LoopbackPort(BusPort):
    """Minimal test double: a little-endian register array.

    Kept in the library (rather than the test tree) because examples
    and diagnostics also use it as a stand-in slave.
    """

    def __init__(self, nbytes: int = 4096) -> None:
        self._store = bytearray(nbytes)

    def transfer(self, xfer: Transfer) -> Reply:
        end = xfer.end_address
        if end > len(self._store):
            raise AddressDecodeError(f"loopback access beyond 0x{len(self._store):x}", xfer.address)
        cycles = max(1, xfer.burst_len)  # ideal slave: one cycle per beat
        if xfer.access is AccessType.WRITE:
            assert xfer.data is not None
            self._store[xfer.address : end] = xfer.data
            return Reply(cycles=cycles)
        return Reply(data=bytes(self._store[xfer.address : end]), cycles=cycles)
