"""The virtual platform: NVDLA + flat memory + logging adaptors.

Mirrors the QEMU/SystemC co-simulation of the paper's Fig. 3: the
"CPU" side is the Python runtime driving :meth:`csb_write` /
:meth:`csb_read` (each access logged by the CSB adaptor), and the
NVDLA model's memory traffic flows through a logging DBB adaptor into
a flat sparse memory initialised with the loadable's weight blob and
the input image.

The VP uses the same absolute address map as the SoC (DRAM window at
``0x100000``), so generated traces replay on the SoC unchanged — the
property the whole bare-metal flow rests on.
"""

from __future__ import annotations

from repro.clock import Clock
from repro.errors import TraceError
from repro.mem.sparse_memory import SparseMemory
from repro.nvdla.config import HardwareConfig
from repro.nvdla.engine import NvdlaEngine
from repro.nvdla.timing import TimingParams
from repro.vp.trace_log import TraceLog

_DEFAULT_MEMORY_TOP = 0x2100_0000  # covers the 512 MB DRAM window + headroom


class _LoggingDbbPort:
    """DBB adaptor: forwards to memory and logs each transaction."""

    def __init__(
        self,
        memory: SparseMemory,
        clock: Clock,
        log: TraceLog | None,
        width_bytes: int,
    ) -> None:
        self._memory = memory
        self._clock = clock
        self._log = log
        self._width = max(1, width_bytes)

    def read(self, address: int, nbytes: int) -> bytes:
        data = self._memory.read(address, nbytes)
        if self._log is not None:
            self._log.log_dbb(self._clock.now, address, data, iswrite=False)
        return data

    def write(self, address: int, data: bytes) -> None:
        self._memory.write(address, data)
        if self._log is not None:
            self._log.log_dbb(self._clock.now, address, bytes(data), iswrite=True)

    def stream_cycles(self, address: int, nbytes: int) -> int:
        # Simple VP memory: ideal DBB-width beats plus a per-256B burst
        # handshake.  VP timing only orders the trace; SoC latencies
        # come from the SoC's own memory system.
        beats = -(-nbytes // self._width)
        bursts = -(-nbytes // 256)
        return beats + 2 * bursts


class VirtualPlatform:
    """Co-simulation host for trace generation and validation runs."""

    def __init__(
        self,
        config: HardwareConfig,
        fidelity: str = "functional",
        trace: bool = True,
        memory_top: int = _DEFAULT_MEMORY_TOP,
        frequency_hz: float = 100e6,
        timing_params: TimingParams | None = None,
    ) -> None:
        self.config = config
        self.memory = SparseMemory(memory_top)
        self.clock = Clock(frequency_hz)
        self.trace: TraceLog | None = TraceLog() if trace else None
        self._dbb = _LoggingDbbPort(
            self.memory, self.clock, self.trace, config.dbb_width_bytes
        )
        self.engine = NvdlaEngine(
            config,
            dbb=self._dbb,
            clock=self.clock,
            fidelity=fidelity,
            timing_params=timing_params,
        )

    # ------------------------------------------------------------------
    # The CSB adaptor (every access logged).
    # ------------------------------------------------------------------

    CSB_ACCESS_COST = 1  # VP cycles per register access

    def csb_write(self, offset: int, value: int) -> None:
        if self.trace is not None:
            self.trace.log_csb(self.clock.now, offset, value, iswrite=True)
        self.engine.csb_write(offset, value)
        self.clock.advance(self.CSB_ACCESS_COST)

    def csb_read(self, offset: int) -> int:
        value = self.engine.csb_read(offset)
        if self.trace is not None:
            self.trace.log_csb(self.clock.now, offset, value, iswrite=False)
        self.clock.advance(self.CSB_ACCESS_COST)
        return value

    # ------------------------------------------------------------------
    # Execution control.
    # ------------------------------------------------------------------

    def wait_for_interrupt(self, max_events: int = 64) -> None:
        """Advance the clock until the NVDLA IRQ line asserts."""
        fired = 0
        while not self.engine.irq_asserted:
            if not self.clock.fast_forward_to_next_event():
                raise TraceError("deadlock: waiting for interrupt with no pending events")
            fired += 1
            if fired > max_events:
                raise TraceError("interrupt did not assert within the event budget")

    def load_blob(self, address: int, data: bytes) -> None:
        """Preload memory (weights / input image) without DBB logging —
        on the real VP this initialisation happens via the test bridge,
        not through NVDLA's DBB port."""
        self.memory.write(address, data)

    def read_blob(self, address: int, nbytes: int) -> bytes:
        return self.memory.read(address, nbytes)
