"""The runtime: NVDLA's user-mode driver, in Python.

Deploys a :class:`~repro.compiler.loadable.Loadable` onto the virtual
platform and executes it hardware-layer by hardware-layer: select the
shadow group, program the unit registers, enable producers then the
sink, wait for the completion interrupt, acknowledge it.  Every CSB
access it makes is logged by the platform — the log *is* the paper's
configuration trace, later converted to bare-metal RISC-V assembly.

Ops alternate between the two ping-pong register groups like the real
KMD, so generated traces exercise the S_POINTER protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TraceError
from repro.compiler.loadable import Loadable
from repro.compiler.ops import CpuSoftmaxOp
from repro.nvdla.csb import UNIT_BASES, register_address
from repro.nvdla.config import Precision
from repro.nvdla.layout import pack_feature, unpack_feature
from repro.nvdla.programming import ENABLE, SELECT, LayerChain, program_op
from repro.nvdla.registers import D_OP_ENABLE, S_POINTER
from repro.nvdla.units.glb import INTR_STATUS, interrupt_bit
from repro.vp.platform import VirtualPlatform


@dataclass
class InferenceResult:
    """Output of one VP inference."""

    raw_output: np.ndarray  # accelerator output (int8 / fp16), CHW
    output: np.ndarray  # dequantised float32, CHW
    probabilities: np.ndarray | None  # host softmax result, if any
    cycles: int
    ops: int
    csb_accesses: int
    op_cycles: dict[str, int] = field(default_factory=dict)


class NvdlaRuntime:
    """Drives a loadable through the platform, op by op."""

    def __init__(self, platform: VirtualPlatform) -> None:
        self.platform = platform
        self.loadable: Loadable | None = None
        self._group = 0

    # ------------------------------------------------------------------
    # Deployment.
    # ------------------------------------------------------------------

    def deploy(self, loadable: Loadable) -> None:
        """Load the weight blob into VP memory at its linked address."""
        if loadable.config != self.platform.config.name:
            raise TraceError(
                f"loadable built for {loadable.config}, platform is "
                f"{self.platform.config.name}"
            )
        self.platform.load_blob(loadable.weight_base, loadable.weight_blob)
        self.loadable = loadable

    def set_input(self, image: np.ndarray) -> None:
        """Quantise/cast and pack the input image into VP memory."""
        loadable = self._require_loadable()
        ref = loadable.input_tensor
        if image.shape != ref.shape:
            raise TraceError(f"input shape {image.shape} != network input {ref.shape}")
        if ref.precision is Precision.INT8:
            q = np.clip(np.rint(image / ref.scale), -128, 127).astype(np.int8)
        else:
            q = image.astype(np.float16)
        atom = self.platform.config.atom_channels(ref.precision)
        self.platform.load_blob(ref.require_address(), pack_feature(q, atom, ref.precision))

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def execute(self) -> InferenceResult:
        """Run every hardware op, then host ops; returns the result."""
        loadable = self._require_loadable()
        start_csb = len(self.platform.trace.csb) if self.platform.trace else 0
        op_cycles: dict[str, int] = {}
        hw_ops = 0
        for index, op in enumerate(loadable.schedule.ops):
            if isinstance(op, CpuSoftmaxOp):
                continue
            began = self.platform.clock.now
            group = self._group
            self._group ^= 1
            chain = program_op(
                op, self.platform.config, loadable.weight_base, group, op_index=index
            )
            self._replay(chain)
            self._await_completion(chain.sink, group)
            op_cycles[op.name] = self.platform.clock.now - began
            hw_ops += 1

        raw, output = self._read_output()
        probabilities = None
        if loadable.schedule.cpu_ops:
            flat = output.reshape(-1).astype(np.float64)
            exps = np.exp(flat - flat.max())
            probabilities = (exps / exps.sum()).astype(np.float32).reshape(output.shape)
        csb_count = (len(self.platform.trace.csb) if self.platform.trace else 0) - start_csb
        return InferenceResult(
            raw_output=raw,
            output=output,
            probabilities=probabilities,
            cycles=self.platform.clock.now,
            ops=hw_ops,
            csb_accesses=csb_count,
            op_cycles=op_cycles,
        )

    # ------------------------------------------------------------------
    # Register programming helpers.
    # ------------------------------------------------------------------

    def _require_loadable(self) -> Loadable:
        if self.loadable is None:
            raise TraceError("no loadable deployed")
        return self.loadable

    def _write(self, unit: str, register: str, value: int) -> None:
        offset = self.platform.engine.units[unit].offset_of(register)
        self.platform.csb_write(UNIT_BASES[unit] + offset, value & 0xFFFFFFFF)

    def _select_group(self, unit: str, group: int) -> None:
        self.platform.csb_write(register_address(unit, S_POINTER), group)

    def _enable(self, unit: str) -> None:
        self.platform.csb_write(register_address(unit, D_OP_ENABLE), 1)

    def _replay(self, chain: LayerChain) -> None:
        """Issue a descriptor chain to the hardware, event by event.

        The chain comes from :func:`repro.nvdla.programming.program_op`
        — the same pure builder the static analyzer consumes — so the
        CSB trace is exactly the sequence that module constructs.
        """
        for event in chain.events:
            if event.kind == SELECT:
                self._select_group(event.unit, event.value)
            elif event.kind == ENABLE:
                self._enable(event.unit)
            else:
                self._write(event.unit, event.register, event.value)

    # ------------------------------------------------------------------
    # Completion.
    # ------------------------------------------------------------------

    def _await_completion(self, sink: str, group: int) -> None:
        """Wait for the sink's interrupt; read and acknowledge it.

        The read and the write-1-to-clear land in the CSB trace —
        exactly the entries the bare-metal converter turns into the
        poll loop and the acknowledge store.
        """
        self.platform.wait_for_interrupt()
        bit = 1 << interrupt_bit(sink, group)
        status = self.platform.csb_read(register_address("GLB", INTR_STATUS))
        if not status & bit:
            raise TraceError(
                f"expected interrupt bit 0x{bit:x} for {sink}, status=0x{status:08x}"
            )
        self.platform.csb_write(register_address("GLB", INTR_STATUS), bit)

    def _read_output(self) -> tuple[np.ndarray, np.ndarray]:
        loadable = self._require_loadable()
        ref = loadable.output_tensor
        atom = self.platform.config.atom_channels(ref.precision)
        blob = self.platform.read_blob(ref.require_address(), ref.packed_bytes(atom))
        raw = unpack_feature(blob, ref.shape, atom, ref.precision)
        if ref.precision is Precision.INT8:
            output = raw.astype(np.float32) * ref.scale
        else:
            output = raw.astype(np.float32)
        return raw, output
