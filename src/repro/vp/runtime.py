"""The runtime: NVDLA's user-mode driver, in Python.

Deploys a :class:`~repro.compiler.loadable.Loadable` onto the virtual
platform and executes it hardware-layer by hardware-layer: select the
shadow group, program the unit registers, enable producers then the
sink, wait for the completion interrupt, acknowledge it.  Every CSB
access it makes is logged by the platform — the log *is* the paper's
configuration trace, later converted to bare-metal RISC-V assembly.

Ops alternate between the two ping-pong register groups like the real
KMD, so generated traces exercise the S_POINTER protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TraceError
from repro.compiler.loadable import Loadable
from repro.compiler.ops import ConvOp, CpuSoftmaxOp, EltwiseOpKind, LrnOp, PoolOp, SdpOp, TensorRef
from repro.nvdla.csb import UNIT_BASES, register_address
from repro.nvdla.descriptors import f32_to_bits
from repro.nvdla.config import Precision
from repro.nvdla.layout import feature_strides, pack_feature, unpack_feature
from repro.nvdla.registers import D_OP_ENABLE, S_POINTER
from repro.nvdla.units.glb import INTR_STATUS, interrupt_bit
from repro.vp.platform import VirtualPlatform

_ELTWISE_CODE = {EltwiseOpKind.ADD: 1, EltwiseOpKind.MUL: 2, EltwiseOpKind.MAX: 3}
_POOL_CODE = {"max": 0, "avg": 1}


@dataclass
class InferenceResult:
    """Output of one VP inference."""

    raw_output: np.ndarray  # accelerator output (int8 / fp16), CHW
    output: np.ndarray  # dequantised float32, CHW
    probabilities: np.ndarray | None  # host softmax result, if any
    cycles: int
    ops: int
    csb_accesses: int
    op_cycles: dict[str, int] = field(default_factory=dict)


class NvdlaRuntime:
    """Drives a loadable through the platform, op by op."""

    def __init__(self, platform: VirtualPlatform) -> None:
        self.platform = platform
        self.loadable: Loadable | None = None
        self._group = 0

    # ------------------------------------------------------------------
    # Deployment.
    # ------------------------------------------------------------------

    def deploy(self, loadable: Loadable) -> None:
        """Load the weight blob into VP memory at its linked address."""
        if loadable.config != self.platform.config.name:
            raise TraceError(
                f"loadable built for {loadable.config}, platform is "
                f"{self.platform.config.name}"
            )
        self.platform.load_blob(loadable.weight_base, loadable.weight_blob)
        self.loadable = loadable

    def set_input(self, image: np.ndarray) -> None:
        """Quantise/cast and pack the input image into VP memory."""
        loadable = self._require_loadable()
        ref = loadable.input_tensor
        if image.shape != ref.shape:
            raise TraceError(f"input shape {image.shape} != network input {ref.shape}")
        if ref.precision is Precision.INT8:
            q = np.clip(np.rint(image / ref.scale), -128, 127).astype(np.int8)
        else:
            q = image.astype(np.float16)
        atom = self.platform.config.atom_channels(ref.precision)
        self.platform.load_blob(ref.require_address(), pack_feature(q, atom, ref.precision))

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def execute(self) -> InferenceResult:
        """Run every hardware op, then host ops; returns the result."""
        loadable = self._require_loadable()
        start_csb = len(self.platform.trace.csb) if self.platform.trace else 0
        op_cycles: dict[str, int] = {}
        hw_ops = 0
        for op in loadable.schedule.ops:
            if isinstance(op, CpuSoftmaxOp):
                continue
            began = self.platform.clock.now
            group = self._group
            self._group ^= 1
            if isinstance(op, ConvOp):
                sink = self._program_conv(op, group)
            elif isinstance(op, SdpOp):
                sink = self._program_sdp(op, group)
            elif isinstance(op, PoolOp):
                sink = self._program_pool(op, group)
            elif isinstance(op, LrnOp):
                sink = self._program_lrn(op, group)
            else:
                raise TraceError(f"runtime cannot program op kind {op.kind!r}")
            self._await_completion(sink, group)
            op_cycles[op.name] = self.platform.clock.now - began
            hw_ops += 1

        raw, output = self._read_output()
        probabilities = None
        if loadable.schedule.cpu_ops:
            flat = output.reshape(-1).astype(np.float64)
            exps = np.exp(flat - flat.max())
            probabilities = (exps / exps.sum()).astype(np.float32).reshape(output.shape)
        csb_count = (len(self.platform.trace.csb) if self.platform.trace else 0) - start_csb
        return InferenceResult(
            raw_output=raw,
            output=output,
            probabilities=probabilities,
            cycles=self.platform.clock.now,
            ops=hw_ops,
            csb_accesses=csb_count,
            op_cycles=op_cycles,
        )

    # ------------------------------------------------------------------
    # Register programming helpers.
    # ------------------------------------------------------------------

    def _require_loadable(self) -> Loadable:
        if self.loadable is None:
            raise TraceError("no loadable deployed")
        return self.loadable

    def _write(self, unit: str, register: str, value: int) -> None:
        offset = self.platform.engine.units[unit].offset_of(register)
        self.platform.csb_write(UNIT_BASES[unit] + offset, value & 0xFFFFFFFF)

    def _select_group(self, unit: str, group: int) -> None:
        self.platform.csb_write(register_address(unit, S_POINTER), group)

    def _enable(self, unit: str) -> None:
        self.platform.csb_write(register_address(unit, D_OP_ENABLE), 1)

    def _write_tensor(self, unit: str, prefix: str, ref: TensorRef) -> None:
        atom = self.platform.config.atom_channels(ref.precision)
        c, h, w = ref.shape
        line, surf = feature_strides((c, h, w), atom, ref.precision)
        address = ref.require_address()
        self._write(unit, f"{prefix}_ADDR_HIGH", address >> 32)
        self._write(unit, f"{prefix}_ADDR_LOW", address & 0xFFFFFFFF)
        self._write(unit, f"{prefix}_WIDTH", w)
        self._write(unit, f"{prefix}_HEIGHT", h)
        self._write(unit, f"{prefix}_CHANNEL", c)
        self._write(unit, f"{prefix}_LINE_STRIDE", line)
        self._write(unit, f"{prefix}_SURF_STRIDE", surf)

    def _precision_code(self, precision: Precision) -> int:
        return 0 if precision is Precision.INT8 else 1

    def _program_conv(self, op: ConvOp, group: int) -> str:
        loadable = self._require_loadable()
        prec = self._precision_code(op.precision)
        k, c, r, s = op.kernel_shape
        _, out_h, out_w = op.output.shape
        weight_address = loadable.weight_base + (op.weight_offset or 0)
        pad_top, pad_bottom, pad_left, pad_right = op.pad
        conv_units = ("CACC", "CMAC_A", "CMAC_B", "CSC", "CDMA", "SDP_RDMA", "SDP")
        for unit in conv_units:
            self._select_group(unit, group)

        self._write("CDMA", "D_MISC_CFG", prec)
        self._write_tensor("CDMA", "D_DAIN", op.input)
        self._write("CDMA", "D_WEIGHT_ADDR_HIGH", weight_address >> 32)
        self._write("CDMA", "D_WEIGHT_ADDR_LOW", weight_address & 0xFFFFFFFF)
        self._write("CDMA", "D_WEIGHT_BYTES", op.weight_bytes or 0)
        self._write("CDMA", "D_CONV_STRIDE_X", op.stride[1])
        self._write("CDMA", "D_CONV_STRIDE_Y", op.stride[0])
        self._write("CDMA", "D_ZERO_PADDING_LEFT", pad_left)
        self._write("CDMA", "D_ZERO_PADDING_RIGHT", pad_right)
        self._write("CDMA", "D_ZERO_PADDING_TOP", pad_top)
        self._write("CDMA", "D_ZERO_PADDING_BOTTOM", pad_bottom)
        banks = self.platform.engine.cbuf.default_split(op.weight_bytes or 0)
        self._write("CDMA", "D_BANK_DATA", banks.data_banks)
        self._write("CDMA", "D_BANK_WEIGHT", banks.weight_banks)

        self._write("CSC", "D_MISC_CFG", prec)
        self._write("CSC", "D_WEIGHT_SIZE_K", k)
        self._write("CSC", "D_WEIGHT_SIZE_C", c)
        self._write("CSC", "D_WEIGHT_SIZE_R", r)
        self._write("CSC", "D_WEIGHT_SIZE_S", s)
        self._write("CSC", "D_DATAOUT_WIDTH", out_w)
        self._write("CSC", "D_DATAOUT_HEIGHT", out_h)

        self._write("CMAC_A", "D_MISC_CFG", prec)
        self._write("CMAC_B", "D_MISC_CFG", prec)

        self._write("CACC", "D_MISC_CFG", prec)
        self._write("CACC", "D_DATAOUT_WIDTH", out_w)
        self._write("CACC", "D_DATAOUT_HEIGHT", out_h)
        self._write("CACC", "D_DATAOUT_CHANNEL", k)

        self._write("SDP_RDMA", "D_FEATURE_MODE_CFG", 0)  # flying from CACC
        if op.bias_offset is not None:
            bias_address = loadable.weight_base + op.bias_offset
            self._write("SDP_RDMA", "D_BRDMA_CFG", 1)
            self._write("SDP_RDMA", "D_BS_BASE_ADDR_HIGH", bias_address >> 32)
            self._write("SDP_RDMA", "D_BS_BASE_ADDR_LOW", bias_address & 0xFFFFFFFF)
        else:
            self._write("SDP_RDMA", "D_BRDMA_CFG", 0)
        self._write("SDP_RDMA", "D_NRDMA_CFG", 0)
        if op.eltwise_input is not None:  # fused residual add (FP16)
            self._write("SDP_RDMA", "D_ERDMA_CFG", 1)
            self._write_tensor("SDP_RDMA", "D_EW", op.eltwise_input)
        else:
            self._write("SDP_RDMA", "D_ERDMA_CFG", 0)

        self._program_sdp_stage(op, group, bias=op.bias_offset is not None)

        # SDP_RDMA only carries the BRDMA configuration here; in flying
        # mode its DMA block is not part of the launched group, so it is
        # not enabled (enabling it would leave a group pending forever).
        for unit in ("CACC", "CMAC_A", "CMAC_B", "CSC", "CDMA"):
            self._enable(unit)
        self._enable("SDP")
        return "SDP"

    def _program_sdp_stage(self, op, group: int, bias: bool) -> None:
        """Common SDP core registers (fused conv or standalone)."""
        out = op.output
        self._write("SDP", "D_MISC_CFG", self._precision_code(op.precision))
        self._write("SDP", "D_DATA_CUBE_WIDTH", out.shape[2])
        self._write("SDP", "D_DATA_CUBE_HEIGHT", out.shape[1])
        self._write("SDP", "D_DATA_CUBE_CHANNEL", out.shape[0])
        self._write_tensor("SDP", "D_DST", out)
        self._write("SDP", "D_DP_BS_CFG", 1 if bias else 0)
        self._write("SDP", "D_DP_BN_CFG", 0)
        eltwise = getattr(op, "eltwise", None)
        self._write("SDP", "D_DP_EW_CFG", 0 if eltwise is None else _ELTWISE_CODE[eltwise])
        self._write("SDP", "D_EW_CVT_MULT", getattr(op, "ew_cvt_mult", 1))
        self._write("SDP", "D_EW_CVT_SHIFT", getattr(op, "ew_cvt_shift", 0))
        self._write("SDP", "D_ACT_CFG", 1 if op.relu else 0)
        self._write("SDP", "D_CVT_MULT", op.cvt_mult)
        self._write("SDP", "D_CVT_SHIFT", op.cvt_shift)
        self._write("SDP", "D_OUT_PRECISION", self._precision_code(out.precision))

    def _program_sdp(self, op: SdpOp, group: int) -> str:
        for unit in ("SDP_RDMA", "SDP"):
            self._select_group(unit, group)
        self._write("SDP_RDMA", "D_FEATURE_MODE_CFG", 1)  # memory source
        self._write_tensor("SDP_RDMA", "D_SRC", op.input)
        self._write("SDP_RDMA", "D_BRDMA_CFG", 0)
        self._write("SDP_RDMA", "D_NRDMA_CFG", 0)
        if op.eltwise_input is not None:
            self._write("SDP_RDMA", "D_ERDMA_CFG", 1)
            self._write_tensor("SDP_RDMA", "D_EW", op.eltwise_input)
        else:
            self._write("SDP_RDMA", "D_ERDMA_CFG", 0)
        self._program_sdp_stage(op, group, bias=False)
        self._enable("SDP_RDMA")
        self._enable("SDP")
        return "SDP"

    def _program_pool(self, op: PoolOp, group: int) -> str:
        for unit in ("PDP_RDMA", "PDP"):
            self._select_group(unit, group)
        self._write_tensor("PDP_RDMA", "D_SRC", op.input)
        self._write("PDP", "D_MISC_CFG", self._precision_code(op.precision))
        self._write("PDP", "D_POOLING_METHOD", _POOL_CODE[op.mode])
        self._write("PDP", "D_POOLING_KERNEL_WIDTH", op.kernel[1])
        self._write("PDP", "D_POOLING_KERNEL_HEIGHT", op.kernel[0])
        self._write("PDP", "D_POOLING_STRIDE_X", op.stride[1])
        self._write("PDP", "D_POOLING_STRIDE_Y", op.stride[0])
        pad_top, pad_bottom, pad_left, pad_right = op.pad
        self._write("PDP", "D_POOLING_PAD_LEFT", pad_left)
        self._write("PDP", "D_POOLING_PAD_RIGHT", pad_right)
        self._write("PDP", "D_POOLING_PAD_TOP", pad_top)
        self._write("PDP", "D_POOLING_PAD_BOTTOM", pad_bottom)
        self._write_tensor("PDP", "D_DST", op.output)
        self._enable("PDP_RDMA")
        self._enable("PDP")
        return "PDP"

    def _program_lrn(self, op: LrnOp, group: int) -> str:
        for unit in ("CDP_RDMA", "CDP"):
            self._select_group(unit, group)
        self._write_tensor("CDP_RDMA", "D_SRC", op.input)
        self._write("CDP", "D_MISC_CFG", self._precision_code(op.precision))
        self._write("CDP", "D_LRN_LOCAL_SIZE", op.local_size)
        self._write("CDP", "D_LRN_ALPHA", f32_to_bits(op.alpha))
        self._write("CDP", "D_LRN_BETA", f32_to_bits(op.beta))
        self._write("CDP", "D_LRN_K", f32_to_bits(op.k))
        self._write_tensor("CDP", "D_DST", op.output)
        self._enable("CDP_RDMA")
        self._enable("CDP")
        return "CDP"

    # ------------------------------------------------------------------
    # Completion.
    # ------------------------------------------------------------------

    def _await_completion(self, sink: str, group: int) -> None:
        """Wait for the sink's interrupt; read and acknowledge it.

        The read and the write-1-to-clear land in the CSB trace —
        exactly the entries the bare-metal converter turns into the
        poll loop and the acknowledge store.
        """
        self.platform.wait_for_interrupt()
        bit = 1 << interrupt_bit(sink, group)
        status = self.platform.csb_read(register_address("GLB", INTR_STATUS))
        if not status & bit:
            raise TraceError(
                f"expected interrupt bit 0x{bit:x} for {sink}, status=0x{status:08x}"
            )
        self.platform.csb_write(register_address("GLB", INTR_STATUS), bit)

    def _read_output(self) -> tuple[np.ndarray, np.ndarray]:
        loadable = self._require_loadable()
        ref = loadable.output_tensor
        atom = self.platform.config.atom_channels(ref.precision)
        blob = self.platform.read_blob(ref.require_address(), ref.packed_bytes(atom))
        raw = unpack_feature(blob, ref.shape, atom, ref.precision)
        if ref.precision is Precision.INT8:
            output = raw.astype(np.float32) * ref.scale
        else:
            output = raw.astype(np.float32)
        return raw, output
