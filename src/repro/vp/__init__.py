"""NVDLA virtual platform (paper Fig. 3).

The real flow runs the compiled network on NVDLA's QEMU + SystemC
co-simulation and logs interface-level transactions.  Here the same
role is played by:

- :class:`~repro.vp.platform.VirtualPlatform` — the NVDLA model wired
  to a flat memory with logging adaptors on both interfaces
  (``nvdla.csb_adaptor`` / ``nvdla.dbb_adaptor``, the log keywords the
  paper's scripts grep for),
- :class:`~repro.vp.runtime.NvdlaRuntime` — the user-mode-driver
  equivalent that deploys a loadable, programs registers op by op and
  waits on completion interrupts,
- :mod:`repro.vp.trace_log` — the log format, writer and parser.
"""

from repro.vp.platform import VirtualPlatform
from repro.vp.runtime import InferenceResult, NvdlaRuntime
from repro.vp.trace_log import CsbTransaction, DbbTransaction, TraceLog, parse_trace

__all__ = [
    "CsbTransaction",
    "DbbTransaction",
    "InferenceResult",
    "NvdlaRuntime",
    "TraceLog",
    "VirtualPlatform",
    "parse_trace",
]
