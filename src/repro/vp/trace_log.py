"""VP trace-log format, writer and parser.

The NVDLA virtual platform logs one line per interface transaction;
the paper's scripts filter on the adaptor keywords::

    12 nvdla.csb_adaptor: addr=0x0000b010 data=0x00000001 iswrite=1
    15 nvdla.csb_adaptor: addr=0x0000000c data=0x00000004 iswrite=0
    20 nvdla.dbb_adaptor: addr=0x00100000 len=64 iswrite=0 data=a1b2...

CSB lines carry one 32-bit register access; DBB lines carry up to
``DBB_LINE_BYTES`` of memory traffic with hex payload (reads log the
data returned — that is what weight extraction reconstructs).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import TraceError

CSB_KEYWORD = "nvdla.csb_adaptor"
DBB_KEYWORD = "nvdla.dbb_adaptor"
DBB_LINE_BYTES = 64


@dataclass(frozen=True)
class CsbTransaction:
    """One register access on the configuration space bus."""

    cycle: int
    address: int  # byte offset in the NVDLA register window
    data: int
    iswrite: bool

    def render(self) -> str:
        return (
            f"{self.cycle} {CSB_KEYWORD}: addr=0x{self.address:08x} "
            f"data=0x{self.data:08x} iswrite={int(self.iswrite)}"
        )


@dataclass(frozen=True)
class DbbTransaction:
    """One memory transaction on the data backbone."""

    cycle: int
    address: int  # absolute bus address
    data: bytes
    iswrite: bool

    def render(self) -> str:
        return (
            f"{self.cycle} {DBB_KEYWORD}: addr=0x{self.address:08x} "
            f"len={len(self.data)} iswrite={int(self.iswrite)} data={self.data.hex()}"
        )


@dataclass
class TraceLog:
    """An append-only transaction log with text round-tripping."""

    csb: list[CsbTransaction] = field(default_factory=list)
    dbb: list[DbbTransaction] = field(default_factory=list)
    _order: list[tuple[str, int]] = field(default_factory=list)

    def log_csb(self, cycle: int, address: int, data: int, iswrite: bool) -> None:
        self.csb.append(CsbTransaction(cycle, address, data & 0xFFFFFFFF, iswrite))
        self._order.append(("csb", len(self.csb) - 1))

    def log_dbb(self, cycle: int, address: int, data: bytes, iswrite: bool) -> None:
        for offset in range(0, len(data), DBB_LINE_BYTES):
            chunk = data[offset : offset + DBB_LINE_BYTES]
            self.dbb.append(DbbTransaction(cycle, address + offset, chunk, iswrite))
            self._order.append(("dbb", len(self.dbb) - 1))

    def transactions(self) -> Iterable[CsbTransaction | DbbTransaction]:
        """All transactions in logged order."""
        for kind, index in self._order:
            yield self.csb[index] if kind == "csb" else self.dbb[index]

    def render(self) -> str:
        return "\n".join(t.render() for t in self.transactions()) + ("\n" if self._order else "")

    def __len__(self) -> int:
        return len(self._order)

    def to_spans(self, frequency_hz: float = 100e6) -> list[dict]:
        """The log as ``repro.obs`` span dicts on the simulated clock.

        Each transaction becomes a one-cycle span (the VP logs instants,
        not durations) with cycles converted to seconds at
        ``frequency_hz``; CSB traffic lands on lane 0, DBB on lane 1,
        so both exporters (`repro trace export/vp`) and Perfetto show
        the register programming interleaved with memory traffic.
        """
        period = 1.0 / frequency_hz
        spans = []
        for t in self.transactions():
            is_csb = isinstance(t, CsbTransaction)
            attrs = {
                "cycle": t.cycle,
                "address": f"0x{t.address:08x}",
                "iswrite": t.iswrite,
            }
            if is_csb:
                attrs["data"] = f"0x{t.data:08x}"
            else:
                attrs["bytes"] = len(t.data)
            spans.append({
                "name": ("csb.write" if t.iswrite else "csb.read") if is_csb
                        else ("dbb.write" if t.iswrite else "dbb.read"),
                "trace_id": "vp",
                "span_id": f"vp-{len(spans)}",
                "parent_id": None,
                "start_s": t.cycle * period,
                "end_s": (t.cycle + 1) * period,
                "process": 0 if is_csb else 1,
                "attrs": attrs,
            })
        return spans

    def to_trace_events(self, frequency_hz: float = 100e6) -> dict:
        """Chrome trace-event JSON of the log, loadable in Perfetto."""
        from repro.obs.export import to_chrome_trace

        return to_chrome_trace(
            self.to_spans(frequency_hz),
            process_names={0: "csb", 1: "dbb"},
        )


_CSB_RE = re.compile(
    rf"^(\d+)\s+{re.escape(CSB_KEYWORD)}:\s+addr=0x([0-9a-fA-F]+)\s+"
    rf"data=0x([0-9a-fA-F]+)\s+iswrite=([01])\s*$"
)
_DBB_RE = re.compile(
    rf"^(\d+)\s+{re.escape(DBB_KEYWORD)}:\s+addr=0x([0-9a-fA-F]+)\s+"
    rf"len=(\d+)\s+iswrite=([01])\s+data=([0-9a-fA-F]*)\s*$"
)


def parse_trace(text: str) -> TraceLog:
    """Parse a rendered trace; non-matching lines are skipped, like
    the paper's grep-based scripts skip unrelated VP output."""
    log = TraceLog()
    for line_no, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if CSB_KEYWORD in line:
            match = _CSB_RE.match(line)
            if not match:
                raise TraceError(f"line {line_no}: malformed csb_adaptor entry")
            cycle, address, data, iswrite = match.groups()
            log.log_csb(int(cycle), int(address, 16), int(data, 16), iswrite == "1")
        elif DBB_KEYWORD in line:
            match = _DBB_RE.match(line)
            if not match:
                raise TraceError(f"line {line_no}: malformed dbb_adaptor entry")
            cycle, address, length, iswrite, data = match.groups()
            payload = bytes.fromhex(data)
            if len(payload) != int(length):
                raise TraceError(
                    f"line {line_no}: dbb payload length {len(payload)} != len={length}"
                )
            log.dbb.append(
                DbbTransaction(int(cycle), int(address, 16), payload, iswrite == "1")
            )
            log._order.append(("dbb", len(log.dbb) - 1))
    return log
