"""Memoisation of the offline flow (compile → trace → codegen).

Building a :class:`~repro.baremetal.pipeline.BaremetalBundle` costs
seconds (compilation, VP execution, assembly); running one on the SoC
model costs milliseconds for the small models.  The cache keys bundles
on everything that changes the generated artefacts — see
:func:`repro.baremetal.pipeline.bundle_cache_key` — so a deployment is
built exactly once no matter how many requests hit it.

Entries are kept LRU; the default capacity comfortably holds every
(zoo model × config × precision) point, but a bound exists so a
design-space sweep cannot grow host memory without limit.

With a persistent :class:`~repro.store.BundleStore` attached, a
memory miss tries the disk before compiling — memory → store →
compile — and every fresh compile is published back, so a *new
process* (or a freshly provisioned replica) warms up by fetching
verified artefacts instead of re-running the offline flow.  A store
that fails integrity verification is treated as a miss: the bundle is
recompiled and the bad artefact overwritten.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.baremetal.codegen import CodegenOptions
from repro.baremetal.pipeline import BaremetalBundle, bundle_cache_key, generate_baremetal
from repro.compiler import CompileOptions
from repro.errors import ReproError, StoreError
from repro.nn.zoo import ZOO
from repro.nvdla.config import HardwareConfig, Precision, get_config

if TYPE_CHECKING:
    from repro.store import BundleStore


@dataclass
class BundleCacheStats:
    hits: int = 0  # served from memory
    misses: int = 0  # everything else: store_hits + compiles
    store_hits: int = 0  # served from the persistent store
    store_errors: int = 0  # integrity/IO failures (fell back to compile)
    compiles: int = 0  # paid the full offline flow
    evictions: int = 0
    build_seconds: float = 0.0  # total time spent compiling on misses

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "store_hits": self.store_hits,
            "store_errors": self.store_errors,
            "compiles": self.compiles,
            "evictions": self.evictions,
            "build_seconds": self.build_seconds,
            "hit_rate": self.hit_rate,
        }


class BundleCache:
    """LRU cache of built bundles, keyed by deployment."""

    def __init__(
        self, max_entries: int = 32, store: "BundleStore | None" = None
    ) -> None:
        if max_entries <= 0:
            raise ReproError("cache needs at least one entry")
        self.max_entries = max_entries
        self.store = store
        self._entries: "OrderedDict[tuple, BaremetalBundle]" = OrderedDict()
        self.stats = BundleCacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def lookup(self, key: tuple) -> BaremetalBundle | None:
        """Peek without counting a miss (counts a hit when present)."""
        bundle = self._entries.get(key)
        if bundle is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
        return bundle

    def get_or_build(
        self, key: tuple, build: Callable[[], BaremetalBundle]
    ) -> BaremetalBundle:
        bundle = self._entries.get(key)
        if bundle is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return bundle
        self.stats.misses += 1
        bundle = self._fetch_from_store(key)
        if bundle is None:
            self.stats.compiles += 1
            began = time.perf_counter()
            bundle = build()
            self.stats.build_seconds += time.perf_counter() - began
            self._publish_to_store(key, bundle)
        self._entries[key] = bundle
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return bundle

    def _fetch_from_store(self, key: tuple) -> BaremetalBundle | None:
        """A verified store load, or None — integrity failures recompile."""
        if self.store is None:
            return None
        try:
            bundle = self.store.get_bundle(key)
        except (StoreError, OSError):
            self.stats.store_errors += 1
            return None
        if bundle is not None:
            self.stats.store_hits += 1
        return bundle

    def _publish_to_store(self, key: tuple, bundle: BaremetalBundle) -> None:
        """Best effort: a full disk must not fail the request."""
        if self.store is None:
            return
        try:
            self.store.put_bundle(key, bundle)
        except (StoreError, OSError):
            self.stats.store_errors += 1

    def bundle_for(
        self,
        model: str,
        config: HardwareConfig | str,
        precision: Precision = Precision.INT8,
        fidelity: str = "functional",
        compile_options: CompileOptions | None = None,
        codegen_options: CodegenOptions | None = None,
        seed: int = 2024,
    ) -> BaremetalBundle:
        """Zoo-model convenience front end over :meth:`get_or_build`."""
        if model not in ZOO:
            raise ReproError(f"unknown zoo model {model!r} (known: {sorted(ZOO)})")
        hw = get_config(config) if isinstance(config, str) else config
        key = bundle_cache_key(
            model, hw, precision, fidelity, compile_options, codegen_options, seed
        )
        return self.get_or_build(
            key,
            lambda: generate_baremetal(
                ZOO[model](),
                hw,
                precision=precision,
                fidelity=fidelity,
                compile_options=compile_options,
                codegen_options=codegen_options,
                seed=seed,
            ),
        )

    def clear(self) -> None:
        self._entries.clear()


_SHARED: BundleCache | None = None


def shared_cache() -> BundleCache:
    """The process-wide cache (harness + CLI + examples share builds)."""
    global _SHARED
    if _SHARED is None:
        _SHARED = BundleCache()
    return _SHARED
