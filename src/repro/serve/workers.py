"""Serving workers: build once, serve many inferences.

Two worker tiers share one interface (``run(bundle, input_image)`` →
:class:`~repro.core.soc.SocRunResult`):

- :class:`SocWorker` owns one cycle-accurate
  :class:`~repro.core.soc.Soc` and replays bundles on it;
- :class:`FastPathWorker` owns one calibrated
  :class:`~repro.core.fastpath.FastPathExecutor` — no ISS, no bus
  transactions, outputs bit-identical to the SoC tier with cycles
  from the analytic model.

Workers are keyed by the *hardware* point plus execution mode (config,
frequency, fidelity, memory width, mode) — never the model, since
every run reloads program memory and preload images — so one worker
serves interleaved models on the same hardware.

Per-request inputs are packed exactly the way the VP runtime packs
them (quantise with the input tensor's scale, pack to memory atoms)
and written over the bundle's baked-in ``input.bin`` region, which is
the paper's deployment story: the generated program is
input-independent, only the preloaded image changes.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

import numpy as np

from repro.baremetal.image import BinImage
from repro.baremetal.pipeline import BaremetalBundle
from repro.core.calibration import CalibrationTable
from repro.core.fastpath import FastPathExecutor
from repro.core.soc import Soc, SocRunResult
from repro.errors import ReproError
from repro.nvdla.config import get_config
from repro.nvdla.fastpath import pack_input
from repro.serve.request import DeploymentSpec


def hardware_key(spec: DeploymentSpec) -> tuple:
    """The worker-sharing key: deployment minus the model."""
    return (
        spec.config,
        spec.frequency_hz,
        spec.fidelity,
        spec.memory_bus_width_bits,
        spec.execution_mode,
    )


def pack_input_image(bundle: BaremetalBundle, image: np.ndarray) -> BinImage:
    """Quantise/cast and pack a fresh input the way the VP runtime does."""
    address, data = pack_input(bundle.loadable, get_config(bundle.config), image)
    return BinImage("input.bin", address, data)


@dataclass
class WorkerStats:
    runs: int = 0
    busy_seconds: float = 0.0


class SocWorker:
    """One reusable simulated SoC."""

    def __init__(self, worker_id: int, spec: DeploymentSpec) -> None:
        self.worker_id = worker_id
        self.key = hardware_key(spec)
        self.soc = Soc(
            get_config(spec.config),
            frequency_hz=spec.frequency_hz,
            fidelity=spec.fidelity,
            memory_bus_width_bits=spec.memory_bus_width_bits,
        )
        self.stats = WorkerStats()
        # The replay fast path is keyed on the *artifact digest*, not
        # object identity: an identical recompiled bundle (e.g. after a
        # BundleCache eviction) still hits it, and the weak reference
        # means the worker never pins an evicted bundle in memory.  The
        # weakref is only an optimisation — same object, skip hashing.
        self._last_bundle: "weakref.ref[BaremetalBundle] | None" = None
        self._last_digest: str | None = None

    def _is_replay(self, bundle: BaremetalBundle) -> bool:
        """True when the SoC's DRAM already holds this bundle's artifacts."""
        if self._last_digest is None:
            return False
        last = self._last_bundle() if self._last_bundle is not None else None
        if last is bundle:
            return True
        return bundle.artifact_digest() == self._last_digest

    def run(
        self, bundle: BaremetalBundle, input_image: np.ndarray | None = None
    ) -> SocRunResult:
        """Reset, load and execute one inference on the owned SoC.

        Back-to-back runs of the *same* bundle (by artifact digest, so
        independent builds of one deployment count) skip the DRAM scrub
        and the (large) weight-image rewrite: weights are read-only
        during a run and the allocator keeps them disjoint from
        activations, so only the program, the status page and the input
        region need refreshing.  `tests/serve/test_workers.py` pins
        down that this fast path stays bit-identical to a fresh SoC.
        """
        if self._is_replay(bundle):
            # Program BRAM and reset PC are untouched since the last
            # run, so skip the program reload and keep the fetch cache.
            self.soc.reset_for_run(scrub_dram=False, keep_fetch_cache=True)
            for image in bundle.images.preload:
                if image.name == "weights.bin":
                    continue  # read-only during a run; still loaded
                if image.name == "input.bin" and input_image is not None:
                    continue  # about to be overwritten below
                self.soc.preload_dram(image.load_address, image.data)
        else:
            self.soc.reset_for_run(scrub_dram=True)
            self.soc.load_bundle(bundle)
            self._last_digest = bundle.artifact_digest()
        self._last_bundle = weakref.ref(bundle)
        if input_image is not None:
            image = pack_input_image(bundle, input_image)
            self.soc.preload_dram(image.load_address, image.data)
        result = self.soc.run_inference(bundle)
        self.stats.runs += 1
        return result


class FastPathWorker:
    """One reusable calibrated fast-path executor.

    The executor refuses bundles whose (model, config, precision) was
    never calibrated — see
    :meth:`repro.core.calibration.CalibrationTable.require` — so a
    service cannot silently serve uncalibrated estimates.
    """

    def __init__(
        self,
        worker_id: int,
        spec: DeploymentSpec,
        calibration: CalibrationTable | None,
        max_resident_bundles: int | None = None,
    ) -> None:
        self.worker_id = worker_id
        self.key = hardware_key(spec)
        kwargs = {}
        if max_resident_bundles is not None:
            kwargs["max_resident_bundles"] = max_resident_bundles
        self.executor = FastPathExecutor(
            get_config(spec.config),
            frequency_hz=spec.frequency_hz,
            calibration=calibration,
            memory_bus_width_bits=spec.memory_bus_width_bits,
            **kwargs,
        )
        self.stats = WorkerStats()

    def run(
        self, bundle: BaremetalBundle, input_image: np.ndarray | None = None
    ) -> SocRunResult:
        result = self.executor.run(bundle, input_image=input_image)
        self.stats.runs += 1
        return result


class WorkerPool:
    """Lazily built, hardware-keyed pool of reusable workers.

    ``workers_per_key`` > 1 round-robins successive runs of one
    hardware point over several worker instances — the single-process
    stand-in for a sharded fleet.  ``calibration`` is handed to every
    fast-path worker the pool creates.
    """

    def __init__(
        self,
        workers_per_key: int = 1,
        calibration: CalibrationTable | None = None,
        max_resident_bundles: int | None = None,
    ) -> None:
        if workers_per_key <= 0:
            raise ReproError("pool needs at least one worker per hardware point")
        self.workers_per_key = workers_per_key
        self.calibration = calibration
        # None = FastPathExecutor's own default; fleet replicas set this
        # so their modelled warm-state capacity matches the executor's.
        self.max_resident_bundles = max_resident_bundles
        self._workers: dict[tuple, list[SocWorker | FastPathWorker]] = {}
        self._cursor: dict[tuple, int] = {}
        self._next_id = 0
        self.created = 0
        self.reused = 0

    def _make_worker(self, spec: DeploymentSpec) -> SocWorker | FastPathWorker:
        if spec.execution_mode == "fast":
            return FastPathWorker(
                self._next_id,
                spec,
                self.calibration,
                max_resident_bundles=self.max_resident_bundles,
            )
        return SocWorker(self._next_id, spec)

    def worker_for(self, spec: DeploymentSpec) -> SocWorker | FastPathWorker:
        key = hardware_key(spec)
        lane = self._workers.setdefault(key, [])
        if len(lane) < self.workers_per_key:
            worker = self._make_worker(spec)
            self._next_id += 1
            lane.append(worker)
            self.created += 1
            return worker
        index = self._cursor.get(key, 0)
        self._cursor[key] = (index + 1) % len(lane)
        self.reused += 1
        return lane[index]

    def all_workers(self) -> list[SocWorker | FastPathWorker]:
        return [w for lane in self._workers.values() for w in lane]
