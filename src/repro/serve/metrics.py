"""Service-level metrics: throughput, latency percentiles, hit rates.

Latency is tracked on both timescales: *wall* seconds (host time to
serve a request, the number the cache is trying to shrink) and
*simulated* cycles (what the modelled SoC would take, the number the
paper reports).

Counters live in a :class:`repro.obs.metrics.MetricsRegistry`
(``metrics.registry``) so they merge across processes and export
through ``repro metrics``; the attribute surface below
(``metrics.requests += 1`` etc.) is a facade over registry counters
and is unchanged from the pre-registry dataclass, as is the
:meth:`ServiceMetrics.to_dict` snapshot shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs.metrics import MetricsRegistry
from ..obs.stats import LatencySummary, percentile

__all__ = [
    "DeploymentMetrics",
    "LatencySummary",
    "ServiceMetrics",
    "percentile",
]


@dataclass
class DeploymentMetrics:
    """Per-deployment slice of the service counters.

    Keyed by :meth:`DeploymentSpec.describe`, so mixed-mode services
    (fast and cycle-accurate tiers side by side) report each tier's
    traffic and latency separately — the two tiers serve identical
    tensors but live on different wall-clock scales.
    """

    requests: int = 0
    failures: int = 0
    wall_seconds: float = 0.0
    wall_latencies: list[float] = field(default_factory=list)
    cycle_latencies: list[float] = field(default_factory=list)

    def wall_summary(self) -> LatencySummary:
        return LatencySummary.of(self.wall_latencies)

    def cycle_summary(self) -> LatencySummary:
        return LatencySummary.of(self.cycle_latencies)

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "failures": self.failures,
            "wall_seconds": self.wall_seconds,
            "wall": self.wall_summary().to_dict(),
            "cycles": self.cycle_summary().to_dict(),
        }


def _int_counter(metric: str, doc: str | None = None) -> property:
    """Registry-backed int attribute: ``metrics.requests += 1`` works."""

    def fget(self) -> int:
        return int(self.registry.counter(metric).value)

    def fset(self, value) -> None:
        self.registry.counter(metric).value = int(value)

    return property(fget, fset, doc=doc)


def _float_counter(metric: str, doc: str | None = None) -> property:
    def fget(self) -> float:
        return self.registry.counter(metric).value

    def fset(self, value) -> None:
        self.registry.counter(metric).value = float(value)

    return property(fget, fset, doc=doc)


class ServiceMetrics:
    """Counters accumulated across a service lifetime."""

    requests = _int_counter("serve.requests")
    failures = _int_counter("serve.failures")
    batches = _int_counter("serve.batches")
    # served from the in-memory cache
    bundle_hits = _int_counter("serve.bundle.hits")
    # = bundle_store_hits + bundle_compiles
    bundle_misses = _int_counter("serve.bundle.misses")
    # misses satisfied by the persistent store
    bundle_store_hits = _int_counter("serve.bundle.store_hits")
    # misses that paid the full offline flow
    bundle_compiles = _int_counter("serve.bundle.compiles")
    workers_created = _int_counter("serve.workers.created")
    workers_reused = _int_counter("serve.workers.reused")
    # busy time inside workers
    wall_seconds_total = _float_counter("serve.busy.seconds")
    # end-to-end serve() time
    elapsed_seconds = _float_counter("serve.elapsed.seconds")

    def __init__(
        self,
        requests: int = 0,
        failures: int = 0,
        batches: int = 0,
        bundle_hits: int = 0,
        bundle_misses: int = 0,
        bundle_store_hits: int = 0,
        bundle_compiles: int = 0,
        workers_created: int = 0,
        workers_reused: int = 0,
        wall_seconds_total: float = 0.0,
        elapsed_seconds: float = 0.0,
        wall_latencies: list[float] | None = None,
        cycle_latencies: list[float] | None = None,
        per_deployment: dict[str, DeploymentMetrics] | None = None,
        per_process: dict[int, dict] | None = None,
        registry: MetricsRegistry | None = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.requests = requests
        self.failures = failures
        self.batches = batches
        self.bundle_hits = bundle_hits
        self.bundle_misses = bundle_misses
        self.bundle_store_hits = bundle_store_hits
        self.bundle_compiles = bundle_compiles
        self.workers_created = workers_created
        self.workers_reused = workers_reused
        self.wall_seconds_total = wall_seconds_total
        self.elapsed_seconds = elapsed_seconds
        # Exact samples kept alongside the registry histograms: the
        # summaries below report true nearest-rank percentiles, the
        # histograms are what merges across processes.
        self.wall_latencies = wall_latencies if wall_latencies is not None else []
        self.cycle_latencies = cycle_latencies if cycle_latencies is not None else []
        self.per_deployment = per_deployment if per_deployment is not None else {}
        # Worker-process slot → its counters (runs, busy_seconds,
        # batches, restarts), aggregated by the serving plane after each
        # drain.  The single-process service leaves this empty.
        self.per_process = per_process if per_process is not None else {}

    def record(
        self, wall_seconds: float, cycles: int, ok: bool, deployment: str | None = None
    ) -> None:
        self.requests += 1
        if not ok:
            self.failures += 1
        self.wall_latencies.append(wall_seconds)
        self.cycle_latencies.append(float(cycles))
        self.wall_seconds_total += wall_seconds
        self.registry.histogram("serve.request.wall.seconds").observe(wall_seconds)
        self.registry.histogram("serve.request.cycles").observe(float(cycles))
        if deployment is not None:
            slice_ = self.per_deployment.setdefault(deployment, DeploymentMetrics())
            slice_.requests += 1
            if not ok:
                slice_.failures += 1
            slice_.wall_seconds += wall_seconds
            slice_.wall_latencies.append(wall_seconds)
            slice_.cycle_latencies.append(float(cycles))

    def record_process(self, slot: int, stats: dict) -> None:
        """Fold one worker process's counters into the aggregate view."""
        self.per_process[slot] = dict(stats)

    @property
    def process_restarts(self) -> int:
        return sum(s.get("restarts", 0) for s in self.per_process.values())

    @property
    def cache_hit_rate(self) -> float:
        total = self.bundle_hits + self.bundle_misses
        return self.bundle_hits / total if total else 0.0

    @property
    def throughput_rps(self) -> float:
        """Completed requests per wall-clock second of serving."""
        elapsed = self.elapsed_seconds or self.wall_seconds_total
        return self.requests / elapsed if elapsed else 0.0

    def wall_summary(self) -> LatencySummary:
        return LatencySummary.of(self.wall_latencies)

    def cycle_summary(self) -> LatencySummary:
        return LatencySummary.of(self.cycle_latencies)

    def to_dict(self) -> dict:
        """The whole counter surface as JSON-ready data.

        Benchmarks and the cluster aggregator consume this instead of
        scraping :meth:`render` text.
        """
        return {
            "requests": self.requests,
            "failures": self.failures,
            "batches": self.batches,
            "bundle_hits": self.bundle_hits,
            "bundle_misses": self.bundle_misses,
            "bundle_store_hits": self.bundle_store_hits,
            "bundle_compiles": self.bundle_compiles,
            "cache_hit_rate": self.cache_hit_rate,
            "workers_created": self.workers_created,
            "workers_reused": self.workers_reused,
            "wall_seconds_total": self.wall_seconds_total,
            "elapsed_seconds": self.elapsed_seconds,
            "throughput_rps": self.throughput_rps,
            "wall": self.wall_summary().to_dict(),
            "cycles": self.cycle_summary().to_dict(),
            "per_deployment": {
                name: slice_.to_dict()
                for name, slice_ in sorted(self.per_deployment.items())
            },
            "per_process": {
                str(slot): dict(stats)
                for slot, stats in sorted(self.per_process.items())
            },
        }

    def render(self) -> str:
        wall = self.wall_summary()
        cyc = self.cycle_summary()
        lines = [
            f"requests: {self.requests} ({self.failures} failed) "
            f"in {self.batches} batches",
            f"throughput: {self.throughput_rps:.2f} req/s "
            f"(elapsed {self.elapsed_seconds:.2f} s)",
            f"bundle cache: {self.bundle_hits} hits / {self.bundle_misses} misses "
            f"({self.cache_hit_rate * 100:.0f}% hit rate; "
            f"{self.bundle_store_hits} from store, "
            f"{self.bundle_compiles} compiled)",
            f"workers: {self.workers_created} created, {self.workers_reused} reuses",
            f"wall latency: p50 {wall.p50 * 1e3:.1f} ms  p99 {wall.p99 * 1e3:.1f} ms  "
            f"max {wall.max * 1e3:.1f} ms",
            f"SoC latency: p50 {cyc.p50:,.0f} cycles  p99 {cyc.p99:,.0f} cycles",
        ]
        for name in sorted(self.per_deployment):
            slice_ = self.per_deployment[name]
            wall_slice = slice_.wall_summary()
            cyc_slice = slice_.cycle_summary()
            lines.append(
                f"  {name}: {slice_.requests} requests "
                f"({slice_.failures} failed)  "
                f"wall p50 {wall_slice.p50 * 1e3:.1f} ms  "
                f"p99 {wall_slice.p99 * 1e3:.1f} ms  "
                f"max {wall_slice.max * 1e3:.1f} ms  "
                f"cycles p50 {cyc_slice.p50:,.0f}  p99 {cyc_slice.p99:,.0f}"
            )
        for slot in sorted(self.per_process):
            stats = self.per_process[slot]
            lines.append(
                f"  process {slot}: {stats.get('runs', 0)} runs in "
                f"{stats.get('batches', 0)} batches, "
                f"busy {stats.get('busy_seconds', 0.0):.2f} s, "
                f"{stats.get('restarts', 0)} restarts"
            )
        return "\n".join(lines)
