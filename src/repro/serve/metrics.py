"""Service-level metrics: throughput, latency percentiles, hit rates.

Latency is tracked on both timescales: *wall* seconds (host time to
serve a request, the number the cache is trying to shrink) and
*simulated* cycles (what the modelled SoC would take, the number the
paper reports).
"""

from __future__ import annotations

from dataclasses import dataclass, field


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 for no samples."""
    if not samples:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError(f"percentile {q} out of range")
    ordered = sorted(samples)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil(n*q/100), >= 1
    return ordered[int(rank) - 1]


@dataclass
class LatencySummary:
    """p50/p99/mean/max over one series of samples."""

    count: int
    mean: float
    p50: float
    p99: float
    max: float

    @classmethod
    def of(cls, samples: list[float]) -> "LatencySummary":
        if not samples:
            return cls(count=0, mean=0.0, p50=0.0, p99=0.0, max=0.0)
        return cls(
            count=len(samples),
            mean=sum(samples) / len(samples),
            p50=percentile(samples, 50),
            p99=percentile(samples, 99),
            max=max(samples),
        )

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p99": self.p99,
            "max": self.max,
        }


@dataclass
class DeploymentMetrics:
    """Per-deployment slice of the service counters.

    Keyed by :meth:`DeploymentSpec.describe`, so mixed-mode services
    (fast and cycle-accurate tiers side by side) report each tier's
    traffic and latency separately — the two tiers serve identical
    tensors but live on different wall-clock scales.
    """

    requests: int = 0
    failures: int = 0
    wall_seconds: float = 0.0
    wall_latencies: list[float] = field(default_factory=list)
    cycle_latencies: list[float] = field(default_factory=list)

    def wall_summary(self) -> LatencySummary:
        return LatencySummary.of(self.wall_latencies)

    def cycle_summary(self) -> LatencySummary:
        return LatencySummary.of(self.cycle_latencies)

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "failures": self.failures,
            "wall_seconds": self.wall_seconds,
            "wall": self.wall_summary().to_dict(),
            "cycles": self.cycle_summary().to_dict(),
        }


@dataclass
class ServiceMetrics:
    """Counters accumulated across a service lifetime."""

    requests: int = 0
    failures: int = 0
    batches: int = 0
    bundle_hits: int = 0  # served from the in-memory cache
    bundle_misses: int = 0  # = bundle_store_hits + bundle_compiles
    bundle_store_hits: int = 0  # misses satisfied by the persistent store
    bundle_compiles: int = 0  # misses that paid the full offline flow
    workers_created: int = 0
    workers_reused: int = 0
    wall_seconds_total: float = 0.0  # busy time inside workers
    elapsed_seconds: float = 0.0  # end-to-end serve() time
    wall_latencies: list[float] = field(default_factory=list)
    cycle_latencies: list[float] = field(default_factory=list)
    per_deployment: dict[str, DeploymentMetrics] = field(default_factory=dict)
    # Worker-process slot → its counters (runs, busy_seconds, batches,
    # restarts), aggregated by the serving plane after each drain.  The
    # single-process service leaves this empty.
    per_process: dict[int, dict] = field(default_factory=dict)

    def record(
        self, wall_seconds: float, cycles: int, ok: bool, deployment: str | None = None
    ) -> None:
        self.requests += 1
        if not ok:
            self.failures += 1
        self.wall_latencies.append(wall_seconds)
        self.cycle_latencies.append(float(cycles))
        self.wall_seconds_total += wall_seconds
        if deployment is not None:
            slice_ = self.per_deployment.setdefault(deployment, DeploymentMetrics())
            slice_.requests += 1
            if not ok:
                slice_.failures += 1
            slice_.wall_seconds += wall_seconds
            slice_.wall_latencies.append(wall_seconds)
            slice_.cycle_latencies.append(float(cycles))

    def record_process(self, slot: int, stats: dict) -> None:
        """Fold one worker process's counters into the aggregate view."""
        self.per_process[slot] = dict(stats)

    @property
    def process_restarts(self) -> int:
        return sum(s.get("restarts", 0) for s in self.per_process.values())

    @property
    def cache_hit_rate(self) -> float:
        total = self.bundle_hits + self.bundle_misses
        return self.bundle_hits / total if total else 0.0

    @property
    def throughput_rps(self) -> float:
        """Completed requests per wall-clock second of serving."""
        elapsed = self.elapsed_seconds or self.wall_seconds_total
        return self.requests / elapsed if elapsed else 0.0

    def wall_summary(self) -> LatencySummary:
        return LatencySummary.of(self.wall_latencies)

    def cycle_summary(self) -> LatencySummary:
        return LatencySummary.of(self.cycle_latencies)

    def to_dict(self) -> dict:
        """The whole counter surface as JSON-ready data.

        Benchmarks and the cluster aggregator consume this instead of
        scraping :meth:`render` text.
        """
        return {
            "requests": self.requests,
            "failures": self.failures,
            "batches": self.batches,
            "bundle_hits": self.bundle_hits,
            "bundle_misses": self.bundle_misses,
            "bundle_store_hits": self.bundle_store_hits,
            "bundle_compiles": self.bundle_compiles,
            "cache_hit_rate": self.cache_hit_rate,
            "workers_created": self.workers_created,
            "workers_reused": self.workers_reused,
            "wall_seconds_total": self.wall_seconds_total,
            "elapsed_seconds": self.elapsed_seconds,
            "throughput_rps": self.throughput_rps,
            "wall": self.wall_summary().to_dict(),
            "cycles": self.cycle_summary().to_dict(),
            "per_deployment": {
                name: slice_.to_dict()
                for name, slice_ in sorted(self.per_deployment.items())
            },
            "per_process": {
                str(slot): dict(stats)
                for slot, stats in sorted(self.per_process.items())
            },
        }

    def render(self) -> str:
        wall = self.wall_summary()
        cyc = self.cycle_summary()
        lines = [
            f"requests: {self.requests} ({self.failures} failed) "
            f"in {self.batches} batches",
            f"throughput: {self.throughput_rps:.2f} req/s "
            f"(elapsed {self.elapsed_seconds:.2f} s)",
            f"bundle cache: {self.bundle_hits} hits / {self.bundle_misses} misses "
            f"({self.cache_hit_rate * 100:.0f}% hit rate; "
            f"{self.bundle_store_hits} from store, "
            f"{self.bundle_compiles} compiled)",
            f"workers: {self.workers_created} created, {self.workers_reused} reuses",
            f"wall latency: p50 {wall.p50 * 1e3:.1f} ms  p99 {wall.p99 * 1e3:.1f} ms  "
            f"max {wall.max * 1e3:.1f} ms",
            f"SoC latency: p50 {cyc.p50:,.0f} cycles  p99 {cyc.p99:,.0f} cycles",
        ]
        for name in sorted(self.per_deployment):
            slice_ = self.per_deployment[name]
            wall_slice = slice_.wall_summary()
            cyc_slice = slice_.cycle_summary()
            lines.append(
                f"  {name}: {slice_.requests} requests "
                f"({slice_.failures} failed)  "
                f"wall p50 {wall_slice.p50 * 1e3:.1f} ms  "
                f"p99 {wall_slice.p99 * 1e3:.1f} ms  "
                f"max {wall_slice.max * 1e3:.1f} ms  "
                f"cycles p50 {cyc_slice.p50:,.0f}  p99 {cyc_slice.p99:,.0f}"
            )
        for slot in sorted(self.per_process):
            stats = self.per_process[slot]
            lines.append(
                f"  process {slot}: {stats.get('runs', 0)} runs in "
                f"{stats.get('batches', 0)} batches, "
                f"busy {stats.get('busy_seconds', 0.0):.2f} s, "
                f"{stats.get('restarts', 0)} restarts"
            )
        return "\n".join(lines)
