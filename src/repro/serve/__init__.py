"""Batched inference serving on top of the bare-metal flow.

The subsystem the ROADMAP's "production-scale" north star asks for:
many requests, across models/configs/precisions, served from memoised
bare-metal artefacts on a pool of reusable simulated SoCs.

- :class:`BundleCache` — the offline flow runs once per deployment.
- :class:`RequestScheduler` — fair per-deployment batching, with an
  admit-into-forming-batch path for continuous batching.
- :class:`WorkerPool` / :class:`SocWorker` / :class:`FastPathWorker` —
  reusable execution tiers: cycle-accurate SoCs and the calibrated
  fast path (``DeploymentSpec(execution_mode="fast")``).
- :class:`InferenceService` — the synchronous single-process facade;
  :class:`ServiceMetrics` for throughput / latency percentiles / hit
  rates, per deployment and per worker process.
- :class:`ServingPlane` / :class:`ProcessWorkerPool` — the
  process-parallel plane: an asyncio request plane (streaming arrivals,
  continuous batching) over spawn-safe worker processes that rehydrate
  bundles from the persistent store by cache key.  Outputs are
  bit-identical to the single-process service (see
  :func:`~repro.serve.request.request_rng`).
"""

from repro.serve.cache import BundleCache, BundleCacheStats, shared_cache
from repro.serve.metrics import (
    DeploymentMetrics,
    LatencySummary,
    ServiceMetrics,
    percentile,
)
from repro.serve.plane import ServingPlane
from repro.serve.procpool import ProcessStats, ProcessWorkerPool
from repro.serve.request import (
    DeploymentSpec,
    InferenceRequest,
    InferenceResponse,
    make_input,
    make_input_for,
    request_rng,
)
from repro.serve.scheduler import Batch, RequestScheduler
from repro.serve.service import InferenceService
from repro.serve.workers import (
    FastPathWorker,
    SocWorker,
    WorkerPool,
    hardware_key,
    pack_input_image,
)

__all__ = [
    "Batch",
    "BundleCache",
    "BundleCacheStats",
    "DeploymentMetrics",
    "DeploymentSpec",
    "FastPathWorker",
    "InferenceRequest",
    "InferenceResponse",
    "InferenceService",
    "LatencySummary",
    "ProcessStats",
    "ProcessWorkerPool",
    "RequestScheduler",
    "ServiceMetrics",
    "ServingPlane",
    "SocWorker",
    "WorkerPool",
    "hardware_key",
    "make_input",
    "make_input_for",
    "pack_input_image",
    "percentile",
    "request_rng",
    "shared_cache",
]
