"""The inference service: cache + scheduler + worker pool + metrics.

One synchronous facade over the serving pipeline::

    service = InferenceService()
    service.submit(InferenceRequest(0, DeploymentSpec("lenet5"), image))
    responses = service.run_pending()
    print(service.metrics.render())

Each unique deployment pays the offline flow (compile → VP trace →
codegen) once, on first touch; every later request replays the cached
artefacts on a pooled SoC worker, which is orders of magnitude cheaper.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baremetal.pipeline import BaremetalBundle
from repro.core.calibration import CalibrationTable
from repro.obs.trace import NULL_TRACER, Tracer, record_unit_spans
from repro.serve.cache import BundleCache
from repro.serve.metrics import ServiceMetrics
from repro.serve.request import (
    DeploymentSpec,
    InferenceRequest,
    InferenceResponse,
    make_input,
    request_rng,
)
from repro.serve.scheduler import Batch, RequestScheduler
from repro.serve.workers import WorkerPool


class InferenceService:
    """Serves batched inference requests across models and configs."""

    def __init__(
        self,
        cache: BundleCache | None = None,
        max_batch_size: int = 8,
        workers_per_key: int = 1,
        input_seed: int = 7,
        calibration: CalibrationTable | None = None,
        max_resident_bundles: int | None = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        # NOT `cache or BundleCache()`: an empty cache is falsy (__len__)
        # and would be silently swapped for one without its store.
        self.cache = cache if cache is not None else BundleCache()
        self.scheduler = RequestScheduler(max_batch_size=max_batch_size)
        self.pool = WorkerPool(
            workers_per_key=workers_per_key,
            calibration=calibration,
            max_resident_bundles=max_resident_bundles,
        )
        self.metrics = ServiceMetrics()
        self.tracer = tracer
        # Inputs the service synthesises are drawn per request from
        # request_rng(input_seed, request_id) — see that function for
        # the determinism convention — so the tensor request i receives
        # does not depend on batch interleaving or worker count.
        self.input_seed = input_seed
        self._next_request_id = 0

    # ------------------------------------------------------------------
    # Intake.
    # ------------------------------------------------------------------

    def submit(self, request: InferenceRequest) -> None:
        self.scheduler.submit(request)

    def request(
        self, deployment: DeploymentSpec, input_image: np.ndarray | None = None
    ) -> InferenceRequest:
        """Build, submit and return a request with a fresh id."""
        request = InferenceRequest(self._next_request_id, deployment, input_image)
        self._next_request_id += 1
        self.submit(request)
        return request

    # ------------------------------------------------------------------
    # Fleet hooks: queue depth and state snapshots for routers /
    # autoscalers sitting above a pool of services (repro.cluster).
    # ------------------------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Requests accepted but not yet served."""
        return self.scheduler.pending()

    def snapshot(self) -> dict:
        """JSON-ready state: queue depth, metrics, cache and pool."""
        snapshot = {
            "outstanding": self.outstanding,
            "metrics": self.metrics.to_dict(),
            "cache": {"entries": len(self.cache), **self.cache.stats.to_dict()},
            "workers": {
                "created": self.pool.created,
                "reused": self.pool.reused,
            },
        }
        if self.cache.store is not None:
            snapshot["store"] = self.cache.store.stats.to_dict()
        return snapshot

    # ------------------------------------------------------------------
    # Serving.
    # ------------------------------------------------------------------

    def bundle_for(self, deployment: DeploymentSpec) -> tuple[BaremetalBundle, bool]:
        """The deployment's memoised artefacts; True when cache-hit."""
        misses_before = self.cache.stats.misses
        store_hits_before = self.cache.stats.store_hits
        bundle = self.cache.bundle_for(
            deployment.model,
            deployment.config,
            precision=deployment.precision,
            fidelity=deployment.fidelity,
        )
        hit = self.cache.stats.misses == misses_before
        if hit:
            self.metrics.bundle_hits += 1
            source = "memory"
        else:
            self.metrics.bundle_misses += 1
            if self.cache.stats.store_hits > store_hits_before:
                self.metrics.bundle_store_hits += 1
                source = "store"
            else:
                self.metrics.bundle_compiles += 1
                source = "compile"
        self._last_resolution = source
        return bundle, hit

    def _serve_batch(self, batch: Batch) -> list[InferenceResponse]:
        tracer = self.tracer
        # Batch-scope work (one bundle resolution serves every request)
        # gets its own trace so per-request trees stay single-rooted.
        batch_span = tracer.start(
            "batch", trace_id=f"batch-{batch.batch_id}",
            batch_id=batch.batch_id, size=len(batch.requests),
            deployment=batch.deployment.describe(),
        )
        resolve_span = tracer.start("bundle.resolve", parent=batch_span)
        bundle, cache_hit = self.bundle_for(batch.deployment)
        tracer.end(resolve_span, source=getattr(self, "_last_resolution", "memory"))
        worker = self.pool.worker_for(batch.deployment)
        responses: list[InferenceResponse] = []
        for request in batch.requests:
            root = tracer.start(
                "request", trace_id=f"req-{request.request_id}",
                request_id=request.request_id,
                deployment=batch.deployment.describe(),
                batch_id=batch.batch_id,
            )
            image = request.input_image
            if image is None and batch.deployment.fidelity == "functional":
                shape = bundle.loadable.input_tensor.shape
                with tracer.span("input.synthesize", parent=root):
                    image = make_input(
                        shape, request_rng(self.input_seed, request.request_id)
                    )
            execute_span = tracer.start(
                "execute", parent=root, mode=batch.deployment.execution_mode
            )
            began = time.perf_counter()
            result = worker.run(bundle, input_image=image)
            wall = time.perf_counter() - began
            worker.stats.busy_seconds += wall
            if tracer.enabled:
                tracer.end(execute_span, cycles=result.cycles,
                           sim_seconds=result.seconds,
                           worker_id=worker.worker_id)
                record_unit_spans(tracer, execute_span,
                                  getattr(result, "op_records", ()), result.cycles)
                tracer.end(root, ok=result.ok, cycles=result.cycles)
            self.metrics.record(
                wall, result.cycles, result.ok, deployment=batch.deployment.describe()
            )
            responses.append(
                InferenceResponse(
                    request_id=request.request_id,
                    deployment=batch.deployment,
                    ok=result.ok,
                    output=result.output,
                    cycles=result.cycles,
                    sim_seconds=result.seconds,
                    wall_seconds=wall,
                    cache_hit=cache_hit,
                    worker_id=worker.worker_id,
                    batch_id=batch.batch_id,
                )
            )
            cache_hit = True  # later requests of the batch reuse the bundle
        tracer.end(batch_span)
        self.metrics.batches += 1
        return responses

    def run_pending(self) -> list[InferenceResponse]:
        """Drain the queue fairly; returns responses in dispatch order."""
        began = time.perf_counter()
        responses: list[InferenceResponse] = []
        while (batch := self.scheduler.next_batch()) is not None:
            responses.extend(self._serve_batch(batch))
        self.metrics.elapsed_seconds += time.perf_counter() - began
        self.metrics.workers_created = self.pool.created
        self.metrics.workers_reused = self.pool.reused
        return responses
