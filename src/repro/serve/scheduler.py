"""Request batching with cross-deployment fairness.

Requests are queued FIFO, then drained as per-deployment *batches*: a
batch shares one bundle and one worker, so batching amortises program
and weight preloads.  Batch dispatch round-robins across deployments
(ordered by their oldest pending request), which keeps a deployment
with a deep backlog from starving the others — the fairness property
`tests/serve/test_scheduler.py` pins down.

Continuous batching: a dispatcher that is not yet executing a batch
can take it *open* (``next_batch(keep_open=True)``).  While a batch is
open, newly submitted requests for the same deployment are admitted
straight into it — they join the forming batch instead of waiting a
whole round-robin drain for their deployment's next turn.  The batch
seals when it reaches ``max_batch_size`` or when the dispatcher calls
:meth:`RequestScheduler.seal` at execution time; the seal is the
admission cutoff, after which arrivals queue for the next batch.  The
asyncio serving plane (:mod:`repro.serve.plane`) holds batches open
for its admission window; the synchronous
:class:`~repro.serve.service.InferenceService` never does, so its
drain semantics are unchanged.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.serve.request import DeploymentSpec, InferenceRequest


@dataclass
class Batch:
    """A run of same-deployment requests dispatched together.

    ``sealed`` is False only while the batch is *forming* — held open
    by a dispatcher so late arrivals can still join (continuous
    batching).  A sealed batch's membership is final.
    """

    batch_id: int
    deployment: DeploymentSpec
    requests: list[InferenceRequest] = field(default_factory=list)
    sealed: bool = True

    def __len__(self) -> int:
        return len(self.requests)


class RequestScheduler:
    """FIFO intake, fair round-robin per-deployment batch output."""

    def __init__(self, max_batch_size: int = 8) -> None:
        if max_batch_size <= 0:
            raise ReproError("batch size must be positive")
        self.max_batch_size = max_batch_size
        # Deployment → FIFO of its pending requests; the dict itself is
        # ordered by first-seen deployment, giving the round-robin ring.
        self._queues: "OrderedDict[DeploymentSpec, list[InferenceRequest]]" = OrderedDict()
        # Deployment → its currently forming (unsealed) batch, if any.
        self._open: dict[DeploymentSpec, Batch] = {}
        self._arrivals = 0
        self._batches = 0
        self.admitted_into_open = 0  # continuous-batching admissions

    def submit(self, request: InferenceRequest) -> None:
        request.arrival_order = self._arrivals
        self._arrivals += 1
        batch = self._open.get(request.deployment)
        if batch is not None and len(batch) < self.max_batch_size:
            # Admit into the forming batch instead of queueing for the
            # deployment's next round-robin turn.
            batch.requests.append(request)
            self.admitted_into_open += 1
            if len(batch) >= self.max_batch_size:
                self.seal(batch)
            return
        self._queues.setdefault(request.deployment, []).append(request)

    def pending(self) -> int:
        """Queued requests not yet handed out (open batches excluded)."""
        return sum(len(q) for q in self._queues.values())

    def next_batch(self, keep_open: bool = False) -> Batch | None:
        """Pop one batch from the deployment whose turn it is.

        The ring advances even when a deployment still has backlog:
        after serving up to ``max_batch_size`` of its requests, the
        deployment moves to the back of the ring.

        With ``keep_open=True`` an under-capacity batch is returned
        *unsealed* and registered as its deployment's forming batch:
        :meth:`submit` admits same-deployment arrivals into it until
        the caller seals it (or it fills up).  The caller MUST
        :meth:`seal` the batch before reading its membership for
        dispatch.
        """
        while self._queues:
            deployment, queue = next(iter(self._queues.items()))
            if not queue:
                del self._queues[deployment]
                continue
            taken = queue[: self.max_batch_size]
            del queue[: len(taken)]
            if queue:
                self._queues.move_to_end(deployment)
            else:
                del self._queues[deployment]
            batch = Batch(self._batches, deployment, taken)
            self._batches += 1
            if keep_open and len(batch) < self.max_batch_size:
                # One forming batch per deployment: a second dispatcher
                # popping the same deployment gets a sealed batch.
                if deployment not in self._open:
                    batch.sealed = False
                    self._open[deployment] = batch
            return batch
        return None

    def seal(self, batch: Batch) -> Batch:
        """Close a forming batch: the continuous-batching cutoff.

        Idempotent, and a no-op for batches that were never open.
        """
        if not batch.sealed:
            batch.sealed = True
            if self._open.get(batch.deployment) is batch:
                del self._open[batch.deployment]
        return batch

    def drain(self) -> list[Batch]:
        """All pending requests as a fair batch sequence."""
        batches: list[Batch] = []
        while (batch := self.next_batch()) is not None:
            batches.append(batch)
        return batches
