"""Request batching with cross-deployment fairness.

Requests are queued FIFO, then drained as per-deployment *batches*: a
batch shares one bundle and one worker, so batching amortises program
and weight preloads.  Batch dispatch round-robins across deployments
(ordered by their oldest pending request), which keeps a deployment
with a deep backlog from starving the others — the fairness property
`tests/serve/test_scheduler.py` pins down.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.serve.request import DeploymentSpec, InferenceRequest


@dataclass
class Batch:
    """A run of same-deployment requests dispatched together."""

    batch_id: int
    deployment: DeploymentSpec
    requests: list[InferenceRequest] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.requests)


class RequestScheduler:
    """FIFO intake, fair round-robin per-deployment batch output."""

    def __init__(self, max_batch_size: int = 8) -> None:
        if max_batch_size <= 0:
            raise ReproError("batch size must be positive")
        self.max_batch_size = max_batch_size
        # Deployment → FIFO of its pending requests; the dict itself is
        # ordered by first-seen deployment, giving the round-robin ring.
        self._queues: "OrderedDict[DeploymentSpec, list[InferenceRequest]]" = OrderedDict()
        self._arrivals = 0
        self._batches = 0

    def submit(self, request: InferenceRequest) -> None:
        request.arrival_order = self._arrivals
        self._arrivals += 1
        self._queues.setdefault(request.deployment, []).append(request)

    def pending(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def next_batch(self) -> Batch | None:
        """Pop one batch from the deployment whose turn it is.

        The ring advances even when a deployment still has backlog:
        after serving up to ``max_batch_size`` of its requests, the
        deployment moves to the back of the ring.
        """
        while self._queues:
            deployment, queue = next(iter(self._queues.items()))
            if not queue:
                del self._queues[deployment]
                continue
            taken = queue[: self.max_batch_size]
            del queue[: len(taken)]
            if queue:
                self._queues.move_to_end(deployment)
            else:
                del self._queues[deployment]
            batch = Batch(self._batches, deployment, taken)
            self._batches += 1
            return batch
        return None

    def drain(self) -> list[Batch]:
        """All pending requests as a fair batch sequence."""
        batches: list[Batch] = []
        while (batch := self.next_batch()) is not None:
            batches.append(batch)
        return batches
