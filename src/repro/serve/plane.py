"""Process-parallel serving plane: asyncio intake over worker processes.

:class:`ServingPlane` is the multi-core sibling of the synchronous
:class:`~repro.serve.service.InferenceService`::

    requests ──► asyncio request plane ──► forming batches ──► worker
    (paced       (admits arrivals into     (sealed at          processes
    arrivals)    the open batch)           dispatch)           (1 per core)

The request plane accepts *streaming* arrivals (optionally paced by
inter-arrival gaps) and does continuous batching: a popped
under-capacity batch is held **open** — same-deployment arrivals are
admitted straight into it while the dispatcher waits for a free worker
process (plus an optional admission window) — and is sealed only at
dispatch, the admission cutoff.

Batches execute on a :class:`~repro.serve.procpool.ProcessWorkerPool`.
Bundles never cross the process boundary: the parent compiles each
deployment once, publishes it to the shared
:class:`~repro.store.BundleStore`, and ships requests carrying only the
deployment's ``bundle_cache_key`` — workers rehydrate from the store.

Determinism: synthesised inputs are drawn from
:func:`~repro.serve.request.request_rng`, seeded by ``(input_seed,
request_id)`` on whichever side synthesises them, so an N-process plane
returns outputs bit-identical to the single-process service —
``tests/serve/test_plane.py`` runs the differential.
"""

from __future__ import annotations

import asyncio
import shutil
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.baremetal.pipeline import bundle_cache_key
from repro.core.calibration import CalibrationTable
from repro.core.fastpath import FastPathRunRequest, FastPathRunResult
from repro.errors import ReproError
from repro.obs.trace import NULL_TRACER, Tracer
from repro.serve.cache import BundleCache
from repro.serve.metrics import ServiceMetrics
from repro.serve.procpool import ProcessWorkerPool
from repro.serve.request import DeploymentSpec, InferenceRequest, InferenceResponse
from repro.serve.scheduler import Batch, RequestScheduler
from repro.store import BundleStore


class ServingPlane:
    """Serve batched inference across N worker processes."""

    def __init__(
        self,
        processes: int = 2,
        max_batch_size: int = 8,
        input_seed: int = 7,
        calibration: CalibrationTable | None = None,
        cache: BundleCache | None = None,
        store_root: str | Path | None = None,
        admission_window_s: float = 0.0,
        max_resident_bundles: int | None = None,
        batch_timeout_s: float | None = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        if admission_window_s < 0:
            raise ReproError("admission window must be >= 0")
        self.input_seed = input_seed
        self.admission_window_s = admission_window_s
        self.scheduler = RequestScheduler(max_batch_size=max_batch_size)
        self.metrics = ServiceMetrics()
        self.tracer = tracer
        # Open per-request spans, keyed by request id: root covers
        # submit → response, queue covers submit → batch seal.
        self._root_spans: dict[int, object] = {}
        self._queue_spans: dict[int, object] = {}
        # The plane *requires* a persistent store — it is the bundle
        # transport to the worker processes.  Wire one up from, in
        # order: the caller's cache, an explicit root, a private
        # tempdir (cleaned up by close()).
        self._own_store_root: str | None = None
        self._attached_store = False
        self.cache = cache if cache is not None else BundleCache()
        if self.cache.store is None:
            if store_root is None:
                store_root = tempfile.mkdtemp(prefix="repro-plane-store-")
                self._own_store_root = store_root
            self.cache.store = BundleStore(store_root)
            self._attached_store = True
        self.pool = ProcessWorkerPool(
            processes=processes,
            store_root=self.cache.store.root,
            calibration=calibration,
            max_resident_bundles=max_resident_bundles,
            batch_timeout_s=batch_timeout_s,
            trace_enabled=tracer.enabled,
        )
        self._published: set[DeploymentSpec] = set()
        self._first_miss: set[DeploymentSpec] = set()
        self._next_request_id = 0

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker processes (idempotent; serve() calls it)."""
        self.pool.start()

    def close(self) -> None:
        self.pool.close()
        if self._attached_store:
            # The store was ours, not the caller's cache's — detach it
            # so a shared cache never points at a vanished directory.
            self.cache.store = None
            self._attached_store = False
        if self._own_store_root is not None:
            shutil.rmtree(self._own_store_root, ignore_errors=True)
            self._own_store_root = None

    def __enter__(self) -> "ServingPlane":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Intake helpers.
    # ------------------------------------------------------------------

    def request(
        self, deployment: DeploymentSpec, input_image=None
    ) -> InferenceRequest:
        """Build a request with a fresh id (NOT submitted — serve() is
        the intake; this mirrors the service's id allocation)."""
        request = InferenceRequest(self._next_request_id, deployment, input_image)
        self._next_request_id += 1
        return request

    def warm(self, deployments: list[DeploymentSpec]) -> None:
        """Compile + publish each deployment before serving starts, so
        arrival pacing is not distorted by first-touch compiles."""
        for deployment in deployments:
            self._publish(deployment)

    def _publish(self, deployment: DeploymentSpec) -> None:
        """Parent-side compile-once: make sure the deployment's bundle
        is in the store the worker processes rehydrate from."""
        if deployment in self._published:
            return
        misses_before = self.cache.stats.misses
        store_hits_before = self.cache.stats.store_hits
        self.cache.bundle_for(
            deployment.model,
            deployment.config,
            precision=deployment.precision,
            fidelity=deployment.fidelity,
        )
        if self.cache.stats.misses == misses_before:
            self.metrics.bundle_hits += 1
        else:
            self.metrics.bundle_misses += 1
            self._first_miss.add(deployment)
            if self.cache.stats.store_hits > store_hits_before:
                self.metrics.bundle_store_hits += 1
            else:
                self.metrics.bundle_compiles += 1
        self._published.add(deployment)

    def _run_request(self, request: InferenceRequest) -> FastPathRunRequest:
        """The picklable wire form: inputs by seed, bundles by key."""
        spec = request.deployment
        trace_ctx = None
        if self.tracer.enabled:
            root = self._root_spans.get(request.request_id)
            if root is not None:
                trace_ctx = Tracer.context(root)
        return FastPathRunRequest(
            request_id=request.request_id,
            model=spec.model,
            config=spec.config,
            precision=spec.precision.value,
            fidelity=spec.fidelity,
            execution_mode=spec.execution_mode,
            frequency_hz=spec.frequency_hz,
            memory_bus_width_bits=spec.memory_bus_width_bits,
            bundle_key=bundle_cache_key(
                spec.model, spec.config, spec.precision, spec.fidelity
            ),
            input_image=request.input_image,
            input_seed=(self.input_seed, request.request_id),
            trace_ctx=trace_ctx,
        )

    def _response(
        self, batch: Batch, request: InferenceRequest, result: FastPathRunResult, slot: int
    ) -> InferenceResponse:
        deployment = batch.deployment
        cache_hit = True
        if deployment in self._first_miss:
            self._first_miss.discard(deployment)
            cache_hit = False
        self.metrics.record(
            result.wall_seconds,
            result.cycles,
            result.ok,
            deployment=deployment.describe(),
        )
        if self.tracer.enabled:
            self.tracer.ingest(result.spans)
            root = self._root_spans.pop(request.request_id, None)
            if root is not None:
                self.tracer.end(root, ok=result.ok, cycles=result.cycles,
                                process=slot, batch_id=batch.batch_id)
        return InferenceResponse(
            request_id=request.request_id,
            deployment=deployment,
            ok=result.ok,
            output=result.output,
            cycles=result.cycles,
            sim_seconds=result.sim_seconds,
            wall_seconds=result.wall_seconds,
            cache_hit=cache_hit,
            worker_id=result.worker_id,
            batch_id=batch.batch_id,
            notes={"process": slot},
        )

    # ------------------------------------------------------------------
    # Serving.
    # ------------------------------------------------------------------

    def serve(
        self,
        workload: list[InferenceRequest],
        gaps: list[float] | None = None,
    ) -> list[InferenceResponse]:
        """Serve a workload; returns responses ordered by request id.

        ``gaps[i]`` is the inter-arrival delay (seconds) awaited before
        request *i* is submitted — the streaming-arrival path.  With no
        gaps the whole workload arrives at once (offered-load mode).
        """
        if gaps is not None and len(gaps) != len(workload):
            raise ReproError(
                f"{len(gaps)} gaps for {len(workload)} requests"
            )
        self.start()
        began = time.perf_counter()
        responses = asyncio.run(self._serve_async(workload, gaps))
        self.metrics.elapsed_seconds += time.perf_counter() - began
        for slot, stats in self.pool.stats().items():
            self.metrics.record_process(slot, stats.to_dict())
        return sorted(responses, key=lambda r: r.request_id)

    async def _serve_async(
        self,
        workload: list[InferenceRequest],
        gaps: list[float] | None,
    ) -> list[InferenceResponse]:
        loop = asyncio.get_running_loop()
        free: asyncio.Queue = asyncio.Queue()
        for handle in self.pool.handles:
            free.put_nowait(handle)
        futures: dict[int, asyncio.Future] = {}
        tasks: list[asyncio.Task] = []

        async def run_batch(batch: Batch) -> None:
            # Waiting for a worker (and the optional admission window)
            # happens while the batch is still open: arrivals keep
            # joining until the seal right before dispatch.
            handle = await free.get()
            try:
                if not batch.sealed:
                    if self.admission_window_s > 0:
                        await asyncio.sleep(self.admission_window_s)
                    self.scheduler.seal(batch)
                if self.tracer.enabled:
                    for request in batch.requests:
                        queued = self._queue_spans.pop(request.request_id, None)
                        if queued is not None:
                            self.tracer.end(queued, batch_id=batch.batch_id,
                                            batch_size=len(batch.requests))
                runs = [self._run_request(r) for r in batch.requests]
                results = await loop.run_in_executor(
                    executor, self.pool.run_batch, handle, runs
                )
            except Exception as exc:
                self.scheduler.seal(batch)
                for request in batch.requests:
                    self._root_spans.pop(request.request_id, None)
                    self._queue_spans.pop(request.request_id, None)
                    future = futures[request.request_id]
                    if not future.done():
                        future.set_exception(exc)
                return
            finally:
                free.put_nowait(handle)
            for request, result in zip(batch.requests, results):
                futures[request.request_id].set_result(
                    self._response(batch, request, result, handle.slot)
                )
            self.metrics.batches += 1

        def pump() -> None:
            while (batch := self.scheduler.next_batch(keep_open=True)) is not None:
                tasks.append(asyncio.create_task(run_batch(batch)))

        with ThreadPoolExecutor(max_workers=len(self.pool.handles)) as executor:
            for index, request in enumerate(workload):
                if gaps is not None and gaps[index] > 0:
                    await asyncio.sleep(gaps[index])
                self._publish(request.deployment)
                futures[request.request_id] = loop.create_future()
                if self.tracer.enabled:
                    root = self.tracer.start(
                        "request", trace_id=f"req-{request.request_id}",
                        request_id=request.request_id,
                        deployment=request.deployment.describe(),
                    )
                    self._root_spans[request.request_id] = root
                    self._queue_spans[request.request_id] = self.tracer.start(
                        "queue", parent=root
                    )
                self.scheduler.submit(request)
                pump()
            pump()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            return [await futures[request.request_id] for request in workload]
