"""Request/response types of the inference service.

A request names a *deployment* — the (model, config, precision,
fidelity) point whose bare-metal artefacts the service memoises — plus
the per-request input image.  The response carries both wall-clock and
simulated-cycle latency, so the service metrics can report the two
timescales the paper distinguishes (host simulation speed vs SoC
latency).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.nn.graph import Network
from repro.nvdla.config import Precision


def make_input(shape: tuple[int, int, int], rng: np.random.Generator) -> np.ndarray:
    """Draw one input image from a caller-owned seeded generator.

    Every example, benchmark and test that fabricates inputs goes
    through this helper with a single ``Generator`` instance, so a
    whole workload is reproducible from one seed.
    """
    return rng.uniform(-1.0, 1.0, size=shape).astype(np.float32)


def make_input_for(net: Network, rng: np.random.Generator) -> np.ndarray:
    return make_input(net.input_shape, rng)


def request_rng(input_seed: int, request_id: int) -> np.random.Generator:
    """The per-request input generator: seeded by ``(seed, request_id)``.

    The serving determinism convention: every input a service
    synthesises for request *i* is drawn from a generator seeded by the
    service seed *and* the request id — never from a generator shared
    across requests — so the tensor a request receives is independent
    of batch composition, drain order and worker/process count.  An
    N-process serving plane is bit-identical to the single-process
    service because both sides derive inputs through this function.
    """
    return np.random.default_rng((input_seed, request_id))


@dataclass(frozen=True)
class DeploymentSpec:
    """One unique (model, hardware, precision) service target.

    ``execution_mode`` picks the serving tier: ``"cycle_accurate"``
    replays bundles on a full simulated SoC (ISS + buses), ``"fast"``
    uses the calibrated functional tier
    (:class:`~repro.core.fastpath.FastPathExecutor`) — same artefacts,
    bit-identical outputs, analytic cycles.
    """

    model: str
    config: str = "nv_small"
    precision: Precision = Precision.INT8
    fidelity: str = "functional"
    frequency_hz: float = 100e6
    memory_bus_width_bits: int = 32
    execution_mode: str = "cycle_accurate"

    def __post_init__(self) -> None:
        if self.fidelity not in ("functional", "timing"):
            raise ReproError(f"unknown fidelity {self.fidelity!r}")
        if self.execution_mode not in ("cycle_accurate", "fast"):
            raise ReproError(f"unknown execution mode {self.execution_mode!r}")

    def describe(self) -> str:
        mode = "" if self.execution_mode == "cycle_accurate" else f"+{self.execution_mode}"
        return (
            f"{self.model}/{self.config}/{self.precision.value}"
            f"@{self.frequency_hz / 1e6:g}MHz{mode}"
        )


@dataclass
class InferenceRequest:
    """One queued inference."""

    request_id: int
    deployment: DeploymentSpec
    input_image: np.ndarray | None = None  # None = service synthesises one
    arrival_order: int = 0  # filled by the scheduler on submit

    @property
    def model(self) -> str:
        return self.deployment.model


@dataclass
class InferenceResponse:
    """Outcome of one served inference."""

    request_id: int
    deployment: DeploymentSpec
    ok: bool
    output: np.ndarray | None
    cycles: int
    sim_seconds: float  # simulated SoC time
    wall_seconds: float  # host time spent inside the worker run
    cache_hit: bool
    worker_id: int
    batch_id: int  # which scheduler batch dispatched this request
    notes: dict = field(default_factory=dict)

    @property
    def sim_milliseconds(self) -> float:
        return self.sim_seconds * 1e3
