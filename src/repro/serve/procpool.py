"""Process-parallel serving workers.

The in-process :class:`~repro.serve.workers.WorkerPool` is bounded by
one Python core; this module runs one *whole worker pool per OS
process* so the numpy kernels of N requests really execute on N cores.

Spawn-safe by construction:

- worker processes are started with the ``spawn`` method (no forked
  locks, works identically on every platform and under pytest);
- nothing heavier than :class:`~repro.core.fastpath.FastPathRunRequest`
  crosses the process boundary — bundles travel as their deployment
  cache key and are rehydrated on the far side from the shared
  :class:`~repro.store.BundleStore` (memory → store → deterministic
  recompile, the same miss path every replica uses);
- each process loads its calibration table exactly once, from the
  JSON-ready payload it was spawned with, and owns its executors and
  bundle cache for its whole lifetime.

A worker process that dies mid-batch is detected by the dispatcher,
respawned, and the batch re-dispatched once — a second death on the
same batch raises (poison batch).  ``tests/serve/test_procpool.py``
kills workers on purpose to pin this down.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from dataclasses import dataclass
from pathlib import Path

from repro.core.calibration import CalibrationTable
from repro.core.fastpath import FastPathRunRequest, FastPathRunResult
from repro.errors import ReproError
from repro.obs.trace import NULL_TRACER, Tracer, classify_resolution, record_unit_spans

_SPAWN = multiprocessing.get_context("spawn")


class WorkerProcessDied(ReproError):
    """Internal signal: the worker process exited before replying."""


# ----------------------------------------------------------------------
# Code that runs inside the worker process.
# ----------------------------------------------------------------------


def _serve_request(
    cache, pool, request: FastPathRunRequest, tracer: Tracer = NULL_TRACER
) -> FastPathRunResult:
    """One inference inside the worker process."""
    from repro.baremetal.pipeline import bundle_cache_key
    from repro.nvdla.config import Precision
    from repro.serve.request import DeploymentSpec, make_input, request_rng

    # Parent this process's spans under the plane's request span: the
    # shipped (trace_id, span_id) is all the context stitching needs.
    if tracer.enabled and request.trace_ctx is not None:
        trace_id, parent_id = request.trace_ctx
        serve_span = tracer.start(
            "worker.serve", trace_id=trace_id, parent=parent_id,
            request_id=request.request_id, model=request.model,
        )
    else:
        serve_span = tracer.start("worker.serve", request_id=request.request_id)

    spec = DeploymentSpec(
        request.model,
        config=request.config,
        precision=Precision(request.precision),
        fidelity=request.fidelity,
        frequency_hz=request.frequency_hz,
        memory_bus_width_bits=request.memory_bus_width_bits,
        execution_mode=request.execution_mode,
    )
    if request.bundle_key is not None:
        expected = bundle_cache_key(
            spec.model, spec.config, spec.precision, spec.fidelity,
            seed=request.flow_seed,
        )
        if tuple(request.bundle_key) != expected:
            raise ReproError(
                f"request {request.request_id}: shipped bundle key "
                f"{request.bundle_key!r} does not name this deployment "
                f"(expected {expected!r})"
            )
    stats_before = cache.stats.to_dict() if tracer.enabled else None
    resolve_span = tracer.start("bundle.resolve", parent=serve_span)
    bundle = cache.bundle_for(
        spec.model,
        spec.config,
        precision=spec.precision,
        fidelity=spec.fidelity,
        seed=request.flow_seed,
    )
    if tracer.enabled:
        tracer.end(
            resolve_span,
            source=classify_resolution(stats_before, cache.stats.to_dict()),
        )
    image = request.input_image
    if image is None and spec.fidelity == "functional":
        if request.input_seed is None:
            raise ReproError(
                f"request {request.request_id} has neither an input image "
                f"nor an input seed"
            )
        with tracer.span("input.synthesize", parent=serve_span):
            image = make_input(
                bundle.loadable.input_tensor.shape, request_rng(*request.input_seed)
            )
    worker = pool.worker_for(spec)
    execute_span = tracer.start("execute", parent=serve_span,
                                mode=spec.execution_mode)
    began = time.perf_counter()
    result = worker.run(bundle, input_image=image)
    wall = time.perf_counter() - began
    worker.stats.busy_seconds += wall
    if tracer.enabled:
        tracer.end(execute_span, cycles=result.cycles,
                   sim_seconds=result.seconds, worker_id=worker.worker_id)
        record_unit_spans(tracer, execute_span,
                          getattr(result, "op_records", ()), result.cycles)
        tracer.end(serve_span, ok=result.ok)
    return FastPathRunResult(
        request_id=request.request_id,
        ok=result.ok,
        output=result.output,
        cycles=result.cycles,
        sim_seconds=result.seconds,
        wall_seconds=wall,
        worker_id=worker.worker_id,
        spans=tuple(tracer.drain()) if tracer.enabled else (),
    )


def _worker_main(
    worker_id: int,
    store_root: str | None,
    calibration_payload: dict | None,
    max_resident_bundles: int | None,
    inbox,
    outbox,
    trace_enabled: bool = False,
) -> None:
    """Entry point of one worker process (top level: spawn-picklable)."""
    from repro.serve.cache import BundleCache
    from repro.serve.workers import WorkerPool
    from repro.store import BundleStore

    calibration = (
        CalibrationTable.from_dict(calibration_payload)
        if calibration_payload is not None
        else None
    )
    store = BundleStore(store_root) if store_root is not None else None
    cache = BundleCache(store=store)
    pool = WorkerPool(
        calibration=calibration, max_resident_bundles=max_resident_bundles
    )
    tracer = Tracer(enabled=trace_enabled, process=worker_id)
    outbox.put(("ready", worker_id, None))
    while True:
        message = inbox.get()
        if message is None:
            return
        batch_id, requests = message
        try:
            results = [
                _serve_request(cache, pool, request, tracer=tracer)
                for request in requests
            ]
        except Exception as exc:  # ship the failure, keep serving
            tracer.drain()  # half-built spans of a failed batch
            outbox.put(("error", batch_id, f"{type(exc).__name__}: {exc}"))
        else:
            outbox.put(("done", batch_id, results))


# ----------------------------------------------------------------------
# Parent-side pool.
# ----------------------------------------------------------------------


@dataclass
class ProcessStats:
    """Parent-side accounting for one worker process slot."""

    runs: int = 0
    busy_seconds: float = 0.0
    batches: int = 0
    restarts: int = 0

    def to_dict(self) -> dict:
        return {
            "runs": self.runs,
            "busy_seconds": self.busy_seconds,
            "batches": self.batches,
            "restarts": self.restarts,
        }


class _WorkerHandle:
    """One worker process plus its private message queues."""

    def __init__(self, pool: "ProcessWorkerPool", slot: int) -> None:
        self.pool = pool
        self.slot = slot
        self.process = None
        self.inbox = None
        self.outbox = None
        self.stats = ProcessStats()

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def spawn(self) -> None:
        """Fresh queues + process; stale pre-crash messages cannot leak."""
        self.inbox = _SPAWN.Queue()
        self.outbox = _SPAWN.Queue()
        self.process = _SPAWN.Process(
            target=_worker_main,
            args=(
                self.slot,
                self.pool.store_root,
                self.pool.calibration_payload,
                self.pool.max_resident_bundles,
                self.inbox,
                self.outbox,
                self.pool.trace_enabled,
            ),
            daemon=True,
        )
        self.process.start()

    def wait_ready(self, timeout_s: float) -> None:
        reply = self._next_reply(timeout_s)
        if reply[0] != "ready":  # pragma: no cover - protocol violation
            raise ReproError(f"worker {self.slot} sent {reply[0]!r} before ready")

    def _next_reply(self, timeout_s: float | None):
        """Next message from this worker, or raise WorkerProcessDied."""
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        while True:
            try:
                return self.outbox.get(timeout=0.2)
            except queue_module.Empty:
                if not self.alive():
                    raise WorkerProcessDied(
                        f"worker process {self.slot} exited "
                        f"(exitcode {self.process.exitcode})"
                    ) from None
                if deadline is not None and time.monotonic() > deadline:
                    self.terminate()
                    raise ReproError(
                        f"worker process {self.slot} hung past "
                        f"{timeout_s:.0f} s; killed"
                    ) from None

    def terminate(self) -> None:
        if self.process is not None and self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5)

    def stop(self, timeout_s: float = 10.0) -> None:
        if self.process is None:
            return
        if self.process.is_alive():
            try:
                self.inbox.put(None)
            except (OSError, ValueError):  # pragma: no cover - queue torn down
                pass
            self.process.join(timeout=timeout_s)
        self.terminate()
        for q in (self.inbox, self.outbox):
            if q is not None:
                q.close()
                q.cancel_join_thread()


class ProcessWorkerPool:
    """A fixed set of worker processes, one serving pool each.

    The parent dispatches whole batches: ``run_batch(handle, requests)``
    blocks until that worker finishes, so callers drive parallelism by
    dispatching to several handles concurrently (the asyncio plane
    keeps a free-handle queue).  Bundles are shipped by cache key and
    rehydrated from ``store_root`` inside each process.
    """

    def __init__(
        self,
        processes: int = 2,
        store_root: str | Path | None = None,
        calibration: CalibrationTable | None = None,
        max_resident_bundles: int | None = None,
        start_timeout_s: float = 120.0,
        batch_timeout_s: float | None = None,
        trace_enabled: bool = False,
    ) -> None:
        if processes <= 0:
            raise ReproError("pool needs at least one worker process")
        self.processes = processes
        self.store_root = str(store_root) if store_root is not None else None
        self.calibration_payload = (
            calibration.to_dict() if calibration is not None else None
        )
        self.max_resident_bundles = max_resident_bundles
        self.start_timeout_s = start_timeout_s
        self.batch_timeout_s = batch_timeout_s
        self.trace_enabled = trace_enabled
        self.handles: list[_WorkerHandle] = []
        self.restarts = 0
        self._next_batch_id = 0
        self._started = False

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Spawn every worker (concurrently) and wait for readiness."""
        if self._started:
            return
        self.handles = [_WorkerHandle(self, slot) for slot in range(self.processes)]
        for handle in self.handles:
            handle.spawn()
        for handle in self.handles:
            handle.wait_ready(self.start_timeout_s)
        self._started = True

    def close(self) -> None:
        for handle in self.handles:
            handle.stop()
        self.handles = []
        self._started = False

    def __enter__(self) -> "ProcessWorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- dispatch ------------------------------------------------------

    def _restart(self, handle: _WorkerHandle) -> None:
        handle.terminate()
        handle.spawn()
        handle.wait_ready(self.start_timeout_s)
        handle.stats.restarts += 1
        self.restarts += 1

    def run_batch(
        self,
        handle: _WorkerHandle,
        requests: list[FastPathRunRequest],
        timeout_s: float | None = None,
    ) -> list[FastPathRunResult]:
        """Execute one batch on one worker process (blocking).

        A dead worker is respawned and the batch re-dispatched once;
        thread-safe per handle (the plane dedicates one dispatch slot
        per handle).
        """
        self.start()
        if timeout_s is None:
            timeout_s = self.batch_timeout_s
        last_death: WorkerProcessDied | None = None
        for _attempt in range(2):
            if not handle.alive():
                self._restart(handle)
            batch_id = self._next_batch_id
            self._next_batch_id += 1
            try:
                handle.inbox.put((batch_id, list(requests)))
                while True:
                    reply = handle._next_reply(timeout_s)
                    kind, got_id, payload = reply
                    if kind == "ready" or got_id != batch_id:
                        continue  # stale chatter from a pre-crash life
                    if kind == "error":
                        raise ReproError(
                            f"worker process {handle.slot} failed a batch: {payload}"
                        )
                    handle.stats.batches += 1
                    handle.stats.runs += len(payload)
                    handle.stats.busy_seconds += sum(
                        r.wall_seconds for r in payload
                    )
                    return payload
            except WorkerProcessDied as died:
                last_death = died
        raise ReproError(
            f"worker process {handle.slot} died twice running one batch "
            f"(poison batch?): {last_death}"
        )

    # -- reporting -----------------------------------------------------

    def stats(self) -> dict[int, ProcessStats]:
        return {handle.slot: handle.stats for handle in self.handles}
