"""The fleet: replicas, deterministic pricing, and the simulation loop.

The cluster scales the serve layer the way FireSim scaled one
NVDLA+RISC-V SoC model out to many simulated instances: N *replicas*
(each one :class:`~repro.serve.InferenceService` when executing) stand
behind a router, an admission controller sheds what the fleet cannot
serve inside its SLOs, and an autoscaler resizes the fleet from
rolling p99/utilisation.

Two clocks, deliberately decoupled:

- **virtual time** — the fleet's clock.  Request service time is
  priced *deterministically* from the fast path's analytic cycle
  estimate (:class:`ServiceTimeModel`), plus a warm-up charge whenever
  the bundle is not resident in the replica's warm-state LRU (the
  same LRU discipline — and, when executing, literally the same LRU —
  as :class:`~repro.core.fastpath.FastPathExecutor`).  Every queueing
  number (p99, goodput, rejection rate) is bit-reproducible from the
  workload seed, independent of host speed.
- **host time** — with ``execute=True`` each admitted request also
  runs for real on its replica's service, so outputs are bit-identical
  to a single-service run of the same request set; host-side
  ``ServiceMetrics`` are aggregated into the fleet report.

The discrete-event loop needs no event queue: arrivals are processed
in time order, each replica tracks its backlog horizon (``free_at``)
and the completion times of in-flight requests, and autoscaler ticks
interleave with arrivals on the same clock.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cluster.admission import AdmissionController, SloPolicy
from repro.cluster.autoscaler import Autoscaler, FleetSample, ScaleEvent
from repro.cluster.metrics import (
    ClusterMetrics,
    ReplicaUsage,
    aggregate_service_metrics,
)
from repro.cluster.router import Router
from repro.cluster.workload import TimedRequest
from repro.baremetal.pipeline import bundle_cache_key
from repro.core.calibration import CalibrationTable
from repro.core.fastpath import FastPathExecutor
from repro.errors import ReproError
from repro.nvdla.config import get_config
from repro.obs.trace import NULL_TRACER, Tracer
from repro.serve.cache import BundleCache
from repro.serve.metrics import LatencySummary, percentile
from repro.serve.request import DeploymentSpec
from repro.serve.service import InferenceService
from repro.serve.workers import hardware_key

if TYPE_CHECKING:
    from repro.store import BundleStore


@dataclass(frozen=True)
class RequestCost:
    """Deterministic virtual-time price of one request on a replica.

    ``build_seconds``/``fetch_seconds`` price *acquiring* the deployment's
    artefacts the first time a replica ever touches them: compiling from
    scratch versus fetching a verified bundle from the persistent
    :class:`~repro.store.BundleStore`.  Both are zero when the fleet has
    no store attached, which keeps legacy runs bit-identical.
    """

    run_seconds: float  # warm service time (bundle resident)
    warmup_seconds: float  # extra charge when the bundle is cold
    build_seconds: float = 0.0  # first-touch charge: full offline compile
    fetch_seconds: float = 0.0  # first-touch charge: store fetch instead

    @property
    def cold_seconds(self) -> float:
        return self.run_seconds + self.warmup_seconds


def residency_key(spec: DeploymentSpec) -> tuple:
    """The bundle identity a replica's warm-state LRU is keyed on."""
    return (spec.model, spec.config, spec.precision.value, spec.fidelity)


class ServiceTimeModel:
    """Prices requests from the fast path's analytic cycle estimate.

    - *run* — the bundle's whole-run estimate (hardware-layer cycles
      plus the calibrated CPU programming overhead) at the
      deployment's clock.  The estimate is validated to ±10 % of the
      cycle-accurate SoC, so one price serves both execution tiers.
    - *warm-up* — loading the bundle's preload images (program,
      weights, input) onto a replica that does not hold them resident,
      priced as bytes over a provisioning link plus a fixed setup
      charge.  This is what cache-affinity routing saves and what a
      freshly scaled-up replica pays.
    - *acquisition* (only with a ``store`` attached) — the first time a
      replica ever touches a deployment it must *acquire* the compiled
      artefacts: a full offline build when no one has published them
      yet, or a (much cheaper) verified fetch from the persistent
      store.  Both are priced from the serialized container size, so
      the numbers stay bit-reproducible from the seed.
    """

    def __init__(
        self,
        cache: BundleCache | None = None,
        calibration: CalibrationTable | None = None,
        warmup_bandwidth_bytes_per_s: float = 32 * 1024 * 1024,
        warmup_fixed_s: float = 0.010,
        store: "BundleStore | None" = None,
        build_fixed_s: float = 0.250,
        build_bytes_per_s: float = 4 * 1024 * 1024,
        fetch_fixed_s: float = 0.002,
        fetch_bytes_per_s: float = 128 * 1024 * 1024,
    ) -> None:
        if warmup_bandwidth_bytes_per_s <= 0:
            raise ReproError("warm-up bandwidth must be positive")
        if build_bytes_per_s <= 0 or fetch_bytes_per_s <= 0:
            raise ReproError("acquisition bandwidths must be positive")
        # NOT `cache or ...`: an empty BundleCache is falsy (__len__).
        self.cache = cache if cache is not None else BundleCache(store=store)
        self.calibration = calibration
        self.warmup_bandwidth_bytes_per_s = warmup_bandwidth_bytes_per_s
        self.warmup_fixed_s = warmup_fixed_s
        self.store = store
        self.build_fixed_s = build_fixed_s
        self.build_bytes_per_s = build_bytes_per_s
        self.fetch_fixed_s = fetch_fixed_s
        self.fetch_bytes_per_s = fetch_bytes_per_s
        self._estimators: dict[tuple, FastPathExecutor] = {}
        self._costs: dict[tuple, RequestCost] = {}

    def _estimator(self, spec: DeploymentSpec) -> FastPathExecutor:
        key = (spec.config, spec.memory_bus_width_bits, spec.frequency_hz)
        estimator = self._estimators.get(key)
        if estimator is None:
            estimator = self._estimators[key] = FastPathExecutor(
                get_config(spec.config),
                frequency_hz=spec.frequency_hz,
                calibration=self.calibration,
                memory_bus_width_bits=spec.memory_bus_width_bits,
            )
        return estimator

    def costs(self, spec: DeploymentSpec) -> RequestCost:
        key = residency_key(spec) + (spec.memory_bus_width_bits, spec.frequency_hz)
        cost = self._costs.get(key)
        if cost is None:
            bundle = self.cache.bundle_for(
                spec.model, spec.config, precision=spec.precision, fidelity=spec.fidelity
            )
            estimate = self._estimator(spec).estimate(bundle)
            preload_bytes = sum(len(image.data) for image in bundle.images.preload)
            build_seconds = fetch_seconds = 0.0
            if self.store is not None:
                from repro.store import serialize_bundle

                artifact_bytes = len(serialize_bundle(bundle))
                build_seconds = (
                    self.build_fixed_s + artifact_bytes / self.build_bytes_per_s
                )
                fetch_seconds = (
                    self.fetch_fixed_s + artifact_bytes / self.fetch_bytes_per_s
                )
            cost = self._costs[key] = RequestCost(
                run_seconds=estimate.total_cycles / spec.frequency_hz,
                warmup_seconds=self.warmup_fixed_s
                + preload_bytes / self.warmup_bandwidth_bytes_per_s,
                build_seconds=build_seconds,
                fetch_seconds=fetch_seconds,
            )
        return cost


class Replica:
    """One simulated serving instance: queue horizon + warm-state LRUs.

    The mirror keeps one LRU per *hardware lane* — the worker-sharing
    key of :func:`repro.serve.workers.hardware_key` — because that is
    exactly how an executing replica holds state: its pool builds one
    :class:`~repro.core.fastpath.FastPathExecutor` (with one
    resident-bundle LRU) per hardware point.  Same capacity, same
    move-to-end / evict-oldest policy, so the executors'
    :class:`~repro.core.fastpath.ResidentStats` and this mirror
    advance in lockstep — ``tests/cluster`` pins them equal, including
    across mixed hardware lanes.
    """

    def __init__(
        self,
        replica_id: int,
        resident_capacity: int = 8,
        came_up_at: float = 0.0,
        service_factory=None,
    ) -> None:
        if resident_capacity <= 0:
            raise ReproError("replica needs at least one resident bundle slot")
        self.replica_id = replica_id
        self.resident_capacity = resident_capacity
        self.came_up_at = came_up_at
        self.retired_at: float | None = None
        self.free_at = came_up_at
        self.requests = 0
        self.busy_seconds = 0.0
        self.resident_hits = 0
        self.resident_misses = 0
        # Deployments whose artefacts this replica has ever acquired
        # (compiled or fetched from the store); unlike the resident
        # LRU, acquisition is paid at most once per deployment.
        self.acquired: set[tuple] = set()
        self._resident: dict[tuple, OrderedDict] = {}  # lane → bundle LRU
        self._completions: deque[float] = deque()
        self._service_factory = service_factory
        self._service: InferenceService | None = None

    @property
    def live(self) -> bool:
        return self.retired_at is None

    @property
    def service(self) -> InferenceService:
        """The backing InferenceService (built lazily when executing)."""
        if self._service is None:
            if self._service_factory is None:
                raise ReproError("replica has no service factory (execute=False)")
            self._service = self._service_factory()
        return self._service

    @property
    def executed(self) -> bool:
        return self._service is not None

    def outstanding(self, now: float) -> int:
        """Requests assigned but not yet (virtually) completed."""
        while self._completions and self._completions[0] <= now:
            self._completions.popleft()
        return len(self._completions)

    def backlog_seconds(self, now: float) -> float:
        """Virtual seconds of queued work ahead of a new arrival."""
        return max(0.0, self.free_at - now)

    def touch_resident(self, lane: tuple, key: tuple) -> bool:
        """LRU-touch a bundle in its hardware lane; True when warm."""
        lru = self._resident.setdefault(lane, OrderedDict())
        hit = key in lru
        if hit:
            self.resident_hits += 1
            lru.move_to_end(key)
        else:
            self.resident_misses += 1
            lru[key] = None
            while len(lru) > self.resident_capacity:
                lru.popitem(last=False)
        return hit

    def assign(self, now: float, service_seconds: float) -> tuple[float, float]:
        """Queue one request; returns its (start, completion) instants."""
        start = max(now, self.free_at)
        completion = start + service_seconds
        self.free_at = completion
        self._completions.append(completion)
        self.requests += 1
        self.busy_seconds += service_seconds
        return start, completion

    def usage(self) -> ReplicaUsage:
        return ReplicaUsage(
            replica_id=self.replica_id,
            requests=self.requests,
            resident_hits=self.resident_hits,
            resident_misses=self.resident_misses,
            busy_seconds=self.busy_seconds,
            came_up_at=self.came_up_at,
            retired_at=self.retired_at,
        )


@dataclass
class ClusterResult:
    """Everything one simulation run produced."""

    metrics: ClusterMetrics
    replicas: list[Replica]
    responses: dict[int, object] = field(default_factory=dict)

    def outputs(self) -> dict[int, object]:
        """request_id → output tensor (execute=True runs only)."""
        return {rid: response.output for rid, response in self.responses.items()}


class ClusterSimulation:
    """Workload → admission → router → replicas → metrics."""

    def __init__(
        self,
        router: Router,
        replicas: int = 2,
        slo: SloPolicy | None = None,
        admission: AdmissionController | None = None,
        autoscaler: Autoscaler | None = None,
        pricing: ServiceTimeModel | None = None,
        cache: BundleCache | None = None,
        calibration: CalibrationTable | None = None,
        resident_capacity: int = 8,
        execute: bool = False,
        input_seed: int = 7,
        store: "BundleStore | None" = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        if replicas <= 0:
            raise ReproError("fleet needs at least one replica")
        self.router = router
        self.tracer = tracer
        self.initial_replicas = replicas
        self.slo = slo or (admission.policy if admission else SloPolicy())
        self.admission = admission
        self.autoscaler = autoscaler
        # NOT `cache or ...`: an empty BundleCache is falsy (__len__).
        self.cache = cache if cache is not None else BundleCache(store=store)
        self.calibration = calibration
        self.pricing = pricing or ServiceTimeModel(
            cache=self.cache, calibration=calibration, store=store
        )
        self.store = store if store is not None else self.pricing.store
        self.resident_capacity = resident_capacity
        self.execute = execute
        self.input_seed = input_seed
        self._next_replica_id = 0
        self._published: set[tuple] = set()

    # ------------------------------------------------------------------
    # Fleet plumbing.
    # ------------------------------------------------------------------

    def _service_factory(self):
        def build() -> InferenceService:
            return InferenceService(
                cache=self.cache,
                calibration=self.calibration,
                input_seed=self.input_seed,
                max_resident_bundles=self.resident_capacity,
            )

        return build

    def _new_replica(self, came_up_at: float) -> Replica:
        replica = Replica(
            self._next_replica_id,
            resident_capacity=self.resident_capacity,
            came_up_at=came_up_at,
            service_factory=self._service_factory() if self.execute else None,
        )
        self._next_replica_id += 1
        return replica

    @staticmethod
    def _live(fleet: list[Replica]) -> list[Replica]:
        return [replica for replica in fleet if replica.live]

    # ------------------------------------------------------------------
    # Artefact acquisition (store-aware pricing).
    # ------------------------------------------------------------------

    def _prime_published(self, workload: list[TimedRequest]) -> None:
        """Seed the published set from the attached persistent store.

        A deployment already verified on disk means every replica —
        including the very first — warms by *fetching* instead of
        compiling; this is the pre-warmed-store scenario the `repro
        warmup` CLI sets up.
        """
        self._published = set()
        if self.store is None:
            return
        for spec in {request.deployment for request in workload}:
            key = bundle_cache_key(
                spec.model, spec.config, spec.precision, spec.fidelity
            )
            if self.store.contains(key):
                self._published.add(residency_key(spec))

    def _acquisition_seconds(
        self, replica: Replica, spec: DeploymentSpec, cost: RequestCost
    ) -> float:
        """First-ever touch of a deployment on this replica.

        Unpublished artefacts pay the full offline build (and are
        published for everyone after); published ones pay the much
        cheaper store fetch.  Zero without a store — legacy pricing is
        bit-identical.
        """
        if self.store is None:
            return 0.0
        key = residency_key(spec)
        if key in replica.acquired:
            return 0.0
        replica.acquired.add(key)
        if key in self._published:
            return cost.fetch_seconds
        self._published.add(key)
        return cost.build_seconds

    # ------------------------------------------------------------------
    # Autoscaling.
    # ------------------------------------------------------------------

    def _fleet_sample(
        self, now: float, fleet: list[Replica], window: deque
    ) -> FleetSample:
        scaler = self.autoscaler
        horizon = now - scaler.window_s
        while window and window[0][0] < horizon:
            window.popleft()
        live = self._live(fleet)
        latencies = [latency for _, latency, _ in window]
        assigned_seconds = sum(service for _, _, service in window)
        capacity = max(1, len(live)) * scaler.window_s
        return FleetSample(
            now=now,
            live_replicas=len(live),
            p99_latency_s=percentile(latencies, 99),
            utilization=assigned_seconds / capacity,
            max_backlog_s=max((r.backlog_seconds(now) for r in live), default=0.0),
        )

    def _autoscale(
        self, now: float, fleet: list[Replica], window: deque, metrics: ClusterMetrics
    ) -> None:
        sample = self._fleet_sample(now, fleet, window)
        decision = self.autoscaler.decide(sample)
        if decision is None:
            return
        live = self._live(fleet)
        if decision.desired > len(live):
            for _ in range(decision.desired - len(live)):
                fleet.append(self._new_replica(now + self.autoscaler.provision_delay_s))
        elif decision.desired < len(live):
            # Retire the emptiest (newest on ties): in-flight work still
            # completes, but the router stops seeing the replica.
            for _ in range(len(live) - decision.desired):
                victim = min(
                    self._live(fleet),
                    key=lambda r: (r.backlog_seconds(now), -r.replica_id),
                )
                victim.retired_at = now
        else:
            return
        metrics.scale_events.append(
            ScaleEvent(
                at_s=now,
                from_replicas=len(live),
                to_replicas=decision.desired,
                reason=decision.reason,
                p99_latency_s=sample.p99_latency_s,
                utilization=sample.utilization,
                # What a scaled-up replica can fetch instead of build.
                warmed_bundles=(
                    len(self._published) if decision.desired > len(live) else 0
                ),
            )
        )

    # ------------------------------------------------------------------
    # The run loop.
    # ------------------------------------------------------------------

    def run(self, workload: list[TimedRequest]) -> ClusterResult:
        if not workload:
            raise ReproError("cannot simulate an empty workload")
        ordered = sorted(workload, key=lambda r: (r.arrival_s, r.request_id))
        self.router.reset()
        self._prime_published(ordered)
        if self.autoscaler:
            self.autoscaler.reset()
        self._next_replica_id = 0
        metrics = ClusterMetrics(
            slo=self.slo,
            policy_name=self.router.name,
        )
        fleet = [self._new_replica(0.0) for _ in range(self.initial_replicas)]
        metrics.peak_replicas = len(fleet)
        window: deque[tuple[float, float, float]] = deque()
        responses: dict[int, object] = {}
        next_tick = (
            self.autoscaler.evaluate_every_s if self.autoscaler is not None else None
        )

        for request in ordered:
            now = request.arrival_s
            while next_tick is not None and next_tick <= now:
                self._autoscale(next_tick, fleet, window, metrics)
                metrics.peak_replicas = max(
                    metrics.peak_replicas, len(self._live(fleet))
                )
                step = self.autoscaler.evaluate_every_s
                next_tick += step
                # Fast-forward across idle stretches: with the rolling
                # window drained and the fleet at the scaler's floor,
                # every further tick before the next arrival is a
                # no-op — a sparse trace must not replay them all.
                if (
                    next_tick <= now
                    and not window
                    and len(self._live(fleet)) == self.autoscaler.min_replicas
                ):
                    skipped = int((now - next_tick) // step) + 1
                    next_tick += skipped * step
            metrics.arrival(now)
            live = self._live(fleet)
            cost = self.pricing.costs(request.deployment)
            if self.admission is not None:
                decision = self.admission.admit(request, live, now, cost.run_seconds)
                if not decision.admitted:
                    metrics.reject(now, decision.reason)
                    self._trace_rejection(request, now, decision.reason)
                    continue
            elif not live:
                metrics.reject(now, "no_replicas")
                self._trace_rejection(request, now, "no_replicas")
                continue
            replica = self.router.route(request, live, now)
            acquisition = self._acquisition_seconds(replica, request.deployment, cost)
            warm = replica.touch_resident(
                hardware_key(request.deployment), residency_key(request.deployment)
            )
            service_seconds = (
                cost.run_seconds
                + (0.0 if warm else cost.warmup_seconds)
                + acquisition
            )
            started, completion = replica.assign(now, service_seconds)
            latency = completion - now
            window.append((now, latency, service_seconds))
            ok = True
            if self.execute:
                response = self._execute(replica, request)
                responses[request.request_id] = response
                ok = response.ok
            metrics.complete(now, latency, warm, ok=ok)
            if self.tracer.enabled:
                self._trace_request(
                    request, replica.replica_id, now, started, completion,
                    cost, acquisition, warm, ok,
                )

        metrics.replica_usage = [replica.usage() for replica in fleet]
        metrics.peak_replicas = max(metrics.peak_replicas, len(self._live(fleet)))
        if self.execute:
            metrics.service_aggregate = aggregate_service_metrics(
                replica.service.metrics for replica in fleet if replica.executed
            )
        return ClusterResult(metrics=metrics, replicas=fleet, responses=responses)

    def _execute(self, replica: Replica, request: TimedRequest):
        """Serve the request for real on the replica's service."""
        service = replica.service
        service.request(request.deployment, request.input_image)
        batch = service.run_pending()
        return batch[-1]

    # ------------------------------------------------------------------
    # Virtual-clock tracing: the simulated timeline in the same span
    # format (and exporters) as the live serving plane — one Perfetto
    # lane per replica.
    # ------------------------------------------------------------------

    def _trace_rejection(self, request: TimedRequest, now: float,
                         reason: str) -> None:
        if not self.tracer.enabled:
            return
        self.tracer.add(
            "request", now, now,
            trace_id=f"{self.router.name}:req-{request.request_id}",
            process=-1,
            request_id=request.request_id,
            deployment=request.deployment.describe(),
            rejected=reason,
        )

    def _trace_request(
        self, request: TimedRequest, replica_id: int, now: float,
        started: float, completion: float, cost: "RequestCost",
        acquisition: float, warm: bool, ok: bool,
    ) -> None:
        trace_id = f"{self.router.name}:req-{request.request_id}"
        root = self.tracer.add(
            "request", now, completion, trace_id=trace_id, process=replica_id,
            request_id=request.request_id,
            deployment=request.deployment.describe(),
            replica=replica_id, warm=warm, ok=ok,
        )
        if started > now:
            self.tracer.add("queue.wait", now, started, parent=root,
                            process=replica_id)
        at = started
        if acquisition > 0:
            self.tracer.add("acquire", at, at + acquisition, parent=root,
                            process=replica_id)
            at += acquisition
        if not warm:
            self.tracer.add("warmup", at, at + cost.warmup_seconds,
                            parent=root, process=replica_id)
            at += cost.warmup_seconds
        self.tracer.add("run", at, completion, parent=root,
                        process=replica_id, run_seconds=cost.run_seconds)


def fleet_latency_summary(results: list[ClusterResult]) -> LatencySummary:
    """Pooled virtual-latency summary across several runs."""
    samples: list[float] = []
    for result in results:
        samples.extend(result.metrics.latencies)
    return LatencySummary.of(samples)
