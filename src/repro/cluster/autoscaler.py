"""SLO-aware replica autoscaling over rolling fleet statistics.

The scaler is evaluated on a fixed virtual-time cadence with a rolling
window of recently *assigned* work (latency known at assignment in the
simulation, so a burst registers immediately):

- **scale up** when the window's p99 latency breaches the target or
  utilisation exceeds ``target_utilization``, sizing the fleet with
  the proportional rule ``desired = ceil(live · util / target)`` (the
  Kubernetes-HPA formula) so a hard burst jumps several replicas in
  one step instead of creeping up one tick at a time;
- **scale down** when utilisation falls below ``scale_down_utilization``
  and p99 is comfortably inside the target, one replica per decision.

New replicas come up *cold* after ``provision_delay_s``: an empty
warm-state LRU (every first bundle pays the warm-up the fast path's
resident-state model prices) and no backlog — the realistic warm-up
cost the ISSUE asks scale events to carry.  Cooldowns are separate for
the two directions (fast attack, slow release).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ReproError


@dataclass(frozen=True)
class FleetSample:
    """One rolling-window observation handed to the scaler."""

    now: float
    live_replicas: int
    p99_latency_s: float
    utilization: float  # assigned service-seconds / (live · window)
    max_backlog_s: float


@dataclass(frozen=True)
class ScaleDecision:
    desired: int
    reason: str


@dataclass(frozen=True)
class ScaleEvent:
    """One applied scale decision, for the metrics timeline."""

    at_s: float
    from_replicas: int
    to_replicas: int
    reason: str
    p99_latency_s: float
    utilization: float
    # Deployments already published to the persistent store at scale-up
    # time: what the new replicas fetch instead of recompiling.  Zero
    # on scale-downs and on fleets without a store.
    warmed_bundles: int = 0

    def to_dict(self) -> dict:
        return {
            "at_s": self.at_s,
            "from_replicas": self.from_replicas,
            "to_replicas": self.to_replicas,
            "reason": self.reason,
            "p99_latency_s": self.p99_latency_s,
            "utilization": self.utilization,
            "warmed_bundles": self.warmed_bundles,
        }

    def render(self) -> str:
        arrow = "↑" if self.to_replicas > self.from_replicas else "↓"
        warmed = (
            f", {self.warmed_bundles} warmable" if self.warmed_bundles else ""
        )
        return (
            f"t={self.at_s:7.2f}s  {self.from_replicas}→{self.to_replicas} {arrow}  "
            f"{self.reason}  (p99 {self.p99_latency_s * 1e3:.1f} ms, "
            f"util {self.utilization * 100:.0f}%{warmed})"
        )


class Autoscaler:
    """Rolling p99/utilisation → desired replica count."""

    def __init__(
        self,
        min_replicas: int = 1,
        max_replicas: int = 8,
        target_p99_s: float = 0.25,
        target_utilization: float = 0.75,
        scale_down_utilization: float = 0.30,
        evaluate_every_s: float = 0.25,
        window_s: float = 1.0,
        up_cooldown_s: float = 0.25,
        down_cooldown_s: float = 2.0,
        provision_delay_s: float = 0.25,
        tolerance: float = 0.10,
    ) -> None:
        if not 1 <= min_replicas <= max_replicas:
            raise ReproError("need 1 <= min_replicas <= max_replicas")
        if not 0 < scale_down_utilization < target_utilization <= 1.5:
            raise ReproError("need 0 < scale_down_utilization < target_utilization")
        if evaluate_every_s <= 0 or window_s <= 0:
            raise ReproError("autoscaler cadence and window must be positive")
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.target_p99_s = target_p99_s
        self.target_utilization = target_utilization
        self.scale_down_utilization = scale_down_utilization
        self.evaluate_every_s = evaluate_every_s
        self.window_s = window_s
        self.up_cooldown_s = up_cooldown_s
        self.down_cooldown_s = down_cooldown_s
        self.provision_delay_s = provision_delay_s
        self.tolerance = tolerance
        self._last_up_at = -math.inf
        self._last_down_at = -math.inf

    def reset(self) -> None:
        self._last_up_at = -math.inf
        self._last_down_at = -math.inf

    def _proportional_desired(self, sample: FleetSample) -> int:
        """The HPA rule: size the fleet to hit the target utilisation."""
        raw = sample.live_replicas * sample.utilization / self.target_utilization
        return max(1, math.ceil(raw))

    def decide(self, sample: FleetSample) -> ScaleDecision | None:
        """The applied decision for this tick, or None to hold."""
        live = sample.live_replicas
        over_p99 = sample.p99_latency_s > self.target_p99_s
        over_util = sample.utilization > self.target_utilization * (1 + self.tolerance)
        if (over_p99 or over_util) and live < self.max_replicas:
            if sample.now - self._last_up_at < self.up_cooldown_s:
                return None
            desired = min(self.max_replicas, max(live + 1, self._proportional_desired(sample)))
            if desired <= live:
                return None
            self._last_up_at = sample.now
            reason = (
                f"p99 {sample.p99_latency_s * 1e3:.0f}ms > "
                f"{self.target_p99_s * 1e3:.0f}ms"
                if over_p99
                else f"util {sample.utilization * 100:.0f}% > "
                f"{self.target_utilization * 100:.0f}%"
            )
            return ScaleDecision(desired=desired, reason=reason)
        under_util = sample.utilization < self.scale_down_utilization
        p99_ok = sample.p99_latency_s <= self.target_p99_s
        if under_util and p99_ok and live > self.min_replicas:
            if sample.now - self._last_down_at < self.down_cooldown_s:
                return None
            if sample.now - self._last_up_at < self.down_cooldown_s:
                return None  # don't flap straight after an attack
            self._last_down_at = sample.now
            return ScaleDecision(
                desired=live - 1,
                reason=f"util {sample.utilization * 100:.0f}% < "
                f"{self.scale_down_utilization * 100:.0f}%",
            )
        return None
