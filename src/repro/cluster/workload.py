"""Open-loop workload generation for fleet simulations.

A workload is a list of :class:`TimedRequest` — an arrival instant (in
*virtual* seconds, the fleet simulation's clock) plus the deployment
the request targets and optionally a concrete input image.  Arrivals
come from a seeded stochastic process, so a whole load sweep is
reproducible from one ``--seed``:

- :class:`ConstantArrivals` — fixed inter-arrival gap (closed-form
  offered load, the baseline for sweeps);
- :class:`PoissonArrivals` — memoryless open-loop traffic, the
  standard serving-benchmark arrival model;
- :class:`BurstyArrivals` — a two-state Markov-modulated Poisson
  process (calm ↔ burst), the autoscaler's stress input.

Workloads can also round-trip through JSONL traces
(:func:`save_trace` / :func:`load_trace`), so a measured or hand-built
trace replays identically across policies and fleet shapes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import ReproError
from repro.nvdla.config import Precision
from repro.serve.request import DeploymentSpec, make_input_for


@dataclass
class TimedRequest:
    """One request of an open-loop workload."""

    request_id: int
    arrival_s: float
    deployment: DeploymentSpec
    input_image: np.ndarray | None = None


# ----------------------------------------------------------------------
# Arrival processes.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ConstantArrivals:
    """Fixed-rate arrivals: one request every ``1 / rate_rps`` seconds."""

    rate_rps: float
    name: str = field(default="constant", init=False)

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ReproError("arrival rate must be positive")

    def gaps(self, rng: np.random.Generator) -> Iterator[float]:
        gap = 1.0 / self.rate_rps
        while True:
            yield gap


@dataclass(frozen=True)
class PoissonArrivals:
    """Memoryless arrivals at ``rate_rps`` (exponential gaps)."""

    rate_rps: float
    name: str = field(default="poisson", init=False)

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ReproError("arrival rate must be positive")

    def gaps(self, rng: np.random.Generator) -> Iterator[float]:
        scale = 1.0 / self.rate_rps
        while True:
            yield float(rng.exponential(scale))

    @property
    def mean_rps(self) -> float:
        return self.rate_rps


@dataclass(frozen=True)
class BurstyArrivals:
    """Two-state MMPP: Poisson at ``base_rps``, bursts at ``burst_rps``.

    State dwell times are exponential with the given means; within a
    state arrivals are Poisson at that state's rate.  The dwell clock
    is advanced per arrival (gaps are drawn at the rate the state had
    when the gap began), which keeps generation one-pass and seeded.
    """

    base_rps: float
    burst_rps: float | None = None  # default: 4x the base rate
    mean_calm_s: float = 2.0
    mean_burst_s: float = 0.5
    name: str = field(default="bursty", init=False)

    def __post_init__(self) -> None:
        if self.base_rps <= 0:
            raise ReproError("arrival rate must be positive")
        if self.burst_rps is not None and self.burst_rps <= self.base_rps:
            raise ReproError("burst rate must exceed the base rate")

    @property
    def burst_rate(self) -> float:
        return self.burst_rps if self.burst_rps is not None else 4.0 * self.base_rps

    def gaps(self, rng: np.random.Generator) -> Iterator[float]:
        bursting = False
        dwell = float(rng.exponential(self.mean_calm_s))
        while True:
            rate = self.burst_rate if bursting else self.base_rps
            gap = float(rng.exponential(1.0 / rate))
            dwell -= gap
            while dwell <= 0.0:
                bursting = not bursting
                dwell += float(
                    rng.exponential(self.mean_burst_s if bursting else self.mean_calm_s)
                )
            yield gap


#: CLI / config registry of arrival-process factories (rate → process).
ARRIVALS = {
    "constant": ConstantArrivals,
    "poisson": PoissonArrivals,
    "bursty": BurstyArrivals,
}


def make_arrivals(name: str, rate_rps: float, **kwargs):
    """Build a registered arrival process from its CLI name."""
    if name not in ARRIVALS:
        raise ReproError(f"unknown arrival process {name!r} (known: {sorted(ARRIVALS)})")
    if name == "bursty":
        return BurstyArrivals(base_rps=rate_rps, **kwargs)
    return ARRIVALS[name](rate_rps, **kwargs)


# ----------------------------------------------------------------------
# Workload generation.
# ----------------------------------------------------------------------


def generate_workload(
    arrivals,
    deployments: Sequence[DeploymentSpec],
    requests: int,
    seed: int = 0,
    weights: Sequence[float] | None = None,
    with_inputs: bool = False,
    start_s: float = 0.0,
) -> list[TimedRequest]:
    """Timestamped requests over a (possibly weighted) model zoo mix.

    Every stochastic choice — inter-arrival gaps, which deployment a
    request targets, and (with ``with_inputs``) the input tensor —
    draws from one ``default_rng(seed)`` in a fixed order, so the same
    seed always yields the identical workload.
    """
    if requests <= 0:
        raise ReproError("workload needs at least one request")
    if not deployments:
        raise ReproError("workload needs at least one deployment")
    if weights is not None:
        if len(weights) != len(deployments):
            raise ReproError("one weight per deployment")
        total = float(sum(weights))
        if total <= 0:
            raise ReproError("weights must sum to a positive value")
        probabilities = np.asarray(weights, dtype=float) / total
    else:
        probabilities = None

    rng = np.random.default_rng(seed)
    gap_iter = arrivals.gaps(rng)
    nets: dict[str, object] = {}
    workload: list[TimedRequest] = []
    now = start_s
    for request_id in range(requests):
        now += next(gap_iter)
        if probabilities is None:
            index = int(rng.integers(len(deployments)))
        else:
            index = int(rng.choice(len(deployments), p=probabilities))
        deployment = deployments[index]
        image = None
        if with_inputs:
            net = nets.get(deployment.model)
            if net is None:
                from repro.nn.zoo import ZOO

                net = nets[deployment.model] = ZOO[deployment.model]()
            image = make_input_for(net, rng)
        workload.append(TimedRequest(request_id, now, deployment, image))
    return workload


def offered_rps(workload: Sequence[TimedRequest]) -> float:
    """Mean offered load over the workload's arrival span."""
    if len(workload) < 2:
        return 0.0
    span = workload[-1].arrival_s - workload[0].arrival_s
    return (len(workload) - 1) / span if span > 0 else 0.0


# ----------------------------------------------------------------------
# JSONL trace replay.
# ----------------------------------------------------------------------


def save_trace(workload: Iterable[TimedRequest], path: str | Path) -> Path:
    """Write a workload as one JSON object per line (inputs elided)."""
    path = Path(path)
    lines = []
    for request in workload:
        spec = request.deployment
        lines.append(
            json.dumps(
                {
                    "t": request.arrival_s,
                    "model": spec.model,
                    "config": spec.config,
                    "precision": spec.precision.value,
                    "fidelity": spec.fidelity,
                    "mode": spec.execution_mode,
                },
                sort_keys=True,
            )
        )
    path.write_text("\n".join(lines) + "\n")
    return path


def load_trace(
    path: str | Path, seed: int = 0, with_inputs: bool = False
) -> list[TimedRequest]:
    """Replay a JSONL trace as a workload (inputs re-synthesised).

    Input tensors are not stored in traces; with ``with_inputs`` they
    are drawn from ``default_rng(seed)`` in arrival order, so a trace
    plus a seed is a fully reproducible request set.
    """
    rng = np.random.default_rng(seed)
    nets: dict[str, object] = {}
    workload: list[TimedRequest] = []
    last_t = None
    for line_no, line in enumerate(Path(path).read_text().splitlines()):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ReproError(f"{path}:{line_no + 1}: bad trace line: {error}") from error
        if "t" not in record or "model" not in record:
            raise ReproError(f"{path}:{line_no + 1}: trace line needs 't' and 'model'")
        t = float(record["t"])
        if last_t is not None and t < last_t:
            raise ReproError(f"{path}:{line_no + 1}: arrival times must be sorted")
        last_t = t
        deployment = DeploymentSpec(
            record["model"],
            config=record.get("config", "nv_small"),
            precision=Precision(record.get("precision", "int8")),
            fidelity=record.get("fidelity", "functional"),
            execution_mode=record.get("mode", "cycle_accurate"),
        )
        image = None
        if with_inputs:
            net = nets.get(deployment.model)
            if net is None:
                from repro.nn.zoo import ZOO

                net = nets[deployment.model] = ZOO[deployment.model]()
            image = make_input_for(net, rng)
        workload.append(TimedRequest(len(workload), t, deployment, image))
    if not workload:
        raise ReproError(f"trace {path} holds no requests")
    return workload
