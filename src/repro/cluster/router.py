"""Pluggable request routing across fleet replicas.

Every policy answers one question — *which live replica serves this
request* — from the same observable state: per-replica outstanding
request counts and virtual backlog (the serve-layer hooks
:attr:`repro.serve.InferenceService.outstanding` mirrors for real
services).  Policies:

``round_robin``
    Dispatch order, ignoring load and locality.  The baseline.

``least_outstanding``
    The replica with the fewest requests in flight (ties broken by
    backlog seconds, then replica id).  Classic join-shortest-queue.

``cache_affinity``
    Rendezvous (highest-random-weight) hashing of the deployment's
    bundle identity over replica ids: one deployment consistently
    lands on one replica, so its bundle stays resident in that
    replica's warm-state LRU and scale events remap a minimal slice
    of keys.  An optional ``spill_depth`` falls through to the next
    preference when the owner is saturated.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

from repro.errors import ReproError


def affinity_score(key: str, replica_id: int) -> int:
    """Deterministic rendezvous weight of (deployment key, replica)."""
    digest = hashlib.sha256(f"{key}#{replica_id}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class Router:
    """Routing-policy interface: pick a live replica for a request."""

    name = "router"

    def route(self, request, replicas: Sequence, now: float):
        raise NotImplementedError

    def reset(self) -> None:
        """Forget inter-request state (fresh sweep point)."""


class RoundRobinRouter(Router):
    name = "round_robin"

    def __init__(self) -> None:
        self._cursor = 0

    def route(self, request, replicas, now):
        replica = replicas[self._cursor % len(replicas)]
        self._cursor += 1
        return replica

    def reset(self) -> None:
        self._cursor = 0


class LeastOutstandingRouter(Router):
    name = "least_outstanding"

    def route(self, request, replicas, now):
        return min(
            replicas,
            key=lambda r: (r.outstanding(now), r.backlog_seconds(now), r.replica_id),
        )


class CacheAffinityRouter(Router):
    name = "cache_affinity"

    def __init__(self, spill_depth: int | None = None) -> None:
        if spill_depth is not None and spill_depth <= 0:
            raise ReproError("spill depth must be positive")
        self.spill_depth = spill_depth

    def route(self, request, replicas, now):
        key = request.deployment.describe()
        ranked = sorted(
            replicas,
            key=lambda r: affinity_score(key, r.replica_id),
            reverse=True,
        )
        if self.spill_depth is not None:
            for replica in ranked:
                if replica.outstanding(now) < self.spill_depth:
                    return replica
        return ranked[0]


#: CLI / config registry of routing policies.
POLICIES = {
    "round_robin": RoundRobinRouter,
    "least_outstanding": LeastOutstandingRouter,
    "cache_affinity": CacheAffinityRouter,
}


def make_router(name: str, **kwargs) -> Router:
    """Build a registered routing policy from its CLI name."""
    if name not in POLICIES:
        raise ReproError(f"unknown routing policy {name!r} (known: {sorted(POLICIES)})")
    return POLICIES[name](**kwargs)
