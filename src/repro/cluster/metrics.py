"""Fleet-wide metrics: goodput vs offered load, percentiles, timeline.

:class:`ClusterMetrics` accumulates per-request outcomes on the
simulation's virtual clock — completed (with latency and warm-state
hit), rejected (with the shedding reason) — plus the autoscaler's
scale-event timeline and, when the fleet executed requests for real,
an aggregate of every replica's host-side
:class:`~repro.serve.metrics.ServiceMetrics`
(via :func:`aggregate_service_metrics`, built on the serve layer's
``to_dict`` export rather than scraping rendered text).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.cluster.admission import SloPolicy
from repro.cluster.autoscaler import ScaleEvent
from repro.obs.metrics import MetricsRegistry
from repro.obs.stats import LatencySummary
from repro.serve.metrics import ServiceMetrics


def aggregate_service_metrics(services: Iterable[ServiceMetrics]) -> dict:
    """Roll per-replica ServiceMetrics up into one fleet-wide view.

    Counters sum; latency percentiles are recomputed over the pooled
    samples (a mean of p99s is not a p99).  Returns JSON-ready data in
    the same shape as :meth:`ServiceMetrics.to_dict`.
    """
    services = list(services)
    wall: list[float] = []
    cycles: list[float] = []
    totals = {
        "replicas": len(services),
        "requests": 0,
        "failures": 0,
        "bundle_hits": 0,
        "bundle_misses": 0,
        "wall_seconds_total": 0.0,
    }
    for metrics in services:
        summary = metrics.to_dict()
        totals["requests"] += summary["requests"]
        totals["failures"] += summary["failures"]
        totals["bundle_hits"] += summary["bundle_hits"]
        totals["bundle_misses"] += summary["bundle_misses"]
        totals["wall_seconds_total"] += summary["wall_seconds_total"]
        wall.extend(metrics.wall_latencies)
        cycles.extend(metrics.cycle_latencies)
    totals["wall"] = LatencySummary.of(wall).to_dict()
    totals["cycles"] = LatencySummary.of(cycles).to_dict()
    return totals


@dataclass
class ReplicaUsage:
    """One replica's share of the run, for the per-replica table."""

    replica_id: int
    requests: int
    resident_hits: int
    resident_misses: int
    busy_seconds: float
    came_up_at: float
    retired_at: float | None

    def to_dict(self) -> dict:
        return {
            "replica_id": self.replica_id,
            "requests": self.requests,
            "resident_hits": self.resident_hits,
            "resident_misses": self.resident_misses,
            "busy_seconds": self.busy_seconds,
            "came_up_at": self.came_up_at,
            "retired_at": self.retired_at,
        }


def _int_counter(metric: str) -> property:
    """Registry-backed int attribute (same facade as ServiceMetrics)."""

    def fget(self) -> int:
        return int(self.registry.counter(metric).value)

    def fset(self, value) -> None:
        self.registry.counter(metric).value = int(value)

    return property(fget, fset)


class ClusterMetrics:
    """Counters accumulated across one fleet-simulation run.

    Scalar counters live in a :class:`~repro.obs.metrics.MetricsRegistry`
    under ``cluster.*`` names; the attribute surface and
    :meth:`to_dict` snapshot shape are unchanged from the pre-registry
    dataclass.
    """

    arrivals = _int_counter("cluster.arrivals")
    completed = _int_counter("cluster.completed")
    # executed responses that came back not-ok
    failures = _int_counter("cluster.failures")
    rejected = _int_counter("cluster.rejected")
    resident_hits = _int_counter("cluster.resident.hits")
    resident_misses = _int_counter("cluster.resident.misses")
    slo_met = _int_counter("cluster.slo_met")

    def __init__(
        self,
        slo: SloPolicy | None = None,
        policy_name: str = "",
        arrival_name: str = "",
        arrivals: int = 0,
        completed: int = 0,
        failures: int = 0,
        rejected: int = 0,
        rejections_by_reason: dict[str, int] | None = None,
        resident_hits: int = 0,
        resident_misses: int = 0,
        slo_met: int = 0,
        latencies: list[float] | None = None,
        first_arrival_s: float | None = None,
        last_arrival_s: float = 0.0,
        last_completion_s: float = 0.0,
        peak_replicas: int = 0,
        scale_events: list[ScaleEvent] | None = None,
        replica_usage: list[ReplicaUsage] | None = None,
        service_aggregate: dict | None = None,
        registry: MetricsRegistry | None = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.slo = slo if slo is not None else SloPolicy()
        self.policy_name = policy_name
        self.arrival_name = arrival_name
        self.arrivals = arrivals
        self.completed = completed
        self.failures = failures
        self.rejected = rejected
        self.rejections_by_reason = (
            rejections_by_reason if rejections_by_reason is not None else {}
        )
        self.resident_hits = resident_hits
        self.resident_misses = resident_misses
        self.slo_met = slo_met
        self.latencies = latencies if latencies is not None else []
        self.first_arrival_s = first_arrival_s
        self.last_arrival_s = last_arrival_s
        self.last_completion_s = last_completion_s
        self.peak_replicas = peak_replicas
        self.scale_events = scale_events if scale_events is not None else []
        self.replica_usage = replica_usage if replica_usage is not None else []
        self.service_aggregate = service_aggregate

    # ------------------------------------------------------------------
    # Accumulation (driven by the simulation loop).
    # ------------------------------------------------------------------

    def arrival(self, now: float) -> None:
        self.arrivals += 1
        if self.first_arrival_s is None:
            self.first_arrival_s = now
        self.last_arrival_s = now

    def reject(self, now: float, reason: str) -> None:
        self.rejected += 1
        self.rejections_by_reason[reason] = self.rejections_by_reason.get(reason, 0) + 1
        self.registry.counter(f"cluster.rejected.{reason}").inc()

    def complete(
        self, now: float, latency_s: float, resident_hit: bool, ok: bool = True
    ) -> None:
        self.completed += 1
        if not ok:
            self.failures += 1
        if resident_hit:
            self.resident_hits += 1
        else:
            self.resident_misses += 1
        if latency_s <= self.slo.slo_latency_s:
            self.slo_met += 1
        self.latencies.append(latency_s)
        self.registry.histogram("cluster.latency.seconds").observe(latency_s)
        self.last_completion_s = max(self.last_completion_s, now + latency_s)

    # ------------------------------------------------------------------
    # Derived views.
    # ------------------------------------------------------------------

    @property
    def duration_s(self) -> float:
        """Virtual span from the first arrival to the last completion."""
        start = self.first_arrival_s or 0.0
        end = max(self.last_completion_s, self.last_arrival_s)
        return max(0.0, end - start)

    @property
    def arrival_span_s(self) -> float:
        """Virtual span of the arrival process alone."""
        start = self.first_arrival_s or 0.0
        return max(0.0, self.last_arrival_s - start)

    @property
    def offered_rps(self) -> float:
        """Arrival rate over the arrival span — a *workload* property,
        identical across policies serving the same request set (the
        makespan-based :attr:`goodput_rps` is where policies differ).
        Same gaps-based estimator as
        :func:`repro.cluster.workload.offered_rps`: n arrivals span
        n−1 inter-arrival gaps."""
        span = self.arrival_span_s
        return (self.arrivals - 1) / span if span and self.arrivals > 1 else 0.0

    @property
    def goodput_rps(self) -> float:
        """Completions inside the latency SLO, per virtual second."""
        return self.slo_met / self.duration_s if self.duration_s else 0.0

    @property
    def rejection_rate(self) -> float:
        return self.rejected / self.arrivals if self.arrivals else 0.0

    @property
    def resident_hit_rate(self) -> float:
        total = self.resident_hits + self.resident_misses
        return self.resident_hits / total if total else 0.0

    def latency_summary(self) -> LatencySummary:
        return LatencySummary.of(self.latencies)

    def meets_rejection_slo(self) -> bool:
        return self.rejection_rate <= self.slo.max_rejection_rate

    # ------------------------------------------------------------------
    # Export.
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "policy": self.policy_name,
            "arrival": self.arrival_name,
            "arrivals": self.arrivals,
            "completed": self.completed,
            "failures": self.failures,
            "rejected": self.rejected,
            "rejections_by_reason": dict(sorted(self.rejections_by_reason.items())),
            "rejection_rate": self.rejection_rate,
            "meets_rejection_slo": self.meets_rejection_slo(),
            "resident_hits": self.resident_hits,
            "resident_misses": self.resident_misses,
            "resident_hit_rate": self.resident_hit_rate,
            "duration_s": self.duration_s,
            "offered_rps": self.offered_rps,
            "goodput_rps": self.goodput_rps,
            "slo_latency_s": self.slo.slo_latency_s,
            "max_rejection_rate": self.slo.max_rejection_rate,
            "latency": self.latency_summary().to_dict(),
            "peak_replicas": self.peak_replicas,
            "scale_events": [event.to_dict() for event in self.scale_events],
            "per_replica": [usage.to_dict() for usage in self.replica_usage],
            "service_aggregate": self.service_aggregate,
        }

    def render(self) -> str:
        latency = self.latency_summary()
        reasons = ", ".join(
            f"{reason} {count}"
            for reason, count in sorted(self.rejections_by_reason.items())
        )
        lines = [
            f"cluster[{self.policy_name or 'unrouted'}"
            + (f", {self.arrival_name}" if self.arrival_name else "")
            + f"]: {self.arrivals} arrivals over {self.duration_s:.2f} s",
            f"offered {self.offered_rps:.1f} rps → goodput {self.goodput_rps:.1f} rps "
            f"(SLO {self.slo.slo_latency_s * 1e3:.0f} ms)",
            f"completed {self.completed} ({self.failures} failed)  "
            f"rejected {self.rejected} "
            f"({self.rejection_rate * 100:.1f}%"
            + (f": {reasons}" if reasons else "")
            + f"; SLO ≤ {self.slo.max_rejection_rate * 100:.0f}% "
            + ("met" if self.meets_rejection_slo() else "MISSED")
            + ")",
            f"virtual latency: p50 {latency.p50 * 1e3:.1f} ms  "
            f"p99 {latency.p99 * 1e3:.1f} ms  max {latency.max * 1e3:.1f} ms",
            f"resident bundles: {self.resident_hits} hits / "
            f"{self.resident_misses} misses "
            f"({self.resident_hit_rate * 100:.0f}% hit rate)",
        ]
        if self.replica_usage:
            peak = self.peak_replicas or len(self.replica_usage)
            lines.append(f"replicas (peak {peak}):")
            for usage in self.replica_usage:
                state = (
                    f"retired t={usage.retired_at:.2f}s"
                    if usage.retired_at is not None
                    else "live"
                )
                lines.append(
                    f"  r{usage.replica_id}: {usage.requests} requests  "
                    f"{usage.resident_hits}h/{usage.resident_misses}m  "
                    f"busy {usage.busy_seconds:.2f} s  "
                    f"up t={usage.came_up_at:.2f}s  {state}"
                )
        if self.scale_events:
            lines.append("scale timeline:")
            lines.extend(f"  {event.render()}" for event in self.scale_events)
        if self.service_aggregate:
            wall = self.service_aggregate["wall"]
            lines.append(
                f"host execution: {self.service_aggregate['requests']} requests "
                f"across {self.service_aggregate['replicas']} replica services  "
                f"wall p50 {wall['p50'] * 1e3:.1f} ms  p99 {wall['p99'] * 1e3:.1f} ms"
            )
        return "\n".join(lines)
