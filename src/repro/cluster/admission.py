"""SLO-aware admission control: shed load the fleet cannot serve well.

An open-loop arrival process does not slow down when the fleet
saturates; without shedding, queues (and p99) grow without bound.  The
controller rejects a request up front — the 429 of this simulation —
when *no* live replica could serve it acceptably:

- ``max_queue_depth`` — every live replica already has at least this
  many requests outstanding (queue-depth shedding);
- ``latency_budget_s`` — even the least-backlogged replica could not
  finish the request inside the budget (estimated-latency shedding,
  priced from the request's deterministic service-time estimate).

Rejections are recorded per reason in
:class:`~repro.cluster.metrics.ClusterMetrics`; the fleet-level SLO on
the *rate* of rejections (``SloPolicy.max_rejection_rate``) is what
the autoscaler is sized against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ReproError


@dataclass(frozen=True)
class SloPolicy:
    """The fleet's service-level objectives and shedding thresholds."""

    #: Completed requests count toward goodput only under this latency.
    slo_latency_s: float = 0.25
    #: Fleet-level objective on the shed fraction (reported + asserted).
    max_rejection_rate: float = 0.05
    #: Reject when every live replica has this many requests in flight.
    max_queue_depth: int | None = 16
    #: Reject when even the best replica would miss this completion
    #: budget (``None`` disables estimated-latency shedding).
    latency_budget_s: float | None = None

    def __post_init__(self) -> None:
        if self.slo_latency_s <= 0:
            raise ReproError("SLO latency must be positive")
        if not 0 <= self.max_rejection_rate <= 1:
            raise ReproError("rejection-rate SLO must be in [0, 1]")
        if self.max_queue_depth is not None and self.max_queue_depth <= 0:
            raise ReproError("queue depth limit must be positive")
        if self.latency_budget_s is not None and self.latency_budget_s <= 0:
            raise ReproError("latency budget must be positive")


@dataclass(frozen=True)
class AdmissionDecision:
    admitted: bool
    reason: str | None = None  # "no_replicas" | "queue_full" | "latency_budget"


ADMITTED = AdmissionDecision(admitted=True)


class AdmissionController:
    """Applies one :class:`SloPolicy` ahead of routing."""

    def __init__(self, policy: SloPolicy | None = None) -> None:
        self.policy = policy or SloPolicy()

    def admit(
        self, request, replicas: Sequence, now: float, run_seconds: float
    ) -> AdmissionDecision:
        """Admit unless no live replica could serve acceptably.

        ``run_seconds`` is the request's deterministic service-time
        estimate (warm, excluding warm-up), the same pricing the fleet
        simulation charges on execution.
        """
        if not replicas:
            return AdmissionDecision(admitted=False, reason="no_replicas")
        policy = self.policy
        if policy.max_queue_depth is not None:
            shallowest = min(r.outstanding(now) for r in replicas)
            if shallowest >= policy.max_queue_depth:
                return AdmissionDecision(admitted=False, reason="queue_full")
        if policy.latency_budget_s is not None:
            best_wait = min(r.backlog_seconds(now) for r in replicas)
            if best_wait + run_seconds > policy.latency_budget_s:
                return AdmissionDecision(admitted=False, reason="latency_budget")
        return ADMITTED
