"""Multi-replica fleet simulation above the serve layer.

The jump from one :class:`~repro.serve.InferenceService` to a fleet:
a seeded open-loop workload generator, pluggable routing policies,
SLO-aware admission control, an autoscaler with realistic cold-start
warm-up, and fleet-wide metrics — all on a deterministic virtual
clock priced from the calibrated fast path, with optional real
execution for bit-identity against single-service serving.

Dataflow (see README "Cluster simulation")::

    workload ──▶ admission ──▶ router ──▶ replica fleet ──▶ metrics
    (arrivals)    (shedding)   (policy)    (warm-state LRU,   (goodput,
                                            autoscaled)        p99, 429s)
"""

from repro.cluster.admission import (
    ADMITTED,
    AdmissionController,
    AdmissionDecision,
    SloPolicy,
)
from repro.cluster.autoscaler import (
    Autoscaler,
    FleetSample,
    ScaleDecision,
    ScaleEvent,
)
from repro.cluster.fleet import (
    ClusterResult,
    ClusterSimulation,
    Replica,
    RequestCost,
    ServiceTimeModel,
    fleet_latency_summary,
    residency_key,
)
from repro.cluster.metrics import (
    ClusterMetrics,
    ReplicaUsage,
    aggregate_service_metrics,
)
from repro.cluster.router import (
    POLICIES,
    CacheAffinityRouter,
    LeastOutstandingRouter,
    RoundRobinRouter,
    Router,
    affinity_score,
    make_router,
)
from repro.cluster.workload import (
    ARRIVALS,
    BurstyArrivals,
    ConstantArrivals,
    PoissonArrivals,
    TimedRequest,
    generate_workload,
    load_trace,
    make_arrivals,
    offered_rps,
    save_trace,
)

__all__ = [
    "ADMITTED",
    "ARRIVALS",
    "AdmissionController",
    "AdmissionDecision",
    "Autoscaler",
    "BurstyArrivals",
    "CacheAffinityRouter",
    "ClusterMetrics",
    "ClusterResult",
    "ClusterSimulation",
    "ConstantArrivals",
    "FleetSample",
    "LeastOutstandingRouter",
    "POLICIES",
    "PoissonArrivals",
    "Replica",
    "ReplicaUsage",
    "RequestCost",
    "RoundRobinRouter",
    "Router",
    "ScaleDecision",
    "ScaleEvent",
    "ServiceTimeModel",
    "SloPolicy",
    "TimedRequest",
    "affinity_score",
    "aggregate_service_metrics",
    "fleet_latency_summary",
    "generate_workload",
    "load_trace",
    "make_arrivals",
    "make_router",
    "offered_rps",
    "residency_key",
    "save_trace",
]
