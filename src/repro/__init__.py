"""repro — Bare-Metal RISC-V + NVDLA SoC for Efficient Deep Learning Inference.

A full-system Python reproduction of the SOCC 2025 paper: the NVDLA
accelerator model (nv_small / nv_full), a µRISC-V RV32IM core with
assembler and 4-stage pipeline timing, the AHB/APB/AXI bus fabric of
the published SoC, the Caffe-equivalent network substrate and NVDLA
compiler, the virtual platform that captures CSB/DBB traces, and the
bare-metal flow that turns those traces into self-checking RISC-V
programs.

Quickstart::

    from repro import quick_inference
    result = quick_inference("lenet5")
    print(result.milliseconds, "ms @ 100 MHz")

or step by step::

    from repro.nn.zoo import lenet5
    from repro.nvdla import NV_SMALL
    from repro.baremetal import generate_baremetal
    from repro.core import Soc

    bundle = generate_baremetal(lenet5(), NV_SMALL)
    soc = Soc(NV_SMALL)
    soc.load_bundle(bundle)
    result = soc.run_inference(bundle)
"""

from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["ReproError", "__version__", "quick_inference"]


def quick_inference(model: str = "lenet5", config_name: str = "nv_small", fidelity: str = "functional"):
    """One-call demo: full flow for a zoo model on a named config.

    Returns the :class:`~repro.core.soc.SocRunResult` of the bare-metal
    run.  See ``examples/quickstart.py`` for the expanded version.
    """
    from repro.core import Soc
    from repro.nvdla.config import get_config
    from repro.serve import shared_cache

    config = get_config(config_name)
    # The shared cache makes repeated quick_inference calls cheap.
    bundle = shared_cache().bundle_for(model, config, fidelity=fidelity)
    soc = Soc(config, fidelity=fidelity)
    soc.load_bundle(bundle)
    return soc.run_inference(bundle)
