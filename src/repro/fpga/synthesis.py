"""Synthesis feasibility checks.

`synthesize` plays the role of the Vivado synthesis run in the paper's
§V: it evaluates the parametric resource model against a device and
reports per-resource utilisation, raising (or flagging) the LUT
over-utilisation the authors observed when attempting nv_full on the
ZCU102.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import OverUtilizationError
from repro.fpga.devices import Device, ZCU102
from repro.fpga.resources import ResourceVector, estimate_system
from repro.nvdla.config import HardwareConfig, NV_SMALL


@dataclass
class SynthesisResult:
    """Outcome of a (modelled) synthesis run."""

    config_name: str
    device: Device
    used: ResourceVector
    utilization: dict[str, float] = field(default_factory=dict)
    fits: bool = True
    violations: list[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            f"synthesis of {self.config_name} system on {self.device.name}: "
            + ("FITS" if self.fits else "OVER-UTILIZED")
        ]
        for key, fraction in sorted(self.utilization.items(), key=lambda kv: -kv[1]):
            marker = "  <-- over" if fraction > 1.0 else ""
            lines.append(f"  {key:<12} {fraction * 100:7.1f}%{marker}")
        return "\n".join(lines)


def synthesize(
    config: HardwareConfig = NV_SMALL,
    device: Device = ZCU102,
    strict: bool = False,
) -> SynthesisResult:
    """Evaluate the full system build against a device.

    With ``strict=True`` an over-utilised design raises
    :class:`~repro.errors.OverUtilizationError` (like a failed
    implementation run); otherwise the result carries the violations —
    matching how the paper reports the nv_full attempt.
    """
    used = estimate_system(config)
    utilization = device.headroom(used)
    violations = [
        f"{key}: {fraction * 100:.1f}% of {device.name}"
        for key, fraction in utilization.items()
        if fraction > 1.0
    ]
    result = SynthesisResult(
        config_name=config.name,
        device=device,
        used=used,
        utilization=utilization,
        fits=not violations,
        violations=violations,
    )
    if strict and violations:
        worst_key = max(utilization, key=utilization.get)
        raise OverUtilizationError(
            f"{config.name} does not fit {device.name}: " + "; ".join(violations),
            resource=worst_key,
            used=used.as_dict()[worst_key],
            available=device.capacity.as_dict()[worst_key],
        )
    return result
