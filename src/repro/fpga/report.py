"""Table I-style utilisation reports."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fpga.devices import Device, ZCU102
from repro.fpga.resources import ResourceVector, component_breakdown
from repro.nvdla.config import HardwareConfig, NV_SMALL

_COLUMNS = [
    ("CLB LUTs", "luts"),
    ("CLB Regs", "regs"),
    ("CARRY8", "carry8"),
    ("F7 Muxes", "f7_muxes"),
    ("F8 Muxes", "f8_muxes"),
    ("CLBs", "clbs"),
    ("BRAM Tiles", "bram_tiles"),
    ("DSPs", "dsps"),
]


@dataclass
class UtilizationReport:
    """All rows of a Table I-equivalent report."""

    device: Device
    rows: dict[str, ResourceVector] = field(default_factory=dict)

    def render(self) -> str:
        header_cells = [f"{name:>11}" for name, _ in _COLUMNS]
        lines = [
            f"FPGA resource utilization ({self.device.name}, {self.device.part})",
            f"{'Component':<26}" + "".join(header_cells),
            f"{'(device capacity)':<26}"
            + "".join(
                f"{self.device.capacity.as_dict()[key]:>11.0f}" for _, key in _COLUMNS
            ),
        ]
        for name, vector in self.rows.items():
            cells = []
            for _, key in _COLUMNS:
                value = vector.as_dict()[key]
                cells.append(f"{value:>11.1f}" if value % 1 else f"{value:>11.0f}")
            lines.append(f"{name:<26}" + "".join(cells))
        return "\n".join(lines)

    def utilization_row(self, row: str) -> dict[str, float]:
        return self.device.headroom(self.rows[row])


def build_table1_report(
    config: HardwareConfig = NV_SMALL, device: Device = ZCU102
) -> UtilizationReport:
    """Regenerate the paper's Table I for a hardware configuration."""
    return UtilizationReport(device=device, rows=component_breakdown(config))
