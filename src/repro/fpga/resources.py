"""Resource vectors and the calibrated component estimators.

The model decomposes the nv_small NVDLA of Table I into functional
groups with distinct scaling laws:

===============  ===========================  ======================
group            share of nv_small LUTs       scales with
===============  ===========================  ======================
MAC array+CACC   ~40%                         mac_cells
conv front end   ~20%  (CDMA/CSC/CBUF ctrl)   atomic_c, cbuf_banks
post-processors  ~20%  (SDP/PDP/CDP)          unit throughputs
infrastructure   ~20%  (MCIF/BDMA/CSB/glue)   dbb width
===============  ===========================  ======================

nv_small evaluates exactly to the published row; nv_full evaluates to
~20x the ZCU102's LUT capacity — reproducing the paper's "LUTs
overutilization was quite substantial" synthesis observation.
Registers, DSPs and BRAMs follow analogous decompositions.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.nvdla.config import HardwareConfig, NV_SMALL, Precision


@dataclass(frozen=True)
class ResourceVector:
    """One row of a utilisation table (Table I columns)."""

    luts: float = 0.0
    regs: float = 0.0
    carry8: float = 0.0
    f7_muxes: float = 0.0
    f8_muxes: float = 0.0
    clbs: float = 0.0
    bram_tiles: float = 0.0
    dsps: float = 0.0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def scaled(self, factor: float) -> "ResourceVector":
        return ResourceVector(
            **{f.name: getattr(self, f.name) * factor for f in fields(self)}
        )

    def rounded(self) -> "ResourceVector":
        return ResourceVector(
            **{
                f.name: round(getattr(self, f.name), 1)
                for f in fields(self)
            }
        )

    def as_dict(self) -> dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


# ----------------------------------------------------------------------
# Calibrated leaf components (exact Table I rows).
# ----------------------------------------------------------------------

NVDLA_SMALL = ResourceVector(74575, 79567, 1569, 3091, 1048, 15734, 66, 32)
URISCV_CORE = ResourceVector(6346, 2767, 173, 419, 67, 1297, 0, 4)
PROGRAM_MEMORY = ResourceVector(241, 6, 0, 45, 18, 148, 232, 0)
SOC_GLUE = ResourceVector(824, 1319, 20, 0, 0, 0, 0, 0)  # bridges/arbiter/decoder
MIG_DDR4 = ResourceVector(8651, 10260, 56, 164, 0, 1754, 25.5, 3)
AXI_SMARTCONNECT = ResourceVector(5546, 7860, 0, 0, 0, 1137, 0, 0)
SETUP_GLUE = ResourceVector(550, 1045, 7, 0, 0, 0, 0, 0)  # AXI interconnect etc.

# CLBs pack ~4.8 LUT-equivalents each on this family; the published
# rows are consistent with per-component packing, so composites are
# reported as sums (the small CLB-packing nonlinearity is ignored).

# Decomposition shares of the nv_small NVDLA (see module docstring).
_SHARES = {"mac": 0.40, "conv_frontend": 0.20, "post": 0.20, "infra": 0.20}
_DSP_SHARES = {"mac": 1.0, "conv_frontend": 0.0, "post": 0.0, "infra": 0.0}
_BRAM_SHARES = {"mac": 0.0, "conv_frontend": 0.70, "post": 0.15, "infra": 0.15}


def estimate_nvdla(config: HardwareConfig) -> ResourceVector:
    """Parametric NVDLA resource estimate.

    Exact for nv_small (the calibration point); other configurations
    scale each functional group by its governing parameter relative to
    nv_small.
    """
    base = NV_SMALL
    mac_scale = config.mac_cells / base.mac_cells
    frontend_scale = 0.5 * (config.atomic_c / base.atomic_c) + 0.5 * (
        config.cbuf_bytes / base.cbuf_bytes
    )
    post_scale = (
        config.sdp_throughput + config.pdp_throughput + config.cdp_throughput
    ) / (base.sdp_throughput + base.pdp_throughput + base.cdp_throughput)
    infra_scale = 0.5 + 0.5 * (config.dbb_width_bits / base.dbb_width_bits)
    fp16_factor = 1.3 if config.supports(Precision.FP16) else 1.0

    def combine(total: float, shares: dict[str, float]) -> float:
        return total * (
            shares["mac"] * mac_scale * fp16_factor
            + shares["conv_frontend"] * frontend_scale
            + shares["post"] * post_scale
            + shares["infra"] * infra_scale
        )

    return ResourceVector(
        luts=combine(NVDLA_SMALL.luts, _SHARES),
        regs=combine(NVDLA_SMALL.regs, _SHARES),
        carry8=combine(NVDLA_SMALL.carry8, _SHARES),
        f7_muxes=combine(NVDLA_SMALL.f7_muxes, _SHARES),
        f8_muxes=combine(NVDLA_SMALL.f8_muxes, _SHARES),
        clbs=combine(NVDLA_SMALL.clbs, _SHARES),
        bram_tiles=combine(NVDLA_SMALL.bram_tiles, _BRAM_SHARES),
        dsps=combine(NVDLA_SMALL.dsps, _DSP_SHARES),
    ).rounded()


def estimate_soc(config: HardwareConfig = NV_SMALL) -> ResourceVector:
    """The Fig. 2 SoC: NVDLA + µRISC-V + program memory + glue."""
    return estimate_nvdla(config) + URISCV_CORE + PROGRAM_MEMORY + SOC_GLUE


def estimate_system(config: HardwareConfig = NV_SMALL) -> ResourceVector:
    """The Fig. 4 overall setup: SoC + MIG + SmartConnect + glue."""
    return estimate_soc(config) + MIG_DDR4 + AXI_SMARTCONNECT + SETUP_GLUE


def component_breakdown(config: HardwareConfig = NV_SMALL) -> dict[str, ResourceVector]:
    """All Table I rows, keyed like the paper's first column."""
    return {
        "Overall System Set-up": estimate_system(config),
        "MIG DDR4": MIG_DDR4,
        "AXI SmartConnect": AXI_SMARTCONNECT,
        "Our SoC": estimate_soc(config),
        f"{config.name} NVDLA": estimate_nvdla(config),
        "uRISC_V core": URISCV_CORE,
        "Program Memory": PROGRAM_MEMORY,
    }
