"""FPGA resource estimation (paper Table I).

Vivado is not available here, so resource utilisation comes from a
calibrated parametric model: per-component resource vectors whose
nv_small values reproduce Table I and whose scaling laws (MAC count,
CBUF geometry, post-processor throughput, bus widths) predict other
configurations — in particular the paper's observation that nv_full's
LUT demand is far beyond the ZCU102.

- :mod:`repro.fpga.resources` — resource vectors and the estimators,
- :mod:`repro.fpga.devices` — device capacity models (ZCU102 et al.),
- :mod:`repro.fpga.report` — Table I-style utilisation reports,
- :mod:`repro.fpga.synthesis` — feasibility checks with
  over-utilisation diagnostics.
"""

from repro.fpga.devices import DEVICES, Device, ZCU102
from repro.fpga.report import UtilizationReport, build_table1_report
from repro.fpga.resources import ResourceVector, estimate_nvdla, estimate_soc, estimate_system
from repro.fpga.synthesis import SynthesisResult, synthesize

__all__ = [
    "DEVICES",
    "Device",
    "ResourceVector",
    "SynthesisResult",
    "UtilizationReport",
    "ZCU102",
    "build_table1_report",
    "estimate_nvdla",
    "estimate_soc",
    "estimate_system",
    "synthesize",
]
