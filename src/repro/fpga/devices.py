"""FPGA device capacity models.

Capacities for the ZCU102 (Zynq UltraScale+ XCZU9EG) come straight
from the header row of the paper's Table I; a few other common
evaluation boards are included for the design-space-exploration
example ("FPGA synthesis results demonstrate the feasibility of this
design on low- to mid-range devices").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.resources import ResourceVector


@dataclass(frozen=True)
class Device:
    """An FPGA part and its resource capacities."""

    name: str
    part: str
    capacity: ResourceVector

    def headroom(self, used: ResourceVector) -> dict[str, float]:
        """Utilisation fraction per resource (>1 means over-utilised)."""
        result: dict[str, float] = {}
        for key, have in self.capacity.as_dict().items():
            want = used.as_dict()[key]
            if have > 0:
                result[key] = want / have
            elif want > 0:
                result[key] = float("inf")
        return result

    def fits(self, used: ResourceVector) -> bool:
        return all(fraction <= 1.0 for fraction in self.headroom(used).values())


ZCU102 = Device(
    name="ZCU102",
    part="xczu9eg-ffvb1156",
    capacity=ResourceVector(
        luts=274080,
        regs=548160,
        carry8=34260,
        f7_muxes=137040,
        f8_muxes=68520,
        clbs=34260,
        bram_tiles=912,
        dsps=2520,
    ),
)

ZCU104 = Device(
    name="ZCU104",
    part="xczu7ev-ffvc1156",
    capacity=ResourceVector(
        luts=230400,
        regs=460800,
        carry8=28800,
        f7_muxes=115200,
        f8_muxes=57600,
        clbs=28800,
        bram_tiles=312,
        dsps=1728,
    ),
)

VCU118 = Device(
    name="VCU118",
    part="xcvu9p-flga2104",
    capacity=ResourceVector(
        luts=1182240,
        regs=2364480,
        carry8=147780,
        f7_muxes=591120,
        f8_muxes=295560,
        clbs=147780,
        bram_tiles=2160,
        dsps=6840,
    ),
)

DEVICES: dict[str, Device] = {d.name: d for d in (ZCU102, ZCU104, VCU118)}
