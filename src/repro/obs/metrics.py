"""Counters, gauges, and log-scale histograms with cross-process merge.

The registry is the one sink every layer's counters live in
(``ServiceMetrics`` and ``ClusterMetrics`` are thin facades over it).
Recording is plain attribute arithmetic in the owning process — no
locks, because each process owns its registry — and aggregation happens
by shipping ``to_dict()`` snapshots across the process boundary and
:meth:`MetricsRegistry.merge`-ing them, which is exact for counters and
histograms (elementwise sums, hence associative and commutative).

Naming convention: dotted lowercase paths, ``<layer>.<noun>[.<verb>]``
— e.g. ``serve.requests``, ``serve.bundle.compiles``,
``cluster.arrivals``.  Histograms end in a unit suffix
(``.seconds``, ``.cycles``).
"""

from __future__ import annotations

from bisect import bisect_right


class Counter:
    """Monotonic (by convention) float-capable counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0.0):
        self.name = name
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0.0):
        self.name = name
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


def log_bucket_bounds(lo: float = 1e-4, buckets_per_decade: int = 5,
                      decades: int = 8) -> list[float]:
    """Upper bounds lo·10^(i/bpd): fixed, so merges never re-bucket."""
    n = buckets_per_decade * decades
    return [lo * 10 ** (i / buckets_per_decade) for i in range(n + 1)]


class Histogram:
    """Fixed-bucket log-scale histogram; merge is elementwise add.

    ``counts[0]`` is the underflow bucket (< bounds[0]); ``counts[-1]``
    is overflow (>= bounds[-1]); ``counts[i]`` for 0 < i <= len(bounds)-1
    holds samples in ``[bounds[i-1], bounds[i])``.  Buckets are fixed at
    construction so two histograms with the same bounds merge exactly —
    the cross-process contract.  Exact min/max/sum ride along for the
    summary stats quantile estimation can't recover.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, bounds: list[float] | None = None):
        self.name = name
        self.bounds = bounds if bounds is not None else log_bucket_bounds()
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated nearest-rank quantile (q in [0, 100]) from buckets.

        Returns the upper bound of the bucket holding the target rank;
        underflow reports bounds[0], overflow reports exact max.
        """
        if not self.count:
            return 0.0
        rank = max(1, -(-self.count * q // 100))
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= rank:
                if i >= len(self.bounds):  # overflow bucket
                    return self.max if self.max is not None else self.bounds[-1]
                return self.bounds[i]
        return self.max if self.max is not None else 0.0  # pragma: no cover

    def merge(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge differing bucket bounds")
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def to_dict(self) -> dict:
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, name: str, payload: dict) -> "Histogram":
        hist = cls(name, bounds=list(payload["bounds"]))
        hist.counts = list(payload["counts"])
        hist.count = payload["count"]
        hist.sum = payload["sum"]
        hist.min = payload["min"]
        hist.max = payload["max"]
        return hist


class MetricsRegistry:
    """Create-on-first-use registry of named instruments.

    One per process.  ``counter``/``gauge``/``histogram`` return the
    existing instrument when the name is already registered (and raise
    if it is registered as a different type), so call sites never need
    to coordinate creation order.
    """

    def __init__(self):
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls, **kwargs):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = cls(name, **kwargs)
        elif type(instrument) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}")
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, bounds: list[float] | None = None) -> Histogram:
        hist = self._instruments.get(name)
        if hist is None:
            hist = self._instruments[name] = Histogram(name, bounds=bounds)
        elif type(hist) is not Histogram:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(hist).__name__}, not Histogram")
        return hist

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def get(self, name: str):
        return self._instruments.get(name)

    def to_dict(self) -> dict:
        return {name: inst.to_dict()
                for name, inst in sorted(self._instruments.items())}

    @classmethod
    def from_dict(cls, payload: dict) -> "MetricsRegistry":
        registry = cls()
        registry.merge_dict(payload)
        return registry

    def merge_dict(self, payload: dict) -> None:
        """Fold a ``to_dict`` snapshot (e.g. from another process) in.

        Counters and histograms add; gauges take the incoming value
        (last writer wins, matching single-process semantics).
        """
        for name, entry in payload.items():
            kind = entry["type"]
            if kind == "counter":
                self.counter(name).inc(entry["value"])
            elif kind == "gauge":
                self.gauge(name).set(entry["value"])
            elif kind == "histogram":
                incoming = Histogram.from_dict(name, entry)
                self.histogram(name, bounds=incoming.bounds).merge(incoming)
            else:
                raise ValueError(f"unknown metric type {kind!r} for {name!r}")

    def merge(self, other: "MetricsRegistry") -> None:
        self.merge_dict(other.to_dict())

    def render(self) -> str:
        lines = []
        for name in self.names():
            inst = self._instruments[name]
            if isinstance(inst, Histogram):
                lines.append(
                    f"{name}: count={inst.count} mean={inst.mean:.6g} "
                    f"p50~{inst.quantile(50):.6g} p99~{inst.quantile(99):.6g} "
                    f"max={inst.max if inst.max is not None else 0:.6g}")
            else:
                lines.append(f"{name}: {inst.value:g}")
        return "\n".join(lines)
