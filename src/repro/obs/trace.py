"""Structured span tracing with cross-process context propagation.

One :class:`Tracer` per process records :class:`Span` records — named,
timestamped, parent-linked — through the whole request lifecycle:
enqueue → scheduler admit/seal → worker dispatch → bundle resolve →
execute (with per-NVDLA-unit cycle attribution) → reply.

Design constraints, in order:

- **near-zero overhead when off.**  Every instrumentation site guards
  on ``tracer.enabled`` (a plain attribute read) or calls methods that
  early-return before allocating anything.  ``NULL_TRACER`` is the
  module-wide disabled singleton that instrumented constructors default
  to; ``benchmarks/bench_obs.py`` gates the disabled cost at < 2 % of
  serving throughput.
- **cross-process stitching.**  A span's identity is
  ``(trace_id, span_id)`` — :meth:`Tracer.context` reduces it to a
  picklable tuple that rides on
  :class:`~repro.core.fastpath.FastPathRunRequest`; the worker process
  records children under that parent and ships the finished span dicts
  back on the result, where the parent :meth:`Tracer.ingest`\\ s them.
  Span ids embed the recording process's PID, so two processes can
  never mint the same id.
- **two clocks.**  Wall-clock spans use ``time.time()`` (one host-wide
  timebase, so spans from different processes interleave correctly);
  virtual-clock spans (``repro.cluster``) are recorded with explicit
  timestamps via :meth:`Tracer.add` and export into the same formats.

Spans are plain dicts once finished (see :meth:`Span.to_dict`), which
is also the JSONL wire format of :mod:`repro.obs.export`.
"""

from __future__ import annotations

import itertools
import os
import time
from dataclasses import dataclass, field


class Span:
    """One named, timed, parent-linked piece of work.

    Mutable while open (attrs may be annotated until :meth:`Tracer.end`)
    — a finished span is frozen into its dict form.  ``cycles`` and any
    other simulated-time annotations travel in ``attrs`` next to the
    wall-clock ``start_s``/``end_s``.
    """

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "start_s",
                 "end_s", "process", "attrs")

    def __init__(self, name, trace_id, span_id, parent_id, start_s,
                 process=0, attrs=None):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = start_s
        self.end_s: float | None = None
        self.process = process
        self.attrs = attrs if attrs is not None else {}

    def annotate(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "process": self.process,
            "attrs": self.attrs,
        }


#: The singleton returned by every disabled-tracer call; annotating it
#: is a no-op so instrumentation sites never need a None check.
class _NullSpan:
    __slots__ = ()
    name = trace_id = span_id = ""
    parent_id = None
    start_s = end_s = 0.0
    process = 0
    attrs: dict = {}

    def annotate(self, **attrs) -> "_NullSpan":
        return self

    def to_dict(self) -> dict:  # pragma: no cover - never exported
        return {}


NULL_SPAN = _NullSpan()


class Tracer:
    """Records spans for one process; disabled instances cost ~nothing.

    ``process`` labels which worker-process slot recorded a span (the
    serving plane's parent side uses -1); it becomes the Perfetto
    ``pid`` lane.  ``clock`` defaults to ``time.time`` — epoch seconds,
    comparable across processes on one host.
    """

    def __init__(self, enabled: bool = True, process: int = -1, clock=time.time):
        self.enabled = enabled
        self.process = process
        self.clock = clock
        self._ids = itertools.count()
        self._id_prefix = f"{os.getpid():x}"
        self._finished: list[dict] = []

    # -- recording -----------------------------------------------------

    def _next_id(self) -> str:
        return f"{self._id_prefix}.{next(self._ids)}"

    def start(self, name: str, trace_id: str | None = None,
              parent: "Span | str | None" = None, **attrs) -> Span:
        """Open a span; ``parent`` is a Span or a foreign span id."""
        if not self.enabled:
            return NULL_SPAN
        if isinstance(parent, Span):
            parent_id = parent.span_id
            if trace_id is None:
                trace_id = parent.trace_id
        else:
            parent_id = parent
        return Span(name, trace_id or "", self._next_id(), parent_id,
                    self.clock(), process=self.process, attrs=attrs)

    def end(self, span: Span, **attrs) -> Span:
        """Close a span at the current clock and file it for export."""
        if not self.enabled or span is NULL_SPAN:
            return span
        if attrs:
            span.attrs.update(attrs)
        span.end_s = self.clock()
        self._finished.append(span.to_dict())
        return span

    class _Scope:
        __slots__ = ("tracer", "span")

        def __init__(self, tracer, span):
            self.tracer = tracer
            self.span = span

        def __enter__(self):
            return self.span

        def __exit__(self, exc_type, exc, tb):
            if exc_type is not None and self.span is not NULL_SPAN:
                self.span.attrs["error"] = f"{exc_type.__name__}: {exc}"
            self.tracer.end(self.span)

    def span(self, name: str, trace_id: str | None = None,
             parent: "Span | str | None" = None, **attrs) -> "_Scope":
        """``with tracer.span("execute", parent=root) as span: ...``"""
        return self._Scope(self, self.start(name, trace_id, parent, **attrs))

    def add(self, name: str, start_s: float, end_s: float,
            trace_id: str = "", parent: "Span | str | None" = None,
            process: int | None = None, **attrs) -> Span:
        """Record a complete span with explicit timestamps.

        The virtual-clock path: fleet simulations and per-unit cycle
        attribution place spans on a timeline the host clock never saw.
        ``process`` overrides the tracer's slot (e.g. one simulated
        replica per Perfetto lane).
        """
        if not self.enabled:
            return NULL_SPAN
        if isinstance(parent, Span):
            parent_id = parent.span_id
            if not trace_id:
                trace_id = parent.trace_id
        else:
            parent_id = parent
        span = Span(name, trace_id, self._next_id(), parent_id, start_s,
                    process=self.process if process is None else process,
                    attrs=attrs)
        span.end_s = end_s
        self._finished.append(span.to_dict())
        return span

    # -- cross-process plumbing ----------------------------------------

    @staticmethod
    def context(span: Span) -> tuple[str, str] | None:
        """The picklable (trace_id, span_id) a child process parents to."""
        if span is NULL_SPAN:
            return None
        return (span.trace_id, span.span_id)

    def ingest(self, spans) -> None:
        """Adopt finished span dicts recorded by another tracer/process."""
        if not self.enabled:
            return
        self._finished.extend(dict(span) for span in spans)

    def drain(self) -> list[dict]:
        """Pop every finished span (the worker→parent shipping path)."""
        finished, self._finished = self._finished, []
        return finished

    # -- export --------------------------------------------------------

    @property
    def finished(self) -> list[dict]:
        return self._finished

    def __len__(self) -> int:
        return len(self._finished)


#: Shared disabled tracer: the default for every instrumented
#: constructor, so untraced serving pays one attribute read per guard.
NULL_TRACER = Tracer(enabled=False)


# ----------------------------------------------------------------------
# Per-stage cycle attribution.
# ----------------------------------------------------------------------


def record_unit_spans(tracer: Tracer, parent: Span, op_records,
                      total_cycles: int) -> None:
    """Nest per-NVDLA-unit spans inside an execute span.

    ``op_records`` is any sequence with the
    :class:`~repro.nvdla.engine.OpRecord` surface (``sink``, ``kind``,
    ``start_cycle``, ``end_cycle``, ``group``).  Unit spans live on the
    *simulated* timeline; to appear inside the wall-clock ``parent``
    they are placed proportionally (start_cycle / total_cycles of the
    parent's wall duration) while the exact cycle numbers travel in
    attrs — the wall placement shows *attribution*, the attrs carry
    ground truth.
    """
    if not tracer.enabled or parent is NULL_SPAN or not op_records:
        return
    end_s = parent.end_s if parent.end_s is not None else tracer.clock()
    wall = end_s - parent.start_s
    scale = wall / total_cycles if total_cycles > 0 else 0.0
    for record in op_records:
        tracer.add(
            f"unit.{record.sink.lower()}",
            parent.start_s + record.start_cycle * scale,
            parent.start_s + record.end_cycle * scale,
            parent=parent,
            kind=record.kind,
            group=record.group,
            start_cycle=record.start_cycle,
            end_cycle=record.end_cycle,
            cycles=record.end_cycle - record.start_cycle,
        )


@dataclass
class BundleResolution:
    """How a bundle lookup was satisfied, for the resolve span's attrs."""

    source: str  # "memory" | "store" | "compile"
    attrs: dict = field(default_factory=dict)


def classify_resolution(stats_before: dict, stats_after: dict) -> str:
    """memory/store/compile from a BundleCacheStats to_dict delta."""
    if stats_after["misses"] == stats_before["misses"]:
        return "memory"
    if stats_after["store_hits"] > stats_before["store_hits"]:
        return "store"
    return "compile"
