"""repro.obs — unified tracing + metrics spine.

Structured span tracing (wall-clock and virtual-clock, with
cross-process stitching), a mergeable metrics registry, shared latency
statistics, and exporters for JSONL / Chrome trace-event (Perfetto)
formats.  See the README "Observability" section for the span taxonomy
and capture workflow.
"""

from .envelope import SCHEMA_VERSION, bench_envelope
from .export import (
    build_trees,
    read_jsonl,
    read_trace,
    render_summary,
    render_tree,
    summarize,
    to_chrome_trace,
    write_jsonl,
    write_trace,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, log_bucket_bounds
from .stats import LatencySummary, percentile
from .trace import NULL_SPAN, NULL_TRACER, Span, Tracer, record_unit_spans

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LatencySummary",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "SCHEMA_VERSION",
    "Span",
    "Tracer",
    "bench_envelope",
    "build_trees",
    "log_bucket_bounds",
    "percentile",
    "read_jsonl",
    "read_trace",
    "record_unit_spans",
    "render_summary",
    "render_tree",
    "summarize",
    "to_chrome_trace",
    "write_jsonl",
    "write_trace",
]
