"""Span export: JSONL event logs, Chrome trace-event JSON, summaries.

Two on-disk formats, chosen by extension in :func:`write_trace`:

- ``*.jsonl`` — one span dict per line (the :meth:`Span.to_dict`
  shape).  Lossless, order-free, append-friendly; the format
  ``repro trace view/summarize`` reads back.
- ``*.json`` — Chrome trace-event JSON (``{"traceEvents": [...]}``),
  loadable in ``ui.perfetto.dev`` / ``chrome://tracing``.  Timestamps
  are rebased to the earliest span so Perfetto's timeline starts at 0;
  each span's ``process`` becomes the pid lane and its trace_id the
  tid lane, which groups one request's tree onto one track.

Tree reconstruction (:func:`build_trees`) is deliberately tolerant of
out-of-order streams: spans arrive as workers drain them, so children
routinely precede parents in the file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .stats import LatencySummary


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------


def write_jsonl(path, spans) -> int:
    """Write span dicts one-per-line; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(span, sort_keys=True) + "\n")
            count += 1
    return count


def read_jsonl(path) -> list[dict]:
    spans = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


# ----------------------------------------------------------------------
# Chrome trace-event / Perfetto
# ----------------------------------------------------------------------


def to_chrome_trace(spans, process_names: dict[int, str] | None = None) -> dict:
    """Span dicts → Chrome trace-event JSON object.

    Emits complete ("X") events with microsecond timestamps rebased to
    the earliest span start.  pid = recording process slot, tid = the
    span's trace_id (one request tree per track); parent/span ids and
    every attr ride in ``args`` so nothing is lost in the conversion.
    """
    spans = [s for s in spans if s.get("end_s") is not None]
    if not spans:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    base = min(s["start_s"] for s in spans)
    tids: dict[tuple[int, str], int] = {}
    events = []
    for span in spans:
        pid = span.get("process", 0)
        key = (pid, span.get("trace_id", ""))
        tid = tids.setdefault(key, len([k for k in tids if k[0] == pid]))
        args = {"trace_id": span.get("trace_id", ""),
                "span_id": span.get("span_id", ""),
                "parent_id": span.get("parent_id")}
        args.update(span.get("attrs", {}))
        events.append({
            "name": span["name"],
            "ph": "X",
            "ts": (span["start_s"] - base) * 1e6,
            "dur": max(0.0, (span["end_s"] - span["start_s"]) * 1e6),
            "pid": pid,
            "tid": tid,
            "cat": span.get("trace_id", "") or "span",
            "args": args,
        })
    names = process_names or {}
    pids = sorted({e["pid"] for e in events})
    meta = [{"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": names.get(pid, _default_process_name(pid))}}
            for pid in pids]
    # thread_name metadata labels each request-tree track with its trace_id
    meta += [{"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
              "args": {"name": trace_id or "untraced"}}
             for (pid, trace_id), tid in sorted(tids.items(),
                                                key=lambda kv: (kv[0][0], kv[1]))]
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def _default_process_name(pid: int) -> str:
    if pid == -1:
        return "plane"
    return f"worker-{pid}"


def write_trace(path, spans, process_names: dict[int, str] | None = None) -> int:
    """Write spans to ``path``; ``.jsonl`` → JSONL, anything else →
    Chrome trace-event JSON.  Returns the span count written."""
    path = str(path)
    spans = list(spans)
    if path.endswith(".jsonl"):
        return write_jsonl(path, spans)
    payload = to_chrome_trace(spans, process_names=process_names)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    return len(spans)


def read_trace(path) -> list[dict]:
    """Read spans back from either on-disk format."""
    path = str(path)
    if path.endswith(".jsonl"):
        return read_jsonl(path)
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    spans = []
    for event in payload.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args", {}))
        spans.append({
            "name": event["name"],
            "trace_id": args.pop("trace_id", ""),
            "span_id": args.pop("span_id", ""),
            "parent_id": args.pop("parent_id", None),
            "start_s": event["ts"] / 1e6,
            "end_s": (event["ts"] + event.get("dur", 0.0)) / 1e6,
            "process": event.get("pid", 0),
            "attrs": args,
        })
    return spans


# ----------------------------------------------------------------------
# Tree reconstruction + summaries
# ----------------------------------------------------------------------


@dataclass
class SpanNode:
    span: dict
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.span["name"]

    def walk(self, depth: int = 0):
        yield depth, self
        for child in sorted(self.children, key=lambda n: n.span["start_s"]):
            yield from child.walk(depth + 1)


@dataclass
class TraceTree:
    trace_id: str
    roots: list[SpanNode]
    orphans: list[dict]  # parent_id set but never seen — a stitching bug

    @property
    def span_count(self) -> int:
        return sum(1 for root in self.roots for _ in root.walk()) + len(self.orphans)


def build_trees(spans) -> list[TraceTree]:
    """Group spans by trace_id and link parents, order-independent.

    A span whose ``parent_id`` is missing from its trace lands in
    ``orphans`` — the cross-process acceptance gate asserts that list
    is empty for every request.
    """
    by_trace: dict[str, list[dict]] = {}
    for span in spans:
        by_trace.setdefault(span.get("trace_id", ""), []).append(span)
    trees = []
    for trace_id in sorted(by_trace):
        members = by_trace[trace_id]
        nodes = {s["span_id"]: SpanNode(s) for s in members}
        roots, orphans = [], []
        for span in members:
            parent_id = span.get("parent_id")
            if parent_id is None:
                roots.append(nodes[span["span_id"]])
            elif parent_id in nodes:
                nodes[parent_id].children.append(nodes[span["span_id"]])
            else:
                orphans.append(span)
        roots.sort(key=lambda n: n.span["start_s"])
        trees.append(TraceTree(trace_id=trace_id, roots=roots, orphans=orphans))
    return trees


def render_tree(tree: TraceTree) -> str:
    """Indentation view of one trace for ``repro trace view``."""
    lines = [f"trace {tree.trace_id or '(untraced)'}"]
    for root in tree.roots:
        for depth, node in root.walk():
            span = node.span
            dur_ms = (span["end_s"] - span["start_s"]) * 1e3
            extras = []
            if "cycles" in span.get("attrs", {}):
                extras.append(f"cycles={span['attrs']['cycles']}")
            if "source" in span.get("attrs", {}):
                extras.append(f"source={span['attrs']['source']}")
            suffix = f"  [{' '.join(extras)}]" if extras else ""
            lines.append(f"  {'  ' * depth}{span['name']:<24s} "
                         f"{dur_ms:9.3f} ms  p{span.get('process', 0)}{suffix}")
    for orphan in tree.orphans:
        lines.append(f"  ORPHAN {orphan['name']} "
                     f"(parent {orphan.get('parent_id')!r} not found)")
    return "\n".join(lines)


def summarize(spans) -> dict:
    """Per-span-name latency summary across a whole trace file."""
    by_name: dict[str, list[float]] = {}
    for span in spans:
        if span.get("end_s") is None:
            continue
        by_name.setdefault(span["name"], []).append(
            span["end_s"] - span["start_s"])
    return {name: LatencySummary.of(samples).to_dict()
            for name, samples in sorted(by_name.items())}


def render_summary(spans) -> str:
    trees = build_trees(spans)
    orphan_count = sum(len(t.orphans) for t in trees)
    lines = [f"{len(spans)} spans, {len(trees)} traces, {orphan_count} orphans",
             f"{'span':<26s} {'count':>6s} {'mean ms':>9s} "
             f"{'p50 ms':>9s} {'p99 ms':>9s} {'max ms':>9s}"]
    for name, stats in summarize(spans).items():
        lines.append(
            f"{name:<26s} {stats['count']:>6d} {stats['mean'] * 1e3:>9.3f} "
            f"{stats['p50'] * 1e3:>9.3f} {stats['p99'] * 1e3:>9.3f} "
            f"{stats['max'] * 1e3:>9.3f}")
    return "\n".join(lines)
