"""Shared latency statistics: nearest-rank percentiles and summaries.

The one implementation every layer reports through: the serve layer's
``ServiceMetrics``, the fleet simulation's ``ClusterMetrics`` and the
trace summarizer all import from here (``repro.serve.metrics`` and the
cluster modules re-export for backward compatibility).  Keeping a
single copy is what makes a "p99" comparable across layers — the
nearest-rank definition below is pinned by property tests against an
independent reference implementation (``tests/obs/test_stats.py``).
"""

from __future__ import annotations

from dataclasses import dataclass


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 for no samples."""
    if not samples:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError(f"percentile {q} out of range")
    ordered = sorted(samples)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil(n*q/100), >= 1
    return ordered[int(rank) - 1]


@dataclass
class LatencySummary:
    """p50/p99/mean/max over one series of samples."""

    count: int
    mean: float
    p50: float
    p99: float
    max: float

    @classmethod
    def of(cls, samples: list[float]) -> "LatencySummary":
        if not samples:
            return cls(count=0, mean=0.0, p50=0.0, p99=0.0, max=0.0)
        return cls(
            count=len(samples),
            mean=sum(samples) / len(samples),
            p50=percentile(samples, 50),
            p99=percentile(samples, 99),
            max=max(samples),
        )

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p99": self.p99,
            "max": self.max,
        }
