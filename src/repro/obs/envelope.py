"""Self-describing benchmark artifacts.

Every metrics JSON a benchmark script publishes (``BENCH_serving.json``,
the CI smoke artifacts) is wrapped in one envelope so a reader six
months later can tell *what* produced the numbers without spelunking
git history: a schema version, the benchmark's name, an ISO-8601 UTC
timestamp, and the run configuration (seeds, request counts, process
counts) that makes the run reproducible.

The results payload sits under ``"results"`` untouched, so consumers
that only care about the numbers read ``payload["results"]`` and ignore
the provenance.
"""

from __future__ import annotations

from datetime import datetime, timezone

#: Bumped when the envelope's own keys change shape (not when a
#: benchmark's results payload does — that is the benchmark's contract).
SCHEMA_VERSION = 1


def bench_envelope(benchmark: str, run_config: dict, results) -> dict:
    """Wrap a benchmark's results in the provenance envelope."""
    return {
        "schema_version": SCHEMA_VERSION,
        "benchmark": benchmark,
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "run_config": dict(run_config),
        "results": results,
    }
