"""Layer-to-hardware-op lowering.

Maps the pruned, fusion-planned layer graph onto NVDLA hardware ops:

=================  ====================================================
Convolution        ConvOp (conv pipeline + SDP); grouped convolutions
                   split per group, depthwise regrouped into
                   ``atomic_c``-channel block-diagonal ConvOps
InnerProduct       ConvOp with the kernel spanning the input cube
Pooling            PoolOp (PDP) with ceil-mode pads rebalanced
Eltwise (+ReLU)    SdpOp with a second memory operand
LRN                LrnOp (CDP); INT8 alpha is pre-scaled by the input
                   quantisation scale squared so CDP arithmetic stays
                   in the quantised domain
ReLU (standalone)  SdpOp
Concat             zero-copy (resolved by concat aliasing)
Softmax            CpuSoftmaxOp (host)
=================  ====================================================

Quantisation-scale resolution: blobs joined by scale-preserving ops
(pool, LRN, standalone ReLU) or scale-sharing constraints (eltwise
operands, concat branches) are unioned, and each group takes the
largest calibrated scale — the standard conservative rule, keeping
integer eltwise adds and zero-copy concats exact.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CompilerError
from repro.nn.graph import Network
from repro.nn.layers import (
    BatchNorm,
    Concat,
    Convolution,
    Dropout,
    Eltwise,
    EltwiseKind,
    InnerProduct,
    Input,
    Layer,
    Lrn,
    Pooling,
    PoolKind,
    ReLU,
    Scale,
    Softmax,
)
from repro.nn.quantize import CalibrationTable, quantize_weights, requant_constants
from repro.compiler.fusion import (
    ConcatAlias,
    FusionPlan,
    fold_batchnorm_scale,
    fused_output_blob,
    plan_concats,
    plan_fusion,
    prune_to_output,
)
from repro.compiler.ops import (
    ConvOp,
    CpuSoftmaxOp,
    EltwiseOpKind,
    LrnOp,
    PoolOp,
    Schedule,
    SdpOp,
    TensorRef,
)
from repro.nvdla.config import HardwareConfig, Precision

_ELTWISE_KIND = {
    EltwiseKind.SUM: EltwiseOpKind.ADD,
    EltwiseKind.PROD: EltwiseOpKind.MUL,
    EltwiseKind.MAX: EltwiseOpKind.MAX,
}


class _ScaleUnion:
    """Union-find over blob names for scale-sharing groups."""

    def __init__(self) -> None:
        self._parent: dict[str, str] = {}

    def find(self, blob: str) -> str:
        parent = self._parent.setdefault(blob, blob)
        if parent != blob:
            root = self.find(parent)
            self._parent[blob] = root
            return root
        return blob

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb


def resolve_scales(
    net: Network,
    layers: list[Layer],
    plan: FusionPlan,
    calibration: CalibrationTable | None,
    precision: Precision,
) -> dict[str, float]:
    """Final per-blob scales (all 1.0 for FP16)."""
    blobs = {top for layer in layers for top in layer.tops}
    if precision is Precision.FP16:
        return {blob: 1.0 for blob in blobs}
    if calibration is None:
        raise CompilerError("INT8 compilation requires a calibration table")

    union = _ScaleUnion()
    for layer in layers:
        if layer.name in plan.consumed:
            continue
        if isinstance(layer, Eltwise):
            out = fused_output_blob(layer, plan)
            union.union(layer.bottoms[0], layer.bottoms[1])
            union.union(layer.bottoms[0], layer.tops[0])
            union.union(layer.tops[0], out)
        elif isinstance(layer, Concat):
            for bottom in layer.bottoms:
                union.union(bottom, layer.tops[0])
        elif isinstance(layer, (Pooling, Lrn, Dropout)):
            union.union(layer.bottoms[0], layer.tops[0])
        elif isinstance(layer, ReLU) and layer.name not in plan.consumed:
            union.union(layer.bottoms[0], layer.tops[0])

    # Standalone ReLUs that graph fusion would have absorbed (sole
    # consumer of a conv/FC output — the ``fusion="off"`` ablation):
    # the pre-ReLU blob must not widen the group's scale, so the
    # quantised schedule matches the absorbed one bit for bit — the
    # extra negative range it would claim is zeroed by the ReLU anyway.
    producers = {layer.tops[0]: layer for layer in layers if layer.tops}
    consumer_count: dict[str, int] = {}
    for layer in layers:
        if layer.name in plan.consumed:
            continue
        for bottom in layer.bottoms:
            consumer_count[bottom] = consumer_count.get(bottom, 0) + 1
    def _effective_producer(blob: str) -> Layer | None:
        # BN/Scale folded into the conv leave their tops as aliases of
        # the conv's output (conv→BN→Scale→ReLU chains); walk back
        # through the consumed layers to the op that really writes.
        layer = producers.get(blob)
        while isinstance(layer, (BatchNorm, Scale)) and layer.name in plan.consumed:
            layer = producers.get(layer.bottoms[0])
        return layer

    deabsorbed_inputs = {
        layer.bottoms[0]
        for layer in layers
        if isinstance(layer, ReLU)
        and layer.name not in plan.consumed
        and consumer_count.get(layer.bottoms[0], 0) == 1
        and isinstance(
            _effective_producer(layer.bottoms[0]), (Convolution, InnerProduct)
        )
    }

    group_scale: dict[str, float] = {}
    for blob in blobs:
        if blob in deabsorbed_inputs:
            continue
        root = union.find(blob)
        scale = calibration.scales.get(blob)
        if scale is None:
            continue
        group_scale[root] = max(group_scale.get(root, 0.0), scale)
    resolved: dict[str, float] = {}
    for blob in blobs:
        root = union.find(blob)
        resolved[blob] = group_scale.get(root) or calibration.scale_for(blob)
    return resolved


def lower_network(
    net: Network,
    config: HardwareConfig,
    precision: Precision,
    calibration: CalibrationTable | None,
    fuse_eltwise: bool = True,
    absorb_relu: bool = True,
) -> Schedule:
    """Run pruning, fusion, scale resolution and op emission."""
    if not config.supports(precision):
        raise CompilerError(f"{config.name} does not support {precision.value}")
    net.validate()
    layers = prune_to_output(net)
    plan = plan_fusion(net, layers, absorb_relu=absorb_relu)
    concat_aliases = plan_concats(net, layers, plan)
    scales = resolve_scales(net, layers, plan, calibration, precision)
    atom = config.atom_channels(precision)
    builder = _Lowerer(net, config, precision, plan, concat_aliases, scales, atom, fuse_eltwise)
    return builder.build(layers)


class _Lowerer:
    def __init__(
        self,
        net: Network,
        config: HardwareConfig,
        precision: Precision,
        plan: FusionPlan,
        concat_aliases: dict[str, ConcatAlias],
        scales: dict[str, float],
        atom: int,
        fuse_eltwise: bool = True,
    ) -> None:
        self.net = net
        self.config = config
        self.precision = precision
        self.plan = plan
        self.concat_aliases = concat_aliases
        self.scales = scales
        self.atom = atom
        self.fuse_eltwise = fuse_eltwise
        self.refs: dict[str, TensorRef] = {}
        self.schedule = Schedule()

    # ------------------------------------------------------------------

    def ref_for(self, blob: str) -> TensorRef:
        blob = self.plan.resolve_blob(blob)
        if blob in self.refs:
            return self.refs[blob]
        shape = self.net.blob_shapes[blob]
        alias = self.concat_aliases.get(blob)
        if alias is not None:
            ref = TensorRef(
                blob=alias.parent_blob,
                shape=shape,
                precision=self.precision,
                scale=self.scales[blob],
                channel_offset=alias.channel_offset,
                parent_channels=alias.parent_channels,
            )
        else:
            ref = TensorRef(
                blob=blob, shape=shape, precision=self.precision, scale=self.scales[blob]
            )
        self.refs[blob] = ref
        return ref

    def channel_view(self, ref: TensorRef, offset: int, channels: int) -> TensorRef:
        """A channel-sliced view of an existing reference."""
        if offset % self.atom:
            raise CompilerError(
                f"channel slice at {offset} of {ref.blob!r} not aligned to "
                f"{self.atom}-channel atoms on {self.config.name}"
            )
        parent = ref.parent_channels if ref.parent_channels is not None else ref.shape[0]
        return TensorRef(
            blob=ref.blob,
            shape=(channels, ref.shape[1], ref.shape[2]),
            precision=ref.precision,
            scale=ref.scale,
            channel_offset=ref.channel_offset + offset,
            parent_channels=parent,
        )

    # ------------------------------------------------------------------

    def build(self, layers: list[Layer]) -> Schedule:
        for layer in layers:
            if layer.name in self.plan.consumed:
                continue
            if isinstance(layer, Input):
                self.schedule.input_tensor = self.ref_for(layer.tops[0])
            elif isinstance(layer, Convolution):
                self._lower_conv(layer)
            elif isinstance(layer, InnerProduct):
                self._lower_fc(layer)
            elif isinstance(layer, Pooling):
                self._lower_pool(layer)
            elif isinstance(layer, Eltwise):
                self._lower_eltwise(layer)
            elif isinstance(layer, Lrn):
                self._lower_lrn(layer)
            elif isinstance(layer, Concat):
                self.ref_for(layer.tops[0])  # materialise the parent blob
            elif isinstance(layer, ReLU):
                self._lower_relu(layer)
            elif isinstance(layer, Softmax):
                op = CpuSoftmaxOp(name=layer.name, input=self.ref_for(layer.bottoms[0]))
                self.schedule.ops.append(op)
                self.schedule.cpu_ops.append(op)
                self.refs[layer.tops[0]] = self.ref_for(layer.bottoms[0])
            else:
                raise CompilerError(
                    f"cannot lower standalone layer {layer.name!r} ({layer.type_name})"
                )
        output_blob = self.plan.resolve_blob(self.net.output_blob)
        # Softmax runs on the CPU, so the accelerator-side output is the
        # softmax's input tensor (already aliased in refs).
        self.schedule.output_tensor = self.refs.get(output_blob) or self.ref_for(output_blob)
        if self.schedule.input_tensor is None:
            raise CompilerError("network has no Input layer after pruning")
        return self.schedule

    # ------------------------------------------------------------------

    def _quantize_conv(
        self, op: ConvOp, in_scale: float, out_scale: float
    ) -> None:
        if self.precision is Precision.FP16:
            op.cvt_mult, op.cvt_shift = 1, 0
            return
        q = quantize_weights(op.weight, op.bias, in_scale)
        op.q_weight = q.weight
        op.q_bias = q.bias
        op.weight_scale = q.weight_scale
        op.cvt_mult, op.cvt_shift = requant_constants(in_scale, q.weight_scale, out_scale)

    def _emit_conv(
        self,
        name: str,
        input_ref: TensorRef,
        output_ref: TensorRef,
        weight: np.ndarray,
        bias: np.ndarray | None,
        stride: tuple[int, int],
        pad: tuple[int, int, int, int],
        relu: bool,
    ) -> None:
        op = ConvOp(
            name=name,
            input=input_ref,
            output=output_ref,
            weight=weight.astype(np.float32),
            bias=None if bias is None else bias.astype(np.float32),
            stride=stride,
            pad=pad,
            relu=relu,
            precision=self.precision,
            kernel_dims=tuple(weight.shape),  # type: ignore[arg-type]
        )
        self._quantize_conv(op, input_ref.scale, output_ref.scale)
        self.schedule.ops.append(op)

    def _lower_conv(self, layer: Convolution) -> None:
        params = self.net.params[layer.name]
        absorbed = self.plan.absorbed.get(layer.name, [])
        weight, bias, relu = fold_batchnorm_scale(
            self.net, params["weight"], params.get("bias"), absorbed
        )
        out_blob = fused_output_blob(layer, self.plan)
        input_ref = self.ref_for(layer.bottoms[0])
        output_ref = self.ref_for(out_blob)
        stride = (layer.stride, layer.stride)
        pad = (layer.pad, layer.pad, layer.pad, layer.pad)

        if layer.group == 1:
            self._emit_conv(layer.name, input_ref, output_ref, weight, bias, stride, pad, relu)
            return

        c_in = input_ref.shape[0]
        in_per = c_in // layer.group
        out_per = layer.num_output // layer.group
        if in_per == 1:
            self._lower_depthwise(layer, input_ref, output_ref, weight, bias, stride, pad, relu)
            return
        if in_per % self.atom or out_per % self.atom:
            raise CompilerError(
                f"conv {layer.name!r}: group slices of {in_per}/{out_per} channels do not "
                f"align to {self.atom}-channel atoms on {self.config.name}"
            )
        for g in range(layer.group):
            in_view = self.channel_view(input_ref, g * in_per, in_per)
            out_view = self.channel_view(output_ref, g * out_per, out_per)
            w_g = weight[g * out_per : (g + 1) * out_per]
            b_g = None if bias is None else bias[g * out_per : (g + 1) * out_per]
            self._emit_conv(
                f"{layer.name}_g{g}", in_view, out_view, w_g, b_g, stride, pad, relu
            )

    def _lower_depthwise(
        self,
        layer: Convolution,
        input_ref: TensorRef,
        output_ref: TensorRef,
        weight: np.ndarray,
        bias: np.ndarray | None,
        stride: tuple[int, int],
        pad: tuple[int, int, int, int],
        relu: bool,
    ) -> None:
        """Depthwise conv → block-diagonal convs of ``atomic_c`` channels.

        NVDLA has no native depthwise mode; the compiler regroups the
        per-channel kernels into dense blocks whose off-diagonal weights
        are zero.  The MAC array still burns full atoms on those zeros —
        the padding-efficiency cliff discussed in the MobileNet Table III
        row — but op count stays manageable (C / atomic_c ops).
        """
        block = self.config.atoms(self.precision)[0]
        if block % self.atom:
            raise CompilerError(
                f"{self.config.name}: atomic_c {block} not a multiple of the "
                f"{self.atom}-channel memory atom"
            )
        channels = input_ref.shape[0]
        _, r, s = weight.shape[1:]
        index = 0
        for start in range(0, channels, block):
            count = min(block, channels - start)
            w_block = np.zeros((count, count, r, s), dtype=np.float32)
            for i in range(count):
                w_block[i, i] = weight[start + i, 0]
            b_block = None if bias is None else bias[start : start + count]
            in_view = self.channel_view(input_ref, start, count)
            out_view = self.channel_view(output_ref, start, count)
            self._emit_conv(
                f"{layer.name}_b{index}", in_view, out_view, w_block, b_block, stride, pad, relu
            )
            index += 1

    def _lower_fc(self, layer: InnerProduct) -> None:
        """FC as a convolution whose kernel spans the input cube."""
        params = self.net.params[layer.name]
        absorbed = self.plan.absorbed.get(layer.name, [])
        weight2d, bias, relu = fold_batchnorm_scale(
            self.net, params["weight"], params.get("bias"), absorbed
        )
        input_ref = self.ref_for(layer.bottoms[0])
        c, h, w = input_ref.shape
        weight = weight2d.reshape(layer.num_output, c, h, w)
        out_blob = fused_output_blob(layer, self.plan)
        output_ref = self.ref_for(out_blob)
        self._emit_conv(
            layer.name, input_ref, output_ref, weight, bias, (1, 1), (0, 0, 0, 0), relu
        )

    def _lower_pool(self, layer: Pooling) -> None:
        input_ref = self.ref_for(layer.bottoms[0])
        output_ref = self.ref_for(layer.tops[0])
        kernel_h, kernel_w = layer.effective_kernel(input_ref.shape)
        stride = 1 if layer.global_pooling else layer.stride
        pad = 0 if layer.global_pooling else layer.pad
        # Caffe computes ceil-mode output dims; PDP's geometry is exact,
        # so rebalance by growing the right/bottom pads to cover the
        # last (partial) window.
        _, h, w = input_ref.shape
        _, out_h, out_w = output_ref.shape
        pad_bottom = max(pad, (out_h - 1) * stride + kernel_h - h - pad)
        pad_right = max(pad, (out_w - 1) * stride + kernel_w - w - pad)
        self.schedule.ops.append(
            PoolOp(
                name=layer.name,
                input=input_ref,
                output=output_ref,
                mode="max" if layer.kind is PoolKind.MAX else "avg",
                kernel=(kernel_h, kernel_w),
                stride=(stride, stride),
                pad=(pad, pad_bottom, pad, pad_right),
                precision=self.precision,
            )
        )

    def _lower_eltwise(self, layer: Eltwise) -> None:
        out_blob = fused_output_blob(layer, self.plan)
        relu = bool(self.plan.absorbed.get(layer.name))
        a = self.ref_for(layer.bottoms[0])
        b = self.ref_for(layer.bottoms[1])
        if self._fuse_eltwise_into_conv(layer, a, b, out_blob, relu):
            return
        self.schedule.ops.append(
            SdpOp(
                name=layer.name,
                input=a,
                output=self.ref_for(out_blob),
                relu=relu,
                eltwise=_ELTWISE_KIND[layer.kind],
                eltwise_input=b,
                precision=self.precision,
            )
        )

    def _fuse_eltwise_into_conv(
        self,
        layer: Eltwise,
        a: TensorRef,
        b: TensorRef,
        out_blob: str,
        relu: bool,
    ) -> bool:
        """Residual-add fusion: ride the producing conv's SDP pass.

        The fused operand is read by ERDMA while the conv result flies
        in from CACC, like the NVDLA compiler schedules ResNet
        shortcuts.  For INT8 the operand is rescaled into the
        accumulator domain by the ERDMA converter (its scale equals the
        fused output scale, which scale resolution pinned to the
        eltwise group), and the output converter is recomputed for the
        fused output blob.
        """
        if not self.fuse_eltwise:
            return False
        if not self.schedule.ops or not isinstance(self.schedule.ops[-1], ConvOp):
            return False
        conv = self.schedule.ops[-1]
        if conv.relu or conv.eltwise is not None:
            return False
        if conv.output is a:
            operand = b
        elif conv.output is b:
            operand = a
        else:
            return False
        # The conv's raw output must feed only this eltwise.
        raw_blob = conv.output.blob
        consumers = [
            consumer
            for consumer in self.net.layers
            if any(self.plan.resolve_blob(bb) == raw_blob for bb in consumer.bottoms)
        ]
        if len(consumers) != 1:
            return False
        output = self.ref_for(out_blob)
        if self.precision is Precision.INT8:
            acc_scale = conv.input.scale * conv.weight_scale
            conv.cvt_mult, conv.cvt_shift = requant_constants(
                conv.input.scale, conv.weight_scale, output.scale
            )
            conv.ew_cvt_mult, conv.ew_cvt_shift = requant_constants(
                operand.scale, 1.0, acc_scale
            )
        conv.eltwise = _ELTWISE_KIND[layer.kind]
        conv.eltwise_input = operand
        conv.relu = relu
        conv.output = output
        return True

    def _lower_relu(self, layer: ReLU) -> None:
        self.schedule.ops.append(
            SdpOp(
                name=layer.name,
                input=self.ref_for(layer.bottoms[0]),
                output=self.ref_for(layer.tops[0]),
                relu=True,
                precision=self.precision,
            )
        )

    def _lower_lrn(self, layer: Lrn) -> None:
        input_ref = self.ref_for(layer.bottoms[0])
        alpha = layer.alpha
        if self.precision is Precision.INT8:
            # CDP computes on quantised values q = x / s: the sum-of-
            # squares term needs alpha scaled by s^2 to be equivalent.
            alpha = layer.alpha * (input_ref.scale**2)
        self.schedule.ops.append(
            LrnOp(
                name=layer.name,
                input=input_ref,
                output=self.ref_for(layer.tops[0]),
                local_size=layer.local_size,
                alpha=alpha,
                beta=layer.beta,
                k=layer.k,
                precision=self.precision,
            )
        )
