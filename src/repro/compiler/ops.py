"""Compiler-level hardware-op IR.

These are the scheduled units of work the virtual platform's runtime
programs into NVDLA registers, one hardware layer each.  Tensors are
:class:`TensorRef` objects — views into allocation *blobs* (a concat
branch or a depthwise channel block is a channel-offset view into its
parent blob), with DRAM addresses filled in by the allocator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.errors import CompilerError
from repro.nvdla.config import Precision
from repro.nvdla.layout import ceil_div


class EltwiseOpKind(Enum):
    ADD = "add"
    MUL = "mul"
    MAX = "max"


@dataclass
class TensorRef:
    """A (possibly channel-sliced) view of an allocation blob."""

    blob: str
    shape: tuple[int, int, int]  # C, H, W of the view
    precision: Precision
    scale: float = 1.0
    channel_offset: int = 0
    parent_channels: int | None = None  # None = view covers the blob
    address: int | None = None  # absolute DRAM address (allocator)

    def __post_init__(self) -> None:
        if min(self.shape) <= 0:
            raise CompilerError(f"tensor {self.blob!r}: bad shape {self.shape}")
        if self.channel_offset < 0:
            raise CompilerError(f"tensor {self.blob!r}: negative channel offset")

    @property
    def channels(self) -> int:
        return self.shape[0]

    @property
    def elements(self) -> int:
        c, h, w = self.shape
        return c * h * w

    def packed_bytes(self, atom_channels: int) -> int:
        c, h, w = self.shape
        return ceil_div(c, atom_channels) * h * w * atom_channels * self.precision.itemsize

    def blob_packed_bytes(self, atom_channels: int) -> int:
        """Bytes of the *parent* allocation blob."""
        c = self.parent_channels if self.parent_channels is not None else self.shape[0]
        _, h, w = self.shape
        return ceil_div(c, atom_channels) * h * w * atom_channels * self.precision.itemsize

    def view_offset_bytes(self, atom_channels: int) -> int:
        """Byte offset of this view inside the parent blob."""
        if self.channel_offset % atom_channels:
            raise CompilerError(
                f"tensor {self.blob!r}: channel offset {self.channel_offset} not aligned "
                f"to {atom_channels}-channel atoms"
            )
        _, h, w = self.shape
        surfaces = self.channel_offset // atom_channels
        return surfaces * h * w * atom_channels * self.precision.itemsize

    def require_address(self) -> int:
        if self.address is None:
            raise CompilerError(f"tensor {self.blob!r} has no address (allocator not run?)")
        return self.address


@dataclass
class HwOp:
    """Base hardware op: a name and the tensors it touches."""

    name: str

    def inputs(self) -> list[TensorRef]:
        return []

    def outputs(self) -> list[TensorRef]:
        return []

    @property
    def kind(self) -> str:
        return type(self).__name__.removesuffix("Op").lower()


@dataclass
class ConvOp(HwOp):
    """Fused convolution + SDP hardware layer.

    Covers plain/grouped/depthwise convolution blocks and FC layers
    (kernel spanning the whole input).  BatchNorm/Scale are already
    folded into ``weight``/``bias``; ``relu`` and an optional fused
    eltwise ride the SDP stage.
    """

    input: TensorRef = None  # type: ignore[assignment]
    output: TensorRef = None  # type: ignore[assignment]
    weight: np.ndarray = None  # type: ignore[assignment]  # KCRS, float32 pre-quant
    bias: np.ndarray | None = None  # float32 pre-quant
    stride: tuple[int, int] = (1, 1)  # (y, x)
    pad: tuple[int, int, int, int] = (0, 0, 0, 0)  # top, bottom, left, right
    relu: bool = False
    eltwise: EltwiseOpKind | None = None
    eltwise_input: TensorRef | None = None
    precision: Precision = Precision.INT8
    # Quantised artefacts (filled by the quantisation step for INT8):
    q_weight: np.ndarray | None = None
    q_bias: np.ndarray | None = None
    weight_scale: float = 1.0
    cvt_mult: int = 1
    cvt_shift: int = 0
    # ERDMA operand converter for a fused residual add (INT8).
    ew_cvt_mult: int = 1
    ew_cvt_shift: int = 0
    # Weight-blob placement (filled by the weight packer):
    weight_offset: int | None = None
    weight_bytes: int | None = None
    bias_offset: int | None = None
    # Kernel dims survive serialisation after arrays are stripped:
    kernel_dims: tuple[int, int, int, int] | None = None
    # Fused pooling epilogue (descriptor-level fusion): when
    # ``pool_mode`` is set, PDP streams the SDP result on-chip and
    # ``output`` is the *pool* output; the conv/SDP stage produces
    # ``conv_out_shape`` without touching DRAM.
    pool_mode: str | None = None  # 'max' | 'avg'
    pool_kernel: tuple[int, int] = (1, 1)  # (h, w)
    pool_stride: tuple[int, int] = (1, 1)  # (y, x)
    pool_pad: tuple[int, int, int, int] = (0, 0, 0, 0)  # top, bottom, left, right
    conv_out_shape: tuple[int, int, int] | None = None  # C, H, W before pooling

    def inputs(self) -> list[TensorRef]:
        refs = [self.input]
        if self.eltwise_input is not None:
            refs.append(self.eltwise_input)
        return refs

    def outputs(self) -> list[TensorRef]:
        return [self.output]

    @property
    def kernel_shape(self) -> tuple[int, int, int, int]:
        if self.kernel_dims is not None:
            return self.kernel_dims
        return tuple(self.weight.shape)  # type: ignore[return-value]

    @property
    def has_pool_epilogue(self) -> bool:
        return self.pool_mode is not None

    @property
    def sdp_out_shape(self) -> tuple[int, int, int]:
        """Shape the conv/SDP stage produces (pre-pooling when fused)."""
        if self.conv_out_shape is not None:
            return self.conv_out_shape
        return self.output.shape

    @property
    def macs(self) -> int:
        k, c, r, s = self.kernel_shape
        _, out_h, out_w = self.sdp_out_shape
        return k * c * r * s * out_h * out_w


@dataclass
class SdpOp(HwOp):
    """Standalone SDP layer: eltwise / relu / rescale, memory-sourced."""

    input: TensorRef = None  # type: ignore[assignment]
    output: TensorRef = None  # type: ignore[assignment]
    relu: bool = False
    eltwise: EltwiseOpKind | None = None
    eltwise_input: TensorRef | None = None
    precision: Precision = Precision.INT8
    cvt_mult: int = 1
    cvt_shift: int = 0

    def inputs(self) -> list[TensorRef]:
        refs = [self.input]
        if self.eltwise_input is not None:
            refs.append(self.eltwise_input)
        return refs

    def outputs(self) -> list[TensorRef]:
        return [self.output]


@dataclass
class PoolOp(HwOp):
    """PDP pooling layer."""

    input: TensorRef = None  # type: ignore[assignment]
    output: TensorRef = None  # type: ignore[assignment]
    mode: str = "max"  # 'max' | 'avg'
    kernel: tuple[int, int] = (2, 2)  # (h, w)
    stride: tuple[int, int] = (2, 2)  # (y, x)
    pad: tuple[int, int, int, int] = (0, 0, 0, 0)  # top, bottom, left, right
    precision: Precision = Precision.INT8

    def inputs(self) -> list[TensorRef]:
        return [self.input]

    def outputs(self) -> list[TensorRef]:
        return [self.output]


@dataclass
class LrnOp(HwOp):
    """CDP local response normalisation layer."""

    input: TensorRef = None  # type: ignore[assignment]
    output: TensorRef = None  # type: ignore[assignment]
    local_size: int = 5
    alpha: float = 1e-4  # already scale-adjusted for INT8 by lowering
    beta: float = 0.75
    k: float = 1.0
    precision: Precision = Precision.INT8

    def inputs(self) -> list[TensorRef]:
        return [self.input]

    def outputs(self) -> list[TensorRef]:
        return [self.output]


@dataclass
class CpuSoftmaxOp(HwOp):
    """Softmax executed on the host core (NVDLA has no exp unit)."""

    input: TensorRef = None  # type: ignore[assignment]

    def inputs(self) -> list[TensorRef]:
        return [self.input]


@dataclass
class Schedule:
    """Ordered hardware ops plus host ops and tensor bookkeeping."""

    ops: list[HwOp] = field(default_factory=list)
    input_tensor: TensorRef | None = None
    output_tensor: TensorRef | None = None
    cpu_ops: list[CpuSoftmaxOp] = field(default_factory=list)

    def hw_ops(self) -> list[HwOp]:
        return [op for op in self.ops if not isinstance(op, CpuSoftmaxOp)]
