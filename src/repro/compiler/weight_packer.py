"""Weight-blob packing.

Lays every convolution's packed weights and bias vector into one
contiguous image — the "weight file" of the paper's flow, preloaded
into DRAM by the Zynq PS before inference.  Offsets are recorded on
the ops; absolute addresses are ``weight_base + offset`` once the
allocator places the region.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CompilerError
from repro.compiler.ops import ConvOp, Schedule
from repro.nvdla.config import HardwareConfig, Precision
from repro.nvdla.layout import pack_weights


def _aligned(offset: int, align: int) -> int:
    return (offset + align - 1) // align * align


def pack_schedule_weights(
    schedule: Schedule,
    config: HardwareConfig,
    align: int = 64,
) -> bytes:
    """Pack all weights/biases; fills the ops' offset fields.

    Returns the weight blob.  INT8 ops must already be quantised.
    """
    chunks: list[bytes] = []
    offset = 0

    def push(data: bytes) -> int:
        nonlocal offset
        start = _aligned(offset, align)
        if start > offset:
            chunks.append(b"\x00" * (start - offset))
        chunks.append(data)
        offset = start + len(data)
        return start

    for op in schedule.ops:
        if not isinstance(op, ConvOp):
            continue
        atomic_c, atomic_k = config.atoms(op.precision)
        if op.precision is Precision.INT8:
            if op.q_weight is None:
                raise CompilerError(f"conv {op.name!r} was not quantised before packing")
            weight_blob = pack_weights(op.q_weight, atomic_c, atomic_k, op.precision)
            bias_blob = None if op.q_bias is None else op.q_bias.astype(np.int32).tobytes()
        else:
            weight_blob = pack_weights(
                op.weight.astype(np.float16), atomic_c, atomic_k, op.precision
            )
            bias_blob = None if op.bias is None else op.bias.astype(np.float16).tobytes()
        op.weight_offset = push(weight_blob)
        op.weight_bytes = len(weight_blob)
        op.bias_offset = None if bias_blob is None else push(bias_blob)
    return b"".join(chunks)
