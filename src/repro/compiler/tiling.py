"""CBUF feasibility analysis.

For every convolution op the compiler records how the layer maps onto
the convolution buffer:

- **kernel splits** — packed weights beyond the weight-bank partition
  force the kernel to be split along K; each split re-streams the
  input feature map (extra DBB traffic the timing model charges),
- **data-band pressure** — the sliding input band (kernel_r rows ×
  full width × all channels) versus the data-bank partition; overflow
  means CDMA re-fetches input rows.

Neither condition is fatal (hardware degrades instead of failing), so
this pass produces a report the benchmarks and DESIGN ablations use,
and it feeds the same numbers the timing model derives independently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.ops import ConvOp, HwOp, Schedule
from repro.nvdla.cbuf import Cbuf
from repro.nvdla.config import HardwareConfig
from repro.nvdla.layout import ceil_div, weight_size_bytes


@dataclass(frozen=True)
class ConvTiling:
    """How one convolution maps onto the CBUF."""

    op_name: str
    weight_bytes: int
    weight_banks: int
    data_banks: int
    kernel_splits: int
    band_bytes: int
    band_refetch: int

    @property
    def clean(self) -> bool:
        """True when the layer runs in one pass with no re-fetching."""
        return self.kernel_splits == 1 and self.band_refetch == 1


def analyze_conv(op: ConvOp, config: HardwareConfig) -> ConvTiling:
    """Compute the CBUF mapping of one convolution op."""
    cbuf = Cbuf(config)
    atomic_c, atomic_k = config.atoms(op.precision)
    w_bytes = weight_size_bytes(op.kernel_shape, atomic_c, atomic_k, op.precision)
    alloc = cbuf.default_split(w_bytes)
    splits = cbuf.kernel_splits(w_bytes, alloc.weight_banks)

    _, c, r, _ = op.kernel_shape
    _, _, in_w = op.input.shape
    atom = config.atom_channels(op.precision)
    band_bytes = ceil_div(c, atom) * atom * r * in_w * op.precision.itemsize
    band_refetch = max(1, ceil_div(band_bytes, alloc.data_bytes))
    band_refetch = min(band_refetch, r)  # worst case: re-read per kernel row

    return ConvTiling(
        op_name=op.name,
        weight_bytes=w_bytes,
        weight_banks=alloc.weight_banks,
        data_banks=alloc.data_banks,
        kernel_splits=splits,
        band_bytes=band_bytes,
        band_refetch=band_refetch,
    )


def analyze_schedule(schedule: Schedule, config: HardwareConfig) -> dict[str, ConvTiling]:
    """Tiling report for every convolution in a schedule."""
    report: dict[str, ConvTiling] = {}
    for op in schedule.ops:
        if isinstance(op, ConvOp):
            report[op.name] = analyze_conv(op, config)
    return report


def summarize(report: dict[str, ConvTiling]) -> dict:
    """Aggregate statistics for logs and benchmarks."""
    if not report:
        return {"convs": 0, "split_layers": 0, "max_splits": 0, "refetch_layers": 0}
    return {
        "convs": len(report),
        "split_layers": sum(1 for t in report.values() if t.kernel_splits > 1),
        "max_splits": max(t.kernel_splits for t in report.values()),
        "refetch_layers": sum(1 for t in report.values() if t.band_refetch > 1),
    }


def hw_op_count(ops: list[HwOp]) -> int:
    """Accelerator-side op count (excludes host CPU ops)."""
    from repro.compiler.ops import CpuSoftmaxOp

    return sum(1 for op in ops if not isinstance(op, CpuSoftmaxOp))
