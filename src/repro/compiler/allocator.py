"""DRAM address assignment with liveness-based buffer reuse.

Memory map inside the SoC's DRAM window (absolute bus addresses; the
decoder places DRAM at ``0x100000``)::

    base ──► weight blob (the preloaded "weight file")
             input tensor (the preloaded image)
             activation arena (buffers reused by liveness)

Activation blobs are freed after their last consuming op and recycled
best-fit, which keeps ResNet-50's arena tens of megabytes instead of
the sum of all 120+ intermediate tensors.  Concat branches and
depthwise channel blocks are views into their parent blob and never
allocate storage of their own.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CompilerError
from repro.compiler.ops import Schedule, TensorRef
from repro.nvdla.config import HardwareConfig, Precision


@dataclass(frozen=True)
class Region:
    name: str
    address: int
    size: int

    @property
    def end(self) -> int:
        return self.address + self.size


@dataclass
class MemoryMap:
    """The allocation result: named regions plus per-blob addresses."""

    base: int
    weights: Region
    input: Region
    activations: Region
    blob_addresses: dict[str, int] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return self.activations.end - self.base

    def describe(self) -> str:
        lines = [f"memory map @ 0x{self.base:08x}:"]
        for region in (self.weights, self.input, self.activations):
            lines.append(
                f"  {region.name:<12} 0x{region.address:08x} .. 0x{region.end:08x} "
                f"({region.size / 1024:.1f} KiB)"
            )
        return "\n".join(lines)


def _align(value: int, align: int) -> int:
    return (value + align - 1) // align * align


class _Arena:
    """Bump allocator with a best-fit free list."""

    def __init__(self, base: int, align: int) -> None:
        self.base = base
        self.align = align
        self.top = base
        self._free: list[tuple[int, int]] = []  # (size, address)

    def allocate(self, size: int) -> int:
        size = _align(size, self.align)
        best = None
        for index, (free_size, address) in enumerate(self._free):
            if free_size >= size and (best is None or free_size < self._free[best][0]):
                best = index
        if best is not None:
            free_size, address = self._free.pop(best)
            if free_size > size:
                self._free.append((free_size - size, address + size))
            return address
        address = self.top
        self.top += size
        return address

    def release(self, address: int, size: int) -> None:
        self._free.append((_align(size, self.align), address))


def allocate_memory(
    schedule: Schedule,
    config: HardwareConfig,
    weight_blob_size: int,
    base: int,
    dram_size: int,
    align: int = 256,
) -> MemoryMap:
    """Assign addresses to every tensor reference in the schedule."""
    atom_by_precision = {p: config.atom_channels(p) for p in Precision}

    def blob_size(ref: TensorRef) -> int:
        return ref.blob_packed_bytes(atom_by_precision[ref.precision])

    # Gather all refs per blob and compute blob sizes + liveness.
    refs_by_blob: dict[str, list[TensorRef]] = {}
    first_def: dict[str, int] = {}
    last_use: dict[str, int] = {}
    assert schedule.input_tensor is not None and schedule.output_tensor is not None

    def note(ref: TensorRef, index: int, is_def: bool) -> None:
        refs_by_blob.setdefault(ref.blob, []).append(ref)
        if is_def:
            first_def.setdefault(ref.blob, index)
        last_use[ref.blob] = max(last_use.get(ref.blob, index), index)

    note(schedule.input_tensor, -1, True)
    for index, op in enumerate(schedule.ops):
        for ref in op.inputs():
            note(ref, index, False)
        for ref in op.outputs():
            note(ref, index, True)
    # The network output must survive until read back by the host.
    last_use[schedule.output_tensor.blob] = len(schedule.ops) + 1

    sizes = {
        blob: max(blob_size(ref) for ref in refs)
        for blob, refs in refs_by_blob.items()
    }

    # The first 4 KiB of the DRAM window are reserved as the bare-metal
    # status page (result/error words written by the generated program).
    weight_region = Region("weights", _align(base + 0x1000, 4096), _align(weight_blob_size, 4096))
    input_blob = schedule.input_tensor.blob
    input_region = Region(
        "input", weight_region.end, _align(sizes[input_blob], align)
    )
    arena = _Arena(input_region.end, align)
    addresses: dict[str, int] = {input_blob: input_region.address}

    # Frees scheduled after the op that last uses each blob.
    frees_at: dict[int, list[str]] = {}
    for blob, last in last_use.items():
        if blob != input_blob:
            frees_at.setdefault(last, []).append(blob)

    for index, op in enumerate(schedule.ops):
        for ref in op.outputs():
            if ref.blob not in addresses:
                addresses[ref.blob] = arena.allocate(sizes[ref.blob])
        for blob in frees_at.get(index, []):
            if blob in addresses and blob != schedule.output_tensor.blob:
                arena.release(addresses[blob], sizes[blob])

    activation_region = Region(
        "activations", input_region.end, max(0, arena.top - input_region.end)
    )
    if activation_region.end > base + dram_size:
        raise CompilerError(
            f"allocation exceeds DRAM: needs {activation_region.end - base} bytes, "
            f"window is {dram_size}"
        )

    # Resolve every reference's absolute address.
    for blob, refs in refs_by_blob.items():
        blob_address = addresses.get(blob)
        if blob_address is None:
            raise CompilerError(f"blob {blob!r} never produced (dangling reference)")
        for ref in refs:
            atom = atom_by_precision[ref.precision]
            ref.address = blob_address + ref.view_offset_bytes(atom)

    return MemoryMap(
        base=base,
        weights=weight_region,
        input=input_region,
        activations=activation_region,
        blob_addresses=addresses,
    )
