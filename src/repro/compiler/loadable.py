"""The loadable: NVDLA's compiled-network container.

Holds the scheduled hardware ops (addresses resolved), the packed
weight blob, tensor metadata and the memory map.  Serialises to a
single binary: a JSON header (ops, tensors, regions) followed by the
raw weight blob — the moral equivalent of the NVDLA flatbuffer
loadable, readable without any schema tooling.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import LoadableError
from repro.compiler.allocator import MemoryMap, Region
from repro.compiler.ops import (
    ConvOp,
    CpuSoftmaxOp,
    EltwiseOpKind,
    HwOp,
    LrnOp,
    PoolOp,
    Schedule,
    SdpOp,
    TensorRef,
)
from repro.nvdla.config import Precision

_MAGIC = b"RPLD"
_VERSION = 1


@dataclass
class Loadable:
    """A compiled network ready for the VP runtime or deployment."""

    network: str
    config: str
    precision: Precision
    schedule: Schedule
    weight_blob: bytes
    memory_map: MemoryMap
    tiling_summary: dict = field(default_factory=dict)

    @property
    def input_tensor(self) -> TensorRef:
        assert self.schedule.input_tensor is not None
        return self.schedule.input_tensor

    @property
    def output_tensor(self) -> TensorRef:
        assert self.schedule.output_tensor is not None
        return self.schedule.output_tensor

    @property
    def weight_base(self) -> int:
        return self.memory_map.weights.address

    def hw_op_count(self) -> int:
        return sum(1 for op in self.schedule.ops if not isinstance(op, CpuSoftmaxOp))

    def describe(self) -> str:
        lines = [
            f"loadable: {self.network} on {self.config} ({self.precision.value})",
            f"  hw ops: {self.hw_op_count()}  host ops: {len(self.schedule.cpu_ops)}",
            f"  weight blob: {len(self.weight_blob) / 1024:.1f} KiB",
            self.memory_map.describe(),
        ]
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Serialisation.
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        header = json.dumps(self._header()).encode()
        return (
            _MAGIC
            + _VERSION.to_bytes(2, "little")
            + len(header).to_bytes(4, "little")
            + header
            + self.weight_blob
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Loadable":
        if blob[:4] != _MAGIC:
            raise LoadableError("not a loadable (bad magic)")
        version = int.from_bytes(blob[4:6], "little")
        if version != _VERSION:
            raise LoadableError(f"unsupported loadable version {version}")
        header_len = int.from_bytes(blob[6:10], "little")
        header = json.loads(blob[10 : 10 + header_len].decode())
        weights = blob[10 + header_len :]
        return cls._from_header(header, weights)

    def _header(self) -> dict:
        return {
            "network": self.network,
            "config": self.config,
            "precision": self.precision.value,
            "tiling": self.tiling_summary,
            "memory_map": {
                "base": self.memory_map.base,
                "regions": [
                    [r.name, r.address, r.size]
                    for r in (
                        self.memory_map.weights,
                        self.memory_map.input,
                        self.memory_map.activations,
                    )
                ],
                "blobs": self.memory_map.blob_addresses,
            },
            "input": _tensor_dict(self.input_tensor),
            "output": _tensor_dict(self.output_tensor),
            "ops": [_op_dict(op) for op in self.schedule.ops],
        }

    @classmethod
    def _from_header(cls, header: dict, weights: bytes) -> "Loadable":
        regions = {
            name: Region(name, address, size)
            for name, address, size in header["memory_map"]["regions"]
        }
        memory_map = MemoryMap(
            base=header["memory_map"]["base"],
            weights=regions["weights"],
            input=regions["input"],
            activations=regions["activations"],
            blob_addresses=dict(header["memory_map"]["blobs"]),
        )
        schedule = Schedule()
        schedule.input_tensor = _tensor_from(header["input"])
        schedule.output_tensor = _tensor_from(header["output"])
        for op_data in header["ops"]:
            op = _op_from(op_data)
            schedule.ops.append(op)
            if isinstance(op, CpuSoftmaxOp):
                schedule.cpu_ops.append(op)
        return cls(
            network=header["network"],
            config=header["config"],
            precision=Precision(header["precision"]),
            schedule=schedule,
            weight_blob=weights,
            memory_map=memory_map,
            tiling_summary=header.get("tiling", {}),
        )


def _tensor_dict(ref: TensorRef) -> dict:
    return {
        "blob": ref.blob,
        "shape": list(ref.shape),
        "precision": ref.precision.value,
        "scale": ref.scale,
        "channel_offset": ref.channel_offset,
        "parent_channels": ref.parent_channels,
        "address": ref.address,
    }


def _tensor_from(data: dict) -> TensorRef:
    return TensorRef(
        blob=data["blob"],
        shape=tuple(data["shape"]),
        precision=Precision(data["precision"]),
        scale=data["scale"],
        channel_offset=data["channel_offset"],
        parent_channels=data["parent_channels"],
        address=data["address"],
    )


def _op_dict(op: HwOp) -> dict:
    base = {"kind": op.kind, "name": op.name}
    if isinstance(op, ConvOp):
        base.update(
            input=_tensor_dict(op.input),
            output=_tensor_dict(op.output),
            kernel=list(op.kernel_shape),
            stride=list(op.stride),
            pad=list(op.pad),
            relu=op.relu,
            eltwise=None if op.eltwise is None else op.eltwise.value,
            eltwise_input=(
                None if op.eltwise_input is None else _tensor_dict(op.eltwise_input)
            ),
            precision=op.precision.value,
            cvt_mult=op.cvt_mult,
            cvt_shift=op.cvt_shift,
            ew_cvt_mult=op.ew_cvt_mult,
            ew_cvt_shift=op.ew_cvt_shift,
            weight_scale=op.weight_scale,
            weight_offset=op.weight_offset,
            weight_bytes=op.weight_bytes,
            bias_offset=op.bias_offset,
            pool_mode=op.pool_mode,
            pool_kernel=list(op.pool_kernel),
            pool_stride=list(op.pool_stride),
            pool_pad=list(op.pool_pad),
            conv_out_shape=(
                None if op.conv_out_shape is None else list(op.conv_out_shape)
            ),
        )
    elif isinstance(op, SdpOp):
        base.update(
            input=_tensor_dict(op.input),
            output=_tensor_dict(op.output),
            relu=op.relu,
            eltwise=None if op.eltwise is None else op.eltwise.value,
            eltwise_input=None if op.eltwise_input is None else _tensor_dict(op.eltwise_input),
            precision=op.precision.value,
            cvt_mult=op.cvt_mult,
            cvt_shift=op.cvt_shift,
        )
    elif isinstance(op, PoolOp):
        base.update(
            input=_tensor_dict(op.input),
            output=_tensor_dict(op.output),
            mode=op.mode,
            kernel=list(op.kernel),
            stride=list(op.stride),
            pad=list(op.pad),
            precision=op.precision.value,
        )
    elif isinstance(op, LrnOp):
        base.update(
            input=_tensor_dict(op.input),
            output=_tensor_dict(op.output),
            local_size=op.local_size,
            alpha=op.alpha,
            beta=op.beta,
            k=op.k,
            precision=op.precision.value,
        )
    elif isinstance(op, CpuSoftmaxOp):
        base.update(input=_tensor_dict(op.input))
    else:  # pragma: no cover
        raise LoadableError(f"cannot serialise op kind {op.kind!r}")
    return base


def _op_from(data: dict) -> HwOp:
    kind = data["kind"]
    if kind == "conv":
        eltwise = data.get("eltwise")
        return ConvOp(
            name=data["name"],
            input=_tensor_from(data["input"]),
            output=_tensor_from(data["output"]),
            weight=None,  # type: ignore[arg-type]
            kernel_dims=tuple(data["kernel"]),
            stride=tuple(data["stride"]),
            pad=tuple(data["pad"]),
            relu=data["relu"],
            eltwise=None if eltwise is None else EltwiseOpKind(eltwise),
            eltwise_input=(
                None
                if data.get("eltwise_input") is None
                else _tensor_from(data["eltwise_input"])
            ),
            precision=Precision(data["precision"]),
            cvt_mult=data["cvt_mult"],
            cvt_shift=data["cvt_shift"],
            ew_cvt_mult=data.get("ew_cvt_mult", 1),
            ew_cvt_shift=data.get("ew_cvt_shift", 0),
            weight_scale=data.get("weight_scale", 1.0),
            weight_offset=data["weight_offset"],
            weight_bytes=data["weight_bytes"],
            bias_offset=data["bias_offset"],
            pool_mode=data.get("pool_mode"),
            pool_kernel=tuple(data.get("pool_kernel", (1, 1))),
            pool_stride=tuple(data.get("pool_stride", (1, 1))),
            pool_pad=tuple(data.get("pool_pad", (0, 0, 0, 0))),
            conv_out_shape=(
                None
                if data.get("conv_out_shape") is None
                else tuple(data["conv_out_shape"])
            ),
        )
    if kind == "sdp":
        eltwise = data["eltwise"]
        return SdpOp(
            name=data["name"],
            input=_tensor_from(data["input"]),
            output=_tensor_from(data["output"]),
            relu=data["relu"],
            eltwise=None if eltwise is None else EltwiseOpKind(eltwise),
            eltwise_input=(
                None if data["eltwise_input"] is None else _tensor_from(data["eltwise_input"])
            ),
            precision=Precision(data["precision"]),
            cvt_mult=data["cvt_mult"],
            cvt_shift=data["cvt_shift"],
        )
    if kind == "pool":
        return PoolOp(
            name=data["name"],
            input=_tensor_from(data["input"]),
            output=_tensor_from(data["output"]),
            mode=data["mode"],
            kernel=tuple(data["kernel"]),
            stride=tuple(data["stride"]),
            pad=tuple(data["pad"]),
            precision=Precision(data["precision"]),
        )
    if kind == "lrn":
        return LrnOp(
            name=data["name"],
            input=_tensor_from(data["input"]),
            output=_tensor_from(data["output"]),
            local_size=data["local_size"],
            alpha=data["alpha"],
            beta=data["beta"],
            k=data["k"],
            precision=Precision(data["precision"]),
        )
    if kind == "cpusoftmax":
        return CpuSoftmaxOp(name=data["name"], input=_tensor_from(data["input"]))
    raise LoadableError(f"unknown op kind {kind!r} in loadable")
