"""The compiler driver: network → loadable.

Equivalent to invoking the NVDLA compiler in the paper's Fig. 1 flow.
For INT8 a calibration table is required; one is generated on the fly
(the paper's future-work item) when not supplied.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CompilerError
from repro.compiler.allocator import allocate_memory
from repro.compiler.fusion import fuse_descriptor_chains
from repro.compiler.loadable import Loadable
from repro.compiler.lowering import lower_network
from repro.compiler.tiling import analyze_schedule, summarize
from repro.compiler.weight_packer import pack_schedule_weights
from repro.nn.graph import Network
from repro.nn.quantize import CalibrationTable, calibrate_network
from repro.nvdla.config import HardwareConfig, Precision


@dataclass(frozen=True)
class CompileOptions:
    """Knobs of one compilation.

    ``memory_base`` is the absolute bus address of the DRAM window —
    ``0x100000`` in the paper's SoC decoder map — so that VP traces
    replay unmodified on the SoC.
    """

    precision: Precision = Precision.INT8
    memory_base: int = 0x100000
    dram_size: int = 512 * 1024 * 1024
    calibration: CalibrationTable | None = None
    calibration_samples: int = 2
    weight_align: int = 64
    #: Fuse residual adds into the producing conv's SDP pass (the real
    #: compiler's schedule); disable for the fusion ablation.
    fuse_eltwise: bool = True
    #: Fusion tier: ``"descriptor"`` additionally collapses conv →
    #: SDP/pool pairs into single pipelined chains (PDP streams the
    #: SDP result on-chip, no intermediate DRAM surface);
    #: ``"graph"`` keeps only the graph-IR absorption (BN/Scale/ReLU
    #: folding plus ``fuse_eltwise``); ``"off"`` emits one descriptor
    #: chain per network layer — standalone ReLU SDP ops, standalone
    #: eltwise ops, every intermediate through DRAM.  BN/Scale folding
    #: always happens — a standalone BatchNorm has no hardware
    #: lowering.
    fusion: str = "descriptor"


FUSION_MODES = ("off", "graph", "descriptor")


def compile_network(
    net: Network,
    config: HardwareConfig,
    options: CompileOptions | None = None,
    verify: bool = False,
) -> Loadable:
    """Compile ``net`` for ``config``; returns a deployable loadable.

    ``verify=True`` runs the :mod:`repro.analyze` static checker over
    the produced loadable and raises
    :class:`~repro.errors.StaticAnalysisError` on any ERROR finding.
    It is a keyword, not a :class:`CompileOptions` field, so verified
    and unverified compiles share cache keys and fingerprints.
    """
    options = options or CompileOptions()
    precision = options.precision
    if options.fusion not in FUSION_MODES:
        raise CompilerError(
            f"unknown fusion mode {options.fusion!r} (choose from {FUSION_MODES})"
        )
    if not config.supports(precision):
        raise CompilerError(
            f"{config.name} does not support {precision.value} "
            f"(supported: {[p.value for p in config.precisions]})"
        )
    calibration = options.calibration
    if precision is Precision.INT8 and calibration is None:
        calibration = calibrate_network(net, samples=options.calibration_samples)

    schedule = lower_network(
        net,
        config,
        precision,
        calibration,
        fuse_eltwise=options.fuse_eltwise and options.fusion != "off",
        absorb_relu=options.fusion != "off",
    )
    if options.fusion == "descriptor":
        fuse_descriptor_chains(schedule, fuse_eltwise=options.fuse_eltwise)
    tiling = analyze_schedule(schedule, config)
    weight_blob = pack_schedule_weights(schedule, config, align=options.weight_align)
    memory_map = allocate_memory(
        schedule,
        config,
        weight_blob_size=len(weight_blob),
        base=options.memory_base,
        dram_size=options.dram_size,
    )
    loadable = Loadable(
        network=net.name,
        config=config.name,
        precision=precision,
        schedule=schedule,
        weight_blob=weight_blob,
        memory_map=memory_map,
        tiling_summary=summarize(tiling),
    )
    if verify:
        # Imported here: repro.analyze pulls in repro.nvdla, which
        # cannot be resolved while this package is mid-import.
        from repro.analyze import analyze_loadable

        analyze_loadable(loadable, config).raise_for_errors()
    return loadable
