"""The NVDLA compiler substrate.

Turns a :class:`~repro.nn.graph.Network` (+ optional INT8 calibration
table) into a :class:`~repro.compiler.loadable.Loadable`: a schedule of
address-resolved hardware-layer ops plus a packed weight blob — the
artefact the virtual platform replays to produce the CSB/DBB traces
that the bare-metal flow converts into RISC-V assembly.

Passes:

1. :mod:`repro.compiler.fusion` — prune to the output cone, fold
   BatchNorm/Scale into convolutions, absorb ReLU into the producing
   op, plan zero-copy concats.
2. :mod:`repro.compiler.lowering` — map layers onto hardware ops
   (conv/FC → conv pipeline + SDP, pool → PDP, LRN → CDP, eltwise →
   SDP, grouped/depthwise conv → per-atom-block conv ops, softmax →
   host CPU op); resolve quantisation scales.
3. :mod:`repro.compiler.tiling` — CBUF feasibility: weight-partition
   kernel splits and data-bank pressure checks.
4. :mod:`repro.compiler.weight_packer` — pack weights/bias blobs in
   CMAC stripe order into one contiguous image.
5. :mod:`repro.compiler.allocator` — assign DRAM addresses with
   liveness-based buffer reuse and concat aliasing.
"""

from repro.compiler.compile import CompileOptions, compile_network
from repro.compiler.loadable import Loadable
from repro.compiler.ops import ConvOp, CpuSoftmaxOp, EltwiseOpKind, HwOp, LrnOp, PoolOp, SdpOp, TensorRef

__all__ = [
    "CompileOptions",
    "ConvOp",
    "CpuSoftmaxOp",
    "EltwiseOpKind",
    "HwOp",
    "Loadable",
    "LrnOp",
    "PoolOp",
    "SdpOp",
    "TensorRef",
    "compile_network",
]
