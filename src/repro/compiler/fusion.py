"""Graph analysis passes: pruning, fusion planning, concat aliasing.

Works on the :class:`~repro.nn.graph.Network` IR before lowering:

- **pruning** — keep only layers reachable backwards from the
  declared output (drops GoogLeNet's auxiliary heads),
- **fusion planning** — each Convolution/InnerProduct absorbs a
  directly-following BatchNorm → Scale → ReLU chain (any prefix);
  each Eltwise absorbs a following ReLU; Dropout is elided,
- **concat aliasing** — channel-wise Concat becomes zero-copy: each
  input blob is a channel-offset view into the concat output blob.
  Chained concats collapse into the outermost blob.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CompilerError
from repro.nn.graph import Network
from repro.nn.layers import (
    BatchNorm,
    Concat,
    Convolution,
    Dropout,
    Eltwise,
    InnerProduct,
    Layer,
    ReLU,
    Scale,
)


def prune_to_output(net: Network) -> list[Layer]:
    """Layers reachable backwards from the output blob, in order."""
    needed_blobs = {net.output_blob}
    keep: list[Layer] = []
    for layer in reversed(net.layers):
        if any(top in needed_blobs for top in layer.tops):
            keep.append(layer)
            needed_blobs.update(layer.bottoms)
    keep.reverse()
    return keep


@dataclass
class FusionPlan:
    """Which layers each producer absorbs, and which disappear."""

    # producer layer name -> ordered absorbed layers
    absorbed: dict[str, list[Layer]] = field(default_factory=dict)
    # layer names that are absorbed into some producer (skip at lowering)
    consumed: set[str] = field(default_factory=set)
    # blob -> blob aliases for elided layers (dropout): top -> bottom
    aliases: dict[str, str] = field(default_factory=dict)

    def resolve_blob(self, blob: str) -> str:
        while blob in self.aliases:
            blob = self.aliases[blob]
        return blob


_FOLDABLE_AFTER_CONV = (BatchNorm, Scale, ReLU)


def plan_fusion(net: Network, layers: list[Layer]) -> FusionPlan:
    """Greedy single-consumer chain fusion.

    A layer is absorbed only when it is the *sole* consumer of its
    bottom blob, so branch points (e.g. a ReLU output feeding two
    inception branches) stay materialised.
    """
    plan = FusionPlan()
    by_index = {layer.name: i for i, layer in enumerate(layers)}
    consumers: dict[str, list[Layer]] = {}
    for layer in layers:
        for bottom in layer.bottoms:
            consumers.setdefault(bottom, []).append(layer)

    for layer in layers:
        if isinstance(layer, Dropout):
            plan.consumed.add(layer.name)
            plan.aliases[layer.tops[0]] = layer.bottoms[0]
            continue
        if isinstance(layer, (Convolution, InnerProduct)):
            allowed: tuple[type, ...] = _FOLDABLE_AFTER_CONV
        elif isinstance(layer, Eltwise):
            allowed = (ReLU,)
        else:
            continue
        absorbed: list[Layer] = []
        blob = layer.tops[0]
        seen_relu = False
        while True:
            users = [u for u in consumers.get(blob, []) if u.name not in plan.consumed]
            if len(users) != 1:
                break
            follower = users[0]
            if not isinstance(follower, allowed):
                break
            if isinstance(follower, ReLU):
                if seen_relu:
                    break
                seen_relu = True
            if isinstance(follower, (BatchNorm, Scale)) and seen_relu:
                break  # BN/Scale after ReLU cannot fold into the conv
            absorbed.append(follower)
            plan.consumed.add(follower.name)
            blob = follower.tops[0]
        if absorbed:
            plan.absorbed[layer.name] = absorbed
    return plan


def fused_output_blob(layer: Layer, plan: FusionPlan) -> str:
    """Blob name the fused group ultimately produces."""
    absorbed = plan.absorbed.get(layer.name)
    if absorbed:
        return absorbed[-1].tops[0]
    return layer.tops[0]


def fold_batchnorm_scale(
    net: Network,
    conv_weight: np.ndarray,
    conv_bias: np.ndarray | None,
    absorbed: list[Layer],
) -> tuple[np.ndarray, np.ndarray | None, bool]:
    """Fold absorbed BatchNorm/Scale parameters into weight/bias.

    Returns ``(weight, bias, relu)`` in float32.  Convolution weights
    are per-output-channel scaled: ``w' = w * g``, ``b' = (b - mean) *
    g_bn * g_scale + beta`` with the usual BN folding algebra.
    """
    weight = conv_weight.astype(np.float32)
    k = weight.shape[0]
    bias = (conv_bias.astype(np.float32) if conv_bias is not None else np.zeros(k, np.float32))
    relu = False
    for layer in absorbed:
        params = net.params.get(layer.name, {})
        if isinstance(layer, BatchNorm):
            mean = params["mean"].astype(np.float32)
            var = params["variance"].astype(np.float32)
            gain = 1.0 / np.sqrt(var + layer.eps)
            weight = weight * gain.reshape(-1, *([1] * (weight.ndim - 1)))
            bias = (bias - mean) * gain
        elif isinstance(layer, Scale):
            gain = params["scale"].astype(np.float32)
            weight = weight * gain.reshape(-1, *([1] * (weight.ndim - 1)))
            bias = bias * gain
            if layer.bias:
                bias = bias + params["bias"].astype(np.float32)
        elif isinstance(layer, ReLU):
            relu = True
        else:  # pragma: no cover - plan_fusion restricts the types
            raise CompilerError(f"cannot fold layer {layer.type_name}")
    return weight, bias, relu


@dataclass
class ConcatAlias:
    """One concat input's placement inside the concat output blob."""

    parent_blob: str
    channel_offset: int
    parent_channels: int


def plan_concats(net: Network, layers: list[Layer], plan: FusionPlan) -> dict[str, ConcatAlias]:
    """Map each concat-input blob to its slot in the concat blob.

    Chained concats collapse: offsets compose into the outermost
    parent.  Returns ``{}`` when the network has no Concat layers.
    """
    aliases: dict[str, ConcatAlias] = {}
    for layer in layers:
        if not isinstance(layer, Concat):
            continue
        out_blob = layer.tops[0]
        total = net.blob_shapes[out_blob][0]
        offset = 0
        for bottom in layer.bottoms:
            bottom = plan.resolve_blob(bottom)
            channels = net.blob_shapes[bottom][0]
            aliases[bottom] = ConcatAlias(
                parent_blob=out_blob, channel_offset=offset, parent_channels=total
            )
            offset += channels
    # Collapse chains: an alias whose parent is itself aliased.
    changed = True
    while changed:
        changed = False
        for blob, alias in list(aliases.items()):
            parent = aliases.get(alias.parent_blob)
            if parent is not None:
                aliases[blob] = ConcatAlias(
                    parent_blob=parent.parent_blob,
                    channel_offset=alias.channel_offset + parent.channel_offset,
                    parent_channels=parent.parent_channels,
                )
                changed = True
    return aliases
