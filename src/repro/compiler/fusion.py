"""Graph analysis passes: pruning, fusion planning, concat aliasing.

Works on the :class:`~repro.nn.graph.Network` IR before lowering:

- **pruning** — keep only layers reachable backwards from the
  declared output (drops GoogLeNet's auxiliary heads),
- **fusion planning** — each Convolution/InnerProduct absorbs a
  directly-following BatchNorm → Scale → ReLU chain (any prefix);
  each Eltwise absorbs a following ReLU; Dropout is elided,
- **concat aliasing** — channel-wise Concat becomes zero-copy: each
  input blob is a channel-offset view into the concat output blob.
  Chained concats collapse into the outermost blob.

Plus one pass *after* lowering, on the hardware-op schedule:

- **descriptor-chain fusion** (:func:`fuse_descriptor_chains`) — a
  ``ConvOp`` followed by the sole consumer of its output collapses
  into one pipelined descriptor chain: a relu/eltwise ``SdpOp`` folds
  into the conv's SDP stage, and a ``PoolOp`` becomes a PDP epilogue
  streaming the SDP result on-chip.  The intermediate blob disappears
  from every op reference, so the allocator never materialises it and
  the DRAM round-trip between the stages is gone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CompilerError
from repro.nn.graph import Network
from repro.nn.layers import (
    BatchNorm,
    Concat,
    Convolution,
    Dropout,
    Eltwise,
    InnerProduct,
    Layer,
    ReLU,
    Scale,
)


def prune_to_output(net: Network) -> list[Layer]:
    """Layers reachable backwards from the output blob, in order."""
    needed_blobs = {net.output_blob}
    keep: list[Layer] = []
    for layer in reversed(net.layers):
        if any(top in needed_blobs for top in layer.tops):
            keep.append(layer)
            needed_blobs.update(layer.bottoms)
    keep.reverse()
    return keep


@dataclass
class FusionPlan:
    """Which layers each producer absorbs, and which disappear."""

    # producer layer name -> ordered absorbed layers
    absorbed: dict[str, list[Layer]] = field(default_factory=dict)
    # layer names that are absorbed into some producer (skip at lowering)
    consumed: set[str] = field(default_factory=set)
    # blob -> blob aliases for elided layers (dropout): top -> bottom
    aliases: dict[str, str] = field(default_factory=dict)

    def resolve_blob(self, blob: str) -> str:
        seen: set[str] = set()
        while blob in self.aliases:
            if blob in seen:
                raise CompilerError(
                    f"cyclic blob alias chain through {blob!r}: "
                    f"{sorted(seen)} alias each other"
                )
            seen.add(blob)
            blob = self.aliases[blob]
        return blob


_FOLDABLE_AFTER_CONV = (BatchNorm, Scale, ReLU)


def plan_fusion(net: Network, layers: list[Layer], absorb_relu: bool = True) -> FusionPlan:
    """Greedy single-consumer chain fusion.

    A layer is absorbed only when it is the *sole* consumer of its
    bottom blob, so branch points (e.g. a ReLU output feeding two
    inception branches) stay materialised.

    ``absorb_relu=False`` (the ``fusion="off"`` ablation) keeps every
    ReLU as a standalone SDP layer — one descriptor chain per network
    layer, each paying its own DRAM round-trip.  BN/Scale still fold:
    a standalone BatchNorm has no hardware lowering.
    """
    plan = FusionPlan()
    by_index = {layer.name: i for i, layer in enumerate(layers)}
    consumers: dict[str, list[Layer]] = {}
    for layer in layers:
        for bottom in layer.bottoms:
            consumers.setdefault(bottom, []).append(layer)

    for layer in layers:
        if isinstance(layer, Dropout):
            plan.consumed.add(layer.name)
            plan.aliases[layer.tops[0]] = layer.bottoms[0]
            continue
        if isinstance(layer, (Convolution, InnerProduct)):
            allowed: tuple[type, ...] = (
                _FOLDABLE_AFTER_CONV if absorb_relu else (BatchNorm, Scale)
            )
        elif isinstance(layer, Eltwise):
            if not absorb_relu:
                continue
            allowed = (ReLU,)
        else:
            continue
        absorbed: list[Layer] = []
        blob = layer.tops[0]
        seen_relu = False
        while True:
            users = [u for u in consumers.get(blob, []) if u.name not in plan.consumed]
            if len(users) != 1:
                break
            follower = users[0]
            if not isinstance(follower, allowed):
                break
            if isinstance(follower, ReLU):
                if seen_relu:
                    break
                seen_relu = True
            if isinstance(follower, (BatchNorm, Scale)) and seen_relu:
                break  # BN/Scale after ReLU cannot fold into the conv
            absorbed.append(follower)
            plan.consumed.add(follower.name)
            blob = follower.tops[0]
        if absorbed:
            plan.absorbed[layer.name] = absorbed
    return plan


def fused_output_blob(layer: Layer, plan: FusionPlan) -> str:
    """Blob name the fused group ultimately produces."""
    absorbed = plan.absorbed.get(layer.name)
    if absorbed:
        return absorbed[-1].tops[0]
    return layer.tops[0]


def fold_batchnorm_scale(
    net: Network,
    conv_weight: np.ndarray,
    conv_bias: np.ndarray | None,
    absorbed: list[Layer],
) -> tuple[np.ndarray, np.ndarray | None, bool]:
    """Fold absorbed BatchNorm/Scale parameters into weight/bias.

    Returns ``(weight, bias, relu)`` in float32.  Convolution weights
    are per-output-channel scaled: ``w' = w * g``, ``b' = (b - mean) *
    g_bn * g_scale + beta`` with the usual BN folding algebra.
    """
    weight = conv_weight.astype(np.float32)
    k = weight.shape[0]
    bias = (conv_bias.astype(np.float32) if conv_bias is not None else np.zeros(k, np.float32))
    relu = False
    for layer in absorbed:
        params = net.params.get(layer.name, {})
        if isinstance(layer, BatchNorm):
            mean = params["mean"].astype(np.float32)
            var = params["variance"].astype(np.float32)
            gain = 1.0 / np.sqrt(var + layer.eps)
            weight = weight * gain.reshape(-1, *([1] * (weight.ndim - 1)))
            bias = (bias - mean) * gain
        elif isinstance(layer, Scale):
            gain = params["scale"].astype(np.float32)
            weight = weight * gain.reshape(-1, *([1] * (weight.ndim - 1)))
            bias = bias * gain
            if layer.bias:
                bias = bias + params["bias"].astype(np.float32)
        elif isinstance(layer, ReLU):
            relu = True
        else:  # pragma: no cover - plan_fusion restricts the types
            raise CompilerError(f"cannot fold layer {layer.type_name}")
    return weight, bias, relu


@dataclass
class ConcatAlias:
    """One concat input's placement inside the concat output blob."""

    parent_blob: str
    channel_offset: int
    parent_channels: int


def plan_concats(net: Network, layers: list[Layer], plan: FusionPlan) -> dict[str, ConcatAlias]:
    """Map each concat-input blob to its slot in the concat blob.

    Chained concats collapse: offsets compose into the outermost
    parent.  Returns ``{}`` when the network has no Concat layers.
    """
    aliases: dict[str, ConcatAlias] = {}
    for layer in layers:
        if not isinstance(layer, Concat):
            continue
        out_blob = layer.tops[0]
        total = net.blob_shapes[out_blob][0]
        offset = 0
        for bottom in layer.bottoms:
            bottom = plan.resolve_blob(bottom)
            channels = net.blob_shapes[bottom][0]
            aliases[bottom] = ConcatAlias(
                parent_blob=out_blob, channel_offset=offset, parent_channels=total
            )
            offset += channels
    # Collapse chains: an alias whose parent is itself aliased.
    changed = True
    while changed:
        changed = False
        for blob, alias in list(aliases.items()):
            parent = aliases.get(alias.parent_blob)
            if parent is not None:
                aliases[blob] = ConcatAlias(
                    parent_blob=parent.parent_blob,
                    channel_offset=alias.channel_offset + parent.channel_offset,
                    parent_channels=parent.parent_channels,
                )
                changed = True
    return aliases


# ----------------------------------------------------------------------
# Descriptor-chain fusion (post-lowering, on the hardware schedule).
# ----------------------------------------------------------------------


def _schedule_read_counts(schedule) -> dict[str, int]:
    """How many op-input references each blob has."""
    counts: dict[str, int] = {}
    for op in schedule.ops:
        for ref in op.inputs():
            counts[ref.blob] = counts.get(ref.blob, 0) + 1
    return counts


def _full_blob_view(ref) -> bool:
    """True when the ref covers its whole allocation blob."""
    return ref.channel_offset == 0 and ref.parent_channels in (None, ref.shape[0])


def _intermediate_is_private(conv, follower_input, reads, output_blob) -> bool:
    """The conv output exists only to feed ``follower_input``.

    Legality core of descriptor fusion: the blob must be a full view
    on both sides, read exactly once schedule-wide, and must not be
    the network output the host reads back.
    """
    out = conv.output
    if out.blob != follower_input.blob:
        return False
    if not _full_blob_view(out) or not _full_blob_view(follower_input):
        return False
    if out.shape != follower_input.shape:
        return False
    if output_blob is not None and out.blob == output_blob:
        return False
    return reads.get(out.blob, 0) == 1


def _try_fuse_pool(conv, pool, reads, output_blob) -> bool:
    """Fold a ``PoolOp`` into ``conv`` as a PDP streaming epilogue."""
    from repro.compiler.ops import PoolOp

    if not isinstance(pool, PoolOp) or conv.has_pool_epilogue:
        return False
    if pool.precision is not conv.precision:
        return False
    if pool.output.blob == conv.output.blob:
        return False
    if not _intermediate_is_private(conv, pool.input, reads, output_blob):
        return False
    conv.conv_out_shape = conv.output.shape
    conv.pool_mode = pool.mode
    conv.pool_kernel = pool.kernel
    conv.pool_stride = pool.stride
    conv.pool_pad = pool.pad
    conv.output = pool.output
    return True


def _try_fuse_sdp(conv, sdp, reads, output_blob, fuse_eltwise=True) -> bool:
    """Fold a standalone relu/eltwise ``SdpOp`` into the conv's SDP stage."""
    from repro.compiler.ops import EltwiseOpKind, SdpOp
    from repro.nn.quantize import requant_constants
    from repro.nvdla.config import Precision

    if not isinstance(sdp, SdpOp) or conv.has_pool_epilogue:
        return False
    if sdp.eltwise is not None and not fuse_eltwise:
        return False  # honour the eltwise-fusion ablation knob
    if conv.relu or conv.eltwise is not None:
        return False  # the conv's SDP stage is already claimed
    if sdp.precision is not conv.precision:
        return False
    if sdp.eltwise is not None and sdp.eltwise is not EltwiseOpKind.ADD:
        return False  # requant algebra below only covers ADD
    if sdp.eltwise_input is not None and sdp.eltwise_input.blob == conv.output.blob:
        return False
    if sdp.output.blob == conv.output.blob:
        return False
    if not _intermediate_is_private(conv, sdp.input, reads, output_blob):
        return False
    if conv.precision is Precision.INT8:
        acc_scale = conv.input.scale * conv.weight_scale
        conv.cvt_mult, conv.cvt_shift = requant_constants(
            conv.input.scale, conv.weight_scale, sdp.output.scale
        )
        if sdp.eltwise_input is not None:
            conv.ew_cvt_mult, conv.ew_cvt_shift = requant_constants(
                sdp.eltwise_input.scale, 1.0, acc_scale
            )
    conv.eltwise = sdp.eltwise
    conv.eltwise_input = sdp.eltwise_input
    conv.relu = sdp.relu
    conv.output = sdp.output
    return True


def fuse_descriptor_chains(schedule, fuse_eltwise=True) -> int:
    """Collapse conv → SDP/pool pairs into single pipelined chains.

    Mutates ``schedule`` in place and returns the number of ops
    absorbed.  Runs after lowering and before weight packing /
    allocation, so absorbed intermediates simply never reach the
    allocator.  Only adjacent schedule pairs fuse: the engine launches
    a fused chain as one shadow-group occupancy across the conv
    pipeline, SDP and PDP, which requires the stages to be programmed
    together.
    """
    from repro.compiler.ops import ConvOp

    fused = 0
    changed = True
    while changed:
        changed = False
        reads = _schedule_read_counts(schedule)
        output_blob = (
            schedule.output_tensor.blob if schedule.output_tensor is not None else None
        )
        for idx in range(len(schedule.ops) - 1):
            conv, follower = schedule.ops[idx], schedule.ops[idx + 1]
            if not isinstance(conv, ConvOp):
                continue
            if _try_fuse_pool(conv, follower, reads, output_blob) or _try_fuse_sdp(
                conv, follower, reads, output_blob, fuse_eltwise=fuse_eltwise
            ):
                del schedule.ops[idx + 1]
                fused += 1
                changed = True
                break
    return fused
