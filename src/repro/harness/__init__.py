"""Benchmark harness: canonical experiment runners and reporting.

Every table and figure of the paper has a runner here that regenerates
it from the library; ``benchmarks/`` are thin wrappers around these,
and EXPERIMENTS.md records the paper-vs-measured outcomes.
"""

from repro.harness.experiments import (
    FastPathRow,
    Table2Row,
    Table3Row,
    run_ablation_baremetal,
    run_ablation_width,
    run_fastpath_validation,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_table1,
    run_table2,
    run_table3,
)
from repro.harness.reporting import (
    PAPER_TABLE2_MS,
    PAPER_TABLE3_CYCLES,
    format_table,
    ratio_summary,
)

__all__ = [
    "FastPathRow",
    "PAPER_TABLE2_MS",
    "PAPER_TABLE3_CYCLES",
    "Table2Row",
    "Table3Row",
    "format_table",
    "ratio_summary",
    "run_ablation_baremetal",
    "run_ablation_width",
    "run_fastpath_validation",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_table1",
    "run_table2",
    "run_table3",
]
