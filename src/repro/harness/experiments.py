"""Canonical experiment runners — one per paper table/figure.

These functions do the full flows (compile → VP trace → bare-metal
codegen → SoC execution) with the same configurations the paper used,
and return structured rows so the benchmarks can both print the
paper's tables and assert shape properties.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baremetal.pipeline import BaremetalBundle
from repro.baseline.esp_platform import ESP_PUBLISHED_MS, EspPlatform
from repro.core import Soc, TestSystem
from repro.diagrams import (
    render_fig1_software_flow,
    render_fig2_soc,
    render_fig3_virtual_platform,
    render_fig4_test_setup,
)
from repro.fpga import UtilizationReport, build_table1_report, synthesize
from repro.harness.reporting import (
    PAPER_TABLE2_BASELINE_MS,
    PAPER_TABLE2_MS,
    PAPER_TABLE3_CYCLES,
)
from repro.nn.graph import Network
from repro.nn.zoo import ZOO
from repro.nvdla import NV_FULL, NV_SMALL
from repro.nvdla.config import HardwareConfig, Precision
from repro.vp import VirtualPlatform

TABLE2_MODELS = ("lenet5", "resnet18", "resnet50")
TABLE3_MODELS = ("lenet5", "resnet18", "resnet50", "mobilenet", "googlenet", "alexnet")


def _bundle_for(
    model: str,
    config: HardwareConfig,
    precision: Precision,
    fidelity: str,
) -> tuple[Network, BaremetalBundle]:
    """Build (or fetch) a deployment's artefacts via the shared cache.

    Tables, figures and ablations frequently revisit the same
    (model, config, precision, fidelity) points; routing them through
    :func:`repro.serve.shared_cache` makes each point pay the offline
    flow once per process.
    """
    from repro.serve import shared_cache

    net = ZOO[model]()
    bundle = shared_cache().bundle_for(
        model, config, precision=precision, fidelity=fidelity
    )
    return net, bundle


def _run_on_soc(bundle: BaremetalBundle, soc: Soc) -> tuple[int, float]:
    soc.load_bundle(bundle)
    result = soc.run_inference(bundle)
    if not result.ok:
        raise RuntimeError(
            f"bare-metal program failed: status 0x{result.status_word:08x} "
            f"at command {result.fail_index}"
        )
    return result.cycles, result.seconds


def _calibration_for(
    models: tuple[str, ...],
    config: HardwareConfig,
    precision: Precision,
    fidelity: str,
    memory_bus_width_bits: int = 32,
):
    """One calibration table per experiment, via the shared cache."""
    from repro.core.fastpath import calibrate
    from repro.serve import shared_cache

    return calibrate(
        models,
        config,
        precision=precision,
        fidelity=fidelity,
        cache=shared_cache(),
        memory_bus_width_bits=memory_bus_width_bits,
    )


def _execute(
    bundle: BaremetalBundle,
    execution_mode: str,
    frequency_hz: float,
    memory_bus_width_bits: int = 32,
    calibration=None,
) -> tuple[int, float]:
    """Run one bundle on the selected tier; (cycles, seconds)."""
    from repro.baremetal.pipeline import execute_bundle

    result = execute_bundle(
        bundle,
        execution_mode=execution_mode,
        frequency_hz=frequency_hz,
        memory_bus_width_bits=memory_bus_width_bits,
        calibration=calibration,
    )
    if not result.ok:
        raise RuntimeError(f"{execution_mode} execution of {bundle.network} failed")
    return result.cycles, result.seconds


# ----------------------------------------------------------------------
# Table I.
# ----------------------------------------------------------------------


def run_table1(config: HardwareConfig = NV_SMALL) -> UtilizationReport:
    """FPGA resource utilisation of the full system."""
    return build_table1_report(config)


def run_table1_nv_full_check() -> list[str]:
    """The paper's nv_full synthesis observation (LUT over-utilisation)."""
    return synthesize(NV_FULL).violations


# ----------------------------------------------------------------------
# Table II.
# ----------------------------------------------------------------------


@dataclass
class Table2Row:
    model: str
    layers: int
    input_shape: tuple[int, int, int]
    model_size_mb: float
    cycles: int
    ms_at_100mhz: float
    paper_ms: float
    baseline_ms: float | None
    paper_baseline_ms: float | None
    hw_ops: int

    @property
    def ratio(self) -> float:
        return self.ms_at_100mhz / self.paper_ms

    @property
    def speedup_vs_baseline(self) -> float | None:
        if self.baseline_ms is None:
            return None
        return self.baseline_ms / self.ms_at_100mhz


def run_table2(
    models: tuple[str, ...] = TABLE2_MODELS,
    fidelity: str = "timing",
    with_baseline: bool = True,
    execution_mode: str = "cycle_accurate",
) -> list[Table2Row]:
    """nv_small FPGA inference latencies at 100 MHz, plus the ESP
    Linux-driver baseline at 50 MHz.

    ``execution_mode="fast"`` reproduces the table from the calibrated
    fast tier: it first calibrates the requested models against one
    cycle-accurate run each, then reports the analytic estimates.
    """
    calibration = None
    if execution_mode == "fast":
        calibration = _calibration_for(models, NV_SMALL, Precision.INT8, fidelity)
    rows: list[Table2Row] = []
    for model in models:
        net, bundle = _bundle_for(model, NV_SMALL, Precision.INT8, fidelity)
        cycles, seconds = _execute(
            bundle, execution_mode, frequency_hz=100e6, calibration=calibration
        )
        baseline_ms = None
        if with_baseline:
            baseline_ms = EspPlatform().run(bundle.loadable).milliseconds
        rows.append(
            Table2Row(
                model=model,
                layers=net.layer_count() + 1,  # the paper counts the data layer
                input_shape=net.input_shape,
                model_size_mb=net.model_size_bytes() / 1e6,
                cycles=cycles,
                ms_at_100mhz=seconds * 1e3,
                paper_ms=PAPER_TABLE2_MS[model],
                baseline_ms=baseline_ms,
                paper_baseline_ms=PAPER_TABLE2_BASELINE_MS[model],
                hw_ops=bundle.loadable.hw_op_count(),
            )
        )
    return rows


# ----------------------------------------------------------------------
# Table III.
# ----------------------------------------------------------------------


@dataclass
class Table3Row:
    model: str
    input_shape: tuple[int, int, int]
    model_size_mb: float
    cycles: int
    ms_at_100mhz: float
    paper_cycles: int
    hw_ops: int

    @property
    def ratio(self) -> float:
        return self.cycles / self.paper_cycles


def run_table3(
    models: tuple[str, ...] = TABLE3_MODELS,
    fidelity: str = "timing",
    execution_mode: str = "cycle_accurate",
) -> list[Table3Row]:
    """nv_full simulation cycle counts (FP16) at 100 MHz.

    Simulated with the widened 64-bit memory path the paper's
    conclusion prescribes for nv_full (the published 32-bit converter
    is an nv_small artefact).  ``execution_mode="fast"`` reports the
    calibrated analytic estimates instead (see :func:`run_table2`).
    """
    calibration = None
    if execution_mode == "fast":
        calibration = _calibration_for(
            models, NV_FULL, Precision.FP16, fidelity, memory_bus_width_bits=64
        )
    rows: list[Table3Row] = []
    for model in models:
        net, bundle = _bundle_for(model, NV_FULL, Precision.FP16, fidelity)
        cycles, seconds = _execute(
            bundle,
            execution_mode,
            frequency_hz=100e6,
            memory_bus_width_bits=64,
            calibration=calibration,
        )
        rows.append(
            Table3Row(
                model=model,
                input_shape=net.input_shape,
                model_size_mb=net.model_size_bytes() / 1e6,
                cycles=cycles,
                ms_at_100mhz=seconds * 1e3,
                paper_cycles=PAPER_TABLE3_CYCLES[model],
                hw_ops=bundle.loadable.hw_op_count(),
            )
        )
    return rows


# ----------------------------------------------------------------------
# Fast-path validation.
# ----------------------------------------------------------------------


@dataclass
class FastPathRow:
    """One deployment's measured-vs-estimated cycle comparison."""

    model: str
    config: str
    precision: str
    measured_cycles: int
    estimated_cycles: int

    @property
    def error(self) -> float:
        return (self.estimated_cycles - self.measured_cycles) / self.measured_cycles


def run_fastpath_validation(
    models: tuple[str, ...] = ("lenet5", "resnet18"),
    config: HardwareConfig = NV_SMALL,
    precision: Precision = Precision.INT8,
    fidelity: str = "functional",
) -> list[FastPathRow]:
    """Calibrate the fast tier and report its per-model cycle error.

    The companion experiment to the differential test suite: every row
    compares one cycle-accurate SoC run against the calibrated
    analytic estimate for the same bundle.
    """
    table = _calibration_for(models, config, precision, fidelity)
    return [
        FastPathRow(
            model=model,
            config=config.name,
            precision=precision.value,
            measured_cycles=table.entry(model, config.name, precision).measured_cycles,
            estimated_cycles=table.entry(model, config.name, precision).estimated_cycles,
        )
        for model in models
    ]


# ----------------------------------------------------------------------
# Figures.
# ----------------------------------------------------------------------


def run_fig1(model: str = "lenet5") -> str:
    _, bundle = _bundle_for(model, NV_SMALL, Precision.INT8, "functional")
    return render_fig1_software_flow(bundle)


def run_fig2(config: HardwareConfig = NV_SMALL) -> str:
    return render_fig2_soc(Soc(config))


def run_fig3(model: str = "lenet5") -> str:
    net = ZOO[model]()
    from repro.compiler import compile_network
    from repro.vp import NvdlaRuntime

    loadable = compile_network(net, NV_SMALL)
    platform = VirtualPlatform(NV_SMALL)
    runtime = NvdlaRuntime(platform)
    runtime.deploy(loadable)
    import numpy as np

    runtime.set_input(np.zeros(net.input_shape, dtype=np.float32))
    runtime.execute()
    return render_fig3_virtual_platform(platform)


def run_fig4(model: str = "lenet5") -> str:
    _, bundle = _bundle_for(model, NV_SMALL, Precision.INT8, "functional")
    system = TestSystem(Soc(NV_SMALL))
    system.run_experiment(bundle)
    return render_fig4_test_setup(system)


# ----------------------------------------------------------------------
# Ablations (DESIGN.md experiments A1/A2).
# ----------------------------------------------------------------------


@dataclass
class AblationPoint:
    label: str
    value: float
    cycles: int
    ms: float
    detail: dict = field(default_factory=dict)


def run_ablation_baremetal(model: str = "lenet5") -> list[AblationPoint]:
    """Bare-metal vs Linux-driver: sweep the driver-stack overheads.

    Shows how much of the ESP gap is the fixed runtime initialisation
    versus the per-op kernel round trips — the paper's core claim is
    that bare-metal removes all of it.
    """
    from repro.baseline.linux_driver import LinuxDriverModel, LinuxOverheadParams

    net, bundle = _bundle_for(model, NV_SMALL, Precision.INT8, "timing")
    soc = Soc(NV_SMALL, frequency_hz=100e6, fidelity="timing")
    cycles, seconds = _run_on_soc(bundle, soc)
    points = [
        AblationPoint("bare-metal @100MHz", 0.0, cycles, seconds * 1e3)
    ]
    for scale in (0.0, 0.25, 0.5, 1.0):
        params = LinuxOverheadParams(
            runtime_init_cycles=int(12_200_000 * scale),
            submit_cycles_per_op=int(30_000 * scale),
            irq_path_cycles_per_op=int(12_000 * scale),
        )
        result = LinuxDriverModel(NV_SMALL, 50e6, params).run(bundle.loadable)
        points.append(
            AblationPoint(
                f"linux @50MHz, overhead x{scale:g}",
                scale,
                result.cycles,
                result.milliseconds,
                detail=result.breakdown,
            )
        )
    return points


def run_ablation_width(model: str = "resnet50") -> list[AblationPoint]:
    """Memory-path width sweep (the paper's 64 → 512-bit direction)."""
    _, bundle = _bundle_for(model, NV_FULL, Precision.FP16, "timing")
    points: list[AblationPoint] = []
    for width in (32, 64, 128, 256, 512):
        soc = Soc(
            NV_FULL, frequency_hz=100e6, fidelity="timing", memory_bus_width_bits=width
        )
        cycles, seconds = _run_on_soc(bundle, soc)
        points.append(AblationPoint(f"{width}-bit memory path", width, cycles, seconds * 1e3))
    return points


def run_ablation_frequency(model: str = "lenet5") -> list[AblationPoint]:
    """System-clock sweep: the paper reports 100 MHz; the baseline runs
    at 50 MHz.  Cycle counts must be frequency-invariant (the whole SoC
    shares one clock domain), so latency scales exactly with 1/f."""
    _, bundle = _bundle_for(model, NV_SMALL, Precision.INT8, "timing")
    points: list[AblationPoint] = []
    for mhz in (50, 100, 150, 200, 300):
        soc = Soc(NV_SMALL, frequency_hz=mhz * 1e6, fidelity="timing")
        cycles, seconds = _run_on_soc(bundle, soc)
        points.append(AblationPoint(f"{mhz} MHz", float(mhz), cycles, seconds * 1e3))
    return points


def esp_reference_points() -> dict[str, float]:
    """The published ESP milliseconds, for assertions."""
    return dict(ESP_PUBLISHED_MS)
