"""Paper reference values and table formatting."""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Table II — nv_small FPGA results at 100 MHz (milliseconds), and the
#: ESP/Linux baseline column at 50 MHz.
PAPER_TABLE2_MS: dict[str, float] = {
    "lenet5": 4.8,
    "resnet18": 16.2,
    "resnet50": 1100.0,
}
PAPER_TABLE2_BASELINE_MS: dict[str, float | None] = {
    "lenet5": 263.0,
    "resnet18": None,  # "NA" in the paper
    "resnet50": 2500.0,
}
PAPER_TABLE2_LAYERS: dict[str, int] = {"lenet5": 9, "resnet18": 86, "resnet50": 228}
PAPER_TABLE2_SIZE_MB: dict[str, float] = {"lenet5": 1.7, "resnet18": 0.8, "resnet50": 102.5}

#: Table III — nv_full simulation results (clock cycles, FP16).
PAPER_TABLE3_CYCLES: dict[str, int] = {
    "lenet5": 143_188,
    "resnet18": 324_387,
    "resnet50": 26_565_315,
    "mobilenet": 22_525_704,
    "googlenet": 40_889_646,
    "alexnet": 35_535_582,
}
PAPER_TABLE3_SIZE_MB: dict[str, float] = {
    "lenet5": 1.7,
    "resnet18": 0.8,
    "resnet50": 102.5,
    "mobilenet": 17.0,
    "googlenet": 53.5,
    "alexnet": 243.9,
}


@dataclass(frozen=True)
class Comparison:
    """One paper-vs-measured data point."""

    name: str
    paper: float
    measured: float

    @property
    def ratio(self) -> float:
        return self.measured / self.paper if self.paper else math.inf


def format_table(headers: list[str], rows: list[list[str]], title: str | None = None) -> str:
    """Plain-text table with right-aligned numeric columns."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt(cells: list[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(headers))
    lines.append(fmt(["-" * w for w in widths]))
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def ratio_summary(comparisons: list[Comparison]) -> str:
    """Geometric-mean and worst-case ratio across comparisons."""
    ratios = [c.ratio for c in comparisons if c.paper]
    if not ratios:
        return "no comparable rows"
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    worst = max(ratios, key=lambda r: max(r, 1 / r))
    return f"geomean ratio {geomean:.2f}x, worst {worst:.2f}x over {len(ratios)} rows"
