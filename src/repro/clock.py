"""Simulation time base shared by every hardware model.

The whole SoC is simulated against a single :class:`Clock` measured in
cycles of the system clock domain.  Components that complete work in the
background (NVDLA layer operations, DMA bursts) register completion
callbacks on the clock's event queue; bus masters advance the clock as
they consume wait states.

The clock also supports *fast-forwarding*: when the CPU is spinning in a
polling loop waiting for an NVDLA interrupt, the executor can jump
straight to the next scheduled event instead of simulating millions of
identical loop iterations.  The skipped cycles are still accounted for,
so reported latencies are unchanged.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class _Event:
    cycle: int
    seq: int
    callback: Callable[[], None] = field(compare=False)


class Clock:
    """Cycle counter with an ordered event queue.

    Parameters
    ----------
    frequency_hz:
        Frequency of the clock domain; used only to convert cycle counts
        into wall-clock seconds for reports.
    """

    def __init__(self, frequency_hz: float = 100e6) -> None:
        if frequency_hz <= 0:
            raise ValueError("clock frequency must be positive")
        self.frequency_hz = float(frequency_hz)
        self._now = 0
        self._seq = 0
        self._events: list[_Event] = []

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    def seconds(self, cycles: int | None = None) -> float:
        """Convert ``cycles`` (default: current time) to seconds."""
        if cycles is None:
            cycles = self._now
        return cycles / self.frequency_hz

    def schedule_at(self, cycle: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` when the clock reaches ``cycle``."""
        if cycle < self._now:
            raise ValueError(f"cannot schedule in the past ({cycle} < {self._now})")
        heapq.heappush(self._events, _Event(cycle, self._seq, callback))
        self._seq += 1

    def schedule_after(self, delay: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.schedule_at(self._now + delay, callback)

    def next_event_cycle(self) -> int | None:
        """Cycle of the earliest pending event, or ``None`` if idle."""
        return self._events[0].cycle if self._events else None

    def advance(self, cycles: int) -> None:
        """Move time forward by ``cycles``, firing any due events."""
        if cycles < 0:
            raise ValueError("cannot advance by a negative amount")
        self.advance_to(self._now + cycles)

    def advance_to(self, cycle: int) -> None:
        """Move time forward to ``cycle``, firing events in order.

        Events are fired at their exact timestamps (the clock is set to
        the event's cycle while its callback runs), so a callback that
        schedules follow-up work keeps causal ordering.
        """
        if cycle < self._now:
            raise ValueError(f"cannot rewind the clock ({cycle} < {self._now})")
        while self._events and self._events[0].cycle <= cycle:
            event = heapq.heappop(self._events)
            self._now = event.cycle
            event.callback()
        self._now = cycle

    def fast_forward_to_next_event(self) -> bool:
        """Jump to the earliest pending event and fire it.

        Returns ``True`` if an event was fired, ``False`` if the queue
        was empty (in which case time does not move).
        """
        if not self._events:
            return False
        self.advance_to(self._events[0].cycle)
        return True

    def reset(self) -> None:
        """Drop all pending events and rewind to cycle zero."""
        self._now = 0
        self._seq = 0
        self._events.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Clock(now={self._now}, pending={len(self._events)}, f={self.frequency_hz / 1e6:g} MHz)"
