"""RV32IM(+Zicsr) instruction encodings.

A single spec table drives the assembler, the disassembler and the
ISS, so the three can never disagree about an encoding.  Field layout
follows the RISC-V unprivileged specification:

- R:  funct7 | rs2 | rs1 | funct3 | rd | opcode
- I:  imm[11:0] | rs1 | funct3 | rd | opcode
- S:  imm[11:5] | rs2 | rs1 | funct3 | imm[4:0] | opcode
- B:  imm[12,10:5] | rs2 | rs1 | funct3 | imm[4:1,11] | opcode
- U:  imm[31:12] | rd | opcode
- J:  imm[20,10:1,11,19:12] | rd | opcode
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import IsaError

XLEN = 32
WORD_MASK = 0xFFFFFFFF


class Format(Enum):
    R = "R"
    I = "I"
    S = "S"
    B = "B"
    U = "U"
    J = "J"
    SHIFT = "shift"  # I-format with funct7 in imm[11:5]
    CSR = "csr"  # I-format, imm field holds the CSR address
    CSRI = "csri"  # CSR with 5-bit zimm in the rs1 field
    SYS = "sys"  # ecall / ebreak / wfi-like fixed encodings
    FENCE = "fence"


@dataclass(frozen=True)
class Spec:
    """Encoding of one mnemonic."""

    mnemonic: str
    fmt: Format
    opcode: int
    funct3: int | None = None
    funct7: int | None = None
    fixed_imm: int | None = None  # for SYS encodings


_OP_LUI = 0b0110111
_OP_AUIPC = 0b0010111
_OP_JAL = 0b1101111
_OP_JALR = 0b1100111
_OP_BRANCH = 0b1100011
_OP_LOAD = 0b0000011
_OP_STORE = 0b0100011
_OP_IMM = 0b0010011
_OP_OP = 0b0110011
_OP_FENCE = 0b0001111
_OP_SYSTEM = 0b1110011

SPECS: tuple[Spec, ...] = (
    Spec("lui", Format.U, _OP_LUI),
    Spec("auipc", Format.U, _OP_AUIPC),
    Spec("jal", Format.J, _OP_JAL),
    Spec("jalr", Format.I, _OP_JALR, funct3=0b000),
    Spec("beq", Format.B, _OP_BRANCH, funct3=0b000),
    Spec("bne", Format.B, _OP_BRANCH, funct3=0b001),
    Spec("blt", Format.B, _OP_BRANCH, funct3=0b100),
    Spec("bge", Format.B, _OP_BRANCH, funct3=0b101),
    Spec("bltu", Format.B, _OP_BRANCH, funct3=0b110),
    Spec("bgeu", Format.B, _OP_BRANCH, funct3=0b111),
    Spec("lb", Format.I, _OP_LOAD, funct3=0b000),
    Spec("lh", Format.I, _OP_LOAD, funct3=0b001),
    Spec("lw", Format.I, _OP_LOAD, funct3=0b010),
    Spec("lbu", Format.I, _OP_LOAD, funct3=0b100),
    Spec("lhu", Format.I, _OP_LOAD, funct3=0b101),
    Spec("sb", Format.S, _OP_STORE, funct3=0b000),
    Spec("sh", Format.S, _OP_STORE, funct3=0b001),
    Spec("sw", Format.S, _OP_STORE, funct3=0b010),
    Spec("addi", Format.I, _OP_IMM, funct3=0b000),
    Spec("slti", Format.I, _OP_IMM, funct3=0b010),
    Spec("sltiu", Format.I, _OP_IMM, funct3=0b011),
    Spec("xori", Format.I, _OP_IMM, funct3=0b100),
    Spec("ori", Format.I, _OP_IMM, funct3=0b110),
    Spec("andi", Format.I, _OP_IMM, funct3=0b111),
    Spec("slli", Format.SHIFT, _OP_IMM, funct3=0b001, funct7=0b0000000),
    Spec("srli", Format.SHIFT, _OP_IMM, funct3=0b101, funct7=0b0000000),
    Spec("srai", Format.SHIFT, _OP_IMM, funct3=0b101, funct7=0b0100000),
    Spec("add", Format.R, _OP_OP, funct3=0b000, funct7=0b0000000),
    Spec("sub", Format.R, _OP_OP, funct3=0b000, funct7=0b0100000),
    Spec("sll", Format.R, _OP_OP, funct3=0b001, funct7=0b0000000),
    Spec("slt", Format.R, _OP_OP, funct3=0b010, funct7=0b0000000),
    Spec("sltu", Format.R, _OP_OP, funct3=0b011, funct7=0b0000000),
    Spec("xor", Format.R, _OP_OP, funct3=0b100, funct7=0b0000000),
    Spec("srl", Format.R, _OP_OP, funct3=0b101, funct7=0b0000000),
    Spec("sra", Format.R, _OP_OP, funct3=0b101, funct7=0b0100000),
    Spec("or", Format.R, _OP_OP, funct3=0b110, funct7=0b0000000),
    Spec("and", Format.R, _OP_OP, funct3=0b111, funct7=0b0000000),
    # RV32M
    Spec("mul", Format.R, _OP_OP, funct3=0b000, funct7=0b0000001),
    Spec("mulh", Format.R, _OP_OP, funct3=0b001, funct7=0b0000001),
    Spec("mulhsu", Format.R, _OP_OP, funct3=0b010, funct7=0b0000001),
    Spec("mulhu", Format.R, _OP_OP, funct3=0b011, funct7=0b0000001),
    Spec("div", Format.R, _OP_OP, funct3=0b100, funct7=0b0000001),
    Spec("divu", Format.R, _OP_OP, funct3=0b101, funct7=0b0000001),
    Spec("rem", Format.R, _OP_OP, funct3=0b110, funct7=0b0000001),
    Spec("remu", Format.R, _OP_OP, funct3=0b111, funct7=0b0000001),
    # Zicsr
    Spec("csrrw", Format.CSR, _OP_SYSTEM, funct3=0b001),
    Spec("csrrs", Format.CSR, _OP_SYSTEM, funct3=0b010),
    Spec("csrrc", Format.CSR, _OP_SYSTEM, funct3=0b011),
    Spec("csrrwi", Format.CSRI, _OP_SYSTEM, funct3=0b101),
    Spec("csrrsi", Format.CSRI, _OP_SYSTEM, funct3=0b110),
    Spec("csrrci", Format.CSRI, _OP_SYSTEM, funct3=0b111),
    # System
    Spec("ecall", Format.SYS, _OP_SYSTEM, funct3=0b000, fixed_imm=0b000000000000),
    Spec("ebreak", Format.SYS, _OP_SYSTEM, funct3=0b000, fixed_imm=0b000000000001),
    Spec("fence", Format.FENCE, _OP_FENCE, funct3=0b000),
)

SPEC_BY_MNEMONIC: dict[str, Spec] = {s.mnemonic: s for s in SPECS}

# Common CSR addresses (the µRISC-V exposes the standard counters).
CSR_ADDRESSES: dict[str, int] = {
    "mstatus": 0x300,
    "mtvec": 0x305,
    "mepc": 0x341,
    "mcause": 0x342,
    "cycle": 0xC00,
    "time": 0xC01,
    "instret": 0xC02,
    "cycleh": 0xC80,
    "instreth": 0xC82,
    "mcycle": 0xB00,
    "minstret": 0xB02,
    "mcycleh": 0xB80,
    "minstreth": 0xB82,
    "mhartid": 0xF14,
}
CSR_NAMES: dict[int, str] = {v: k for k, v in CSR_ADDRESSES.items()}

ABI_REGISTER_NAMES: tuple[str, ...] = (
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
)

REGISTER_ALIASES: dict[str, int] = {name: i for i, name in enumerate(ABI_REGISTER_NAMES)}
REGISTER_ALIASES.update({f"x{i}": i for i in range(32)})
REGISTER_ALIASES["fp"] = 8


def sign_extend(value: int, bits: int) -> int:
    """Sign-extend the low ``bits`` of ``value`` to a Python int."""
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        return value - (1 << bits)
    return value


def to_u32(value: int) -> int:
    """Wrap a Python int into an unsigned 32-bit lane."""
    return value & WORD_MASK


def to_s32(value: int) -> int:
    """Interpret a 32-bit lane as signed."""
    return sign_extend(value, 32)


def _check_reg(name: str, index: int) -> None:
    if not 0 <= index < 32:
        raise IsaError(f"{name} register index {index} out of range")


def _check_imm_signed(imm: int, bits: int) -> None:
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if not lo <= imm <= hi:
        raise IsaError(f"immediate {imm} does not fit in {bits} signed bits")


def encode(
    mnemonic: str,
    rd: int = 0,
    rs1: int = 0,
    rs2: int = 0,
    imm: int = 0,
    csr: int = 0,
) -> int:
    """Encode one instruction into its 32-bit machine word."""
    spec = SPEC_BY_MNEMONIC.get(mnemonic)
    if spec is None:
        raise IsaError(f"unknown mnemonic {mnemonic!r}")
    _check_reg("rd", rd)
    _check_reg("rs1", rs1)
    _check_reg("rs2", rs2)
    op = spec.opcode
    f3 = spec.funct3 or 0
    if spec.fmt is Format.R:
        assert spec.funct7 is not None
        return (spec.funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | op
    if spec.fmt is Format.I:
        _check_imm_signed(imm, 12)
        return ((imm & 0xFFF) << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | op
    if spec.fmt is Format.SHIFT:
        assert spec.funct7 is not None
        if not 0 <= imm < 32:
            raise IsaError(f"shift amount {imm} out of range")
        return (spec.funct7 << 25) | (imm << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | op
    if spec.fmt is Format.S:
        _check_imm_signed(imm, 12)
        value = imm & 0xFFF
        return (
            ((value >> 5) << 25)
            | (rs2 << 20)
            | (rs1 << 15)
            | (f3 << 12)
            | ((value & 0x1F) << 7)
            | op
        )
    if spec.fmt is Format.B:
        _check_imm_signed(imm, 13)
        if imm % 2 != 0:
            raise IsaError("branch offset must be even")
        value = imm & 0x1FFF
        return (
            (((value >> 12) & 1) << 31)
            | (((value >> 5) & 0x3F) << 25)
            | (rs2 << 20)
            | (rs1 << 15)
            | (f3 << 12)
            | (((value >> 1) & 0xF) << 8)
            | (((value >> 11) & 1) << 7)
            | op
        )
    if spec.fmt is Format.U:
        if not 0 <= imm < (1 << 20):
            raise IsaError(f"U-type immediate {imm} out of range")
        return (imm << 12) | (rd << 7) | op
    if spec.fmt is Format.J:
        _check_imm_signed(imm, 21)
        if imm % 2 != 0:
            raise IsaError("jump offset must be even")
        value = imm & 0x1FFFFF
        return (
            (((value >> 20) & 1) << 31)
            | (((value >> 1) & 0x3FF) << 21)
            | (((value >> 11) & 1) << 20)
            | (((value >> 12) & 0xFF) << 12)
            | (rd << 7)
            | op
        )
    if spec.fmt is Format.CSR:
        if not 0 <= csr < (1 << 12):
            raise IsaError(f"CSR address 0x{csr:x} out of range")
        return (csr << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | op
    if spec.fmt is Format.CSRI:
        if not 0 <= csr < (1 << 12):
            raise IsaError(f"CSR address 0x{csr:x} out of range")
        if not 0 <= imm < 32:
            raise IsaError("CSR immediate must fit in 5 bits")
        return (csr << 20) | (imm << 15) | (f3 << 12) | (rd << 7) | op
    if spec.fmt is Format.SYS:
        assert spec.fixed_imm is not None
        return (spec.fixed_imm << 20) | (f3 << 12) | op
    if spec.fmt is Format.FENCE:
        return (f3 << 12) | op
    raise IsaError(f"unhandled format {spec.fmt}")  # pragma: no cover


@dataclass(frozen=True)
class Decoded:
    """A decoded instruction: spec plus extracted fields."""

    spec: Spec
    rd: int
    rs1: int
    rs2: int
    imm: int
    csr: int
    raw: int

    @property
    def mnemonic(self) -> str:
        return self.spec.mnemonic

    @property
    def is_load(self) -> bool:
        return self.spec.opcode == _OP_LOAD

    @property
    def is_store(self) -> bool:
        return self.spec.opcode == _OP_STORE

    @property
    def is_branch(self) -> bool:
        return self.spec.opcode == _OP_BRANCH

    @property
    def is_jump(self) -> bool:
        return self.spec.opcode in (_OP_JAL, _OP_JALR)

    @property
    def is_mul_div(self) -> bool:
        return self.spec.fmt is Format.R and self.spec.funct7 == 0b0000001


def decode(word: int) -> Decoded:
    """Decode a 32-bit machine word.

    Raises :class:`~repro.errors.IsaError` on encodings outside the
    implemented RV32IM+Zicsr subset.
    """
    word &= WORD_MASK
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F

    def found(spec: Spec, imm: int = 0, csr: int = 0, rd_=None, rs1_=None, rs2_=None) -> Decoded:
        return Decoded(
            spec=spec,
            rd=rd if rd_ is None else rd_,
            rs1=rs1 if rs1_ is None else rs1_,
            rs2=rs2 if rs2_ is None else rs2_,
            imm=imm,
            csr=csr,
            raw=word,
        )

    if opcode == _OP_LUI:
        return found(SPEC_BY_MNEMONIC["lui"], imm=(word >> 12) & 0xFFFFF, rs1_=0, rs2_=0)
    if opcode == _OP_AUIPC:
        return found(SPEC_BY_MNEMONIC["auipc"], imm=(word >> 12) & 0xFFFFF, rs1_=0, rs2_=0)
    if opcode == _OP_JAL:
        imm = (
            (((word >> 31) & 1) << 20)
            | (((word >> 21) & 0x3FF) << 1)
            | (((word >> 20) & 1) << 11)
            | (((word >> 12) & 0xFF) << 12)
        )
        return found(SPEC_BY_MNEMONIC["jal"], imm=sign_extend(imm, 21), rs1_=0, rs2_=0)
    if opcode == _OP_JALR and funct3 == 0:
        return found(SPEC_BY_MNEMONIC["jalr"], imm=sign_extend(word >> 20, 12), rs2_=0)
    if opcode == _OP_BRANCH:
        for spec in SPECS:
            if spec.opcode == opcode and spec.funct3 == funct3:
                imm = (
                    (((word >> 31) & 1) << 12)
                    | (((word >> 25) & 0x3F) << 5)
                    | (((word >> 8) & 0xF) << 1)
                    | (((word >> 7) & 1) << 11)
                )
                return found(spec, imm=sign_extend(imm, 13), rd_=0)
        raise IsaError(f"illegal branch funct3={funct3:#05b} in 0x{word:08x}")
    if opcode == _OP_LOAD:
        for spec in SPECS:
            if spec.opcode == opcode and spec.funct3 == funct3:
                return found(spec, imm=sign_extend(word >> 20, 12), rs2_=0)
        raise IsaError(f"illegal load funct3={funct3:#05b} in 0x{word:08x}")
    if opcode == _OP_STORE:
        for spec in SPECS:
            if spec.opcode == opcode and spec.funct3 == funct3:
                imm = ((word >> 25) << 5) | ((word >> 7) & 0x1F)
                return found(spec, imm=sign_extend(imm, 12), rd_=0)
        raise IsaError(f"illegal store funct3={funct3:#05b} in 0x{word:08x}")
    if opcode == _OP_IMM:
        if funct3 in (0b001, 0b101):  # shifts carry funct7
            for spec in SPECS:
                if spec.fmt is Format.SHIFT and spec.funct3 == funct3 and spec.funct7 == funct7:
                    return found(spec, imm=rs2, rs2_=0)
            raise IsaError(f"illegal shift encoding 0x{word:08x}")
        for spec in SPECS:
            if spec.opcode == opcode and spec.fmt is Format.I and spec.funct3 == funct3:
                return found(spec, imm=sign_extend(word >> 20, 12), rs2_=0)
        raise IsaError(f"illegal op-imm funct3={funct3:#05b} in 0x{word:08x}")
    if opcode == _OP_OP:
        for spec in SPECS:
            if spec.fmt is Format.R and spec.funct3 == funct3 and spec.funct7 == funct7:
                return found(spec)
        raise IsaError(f"illegal register op in 0x{word:08x}")
    if opcode == _OP_SYSTEM:
        if funct3 == 0:
            imm12 = word >> 20
            if imm12 == 0 and rs1 == 0 and rd == 0:
                return found(SPEC_BY_MNEMONIC["ecall"], rs1_=0, rs2_=0, rd_=0)
            if imm12 == 1 and rs1 == 0 and rd == 0:
                return found(SPEC_BY_MNEMONIC["ebreak"], rs1_=0, rs2_=0, rd_=0)
            raise IsaError(f"illegal system encoding 0x{word:08x}")
        for spec in SPECS:
            if spec.opcode == opcode and spec.funct3 == funct3 and spec.fmt in (Format.CSR, Format.CSRI):
                if spec.fmt is Format.CSRI:
                    return found(spec, imm=rs1, csr=word >> 20, rs1_=0, rs2_=0)
                return found(spec, csr=word >> 20, rs2_=0)
        raise IsaError(f"illegal CSR encoding 0x{word:08x}")
    if opcode == _OP_FENCE and funct3 == 0:
        return found(SPEC_BY_MNEMONIC["fence"], rd_=0, rs1_=0, rs2_=0)
    raise IsaError(f"illegal instruction 0x{word:08x} (opcode {opcode:#09b})")
