"""RV32IM instruction-set simulator with pipeline timing.

The CPU has Harvard-style ports like the paper's µRISC-V: an
instruction port (AHB-Lite to BRAM program memory) and a data port
(AHB-Lite into the system bus, where the decoder splits NVDLA register
space from DRAM).  Each :meth:`Cpu.step` executes one instruction
functionally and returns its cycle cost from the
:class:`~repro.riscv.pipeline.PipelineModel` plus bus wait states.

The CPU also tracks *polling streaks* — repeated loads from the same
address returning the same value inside a tight backward loop.  The
SoC executor uses the streak to fast-forward simulated time to the
next NVDLA event instead of spinning through millions of identical
poll iterations (cycle accounting is unchanged; see
:mod:`repro.core.executor`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.bus.types import BusPort
from repro.errors import CpuFault
from repro.riscv.isa import Decoded, decode, sign_extend, to_s32, to_u32
from repro.riscv.pipeline import PipelineModel
from repro.riscv.program import Program

# Semihosting ecall numbers (RISC-V Linux-like ABI subset).
ECALL_EXIT = 93
ECALL_PUTCHAR = 64


@lru_cache(maxsize=1 << 16)
def _decode_cached(word: int) -> Decoded:
    return decode(word)


@dataclass
class CpuState:
    """Snapshot of architectural state for debugging and tests."""

    pc: int
    regs: tuple[int, ...]
    cycles: int
    instret: int
    halted: bool
    exit_code: int | None = None


@dataclass
class _PollTracker:
    """Detects tight poll loops (same load pc/address/value repeating)."""

    pc: int = -1
    address: int = -1
    value: int = -1
    streak: int = 0

    def observe_load(self, pc: int, address: int, value: int) -> None:
        if pc == self.pc and address == self.address and value == self.value:
            self.streak += 1
        else:
            self.pc, self.address, self.value = pc, address, value
            self.streak = 0

    def reset(self) -> None:
        self.pc = self.address = self.value = -1
        self.streak = 0


class Cpu:
    """RV32IM core with 4-stage pipeline timing.

    Parameters
    ----------
    ibus:
        Instruction-fetch port (program memory).
    dbus:
        Data port (system bus: NVDLA registers + DRAM).
    reset_pc:
        Initial program counter.
    pipeline:
        Timing model; a default 4-stage model is created if omitted.
    fetch_cache:
        Cache fetched words by pc (valid because program memory is
        immutable at run time); decoding is cached globally.
    """

    def __init__(
        self,
        ibus: BusPort,
        dbus: BusPort,
        reset_pc: int = 0,
        pipeline: PipelineModel | None = None,
        fetch_cache: bool = True,
    ) -> None:
        self.ibus = ibus
        self.dbus = dbus
        self.pipeline = pipeline or PipelineModel()
        self.reset_pc = reset_pc
        self._fetch_cache_enabled = fetch_cache
        self._fetch_cache: dict[int, tuple[int, int]] = {}
        self.console = bytearray()
        self.csrs: dict[int, int] = {}
        self.poll = _PollTracker()
        self.trace_hook = None  # optional callable(pc, Decoded)
        self.reset()

    # ------------------------------------------------------------------
    # Control.
    # ------------------------------------------------------------------

    def reset(self, keep_fetch_cache: bool = False) -> None:
        """Return to the reset state.

        ``keep_fetch_cache`` is timing-safe only when program memory is
        unchanged since the cache was filled: cached fetches return the
        exact (word, wait) pair the bus produced, so replaying the same
        program yields identical cycles either way.
        """
        self.regs = [0] * 32
        self.pc = self.reset_pc
        self.halted = False
        self.exit_code: int | None = None
        self.cycles = 0
        self.instret = 0
        self.pipeline.reset()
        self.poll.reset()
        if not keep_fetch_cache:
            self._fetch_cache.clear()

    def state(self) -> CpuState:
        return CpuState(
            pc=self.pc,
            regs=tuple(self.regs),
            cycles=self.cycles,
            instret=self.instret,
            halted=self.halted,
            exit_code=self.exit_code,
        )

    def invalidate_fetch_cache(self) -> None:
        self._fetch_cache.clear()

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def step(self) -> int:
        """Execute one instruction; return its cycle cost."""
        if self.halted:
            return 0
        pc = self.pc
        word, fetch_wait = self._fetch(pc)
        try:
            d = _decode_cached(word)
        except Exception as exc:
            raise CpuFault(f"illegal instruction 0x{word:08x}: {exc}", pc=pc) from exc

        next_pc = (pc + 4) & 0xFFFFFFFF
        taken = False
        bus_wait = 0
        regs = self.regs
        m = d.mnemonic

        if d.spec.fmt.name == "R":
            a, b = regs[d.rs1], regs[d.rs2]
            self._write_reg(d.rd, _alu_r(m, a, b, pc))
        elif m == "lui":
            self._write_reg(d.rd, to_u32(d.imm << 12))
        elif m == "auipc":
            self._write_reg(d.rd, to_u32(pc + (d.imm << 12)))
        elif m == "jal":
            self._write_reg(d.rd, next_pc)
            next_pc = to_u32(pc + d.imm)
            taken = True
        elif m == "jalr":
            target = to_u32(regs[d.rs1] + d.imm) & ~1
            self._write_reg(d.rd, next_pc)
            next_pc = target
            taken = True
        elif d.is_branch:
            if _branch_taken(m, regs[d.rs1], regs[d.rs2]):
                next_pc = to_u32(pc + d.imm)
                taken = True
        elif d.is_load:
            address = to_u32(regs[d.rs1] + d.imm)
            value, bus_wait = self._load(m, address, pc)
            self._write_reg(d.rd, value)
            self.poll.observe_load(pc, address, value)
        elif d.is_store:
            address = to_u32(regs[d.rs1] + d.imm)
            bus_wait = self._store(m, address, regs[d.rs2], pc)
            self.poll.reset()
        elif d.spec.fmt.name in ("I", "SHIFT"):
            self._write_reg(d.rd, _alu_i(m, regs[d.rs1], d.imm, pc))
        elif d.spec.fmt.name in ("CSR", "CSRI"):
            self._execute_csr(d)
        elif m == "ecall":
            self._execute_ecall()
        elif m == "ebreak":
            self.halted = True
            if self.exit_code is None:
                self.exit_code = 0
        elif m == "fence":
            pass
        else:  # pragma: no cover - table is exhaustive
            raise CpuFault(f"unimplemented mnemonic {m}", pc=pc)

        cost = self.pipeline.instruction_cycles(d, taken=taken, bus_wait=bus_wait + fetch_wait)
        self.cycles += cost
        self.instret += 1
        self.pc = next_pc
        if self.trace_hook is not None:
            self.trace_hook(pc, d)
        return cost

    def run(self, max_instructions: int = 10_000_000) -> CpuState:
        """Run until halt or the instruction budget is exhausted."""
        executed = 0
        while not self.halted and executed < max_instructions:
            self.step()
            executed += 1
        if not self.halted:
            raise CpuFault(f"program did not halt within {max_instructions} instructions", pc=self.pc)
        return self.state()

    def load_program(self, program: Program) -> None:
        """Copy a program image into instruction memory and reset."""
        data = program.to_bytes()
        from repro.bus.types import Transfer, AccessType  # local to avoid cycle

        self.ibus.transfer(
            Transfer(
                address=program.base,
                size=4,
                access=AccessType.WRITE,
                data=data,
                burst_len=len(data) // 4,
                master="loader",
            )
        )
        self.reset_pc = program.entry if program.entry is not None else program.base
        self.reset()

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _write_reg(self, rd: int, value: int) -> None:
        if rd != 0:
            self.regs[rd] = to_u32(value)

    def _fetch(self, pc: int) -> tuple[int, int]:
        if self._fetch_cache_enabled:
            cached = self._fetch_cache.get(pc)
            if cached is not None:
                return cached
        reply = self.ibus.read(pc, 4, master="ifetch")
        word = reply.value()
        wait = max(0, reply.cycles - 1)
        if self._fetch_cache_enabled:
            self._fetch_cache[pc] = (word, wait)
        return word, wait

    def _load(self, mnemonic: str, address: int, pc: int) -> tuple[int, int]:
        size = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4}[mnemonic]
        try:
            reply = self.dbus.read(address, size, master="cpu")
        except Exception as exc:
            raise CpuFault(f"load fault at 0x{address:08x}: {exc}", pc=pc) from exc
        raw = reply.value()
        if mnemonic == "lb":
            value = to_u32(sign_extend(raw, 8))
        elif mnemonic == "lh":
            value = to_u32(sign_extend(raw, 16))
        else:
            value = raw
        return value, max(0, reply.cycles - 1)

    def _store(self, mnemonic: str, address: int, value: int, pc: int) -> int:
        size = {"sb": 1, "sh": 2, "sw": 4}[mnemonic]
        try:
            reply = self.dbus.write(address, value & ((1 << (8 * size)) - 1), size, master="cpu")
        except Exception as exc:
            raise CpuFault(f"store fault at 0x{address:08x}: {exc}", pc=pc) from exc
        return max(0, reply.cycles - 1)

    def _csr_read(self, address: int) -> int:
        from repro.riscv.isa import CSR_ADDRESSES

        if address in (CSR_ADDRESSES["mcycle"], CSR_ADDRESSES["cycle"]):
            return to_u32(self.cycles)
        if address in (CSR_ADDRESSES["mcycleh"], CSR_ADDRESSES["cycleh"]):
            return to_u32(self.cycles >> 32)
        if address in (CSR_ADDRESSES["minstret"], CSR_ADDRESSES["instret"]):
            return to_u32(self.instret)
        if address in (CSR_ADDRESSES["minstreth"], CSR_ADDRESSES["instreth"]):
            return to_u32(self.instret >> 32)
        if address == CSR_ADDRESSES["mhartid"]:
            return 0
        return self.csrs.get(address, 0)

    def _execute_csr(self, d: Decoded) -> None:
        old = self._csr_read(d.csr)
        if d.spec.fmt.name == "CSRI":
            operand = d.imm
            write = d.mnemonic == "csrrwi" or operand != 0
        else:
            operand = self.regs[d.rs1]
            write = d.mnemonic == "csrrw" or d.rs1 != 0
        if write:
            if d.mnemonic in ("csrrw", "csrrwi"):
                new = operand
            elif d.mnemonic in ("csrrs", "csrrsi"):
                new = old | operand
            else:
                new = old & ~operand
            self.csrs[d.csr] = to_u32(new)
        self._write_reg(d.rd, old)

    def _execute_ecall(self) -> None:
        code = self.regs[17]  # a7
        if code == ECALL_EXIT:
            self.halted = True
            self.exit_code = to_s32(self.regs[10])
        elif code == ECALL_PUTCHAR:
            self.console.append(self.regs[10] & 0xFF)
        else:
            raise CpuFault(f"unsupported ecall {code}", pc=self.pc)

    def console_text(self) -> str:
        return self.console.decode("utf-8", errors="replace")


def _alu_r(mnemonic: str, a: int, b: int, pc: int) -> int:
    sa, sb = to_s32(a), to_s32(b)
    if mnemonic == "add":
        return a + b
    if mnemonic == "sub":
        return a - b
    if mnemonic == "sll":
        return a << (b & 31)
    if mnemonic == "slt":
        return int(sa < sb)
    if mnemonic == "sltu":
        return int(a < b)
    if mnemonic == "xor":
        return a ^ b
    if mnemonic == "srl":
        return a >> (b & 31)
    if mnemonic == "sra":
        return sa >> (b & 31)
    if mnemonic == "or":
        return a | b
    if mnemonic == "and":
        return a & b
    if mnemonic == "mul":
        return sa * sb
    if mnemonic == "mulh":
        return (sa * sb) >> 32
    if mnemonic == "mulhsu":
        return (sa * b) >> 32
    if mnemonic == "mulhu":
        return (a * b) >> 32
    if mnemonic == "div":
        if b == 0:
            return -1
        if sa == -(1 << 31) and sb == -1:
            return sa
        quotient = abs(sa) // abs(sb)  # RISC-V divides toward zero
        return -quotient if (sa < 0) != (sb < 0) else quotient
    if mnemonic == "divu":
        return 0xFFFFFFFF if b == 0 else a // b
    if mnemonic == "rem":
        if b == 0:
            return sa
        if sa == -(1 << 31) and sb == -1:
            return 0
        remainder = abs(sa) % abs(sb)  # remainder takes the dividend's sign
        return -remainder if sa < 0 else remainder
    if mnemonic == "remu":
        return a if b == 0 else a % b
    raise CpuFault(f"unimplemented R-type {mnemonic}", pc=pc)


def _alu_i(mnemonic: str, a: int, imm: int, pc: int) -> int:
    sa = to_s32(a)
    if mnemonic == "addi":
        return a + imm
    if mnemonic == "slti":
        return int(sa < imm)
    if mnemonic == "sltiu":
        return int(a < to_u32(imm))
    if mnemonic == "xori":
        return a ^ to_u32(imm)
    if mnemonic == "ori":
        return a | to_u32(imm)
    if mnemonic == "andi":
        return a & to_u32(imm)
    if mnemonic == "slli":
        return a << imm
    if mnemonic == "srli":
        return a >> imm
    if mnemonic == "srai":
        return sa >> imm
    raise CpuFault(f"unimplemented I-type {mnemonic}", pc=pc)


def _branch_taken(mnemonic: str, a: int, b: int) -> bool:
    if mnemonic == "beq":
        return a == b
    if mnemonic == "bne":
        return a != b
    if mnemonic == "blt":
        return to_s32(a) < to_s32(b)
    if mnemonic == "bge":
        return to_s32(a) >= to_s32(b)
    if mnemonic == "bltu":
        return a < b
    return a >= b  # bgeu
