"""RV32IM disassembler.

Inverse of the assembler for debugging, trace dumps and the
encode/decode round-trip property tests.
"""

from __future__ import annotations

from repro.errors import IsaError
from repro.riscv.isa import ABI_REGISTER_NAMES, CSR_NAMES, Decoded, Format, decode
from repro.riscv.program import Program


def _reg(index: int) -> str:
    return ABI_REGISTER_NAMES[index]


def _csr_name(address: int) -> str:
    return CSR_NAMES.get(address, f"0x{address:03x}")


def format_decoded(d: Decoded, pc: int | None = None) -> str:
    """Render a decoded instruction as assembly text.

    If ``pc`` is given, branch/jump targets are shown as absolute
    addresses (matching what the assembler accepts back in).
    """
    m = d.mnemonic
    fmt = d.spec.fmt
    if fmt is Format.R:
        return f"{m} {_reg(d.rd)}, {_reg(d.rs1)}, {_reg(d.rs2)}"
    if fmt is Format.U:
        return f"{m} {_reg(d.rd)}, 0x{d.imm:x}"
    if fmt is Format.J:
        target = f"0x{(pc + d.imm) & 0xFFFFFFFF:x}" if pc is not None else str(d.imm)
        return f"{m} {_reg(d.rd)}, {target}"
    if fmt is Format.B:
        target = f"0x{(pc + d.imm) & 0xFFFFFFFF:x}" if pc is not None else str(d.imm)
        return f"{m} {_reg(d.rs1)}, {_reg(d.rs2)}, {target}"
    if fmt is Format.SHIFT:
        return f"{m} {_reg(d.rd)}, {_reg(d.rs1)}, {d.imm}"
    if fmt is Format.CSR:
        return f"{m} {_reg(d.rd)}, {_csr_name(d.csr)}, {_reg(d.rs1)}"
    if fmt is Format.CSRI:
        return f"{m} {_reg(d.rd)}, {_csr_name(d.csr)}, {d.imm}"
    if fmt is Format.SYS or fmt is Format.FENCE:
        return m
    if fmt is Format.I:
        if d.is_load or m == "jalr":
            return f"{m} {_reg(d.rd)}, {d.imm}({_reg(d.rs1)})"
        return f"{m} {_reg(d.rd)}, {_reg(d.rs1)}, {d.imm}"
    if fmt is Format.S:
        return f"{m} {_reg(d.rs2)}, {d.imm}({_reg(d.rs1)})"
    raise IsaError(f"unhandled format {fmt}")  # pragma: no cover


def disassemble(word: int, pc: int | None = None) -> str:
    """Disassemble one 32-bit word."""
    return format_decoded(decode(word), pc=pc)


def disassemble_program(program: Program, with_symbols: bool = True) -> str:
    """Produce an address-annotated listing of a whole program."""
    by_address: dict[int, str] = {}
    if with_symbols:
        for name, address in program.symbols.items():
            by_address.setdefault(address, name)
    lines: list[str] = []
    for index, word in enumerate(program.words):
        address = program.base + index * 4
        label = by_address.get(address)
        if label:
            lines.append(f"{label}:")
        try:
            text = disassemble(word, pc=address)
        except IsaError:
            text = f".word 0x{word:08x}"
        lines.append(f"  {address:08x}:  {word:08x}  {text}")
    return "\n".join(lines) + "\n"
