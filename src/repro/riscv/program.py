"""Machine-code program images.

The paper's flow ships programs to the FPGA as ``.mem`` files loaded
into BRAM program memory and weight/input blobs as ``.bin`` files
preloaded into DDR4.  :class:`Program` is the in-memory form of the
former, with serialisers for both file formats.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IsaError


@dataclass
class Program:
    """An assembled machine-code image.

    Attributes
    ----------
    base:
        Load address of the first byte.
    words:
        Little-endian 32-bit instruction/data words.
    symbols:
        Label → absolute address map (debugging, tests, codegen).
    entry:
        Initial program counter; defaults to ``base``.
    source:
        Optional assembly source the image was built from.
    """

    base: int = 0
    words: list[int] = field(default_factory=list)
    symbols: dict[str, int] = field(default_factory=dict)
    entry: int | None = None
    source: str | None = None

    def __post_init__(self) -> None:
        if self.base % 4 != 0:
            raise IsaError("program base must be word-aligned")
        if self.entry is None:
            self.entry = self.base

    @property
    def size_bytes(self) -> int:
        return len(self.words) * 4

    @property
    def end(self) -> int:
        return self.base + self.size_bytes

    def word_at(self, address: int) -> int:
        if address % 4 != 0:
            raise IsaError(f"unaligned program address 0x{address:08x}")
        index = (address - self.base) // 4
        if not 0 <= index < len(self.words):
            raise IsaError(f"address 0x{address:08x} outside program image")
        return self.words[index]

    def to_bytes(self) -> bytes:
        return b"".join(word.to_bytes(4, "little") for word in self.words)

    def to_bin_file(self) -> bytes:
        """Raw ``.bin`` image (what the Zynq preloads into memory)."""
        return self.to_bytes()

    def to_mem_file(self) -> str:
        """Vivado ``.mem`` format: ``@word_address`` then hex words."""
        lines = [f"@{self.base // 4:08X}"]
        lines.extend(f"{word:08X}" for word in self.words)
        return "\n".join(lines) + "\n"

    @classmethod
    def from_bytes(cls, blob: bytes, base: int = 0) -> "Program":
        if len(blob) % 4 != 0:
            raise IsaError("program image must be a whole number of words")
        words = [int.from_bytes(blob[i : i + 4], "little") for i in range(0, len(blob), 4)]
        return cls(base=base, words=words)

    @classmethod
    def from_mem_file(cls, text: str) -> "Program":
        base: int | None = None
        address: int | None = None
        words: list[int] = []
        for raw_line in text.splitlines():
            line = raw_line.split("//")[0].strip()
            if not line:
                continue
            for token in line.split():
                if token.startswith("@"):
                    word_address = int(token[1:], 16)
                    if base is None:
                        base = word_address * 4
                        address = word_address
                    elif word_address != address:
                        raise IsaError(".mem images with holes are not supported")
                    continue
                if base is None:
                    base = 0
                    address = 0
                words.append(int(token, 16))
                assert address is not None
                address += 1
        return cls(base=base or 0, words=words)
