"""Two-pass RV32IM assembler.

Stands in for the Codasip Studio SDK that the paper uses to compile
the generated configuration assembly into machine code.  Supports the
subset the bare-metal flow needs, plus enough extras to write the test
programs by hand:

- labels, forward references, ``.equ`` symbols,
- directives: ``.org .align .word .half .byte .space .zero .ascii
  .asciz .equ .set .global .text .data`` (single linear section),
- expressions with ``+ - * ( )``, ``%hi()``/``%lo()`` relocations,
- pseudo-instructions: ``nop li la mv not neg j jr jal(1-arg) ret call
  beqz bnez blez bgez bltz bgtz bgt ble bgtu bleu csrr csrw seqz snez``.

``%lo`` produces the signed low 12 bits and ``%hi`` the matching
corrected upper 20 bits, so ``lui/addi`` pairs compose to the exact
32-bit constant as with GNU as.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import AssemblerError
from repro.riscv import isa
from repro.riscv.isa import CSR_ADDRESSES, Format, REGISTER_ALIASES, SPEC_BY_MNEMONIC
from repro.riscv.program import Program

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*)\s*:")
_TOKEN_RE = re.compile(
    r"\s*(%hi|%lo|[A-Za-z_.$][\w.$]*|0[xX][0-9a-fA-F]+|0[bB][01]+|\d+|[()+\-*,]|'(?:\\.|[^'])')"
)


def _hi20(value: int) -> int:
    """Upper 20 bits, corrected for the sign of the low 12 (GNU-as rule)."""
    return ((value + 0x800) >> 12) & 0xFFFFF


def _lo12(value: int) -> int:
    """Signed low 12 bits."""
    low = value & 0xFFF
    return low - 0x1000 if low & 0x800 else low


@dataclass
class _Item:
    """One output element planned during pass 1."""

    kind: str  # 'insn' or 'data'
    address: int
    line: int
    mnemonic: str = ""
    operands: tuple[str, ...] = ()
    data_width: int = 4
    expr: str = ""


class _ExprEvaluator:
    """Tiny recursive-descent evaluator for assembler expressions."""

    def __init__(self, symbols: dict[str, int], line: int) -> None:
        self._symbols = symbols
        self._line = line
        self._tokens: list[str] = []
        self._pos = 0

    def evaluate(self, text: str) -> int:
        self._tokens = self._tokenize(text)
        self._pos = 0
        value = self._expr()
        if self._pos != len(self._tokens):
            raise AssemblerError(f"trailing junk in expression {text!r}", self._line)
        return value

    def _tokenize(self, text: str) -> list[str]:
        tokens: list[str] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if not match:
                raise AssemblerError(f"bad expression near {text[pos:]!r}", self._line)
            tokens.append(match.group(1))
            pos = match.end()
        return tokens

    def _peek(self) -> str | None:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise AssemblerError("unexpected end of expression", self._line)
        self._pos += 1
        return token

    def _expr(self) -> int:
        value = self._term()
        while self._peek() in ("+", "-"):
            op = self._next()
            rhs = self._term()
            value = value + rhs if op == "+" else value - rhs
        return value

    def _term(self) -> int:
        value = self._factor()
        while self._peek() == "*":
            self._next()
            value *= self._factor()
        return value

    def _factor(self) -> int:
        token = self._next()
        if token == "(":
            value = self._expr()
            if self._next() != ")":
                raise AssemblerError("missing ')'", self._line)
            return value
        if token == "-":
            return -self._factor()
        if token == "+":
            return self._factor()
        if token in ("%hi", "%lo"):
            if self._next() != "(":
                raise AssemblerError(f"{token} needs parentheses", self._line)
            value = self._expr()
            if self._next() != ")":
                raise AssemblerError("missing ')'", self._line)
            return _hi20(value) if token == "%hi" else _lo12(value)
        if token.startswith("'"):
            body = token[1:-1]
            unescaped = body.encode().decode("unicode_escape")
            if len(unescaped) != 1:
                raise AssemblerError(f"bad character literal {token}", self._line)
            return ord(unescaped)
        if token[0].isdigit():
            try:
                return int(token, 0)
            except ValueError as exc:
                raise AssemblerError(f"bad number {token!r}", self._line) from exc
        if token in self._symbols:
            return self._symbols[token]
        raise AssemblerError(f"undefined symbol {token!r}", self._line)


class Assembler:
    """Two-pass assembler producing a :class:`Program`."""

    def __init__(self, base: int = 0) -> None:
        self._base = base

    def assemble(self, source: str) -> Program:
        items, symbols, top = self._pass1(source)
        words = self._pass2(items, symbols, top)
        entry = symbols.get("_start", self._base)
        return Program(base=self._base, words=words, symbols=symbols, entry=entry, source=source)

    # ------------------------------------------------------------------
    # Pass 1: size everything, collect symbols.
    # ------------------------------------------------------------------

    def _pass1(self, source: str) -> tuple[list[_Item], dict[str, int], int]:
        address = self._base
        items: list[_Item] = []
        symbols: dict[str, int] = {}
        equ_exprs: dict[str, tuple[str, int]] = {}
        for line_no, raw_line in enumerate(source.splitlines(), start=1):
            line = self._strip_comment(raw_line)
            while True:
                match = _LABEL_RE.match(line)
                if not match:
                    break
                label = match.group(1)
                if label in symbols:
                    raise AssemblerError(f"duplicate label {label!r}", line_no)
                symbols[label] = address
                line = line[match.end() :].strip()
            if not line:
                continue
            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            rest = parts[1].strip() if len(parts) > 1 else ""
            if mnemonic.startswith("."):
                address = self._pass1_directive(
                    mnemonic, rest, address, items, symbols, equ_exprs, line_no
                )
                continue
            operands = self._split_operands(rest)
            for expanded in self._expand_pseudo(mnemonic, operands, line_no):
                items.append(
                    _Item(
                        kind="insn",
                        address=address,
                        line=line_no,
                        mnemonic=expanded[0],
                        operands=tuple(expanded[1:]),
                    )
                )
                address += 4
        # Resolve .equ expressions now that all labels are known.
        for name, (expr, line_no) in equ_exprs.items():
            symbols[name] = _ExprEvaluator(symbols, line_no).evaluate(expr)
        return items, symbols, address

    def _pass1_directive(
        self,
        mnemonic: str,
        rest: str,
        address: int,
        items: list[_Item],
        symbols: dict[str, int],
        equ_exprs: dict[str, tuple[str, int]],
        line_no: int,
    ) -> int:
        if mnemonic in (".text", ".data", ".section"):
            return address
        if mnemonic == ".global" or mnemonic == ".globl":
            return address
        if mnemonic == ".org":
            target = _ExprEvaluator(symbols, line_no).evaluate(rest)
            if target < address:
                raise AssemblerError(f".org cannot move backwards (0x{target:x})", line_no)
            while address < target:
                items.append(_Item(kind="data", address=address, line=line_no, data_width=1, expr="0"))
                address += 1
            return address
        if mnemonic == ".align":
            power = _ExprEvaluator(symbols, line_no).evaluate(rest)
            step = 1 << power
            while address % step:
                items.append(_Item(kind="data", address=address, line=line_no, data_width=1, expr="0"))
                address += 1
            return address
        if mnemonic in (".equ", ".set"):
            name, _, expr = rest.partition(",")
            name = name.strip()
            if not name:
                raise AssemblerError(".equ needs a name", line_no)
            equ_exprs[name] = (expr.strip(), line_no)
            return address
        if mnemonic in (".word", ".half", ".byte"):
            width = {".word": 4, ".half": 2, ".byte": 1}[mnemonic]
            for expr in self._split_operands(rest):
                items.append(
                    _Item(kind="data", address=address, line=line_no, data_width=width, expr=expr)
                )
                address += width
            return address
        if mnemonic in (".space", ".zero"):
            count = _ExprEvaluator(symbols, line_no).evaluate(rest)
            for _ in range(count):
                items.append(_Item(kind="data", address=address, line=line_no, data_width=1, expr="0"))
                address += 1
            return address
        if mnemonic in (".ascii", ".asciz"):
            text = rest.strip()
            if len(text) < 2 or text[0] != '"' or text[-1] != '"':
                raise AssemblerError("string directives need a quoted string", line_no)
            payload = text[1:-1].encode().decode("unicode_escape").encode("latin-1")
            if mnemonic == ".asciz":
                payload += b"\x00"
            for byte in payload:
                items.append(
                    _Item(kind="data", address=address, line=line_no, data_width=1, expr=str(byte))
                )
                address += 1
            return address
        raise AssemblerError(f"unknown directive {mnemonic!r}", line_no)

    @staticmethod
    def _strip_comment(line: str) -> str:
        in_string = False
        for i, ch in enumerate(line):
            if ch == '"':
                in_string = not in_string
            elif not in_string and (ch == "#" or line[i : i + 2] == "//" or ch == ";"):
                return line[:i].strip()
        return line.strip()

    @staticmethod
    def _split_operands(rest: str) -> list[str]:
        if not rest:
            return []
        operands: list[str] = []
        depth = 0
        current = ""
        for ch in rest:
            if ch == "," and depth == 0:
                operands.append(current.strip())
                current = ""
                continue
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
            current += ch
        if current.strip():
            operands.append(current.strip())
        return operands

    # ------------------------------------------------------------------
    # Pseudo-instruction expansion (sizes fixed so label math is stable).
    # ------------------------------------------------------------------

    def _expand_pseudo(
        self, mnemonic: str, ops: list[str], line: int
    ) -> list[list[str]]:
        def need(count: int) -> None:
            if len(ops) != count:
                raise AssemblerError(
                    f"{mnemonic} expects {count} operand(s), got {len(ops)}", line
                )

        if mnemonic == "nop":
            need(0)
            return [["addi", "x0", "x0", "0"]]
        if mnemonic == "li":
            need(2)
            # Fixed two-instruction expansion keeps addresses stable
            # across passes regardless of the immediate's size.
            return [
                ["lui", ops[0], f"%hi({ops[1]})"],
                ["addi", ops[0], ops[0], f"%lo({ops[1]})"],
            ]
        if mnemonic == "la":
            need(2)
            return [
                ["lui", ops[0], f"%hi({ops[1]})"],
                ["addi", ops[0], ops[0], f"%lo({ops[1]})"],
            ]
        if mnemonic == "mv":
            need(2)
            return [["addi", ops[0], ops[1], "0"]]
        if mnemonic == "not":
            need(2)
            return [["xori", ops[0], ops[1], "-1"]]
        if mnemonic == "neg":
            need(2)
            return [["sub", ops[0], "x0", ops[1]]]
        if mnemonic == "seqz":
            need(2)
            return [["sltiu", ops[0], ops[1], "1"]]
        if mnemonic == "snez":
            need(2)
            return [["sltu", ops[0], "x0", ops[1]]]
        if mnemonic == "j":
            need(1)
            return [["jal", "x0", ops[0]]]
        if mnemonic == "jal" and len(ops) == 1:
            return [["jal", "ra", ops[0]]]
        if mnemonic == "jr":
            need(1)
            return [["jalr", "x0", ops[0], "0"]]
        if mnemonic == "jalr" and len(ops) == 1:
            return [["jalr", "ra", ops[0], "0"]]
        if mnemonic == "ret":
            need(0)
            return [["jalr", "x0", "ra", "0"]]
        if mnemonic == "call":
            need(1)
            return [["jal", "ra", ops[0]]]
        if mnemonic == "beqz":
            need(2)
            return [["beq", ops[0], "x0", ops[1]]]
        if mnemonic == "bnez":
            need(2)
            return [["bne", ops[0], "x0", ops[1]]]
        if mnemonic == "blez":
            need(2)
            return [["bge", "x0", ops[0], ops[1]]]
        if mnemonic == "bgez":
            need(2)
            return [["bge", ops[0], "x0", ops[1]]]
        if mnemonic == "bltz":
            need(2)
            return [["blt", ops[0], "x0", ops[1]]]
        if mnemonic == "bgtz":
            need(2)
            return [["blt", "x0", ops[0], ops[1]]]
        if mnemonic == "bgt":
            need(3)
            return [["blt", ops[1], ops[0], ops[2]]]
        if mnemonic == "ble":
            need(3)
            return [["bge", ops[1], ops[0], ops[2]]]
        if mnemonic == "bgtu":
            need(3)
            return [["bltu", ops[1], ops[0], ops[2]]]
        if mnemonic == "bleu":
            need(3)
            return [["bgeu", ops[1], ops[0], ops[2]]]
        if mnemonic == "csrr":
            need(2)
            return [["csrrs", ops[0], ops[1], "x0"]]
        if mnemonic == "csrw":
            need(2)
            return [["csrrw", "x0", ops[0], ops[1]]]
        if mnemonic not in SPEC_BY_MNEMONIC:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}", line)
        return [[mnemonic, *ops]]

    # ------------------------------------------------------------------
    # Pass 2: encode.
    # ------------------------------------------------------------------

    def _pass2(self, items: list[_Item], symbols: dict[str, int], top: int) -> list[int]:
        size = top - self._base
        blob = bytearray(size)
        for item in items:
            offset = item.address - self._base
            if item.kind == "data":
                value = _ExprEvaluator(symbols, item.line).evaluate(item.expr)
                blob[offset : offset + item.data_width] = (value & ((1 << (8 * item.data_width)) - 1)).to_bytes(
                    item.data_width, "little"
                )
                continue
            word = self._encode_item(item, symbols)
            blob[offset : offset + 4] = word.to_bytes(4, "little")
        if size % 4 != 0:
            blob.extend(b"\x00" * (4 - size % 4))
        return [int.from_bytes(blob[i : i + 4], "little") for i in range(0, len(blob), 4)]

    def _encode_item(self, item: _Item, symbols: dict[str, int]) -> int:
        spec = SPEC_BY_MNEMONIC.get(item.mnemonic)
        if spec is None:
            raise AssemblerError(f"unknown mnemonic {item.mnemonic!r}", item.line)
        evaluator = _ExprEvaluator(symbols, item.line)
        ops = list(item.operands)

        def reg(text: str) -> int:
            index = REGISTER_ALIASES.get(text.lower())
            if index is None:
                raise AssemblerError(f"unknown register {text!r}", item.line)
            return index

        def imm(text: str) -> int:
            return evaluator.evaluate(text)

        def mem_operand(text: str) -> tuple[int, int]:
            match = re.match(r"^(.*)\(\s*([\w.$]+)\s*\)$", text)
            if not match:
                raise AssemblerError(f"expected offset(reg), got {text!r}", item.line)
            offset_text = match.group(1).strip() or "0"
            return imm(offset_text), reg(match.group(2))

        def pc_relative(text: str) -> int:
            return imm(text) - item.address

        try:
            if spec.fmt is Format.R:
                return isa.encode(item.mnemonic, rd=reg(ops[0]), rs1=reg(ops[1]), rs2=reg(ops[2]))
            if spec.fmt is Format.U:
                return isa.encode(item.mnemonic, rd=reg(ops[0]), imm=imm(ops[1]) & 0xFFFFF)
            if spec.fmt is Format.J:
                return isa.encode(item.mnemonic, rd=reg(ops[0]), imm=pc_relative(ops[1]))
            if spec.fmt is Format.B:
                return isa.encode(
                    item.mnemonic, rs1=reg(ops[0]), rs2=reg(ops[1]), imm=pc_relative(ops[2])
                )
            if spec.fmt is Format.SHIFT:
                return isa.encode(item.mnemonic, rd=reg(ops[0]), rs1=reg(ops[1]), imm=imm(ops[2]))
            if spec.fmt is Format.CSR:
                return isa.encode(
                    item.mnemonic, rd=reg(ops[0]), csr=self._csr(ops[1], item.line), rs1=reg(ops[2])
                )
            if spec.fmt is Format.CSRI:
                return isa.encode(
                    item.mnemonic, rd=reg(ops[0]), csr=self._csr(ops[1], item.line), imm=imm(ops[2])
                )
            if spec.fmt is Format.SYS or spec.fmt is Format.FENCE:
                return isa.encode(item.mnemonic)
            if spec.fmt is Format.I:
                if item.mnemonic in ("lb", "lh", "lw", "lbu", "lhu"):
                    offset, base_reg = mem_operand(ops[1])
                    return isa.encode(item.mnemonic, rd=reg(ops[0]), rs1=base_reg, imm=offset)
                if item.mnemonic == "jalr":
                    if len(ops) == 3:
                        return isa.encode("jalr", rd=reg(ops[0]), rs1=reg(ops[1]), imm=imm(ops[2]))
                    offset, base_reg = mem_operand(ops[1])
                    return isa.encode("jalr", rd=reg(ops[0]), rs1=base_reg, imm=offset)
                return isa.encode(item.mnemonic, rd=reg(ops[0]), rs1=reg(ops[1]), imm=imm(ops[2]))
            if spec.fmt is Format.S:
                offset, base_reg = mem_operand(ops[1])
                return isa.encode(item.mnemonic, rs2=reg(ops[0]), rs1=base_reg, imm=offset)
        except AssemblerError:
            raise
        except IndexError as exc:
            raise AssemblerError(
                f"{item.mnemonic} is missing operands ({', '.join(item.operands)})", item.line
            ) from exc
        except Exception as exc:
            raise AssemblerError(f"{item.mnemonic}: {exc}", item.line) from exc
        raise AssemblerError(f"unhandled format for {item.mnemonic!r}", item.line)

    @staticmethod
    def _csr(text: str, line: int) -> int:
        name = text.lower()
        if name in CSR_ADDRESSES:
            return CSR_ADDRESSES[name]
        try:
            return int(text, 0)
        except ValueError as exc:
            raise AssemblerError(f"unknown CSR {text!r}", line) from exc


def assemble(source: str, base: int = 0) -> Program:
    """Assemble ``source`` into a :class:`Program` loaded at ``base``."""
    return Assembler(base=base).assemble(source)
