"""RV32IM instruction-set simulator and toolchain.

Replaces the Codasip µRISC-V core and its Studio SDK in the paper's
flow:

- :mod:`repro.riscv.isa` — instruction encodings (RV32I + M + Zicsr),
- :mod:`repro.riscv.assembler` — two-pass assembler (the paper uses
  the Codasip SDK to compile the generated assembly),
- :mod:`repro.riscv.disassembler` — decoder for debugging and tests,
- :mod:`repro.riscv.cpu` — the ISS with a 4-stage pipeline timing
  model matching the µRISC-V's IF/ID/EX/WB organisation,
- :mod:`repro.riscv.program` — machine-code images (`.mem`/`.bin`).
"""

from repro.riscv.isa import Decoded, decode, encode
from repro.riscv.assembler import Assembler, assemble
from repro.riscv.disassembler import disassemble, disassemble_program
from repro.riscv.cpu import Cpu, CpuState
from repro.riscv.pipeline import PipelineModel, PipelineStats
from repro.riscv.program import Program

__all__ = [
    "Assembler",
    "Cpu",
    "CpuState",
    "Decoded",
    "PipelineModel",
    "PipelineStats",
    "Program",
    "assemble",
    "decode",
    "disassemble",
    "disassemble_program",
    "encode",
]
