"""Timing model of the µRISC-V 4-stage pipeline.

The Codasip µRISC-V used in the paper is a 32-bit, 4-stage in-order
pipeline (IF / ID / EX / WB).  With a 1-cycle program BRAM it sustains
one instruction per cycle except for the classic in-order penalties:

- **load-use hazard** — a load followed immediately by a consumer
  stalls one cycle (the loaded value arrives at WB),
- **taken control flow** — branches resolve in EX, so a taken branch
  or any jump flushes the two younger stages,
- **multi-cycle EX** — M-extension multiply/divide iterate in EX,
- **bus wait states** — data-memory transfers beyond a single cycle
  stall the pipeline for the extra cycles (reported by the bus reply).

The model is table-driven and kept separate from the ISS so the same
functional core can be timed with different pipeline depths in
ablation studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.riscv.isa import Decoded


@dataclass
class PipelineStats:
    """Cycle breakdown accumulated across a run."""

    instructions: int = 0
    cycles: int = 0
    load_use_stalls: int = 0
    control_flushes: int = 0
    muldiv_stalls: int = 0
    bus_wait_cycles: int = 0
    by_class: dict[str, int] = field(default_factory=dict)

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0


@dataclass
class PipelineModel:
    """Cost parameters of the 4-stage in-order pipeline."""

    base_cpi: int = 1
    load_use_penalty: int = 1
    taken_branch_penalty: int = 2  # IF+ID flushed on EX-resolved branches
    jump_penalty: int = 2
    mul_cycles: int = 3  # iterative 32x32 multiplier
    div_cycles: int = 18  # radix-2 divider
    fetch_wait_states: int = 0  # extra cycles per fetch beyond 1-cycle BRAM

    def __post_init__(self) -> None:
        self.stats = PipelineStats()
        self._pending_load_rd: int | None = None

    def reset(self) -> None:
        self.stats = PipelineStats()
        self._pending_load_rd = None

    def instruction_cycles(
        self,
        decoded: Decoded,
        taken: bool = False,
        bus_wait: int = 0,
    ) -> int:
        """Cycles consumed by one instruction.

        Parameters
        ----------
        decoded:
            The decoded instruction.
        taken:
            Whether a branch/jump redirected the front end.
        bus_wait:
            Extra data-bus cycles beyond the ideal single-cycle access
            (from the bus :class:`~repro.bus.types.Reply`).
        """
        cycles = self.base_cpi + self.fetch_wait_states

        # Load-use: the previous instruction was a load whose result
        # this instruction consumes before it reaches WB.
        if self._pending_load_rd is not None and self._pending_load_rd != 0:
            sources = {decoded.rs1, decoded.rs2}
            if self._pending_load_rd in sources:
                cycles += self.load_use_penalty
                self.stats.load_use_stalls += 1
        self._pending_load_rd = decoded.rd if decoded.is_load else None

        if decoded.is_mul_div:
            extra = (
                self.mul_cycles - 1
                if decoded.mnemonic.startswith("mul")
                else self.div_cycles - 1
            )
            cycles += extra
            self.stats.muldiv_stalls += extra

        if taken and (decoded.is_branch or decoded.is_jump):
            penalty = self.jump_penalty if decoded.is_jump else self.taken_branch_penalty
            cycles += penalty
            self.stats.control_flushes += 1

        if bus_wait > 0:
            cycles += bus_wait
            self.stats.bus_wait_cycles += bus_wait

        self.stats.instructions += 1
        self.stats.cycles += cycles
        klass = _classify(decoded)
        self.stats.by_class[klass] = self.stats.by_class.get(klass, 0) + 1
        return cycles


def _classify(decoded: Decoded) -> str:
    if decoded.is_load:
        return "load"
    if decoded.is_store:
        return "store"
    if decoded.is_branch:
        return "branch"
    if decoded.is_jump:
        return "jump"
    if decoded.is_mul_div:
        return "muldiv"
    return "alu"
