"""Benchmark-suite helpers.

Every benchmark regenerates one paper artefact (table or figure),
prints the paper-vs-measured rows, and asserts the *shape* of the
result (ordering, win/lose relations, crossovers) rather than absolute
numbers — the substrate is a simulator, not the authors' ZCU102.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


def single_shot(benchmark, fn):
    """Run an expensive experiment exactly once under the timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def report(capsys):
    """Print a report so it survives pytest's capture with -s or on
    failure, and stash it for the terminal summary."""

    def _report(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _report
