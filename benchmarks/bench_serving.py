"""Serving throughput — the bundle cache against the per-request flow.

A mixed LeNet-5 + ResNet-18 workload on nv_small (INT8) and nv_full
(FP16), served two ways:

- **cold path** — every request runs the full offline flow
  (`generate_baremetal`) and builds a fresh SoC, the pre-serving
  behaviour of the repo;
- **served** — the `repro.serve` service: one flow build per
  deployment, then cache-hit replays on pooled, reused SoC workers.

Asserts the tentpole acceptance criterion: ≥ 5× throughput on repeated
same-deployment requests, with cache-hit outputs bit-identical to the
cold path.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro.baremetal import generate_baremetal
from repro.core import Soc, calibrate
from repro.core.calibration import CalibrationTable
from repro.nn.zoo import ZOO
from repro.nvdla import NV_FULL, NV_SMALL
from repro.nvdla.config import Precision
from repro.serve import (
    BundleCache,
    DeploymentSpec,
    InferenceService,
    ServingPlane,
    make_input_for,
)

WORKLOAD_SEED = 2025


def _mixed_workload(models, config_name, precision, requests, rng):
    deployments = [
        DeploymentSpec(model, config=config_name, precision=precision)
        for model in models
    ]
    nets = {model: ZOO[model]() for model in models}
    return [
        (deployments[i % len(deployments)],
         make_input_for(nets[deployments[i % len(deployments)].model], rng))
        for i in range(requests)
    ]


def _run_cold(workload, config):
    """Per-request offline flow + fresh SoC; returns (seconds, outputs)."""
    outputs = []
    began = time.perf_counter()
    for deployment, image in workload:
        bundle = generate_baremetal(
            ZOO[deployment.model](),
            config,
            precision=deployment.precision,
            input_image=image,
        )
        soc = Soc(config)
        soc.load_bundle(bundle)
        result = soc.run_inference(bundle)
        assert result.ok
        outputs.append(result.output)
    return time.perf_counter() - began, outputs


def _run_served(workload, service):
    began = time.perf_counter()
    for deployment, image in workload:
        service.request(deployment, image)
    responses = service.run_pending()
    elapsed = time.perf_counter() - began
    assert all(r.ok for r in responses)
    ordered = sorted(responses, key=lambda r: r.request_id)
    return elapsed, [r.output for r in ordered], responses


def test_serving_throughput_nv_small(benchmark, report):
    from benchmarks.conftest import single_shot

    rng = np.random.default_rng(WORKLOAD_SEED)
    models = ("lenet5", "resnet18")
    # The cold path is so slow that a few requests suffice to measure
    # it; the served path gets the same mix repeated several times.
    cold_workload = _mixed_workload(models, "nv_small", Precision.INT8, 4, rng)
    warm_workload = cold_workload * 4  # 16 requests, repeated deployments

    cold_seconds, cold_outputs = _run_cold(cold_workload, NV_SMALL)
    cold_rps = len(cold_workload) / cold_seconds

    service = InferenceService(max_batch_size=8)
    # Pre-warm so the measured window is the repeated-request (cache
    # hit) regime the acceptance criterion names; the build cost is
    # reported separately below.
    for deployment, image in cold_workload[: len(models)]:
        service.request(deployment, image)
    build_began = time.perf_counter()
    service.run_pending()
    build_seconds = time.perf_counter() - build_began

    warm_seconds, warm_outputs, responses = single_shot(
        benchmark, lambda: _run_served(warm_workload, service)
    )
    warm_rps = len(warm_workload) / warm_seconds
    speedup = warm_rps / cold_rps

    # Structured metrics export — the benchmark reads the service's
    # numbers as data (ServiceMetrics.to_dict), not rendered text.
    summary = service.metrics.to_dict()
    report(
        "serving throughput — mixed lenet5+resnet18 on nv_small (INT8)\n"
        f"  cold path: {len(cold_workload)} requests in {cold_seconds:.2f} s "
        f"= {cold_rps:.2f} req/s\n"
        f"  served:    {len(warm_workload)} requests in {warm_seconds:.2f} s "
        f"= {warm_rps:.2f} req/s  (one-time builds: {build_seconds:.2f} s)\n"
        f"  speedup:   {speedup:.1f}x\n"
        f"  cache hit rate {summary['cache_hit_rate'] * 100:.0f}%  "
        f"wall p99 {summary['wall']['p99'] * 1e3:.1f} ms\n\n"
        + service.metrics.render()
    )

    # Acceptance: >= 5x throughput on repeated same-deployment requests.
    assert speedup >= 5.0, f"cache-hit path only {speedup:.1f}x faster"
    # All repeated requests were cache hits on reused workers.
    assert all(r.cache_hit for r in responses)
    assert summary["bundle_misses"] == len(models)
    assert summary["failures"] == 0
    assert summary["wall"]["count"] == summary["requests"]
    # Bit-identical to the cold path, request by request.
    for cold_out, warm_out in zip(cold_outputs, warm_outputs):
        assert cold_out is not None and warm_out is not None
        assert np.array_equal(cold_out, warm_out)


def test_fastpath_serving_throughput(benchmark, report):
    """The PR-2 acceptance gate: the calibrated fast tier vs the cached
    cycle-accurate service, same warm workload, shared bundle cache.

    The mix spans the three model classes the zoo serves on nv_small —
    tiny (lenet5), CIFAR-residual (resnet18) and a 224×224 depthwise
    network (mobilenet, where the ISS poll burden is heaviest).
    """
    from benchmarks.conftest import single_shot

    rng = np.random.default_rng(WORKLOAD_SEED)
    models = ("lenet5", "resnet18", "mobilenet")
    cache = BundleCache()
    build_began = time.perf_counter()
    table = calibrate(models, NV_SMALL, cache=cache)
    build_seconds = time.perf_counter() - build_began

    workload = _mixed_workload(models, "nv_small", Precision.INT8, 6, rng)
    ca_service = InferenceService(cache=cache, max_batch_size=8)
    fast_service = InferenceService(cache=cache, max_batch_size=8, calibration=table)

    def _serve(service, mode):
        for deployment, image in workload:
            service.request(replace(deployment, execution_mode=mode), image)
        responses = service.run_pending()
        assert all(r.ok for r in responses)
        return [r for r in sorted(responses, key=lambda r: r.request_id)]

    # Warm both tiers (bundle + worker reuse), then measure steady state.
    _serve(ca_service, "cycle_accurate")
    _serve(fast_service, "fast")

    def _measure():
        began = time.perf_counter()
        ca_responses = _serve(ca_service, "cycle_accurate")
        ca_seconds = time.perf_counter() - began
        began = time.perf_counter()
        fast_responses = _serve(fast_service, "fast")
        fast_seconds = time.perf_counter() - began
        return ca_seconds, fast_seconds, ca_responses, fast_responses

    ca_seconds, fast_seconds, ca_responses, fast_responses = single_shot(
        benchmark, _measure
    )
    n = len(workload)
    speedup = (n / fast_seconds) / (n / ca_seconds)

    report(
        "fast-path serving — lenet5+resnet18+mobilenet on nv_small (INT8)\n"
        f"  cycle-accurate: {n} requests in {ca_seconds:.2f} s "
        f"= {n / ca_seconds:.2f} req/s\n"
        f"  fast tier:      {n} requests in {fast_seconds:.2f} s "
        f"= {n / fast_seconds:.2f} req/s  (one-time builds+calibration: "
        f"{build_seconds:.1f} s)\n"
        f"  speedup:        {speedup:.1f}x\n\n" + table.render()
    )

    # Acceptance: >= 10x throughput over cached cycle-accurate serving.
    assert speedup >= 10.0, f"fast tier only {speedup:.1f}x faster"
    # Bit-identical tensors, request by request.
    for ca_response, fast_response in zip(ca_responses, fast_responses):
        assert np.array_equal(ca_response.output, fast_response.output)
    # Reported cycles stay inside the calibrated error band.
    for ca_response, fast_response in zip(ca_responses, fast_responses):
        error = abs(fast_response.cycles - ca_response.cycles) / ca_response.cycles
        assert error <= 0.10


def test_serving_mixed_nv_full(benchmark, report):
    from benchmarks.conftest import single_shot

    rng = np.random.default_rng(WORKLOAD_SEED)
    workload = _mixed_workload(("lenet5", "resnet18"), "nv_full", Precision.FP16, 8, rng)

    # Batch size 2 forces each deployment across multiple batches, so
    # the bundle cache sees both misses (first batch) and hits.
    service = InferenceService(max_batch_size=2)
    elapsed, outputs, responses = single_shot(
        benchmark, lambda: _run_served(workload, service)
    )
    report(
        "serving — mixed lenet5+resnet18 on nv_full (FP16)\n"
        f"  {len(workload)} requests in {elapsed:.2f} s "
        f"= {len(workload) / elapsed:.2f} req/s\n\n" + service.metrics.render()
    )

    # Two deployments → exactly two flow builds, everything else hits.
    assert service.metrics.bundle_misses == 2
    assert service.metrics.bundle_hits >= 2
    assert all(out is not None for out in outputs)
    # One worker serves both models (hardware-keyed pooling).
    assert service.metrics.workers_created == 1


# ----------------------------------------------------------------------
# PR-7: the process-parallel serving plane.
# ----------------------------------------------------------------------


def run_process_scaling(
    process_counts=(1, 4),
    models=("lenet5", "resnet18"),
    requests=64,  # 8 full batches: an integer number per worker at 4
    batch_size=8,
):
    """Fast-tier workload on the plane at several process counts, with
    the single-process service as the bit-identity reference.

    Returns a JSON-ready dict: per-count throughput, speedups vs the
    1-process plane, and whether every response was bit-identical to
    the service."""
    rng = np.random.default_rng(WORKLOAD_SEED)
    cache = BundleCache()
    table = calibrate(models, NV_SMALL, cache=cache)
    workload = [
        (replace(deployment, execution_mode="fast"), image)
        for deployment, image in _mixed_workload(
            models, "nv_small", Precision.INT8, requests, rng
        )
    ]
    unique = list(dict.fromkeys(d for d, _ in workload))

    service = InferenceService(
        cache=cache, max_batch_size=batch_size, calibration=table
    )
    for deployment, image in workload[: len(unique)]:
        service.request(deployment, image)
    service.run_pending()  # warm: steady-state measurement below
    began = time.perf_counter()
    for deployment, image in workload:
        service.request(deployment, image)
    reference = sorted(service.run_pending(), key=lambda r: r.request_id)
    service_seconds = time.perf_counter() - began
    assert all(r.ok for r in reference)

    planes = {}
    bit_identical = True
    for processes in process_counts:
        plane = ServingPlane(
            processes=processes,
            max_batch_size=batch_size,
            calibration=table,
            cache=cache,
        )
        with plane:
            plane.warm(unique)
            handed = [plane.request(d, image) for d, image in workload]
            # One untimed batch per process so every worker has
            # rehydrated its bundles before the measured window.
            plane.serve([plane.request(d, None) for d in unique * processes])
            began = time.perf_counter()
            responses = plane.serve(handed)
            seconds = time.perf_counter() - began
        assert all(r.ok for r in responses)
        for ref, got in zip(reference, responses):
            if not np.array_equal(ref.output, got.output) or ref.cycles != got.cycles:
                bit_identical = False
        planes[processes] = {
            "seconds": seconds,
            "rps": requests / seconds,
        }
    base_rps = planes[process_counts[0]]["rps"]
    for point in planes.values():
        point["speedup_vs_1"] = point["rps"] / base_rps
    return {
        "cpu_count": os.cpu_count(),
        "models": list(models),
        "requests": requests,
        "service_rps": requests / service_seconds,
        "planes": {str(k): v for k, v in planes.items()},
        "bit_identical": bit_identical,
    }


def test_process_parallel_scaling(benchmark, report):
    """The PR-7 acceptance gate: 4 worker processes vs 1 on the fast
    tier.  Bit-identity to the single-process service is asserted
    unconditionally; the >= 2.5x throughput gate needs >= 4 cores, so
    on smaller hosts it is reported as skipped, not silently passed."""
    from benchmarks.conftest import single_shot

    result = single_shot(
        benchmark, lambda: run_process_scaling(process_counts=(1, 4))
    )
    lines = [
        "process-parallel serving — lenet5+resnet18 fast tier on nv_small",
        f"  single-process service: {result['service_rps']:.1f} req/s",
    ]
    for count, point in result["planes"].items():
        lines.append(
            f"  {count} process(es): {point['rps']:.1f} req/s "
            f"({point['speedup_vs_1']:.2f}x vs 1)"
        )
    scaling_gated = result["cpu_count"] is not None and result["cpu_count"] >= 4
    if not scaling_gated:
        lines.append(
            f"  scaling gate SKIPPED: {result['cpu_count']} core(s) < 4 "
            "(bit-identity still asserted)"
        )
    report("\n".join(lines))

    assert result["bit_identical"], "plane diverged from the service"
    if scaling_gated:
        speedup = result["planes"]["4"]["speedup_vs_1"]
        assert speedup >= 2.5, f"4 processes only {speedup:.2f}x over 1"


@pytest.mark.slow
def test_zoo_bit_identity_across_processes(report):
    """Every zoo model, served on the 2-process plane and the
    single-process service: outputs must be bit-identical model by
    model, request by request.

    The fast tier carries the traffic; the big models are admitted with
    placeholder cycle measurements because this test gates *output
    identity only* — cycle fidelity for them is owned by the
    calibration suite."""
    models = sorted(ZOO)
    rng = np.random.default_rng(WORKLOAD_SEED)
    cache = BundleCache()
    table = CalibrationTable()
    for model in models:
        table.admit(
            model, "nv_small", Precision.INT8,
            measured_cycles=1, estimated_cycles=1,
        )
    workload = [
        (replace(deployment, execution_mode="fast"), image)
        for deployment, image in _mixed_workload(
            models, "nv_small", Precision.INT8, 2 * len(models), rng
        )
    ]

    service = InferenceService(cache=cache, calibration=table)
    for deployment, image in workload:
        service.request(deployment, image)
    reference = sorted(service.run_pending(), key=lambda r: r.request_id)

    with ServingPlane(processes=2, calibration=table, cache=cache) as plane:
        responses = plane.serve(
            [plane.request(d, image) for d, image in workload]
        )

    mismatched = [
        (ref.deployment.model, ref.request_id)
        for ref, got in zip(reference, responses)
        if not np.array_equal(ref.output, got.output) or ref.cycles != got.cycles
    ]
    report(
        "zoo bit-identity across processes — "
        + ", ".join(models)
        + (f"\n  MISMATCHES: {mismatched}" if mismatched else "\n  all identical")
    )
    assert all(r.ok for r in responses)
    assert not mismatched


# ----------------------------------------------------------------------
# Script entry point (CI artifact).
# ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced run (1 vs 2 processes, fewer requests) for CI",
    )
    parser.add_argument("--out", default=None, help="write metrics JSON here")
    args = parser.parse_args(argv)

    if args.smoke:
        process_counts, requests = (1, 2), 16
    else:
        process_counts, requests = (1, 2, 4), 64
    result = run_process_scaling(process_counts=process_counts, requests=requests)
    print(
        f"single-process service: {result['service_rps']:.1f} req/s "
        f"({result['cpu_count']} core(s))"
    )
    for count, point in result["planes"].items():
        print(
            f"{count} process(es): {point['rps']:.1f} req/s "
            f"({point['speedup_vs_1']:.2f}x vs 1)"
        )
    print("bit-identical to service: " + ("yes" if result["bit_identical"] else "NO"))
    if args.out:
        from repro.obs import bench_envelope

        payload = bench_envelope(
            "bench_serving.process_scaling",
            {
                "smoke": args.smoke,
                "process_counts": list(process_counts),
                "requests": requests,
                "workload_seed": WORKLOAD_SEED,
                "models": ["lenet5", "resnet18"],
            },
            result,
        )
        Path(args.out).write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"metrics written to {args.out}")
    return 0 if result["bit_identical"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
