"""Serving throughput — the bundle cache against the per-request flow.

A mixed LeNet-5 + ResNet-18 workload on nv_small (INT8) and nv_full
(FP16), served two ways:

- **cold path** — every request runs the full offline flow
  (`generate_baremetal`) and builds a fresh SoC, the pre-serving
  behaviour of the repo;
- **served** — the `repro.serve` service: one flow build per
  deployment, then cache-hit replays on pooled, reused SoC workers.

Asserts the tentpole acceptance criterion: ≥ 5× throughput on repeated
same-deployment requests, with cache-hit outputs bit-identical to the
cold path.
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from repro.baremetal import generate_baremetal
from repro.core import Soc, calibrate
from repro.nn.zoo import ZOO
from repro.nvdla import NV_FULL, NV_SMALL
from repro.nvdla.config import Precision
from repro.serve import BundleCache, DeploymentSpec, InferenceService, make_input_for

from benchmarks.conftest import single_shot

WORKLOAD_SEED = 2025


def _mixed_workload(models, config_name, precision, requests, rng):
    deployments = [
        DeploymentSpec(model, config=config_name, precision=precision)
        for model in models
    ]
    nets = {model: ZOO[model]() for model in models}
    return [
        (deployments[i % len(deployments)],
         make_input_for(nets[deployments[i % len(deployments)].model], rng))
        for i in range(requests)
    ]


def _run_cold(workload, config):
    """Per-request offline flow + fresh SoC; returns (seconds, outputs)."""
    outputs = []
    began = time.perf_counter()
    for deployment, image in workload:
        bundle = generate_baremetal(
            ZOO[deployment.model](),
            config,
            precision=deployment.precision,
            input_image=image,
        )
        soc = Soc(config)
        soc.load_bundle(bundle)
        result = soc.run_inference(bundle)
        assert result.ok
        outputs.append(result.output)
    return time.perf_counter() - began, outputs


def _run_served(workload, service):
    began = time.perf_counter()
    for deployment, image in workload:
        service.request(deployment, image)
    responses = service.run_pending()
    elapsed = time.perf_counter() - began
    assert all(r.ok for r in responses)
    ordered = sorted(responses, key=lambda r: r.request_id)
    return elapsed, [r.output for r in ordered], responses


def test_serving_throughput_nv_small(benchmark, report):
    rng = np.random.default_rng(WORKLOAD_SEED)
    models = ("lenet5", "resnet18")
    # The cold path is so slow that a few requests suffice to measure
    # it; the served path gets the same mix repeated several times.
    cold_workload = _mixed_workload(models, "nv_small", Precision.INT8, 4, rng)
    warm_workload = cold_workload * 4  # 16 requests, repeated deployments

    cold_seconds, cold_outputs = _run_cold(cold_workload, NV_SMALL)
    cold_rps = len(cold_workload) / cold_seconds

    service = InferenceService(max_batch_size=8)
    # Pre-warm so the measured window is the repeated-request (cache
    # hit) regime the acceptance criterion names; the build cost is
    # reported separately below.
    for deployment, image in cold_workload[: len(models)]:
        service.request(deployment, image)
    build_began = time.perf_counter()
    service.run_pending()
    build_seconds = time.perf_counter() - build_began

    warm_seconds, warm_outputs, responses = single_shot(
        benchmark, lambda: _run_served(warm_workload, service)
    )
    warm_rps = len(warm_workload) / warm_seconds
    speedup = warm_rps / cold_rps

    # Structured metrics export — the benchmark reads the service's
    # numbers as data (ServiceMetrics.to_dict), not rendered text.
    summary = service.metrics.to_dict()
    report(
        "serving throughput — mixed lenet5+resnet18 on nv_small (INT8)\n"
        f"  cold path: {len(cold_workload)} requests in {cold_seconds:.2f} s "
        f"= {cold_rps:.2f} req/s\n"
        f"  served:    {len(warm_workload)} requests in {warm_seconds:.2f} s "
        f"= {warm_rps:.2f} req/s  (one-time builds: {build_seconds:.2f} s)\n"
        f"  speedup:   {speedup:.1f}x\n"
        f"  cache hit rate {summary['cache_hit_rate'] * 100:.0f}%  "
        f"wall p99 {summary['wall']['p99'] * 1e3:.1f} ms\n\n"
        + service.metrics.render()
    )

    # Acceptance: >= 5x throughput on repeated same-deployment requests.
    assert speedup >= 5.0, f"cache-hit path only {speedup:.1f}x faster"
    # All repeated requests were cache hits on reused workers.
    assert all(r.cache_hit for r in responses)
    assert summary["bundle_misses"] == len(models)
    assert summary["failures"] == 0
    assert summary["wall"]["count"] == summary["requests"]
    # Bit-identical to the cold path, request by request.
    for cold_out, warm_out in zip(cold_outputs, warm_outputs):
        assert cold_out is not None and warm_out is not None
        assert np.array_equal(cold_out, warm_out)


def test_fastpath_serving_throughput(benchmark, report):
    """The PR-2 acceptance gate: the calibrated fast tier vs the cached
    cycle-accurate service, same warm workload, shared bundle cache.

    The mix spans the three model classes the zoo serves on nv_small —
    tiny (lenet5), CIFAR-residual (resnet18) and a 224×224 depthwise
    network (mobilenet, where the ISS poll burden is heaviest).
    """
    rng = np.random.default_rng(WORKLOAD_SEED)
    models = ("lenet5", "resnet18", "mobilenet")
    cache = BundleCache()
    build_began = time.perf_counter()
    table = calibrate(models, NV_SMALL, cache=cache)
    build_seconds = time.perf_counter() - build_began

    workload = _mixed_workload(models, "nv_small", Precision.INT8, 6, rng)
    ca_service = InferenceService(cache=cache, max_batch_size=8)
    fast_service = InferenceService(cache=cache, max_batch_size=8, calibration=table)

    def _serve(service, mode):
        for deployment, image in workload:
            service.request(replace(deployment, execution_mode=mode), image)
        responses = service.run_pending()
        assert all(r.ok for r in responses)
        return [r for r in sorted(responses, key=lambda r: r.request_id)]

    # Warm both tiers (bundle + worker reuse), then measure steady state.
    _serve(ca_service, "cycle_accurate")
    _serve(fast_service, "fast")

    def _measure():
        began = time.perf_counter()
        ca_responses = _serve(ca_service, "cycle_accurate")
        ca_seconds = time.perf_counter() - began
        began = time.perf_counter()
        fast_responses = _serve(fast_service, "fast")
        fast_seconds = time.perf_counter() - began
        return ca_seconds, fast_seconds, ca_responses, fast_responses

    ca_seconds, fast_seconds, ca_responses, fast_responses = single_shot(
        benchmark, _measure
    )
    n = len(workload)
    speedup = (n / fast_seconds) / (n / ca_seconds)

    report(
        "fast-path serving — lenet5+resnet18+mobilenet on nv_small (INT8)\n"
        f"  cycle-accurate: {n} requests in {ca_seconds:.2f} s "
        f"= {n / ca_seconds:.2f} req/s\n"
        f"  fast tier:      {n} requests in {fast_seconds:.2f} s "
        f"= {n / fast_seconds:.2f} req/s  (one-time builds+calibration: "
        f"{build_seconds:.1f} s)\n"
        f"  speedup:        {speedup:.1f}x\n\n" + table.render()
    )

    # Acceptance: >= 10x throughput over cached cycle-accurate serving.
    assert speedup >= 10.0, f"fast tier only {speedup:.1f}x faster"
    # Bit-identical tensors, request by request.
    for ca_response, fast_response in zip(ca_responses, fast_responses):
        assert np.array_equal(ca_response.output, fast_response.output)
    # Reported cycles stay inside the calibrated error band.
    for ca_response, fast_response in zip(ca_responses, fast_responses):
        error = abs(fast_response.cycles - ca_response.cycles) / ca_response.cycles
        assert error <= 0.10


def test_serving_mixed_nv_full(benchmark, report):
    rng = np.random.default_rng(WORKLOAD_SEED)
    workload = _mixed_workload(("lenet5", "resnet18"), "nv_full", Precision.FP16, 8, rng)

    # Batch size 2 forces each deployment across multiple batches, so
    # the bundle cache sees both misses (first batch) and hits.
    service = InferenceService(max_batch_size=2)
    elapsed, outputs, responses = single_shot(
        benchmark, lambda: _run_served(workload, service)
    )
    report(
        "serving — mixed lenet5+resnet18 on nv_full (FP16)\n"
        f"  {len(workload)} requests in {elapsed:.2f} s "
        f"= {len(workload) / elapsed:.2f} req/s\n\n" + service.metrics.render()
    )

    # Two deployments → exactly two flow builds, everything else hits.
    assert service.metrics.bundle_misses == 2
    assert service.metrics.bundle_hits >= 2
    assert all(out is not None for out in outputs)
    # One worker serves both models (hardware-keyed pooling).
    assert service.metrics.workers_created == 1
