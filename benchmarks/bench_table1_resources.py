"""Table I — FPGA resource utilisation on the ZCU102.

Regenerates every row of the paper's Table I from the calibrated
parametric resource model, and reproduces the nv_full synthesis
observation (substantial LUT over-utilisation).
"""

from __future__ import annotations

from repro.fpga import ZCU102, synthesize
from repro.harness import format_table, run_table1
from repro.harness.experiments import run_table1_nv_full_check
from repro.nvdla import NV_FULL, NV_SMALL

from benchmarks.conftest import single_shot

PAPER_ROWS = {
    "Overall System Set-up": 96733,
    "Our SoC": 81986,
    "nv_small NVDLA": 74575,
    "uRISC_V core": 6346,
}


def test_table1_utilization(benchmark, report):
    table = single_shot(benchmark, run_table1)
    report(table.render())

    # Shape assertions: every published LUT figure within 2%.
    for row, paper_luts in PAPER_ROWS.items():
        measured = table.rows[row].luts
        assert abs(measured - paper_luts) / paper_luts < 0.02, (row, measured)
    # The whole setup fits the device with headroom (paper: it runs).
    assert ZCU102.fits(table.rows["Overall System Set-up"])


def test_table1_nv_full_overutilization(benchmark, report):
    violations = single_shot(benchmark, run_table1_nv_full_check)
    result = synthesize(NV_FULL, ZCU102)
    report(result.render())
    assert violations, "nv_full must not fit the ZCU102"
    assert result.utilization["luts"] > synthesize(NV_SMALL, ZCU102).utilization["luts"] * 4


def test_table1_row_ordering(benchmark, report):
    """NVDLA dominates the SoC; the SoC dominates the support IP."""
    table = single_shot(benchmark, run_table1)
    rows = table.rows
    assert rows["nv_small NVDLA"].luts > rows["uRISC_V core"].luts * 10
    assert rows["Our SoC"].luts > rows["MIG DDR4"].luts + rows["AXI SmartConnect"].luts
    assert rows["Program Memory"].bram_tiles > rows["nv_small NVDLA"].bram_tiles
    report(
        format_table(
            ["component", "LUTs", "BRAM", "DSP"],
            [
                [name, f"{vec.luts:.0f}", f"{vec.bram_tiles:g}", f"{vec.dsps:.0f}"]
                for name, vec in rows.items()
            ],
            title="Table I key columns",
        )
    )
