"""Fleet load sweep — routing policies and SLO-aware autoscaling.

Two experiments on the `repro.cluster` virtual-time simulator (all
queueing numbers deterministic from ``SEED``; no functional execution,
so hundreds of requests simulate in milliseconds):

- **policy sweep** — offered RPS vs goodput/p99/warm hit rate for the
  three routing policies on a mixed lenet5+resnet18 zoo with scarce
  per-replica residency (capacity 1: an edge SoC whose DRAM holds one
  model's artefacts).  Cache-affinity hashing keeps each deployment's
  bundle resident on its owner replica, so it must beat round-robin on
  fleet hit rate *and* p99 at every offered load.
- **autoscaler** — a bursty (MMPP) lenet5 trace against a fixed
  single-replica fleet and against the autoscaled fleet; the scaled
  fleet must keep the shed fraction inside the configured rejection
  SLO that the static fleet misses.
- **store warmup** — the same autoscaled bursty trace with artifact
  acquisition priced in, once against an empty ``BundleStore`` (every
  cold replica's first touch is a full build) and once against a
  pre-warmed one (``repro warmup``; first touch is a cheap fetch);
  warming must measurably lower the cold-start p99.

Run under pytest (asserted, with the usual ``report`` fixture) or as a
script for the CI artifact::

    python benchmarks/bench_cluster.py --smoke --out cluster_metrics.json
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cluster import (
    AdmissionController,
    Autoscaler,
    BurstyArrivals,
    ClusterSimulation,
    PoissonArrivals,
    SloPolicy,
    generate_workload,
    make_router,
)
from repro.serve import DeploymentSpec, shared_cache

SEED = 2026
POLICIES = ("round_robin", "least_outstanding", "cache_affinity")
SWEEP_RPS = (60.0, 120.0, 240.0)
SWEEP_REQUESTS = 240
BURSTY_REQUESTS = 600


def _mixed_deployments() -> list[DeploymentSpec]:
    return [DeploymentSpec("lenet5"), DeploymentSpec("resnet18")]


def run_policy_sweep(
    rps_points=SWEEP_RPS, requests=SWEEP_REQUESTS, replicas=2, seed=SEED
) -> dict[str, list[dict]]:
    """policy → one metrics dict per offered-RPS point (same workloads)."""
    cache = shared_cache()
    deployments = _mixed_deployments()
    sweep: dict[str, list[dict]] = {policy: [] for policy in POLICIES}
    for rps in rps_points:
        workload = generate_workload(
            PoissonArrivals(rps), deployments, requests, seed=seed
        )
        for policy in POLICIES:
            simulation = ClusterSimulation(
                make_router(policy),
                replicas=replicas,
                cache=cache,
                resident_capacity=1,
            )
            metrics = simulation.run(workload).metrics
            metrics.arrival_name = f"poisson@{rps:g}rps"
            sweep[policy].append(metrics.to_dict())
    return sweep


#: The bursty scenario is tuned (and asserted) at this seed; the CLI
#: exposes it separately from the sweep seed so the artifact's
#: provenance stays truthful.
BURSTY_SEED = 3


def run_autoscaler_bursty(requests=BURSTY_REQUESTS, seed=BURSTY_SEED) -> dict[str, dict]:
    """Static single replica vs the autoscaled fleet on one MMPP trace."""
    cache = shared_cache()
    workload = generate_workload(
        BurstyArrivals(100.0, 500.0, mean_calm_s=1.5, mean_burst_s=0.8),
        [DeploymentSpec("lenet5")],
        requests,
        seed=seed,
    )
    slo = SloPolicy(slo_latency_s=0.10, max_rejection_rate=0.05, max_queue_depth=24)
    results = {}
    for label, autoscaler in (
        ("static", None),
        (
            "autoscaled",
            Autoscaler(
                min_replicas=1,
                max_replicas=8,
                target_p99_s=0.06,
                evaluate_every_s=0.05,
                window_s=0.3,
                provision_delay_s=0.05,
                up_cooldown_s=0.05,
            ),
        ),
    ):
        simulation = ClusterSimulation(
            make_router("least_outstanding"),
            replicas=1,
            admission=AdmissionController(slo),
            autoscaler=autoscaler,
            cache=cache,
        )
        metrics = simulation.run(workload).metrics
        metrics.arrival_name = "bursty(100→500rps)"
        results[label] = metrics.to_dict()
    return results


#: The store scenario is deliberately shorter than the SLO trace: the
#: cold start is a one-off event, so the trace must end while it still
#: sits inside the p99 rank (at 600 requests the single build outlier
#: washes out of p99 and survives only in max).
STORE_REQUESTS = 300


def run_store_warmup(requests=STORE_REQUESTS, seed=BURSTY_SEED) -> dict[str, dict]:
    """Cold-start pricing: the autoscaled bursty fleet against an empty
    vs a pre-warmed artifact store (fresh directories each call, so the
    empty run cannot inherit a previous run's published bundles)."""
    import tempfile

    from repro.baremetal.pipeline import bundle_cache_key
    from repro.nvdla import Precision
    from repro.serve import BundleCache
    from repro.store import BundleStore

    spec = DeploymentSpec("lenet5")
    workload = generate_workload(
        BurstyArrivals(100.0, 500.0, mean_calm_s=1.5, mean_burst_s=0.8),
        [spec],
        requests,
        seed=seed,
    )
    slo = SloPolicy(slo_latency_s=0.10, max_rejection_rate=0.05, max_queue_depth=24)
    results = {}
    with tempfile.TemporaryDirectory(prefix="bench-store-") as tmp:
        for label in ("empty_store", "warm_store"):
            store = BundleStore(Path(tmp) / label)
            if label == "warm_store":
                store.put_bundle(
                    bundle_cache_key("lenet5", "nv_small", Precision.INT8, "functional"),
                    shared_cache().bundle_for("lenet5", "nv_small"),
                )
            simulation = ClusterSimulation(
                make_router("least_outstanding"),
                replicas=1,
                admission=AdmissionController(slo),
                autoscaler=Autoscaler(
                    min_replicas=1,
                    max_replicas=8,
                    target_p99_s=0.06,
                    evaluate_every_s=0.05,
                    window_s=0.3,
                    provision_delay_s=0.05,
                    up_cooldown_s=0.05,
                ),
                cache=BundleCache(store=store),
                store=store,
            )
            metrics = simulation.run(workload).metrics
            metrics.arrival_name = "bursty(100→500rps)"
            results[label] = metrics.to_dict()
            results[label]["store_stats"] = store.stats.to_dict()
    return results


def _sweep_table(sweep: dict[str, list[dict]]) -> str:
    lines = [
        f"{'offered':>10} {'policy':<18} {'goodput':>8} {'p99 ms':>8} "
        f"{'hit %':>6} {'rej %':>6}"
    ]
    points = len(next(iter(sweep.values())))
    for index in range(points):
        for policy in POLICIES:
            point = sweep[policy][index]
            lines.append(
                f"{point['offered_rps']:>10.1f} {policy:<18} "
                f"{point['goodput_rps']:>8.1f} "
                f"{point['latency']['p99'] * 1e3:>8.1f} "
                f"{point['resident_hit_rate'] * 100:>6.0f} "
                f"{point['rejection_rate'] * 100:>6.1f}"
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Asserted benchmarks (pytest).
# ----------------------------------------------------------------------


def test_cluster_policy_load_sweep(benchmark, report):
    from benchmarks.conftest import single_shot

    sweep = single_shot(benchmark, run_policy_sweep)
    report(
        "cluster load sweep — lenet5+resnet18, 2 replicas, residency 1\n"
        + _sweep_table(sweep)
    )
    for affinity, rr in zip(sweep["cache_affinity"], sweep["round_robin"]):
        # Same offered load, same seeded workload.
        assert affinity["arrivals"] == rr["arrivals"]
        assert affinity["offered_rps"] == rr["offered_rps"]
        # The acceptance criterion: affinity beats round-robin on fleet
        # warm hit rate AND tail latency at every offered point.
        assert affinity["resident_hit_rate"] > rr["resident_hit_rate"] + 0.3
        assert affinity["latency"]["p99"] < rr["latency"]["p99"]
    # Under congestion the hit-rate edge must convert into goodput.
    assert sweep["cache_affinity"][-1]["goodput_rps"] > sweep["round_robin"][-1]["goodput_rps"]


def test_cluster_autoscaler_keeps_rejection_slo(benchmark, report):
    from benchmarks.conftest import single_shot

    results = single_shot(benchmark, run_autoscaler_bursty)
    static, scaled = results["static"], results["autoscaled"]
    report(
        "autoscaler on a bursty lenet5 trace (SLO: ≤5% rejected)\n"
        f"  static (1 replica): {static['rejection_rate'] * 100:.1f}% rejected, "
        f"p99 {static['latency']['p99'] * 1e3:.1f} ms\n"
        f"  autoscaled (≤8):    {scaled['rejection_rate'] * 100:.1f}% rejected, "
        f"p99 {scaled['latency']['p99'] * 1e3:.1f} ms, "
        f"peak {scaled['peak_replicas']} replicas, "
        f"{len(scaled['scale_events'])} scale events"
    )
    # The burst overruns one replica's SLO...
    assert not static["meets_rejection_slo"]
    # ...and the autoscaler absorbs it inside the configured SLO.
    assert scaled["meets_rejection_slo"]
    assert scaled["rejection_rate"] < static["rejection_rate"]
    assert scaled["peak_replicas"] > 1
    assert any(
        event["to_replicas"] > event["from_replicas"]
        for event in scaled["scale_events"]
    )


def test_cluster_cold_start_drops_with_warm_store(benchmark, report):
    from benchmarks.conftest import single_shot

    results = single_shot(benchmark, run_store_warmup)
    empty, warm = results["empty_store"], results["warm_store"]
    report(
        "store warmup on the autoscaled bursty trace\n"
        f"  empty store: p99 {empty['latency']['p99'] * 1e3:.1f} ms "
        f"(max {empty['latency']['max'] * 1e3:.1f} ms)\n"
        f"  warm store:  p99 {warm['latency']['p99'] * 1e3:.1f} ms "
        f"(max {warm['latency']['max'] * 1e3:.1f} ms)"
    )
    # The tentpole's cluster gate: pre-warming the store lowers the
    # cold-start tail — every scale-up's first touch is a fetch, not a
    # compile.
    assert warm["latency"]["p99"] < empty["latency"]["p99"]
    assert warm["latency"]["max"] < empty["latency"]["max"]
    # Both runs scaled up (same workload, same autoscaler)...
    assert empty["peak_replicas"] > 1 and warm["peak_replicas"] > 1
    # ...and the warm run really did read artifacts off the store.
    assert warm["store_stats"]["hits"] >= 1


# ----------------------------------------------------------------------
# Script entry point (CI artifact).
# ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced sweep (one RPS point, fewer requests) for CI",
    )
    parser.add_argument("--out", default=None, help="write metrics JSON here")
    parser.add_argument("--seed", type=int, default=SEED,
                        help="workload seed for the policy sweep")
    parser.add_argument("--bursty-seed", type=int, default=BURSTY_SEED,
                        help="workload seed for the autoscaler trace")
    args = parser.parse_args(argv)

    if args.smoke:
        sweep = run_policy_sweep(rps_points=(120.0,), requests=120, seed=args.seed)
        bursty = run_autoscaler_bursty(requests=300, seed=args.bursty_seed)
    else:
        sweep = run_policy_sweep(seed=args.seed)
        bursty = run_autoscaler_bursty(seed=args.bursty_seed)
    store = run_store_warmup(seed=args.bursty_seed)
    print(_sweep_table(sweep))
    print()
    for label, point in bursty.items():
        print(
            f"{label:<11}: {point['rejection_rate'] * 100:5.1f}% rejected  "
            f"p99 {point['latency']['p99'] * 1e3:7.1f} ms  "
            f"peak {point['peak_replicas']} replica(s)"
        )
    print()
    for label, point in store.items():
        print(
            f"{label:<11}: p99 {point['latency']['p99'] * 1e3:7.1f} ms  "
            f"max {point['latency']['max'] * 1e3:7.1f} ms  "
            f"{point['store_stats']['hits']} store hit(s)"
        )
    if args.out:
        from repro.obs import bench_envelope

        payload = bench_envelope(
            "bench_cluster.fleet_sweep",
            {
                "smoke": args.smoke,
                "sweep_seed": args.seed,
                "bursty_seed": args.bursty_seed,
                "policies": list(POLICIES),
            },
            {
                "sweep": sweep,
                "autoscaler_bursty": bursty,
                "store_warmup": store,
            },
        )
        Path(args.out).write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"\nmetrics written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
