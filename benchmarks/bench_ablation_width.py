"""Ablation A2 — memory-path width sweep (paper §VI).

"The current design ... with the flexibility to support nv_full by
modifying parameters such as the AXI interface width (e.g., from
64-bit to 512-bit)."  This sweep quantifies that sentence on
ResNet-50/nv_full: latency versus the memory-path width.
"""

from __future__ import annotations

from repro.harness import format_table, run_ablation_width

from benchmarks.conftest import single_shot


def test_ablation_width_sweep(benchmark, report):
    points = single_shot(benchmark, lambda: run_ablation_width("resnet50"))
    report(
        format_table(
            ["memory path", "cycles", "ms@100MHz"],
            [[p.label, f"{p.cycles:,}", f"{p.ms:.1f}"] for p in points],
            title="Ablation A2 — AXI/memory width sweep (ResNet-50, nv_full FP16)",
        )
    )
    by_width = {p.value: p for p in points}

    # Latency must be monotone non-increasing in width.
    widths = sorted(by_width)
    for narrow, wide in zip(widths, widths[1:]):
        assert by_width[wide].cycles <= by_width[narrow].cycles

    # The paper's point: 32-bit (the nv_small converter) strangles
    # nv_full; widening it recovers a large factor.
    assert by_width[32].cycles / by_width[512].cycles > 2.0

    # Diminishing returns once compute dominates: the last doubling
    # helps less than the first.
    first_gain = by_width[32].cycles / by_width[64].cycles
    last_gain = by_width[256].cycles / by_width[512].cycles
    assert first_gain > last_gain
