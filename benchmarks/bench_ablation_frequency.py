"""Ablation A3 — system-clock sweep.

Table II reports 100 MHz and compares against the ESP platform's
50 MHz; this sweep separates the clock effect from everything else:
in a single-clock-domain SoC, cycle counts are frequency-invariant and
latency is exactly 1/f.
"""

from __future__ import annotations

import pytest

from repro.harness import format_table
from repro.harness.experiments import run_ablation_frequency

from benchmarks.conftest import single_shot


def test_ablation_frequency_sweep(benchmark, report):
    points = single_shot(benchmark, lambda: run_ablation_frequency("lenet5"))
    report(
        format_table(
            ["clock", "cycles", "ms"],
            [[p.label, f"{p.cycles:,}", f"{p.ms:.2f}"] for p in points],
            title="Ablation A3 — system-clock sweep (LeNet-5, nv_small)",
        )
    )
    cycles = {p.cycles for p in points}
    assert len(cycles) == 1, "cycle count must be frequency-invariant"
    by_freq = {p.value: p for p in points}
    assert by_freq[50].ms == pytest.approx(2 * by_freq[100].ms, rel=1e-6)
    assert by_freq[100].ms == pytest.approx(3 * by_freq[300].ms, rel=1e-6)
