"""Ablation A1 — where does the bare-metal speedup come from?

Sweeps the Linux driver-stack overheads from zero to the calibrated
ESP values, separating the three effects the paper conflates: clock
frequency (100 vs 50 MHz), accelerator time, and the software stack.
"""

from __future__ import annotations

from repro.harness import format_table, run_ablation_baremetal

from benchmarks.conftest import single_shot


def test_ablation_overhead_sweep(benchmark, report):
    points = single_shot(benchmark, lambda: run_ablation_baremetal("lenet5"))
    report(
        format_table(
            ["configuration", "cycles", "ms"],
            [[p.label, f"{p.cycles:,}", f"{p.ms:.2f}"] for p in points],
            title="Ablation A1 — bare-metal vs Linux-driver overheads (LeNet-5)",
        )
    )
    bare = points[0]
    linux = {p.value: p for p in points[1:]}

    # With zero software overhead the 50 MHz Linux run is just the
    # accelerator at half clock: ~2x the bare-metal latency.
    zero = linux[0.0]
    assert 1.0 <= zero.ms / bare.ms <= 6.0

    # The full stack is dominated by the fixed init: >= 40x bare metal.
    full = linux[1.0]
    assert full.ms / bare.ms > 40

    # Init accounts for the lion's share of the full-stack latency.
    assert full.detail["init_ms"] / full.ms > 0.8


def test_ablation_resnet18_less_overhead_bound(benchmark, report):
    points = single_shot(benchmark, lambda: run_ablation_baremetal("resnet18"))
    bare = points[0]
    full = next(p for p in points if p.value == 1.0)
    ratio = full.ms / bare.ms
    report(f"resnet18: bare {bare.ms:.1f} ms vs linux {full.ms:.1f} ms ({ratio:.1f}x)")
    # Bigger model -> accelerator time grows -> smaller relative gap
    # than LeNet's, but still an order of magnitude here.
    assert 2 < ratio < 60
