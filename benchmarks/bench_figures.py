"""Figures 1-4 — architecture/flow diagrams regenerated from live objects.

The paper's figures are block diagrams; their reproduction is renderers
driven by the real system instances, checked for the structural facts
each figure communicates.
"""

from __future__ import annotations

from repro.harness import run_fig1, run_fig2, run_fig3, run_fig4

from benchmarks.conftest import single_shot


def test_fig1_software_flow(benchmark, report):
    text = single_shot(benchmark, lambda: run_fig1("lenet5"))
    report(text)
    # The five flow stages of Fig. 1, in order.
    for stage in (
        "trained model",
        "NVDLA compiler",
        "virtual platform",
        "trace converter",
        "RISC-V assembler",
        "deployment images",
    ):
        assert stage in text
    assert text.index("NVDLA compiler") < text.index("virtual platform")
    assert text.index("trace converter") < text.index("RISC-V assembler")


def test_fig2_soc_architecture(benchmark, report):
    text = single_shot(benchmark, lambda: run_fig2())
    report(text)
    # The components and the address map of Fig. 2.
    for component in (
        "uRISC-V core",
        "system bus",
        "NVDLA wrapper",
        "AHB->APB bridge",
        "APB->CSB adapter",
        "AXI width",
        "arbiter",
        "DRAM",
        "program memory",
    ):
        assert component in text
    assert "0x100000" in text  # DRAM window base
    assert "512 MiB" in text


def test_fig3_virtual_platform(benchmark, report):
    text = single_shot(benchmark, lambda: run_fig3("lenet5"))
    report(text)
    assert "csb_adaptor" in text and "dbb_adaptor" in text
    assert "runtime" in text
    assert "same address map as the SoC" in text


def test_fig4_test_setup(benchmark, report):
    text = single_shot(benchmark, lambda: run_fig4("lenet5"))
    report(text)
    for component in ("Zynq PS", "SmartConnect", "AXI Interconnect", "MIG DDR4"):
        assert component in text
    assert "300/100" in text  # the clock-domain crossing
    assert "owner: soc" in text  # mux handed over after preload
