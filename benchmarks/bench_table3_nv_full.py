"""Table III — nv_full simulation results (FP16, cycle counts).

Runs all six models through the flow on nv_full with the widened
64-bit memory path.  Paper rows (cycles): LeNet-5 143,188; ResNet-18
324,387; ResNet-50 26,565,315; MobileNet 22,525,704; GoogLeNet
40,889,646; AlexNet 35,535,582.

Known divergences (documented in EXPERIMENTS.md): our compiler's
zero-copy concat and block-diagonal depthwise lowering make GoogLeNet
and MobileNet *faster* than the authors' toolchain; our FC-layer
weight padding makes LeNet slower.  The small-vs-large model split and
the MobileNet ≈ ResNet-50 anomaly (tiny model, comparable cycles)
reproduce.
"""

from __future__ import annotations

from repro.harness import PAPER_TABLE3_CYCLES, format_table, run_table3
from repro.harness.reporting import Comparison, ratio_summary

from benchmarks.conftest import single_shot


def test_table3_full(benchmark, report):
    rows = single_shot(benchmark, lambda: run_table3())
    report(
        format_table(
            ["model", "input", "size MB", "hw ops", "cycles", "paper cycles", "ratio", "ms@100MHz"],
            [
                [
                    r.model,
                    "x".join(map(str, r.input_shape)),
                    f"{r.model_size_mb:.1f}",
                    str(r.hw_ops),
                    f"{r.cycles:,}",
                    f"{r.paper_cycles:,}",
                    f"{r.ratio:.2f}",
                    f"{r.ms_at_100mhz:.1f}",
                ]
                for r in rows
            ],
            title="Table III — nv_full simulation results (FP16)",
        )
    )
    by_model = {r.model: r for r in rows}

    # Small models are 1-2 orders of magnitude quicker than the 224x224 ones.
    assert by_model["lenet5"].cycles < by_model["resnet18"].cycles
    assert by_model["resnet18"].cycles * 10 < by_model["resnet50"].cycles

    # The paper's striking anomaly: MobileNet (17 MB) costs the same
    # order as ResNet-50 (102.5 MB) because depthwise wastes the array.
    assert by_model["mobilenet"].cycles > by_model["resnet50"].cycles / 6

    # Every row within 4x of the published cycle count.
    comparisons = []
    for row in rows:
        assert 0.2 <= row.ratio <= 4.0, (row.model, row.ratio)
        comparisons.append(Comparison(row.model, row.paper_cycles, row.cycles))
    report(ratio_summary(comparisons))


def test_table3_nv_full_beats_nv_small_on_resnet50(benchmark, report):
    """The paper's cross-table comparison: nv_full is ~4x faster than
    nv_small on ResNet-50 (1.1 s -> 265 ms)."""
    from repro.harness import run_table2

    def run_both():
        small = {r.model: r for r in run_table2(models=("resnet50",), with_baseline=False)}
        full = {r.model: r for r in run_table3(models=("resnet50",))}
        return small["resnet50"], full["resnet50"]

    small_row, full_row = single_shot(benchmark, run_both)
    speedup = small_row.ms_at_100mhz / full_row.ms_at_100mhz
    report(
        f"ResNet-50: nv_small {small_row.ms_at_100mhz:.0f} ms vs nv_full "
        f"{full_row.ms_at_100mhz:.0f} ms -> {speedup:.1f}x (paper: 1100/265 = 4.2x)"
    )
    assert 2.0 <= speedup <= 9.0
