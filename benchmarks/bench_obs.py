"""Observability overhead and round-trip gates.

Two acceptance criteria for the `repro.obs` spine:

- **disabled cost < 2 %** — every instrumentation site in the serving
  path guards on ``tracer.enabled`` or calls a ``NULL_TRACER`` method
  that early-returns.  The uninstrumented code no longer exists to A/B
  against, so the gate bounds the cost directly: time the exact
  disabled call sequence a request executes (hot loop, many
  iterations), compare against the measured per-request wall time of
  the fast-tier service, and assert the ratio stays under 2 %.  The
  enabled-tracing run is also measured and reported (informative — the
  criterion is about the *off* switch).
- **cross-process round trip** — a 2-process `ServingPlane` with
  tracing on must reconstruct every request as a *single* span tree:
  the worker-side spans ship back on `FastPathRunResult.spans`, parent
  links resolve across the pickle boundary, no orphans.  The Chrome
  trace-event export must be structurally valid (every event carries
  the required keys; both worker pids appear).

Run under pytest or as a script for the CI artifact::

    python benchmarks/bench_obs.py --smoke --out obs_metrics.json
"""

from __future__ import annotations

import json
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.core import calibrate
from repro.nvdla import NV_SMALL
from repro.nvdla.config import Precision
from repro.obs import NULL_TRACER, Tracer, build_trees, to_chrome_trace
from repro.serve import (
    BundleCache,
    DeploymentSpec,
    InferenceService,
    ServingPlane,
    make_input_for,
)
from repro.nn.zoo import ZOO

WORKLOAD_SEED = 2025

#: Tracer touch points one request pays on the disabled path, counted
#: from the instrumentation sites in service.py (root start, synth
#: scope, execute start, plus the per-request share of batch spans) and
#: procpool.py — deliberately rounded *up* so the gate overstates cost.
DISABLED_CALLS_PER_REQUEST = 12


def _fast_workload(models=("lenet5", "resnet18"), requests=32):
    rng = np.random.default_rng(WORKLOAD_SEED)
    deployments = [
        DeploymentSpec(model, execution_mode="fast") for model in models
    ]
    nets = {model: ZOO[model]() for model in models}
    return [
        (deployments[i % len(deployments)],
         make_input_for(nets[deployments[i % len(deployments)].model], rng))
        for i in range(requests)
    ]


def _serve_all(service, workload):
    for deployment, image in workload:
        service.request(deployment, image)
    responses = service.run_pending()
    assert all(r.ok for r in responses)
    return responses


def measure_disabled_call_cost(iterations: int = 200_000) -> float:
    """Seconds per disabled-tracer touch point (start/end/span/guard)."""
    tracer = NULL_TRACER
    span = tracer.start("x")  # NULL_SPAN
    # One loop iteration ≈ one instrumentation site: a start (returns
    # the null span), an end (early-returns), a context-manager scope,
    # and the enabled-guard read the `if tracer.enabled:` sites pay.
    began = time.perf_counter()
    for _ in range(iterations):
        s = tracer.start("request", trace_id="req-0", request_id=0)
        tracer.end(s, ok=True)
        with tracer.span("input.synthesize", parent=s):
            pass
        if tracer.enabled:  # pragma: no cover - disabled by construction
            pass
    elapsed = time.perf_counter() - began
    # 4 touch points per iteration (start, end, scope, guard).
    return elapsed / (iterations * 4)


def run_disabled_overhead(requests: int = 64) -> dict:
    """The < 2 % gate: bound the disabled instrumentation cost against
    the measured per-request wall of the warm fast-tier service."""
    models = ("lenet5", "resnet18")
    cache = BundleCache()
    table = calibrate(models, NV_SMALL, cache=cache)
    workload = _fast_workload(models, requests)

    def build(tracer):
        service = InferenceService(
            cache=cache, max_batch_size=8, calibration=table, tracer=tracer
        )
        _serve_all(service, workload[: len(models)])  # warm bundles+workers
        return service

    # Disabled (the default every caller gets): measured request wall.
    disabled = build(NULL_TRACER)
    began = time.perf_counter()
    _serve_all(disabled, workload)
    disabled_seconds = time.perf_counter() - began

    # Enabled, same warm workload — informative comparison.
    enabled_tracer = Tracer(enabled=True, process=-1)
    enabled = build(enabled_tracer)
    began = time.perf_counter()
    _serve_all(enabled, workload)
    enabled_seconds = time.perf_counter() - began

    call_cost_s = measure_disabled_call_cost()
    per_request_wall = disabled_seconds / requests
    overhead_fraction = (
        call_cost_s * DISABLED_CALLS_PER_REQUEST / per_request_wall
    )
    return {
        "requests": requests,
        "disabled_rps": requests / disabled_seconds,
        "enabled_rps": requests / enabled_seconds,
        "enabled_slowdown": enabled_seconds / disabled_seconds,
        "disabled_call_ns": call_cost_s * 1e9,
        "disabled_calls_per_request": DISABLED_CALLS_PER_REQUEST,
        "per_request_wall_us": per_request_wall * 1e6,
        "disabled_overhead_fraction": overhead_fraction,
        "enabled_spans": len(enabled_tracer.finished),
    }


def run_trace_roundtrip(processes: int = 2, requests: int = 12) -> dict:
    """Cross-process stitching on the plane: every request one tree."""
    models = ("lenet5", "resnet18")
    cache = BundleCache()
    table = calibrate(models, NV_SMALL, cache=cache)
    workload = [
        (replace(d, execution_mode="fast"), image)
        for d, image in _fast_workload(models, requests)
    ]
    unique = list(dict.fromkeys(d for d, _ in workload))

    tracer = Tracer(enabled=True, process=-1)
    plane = ServingPlane(
        processes=processes,
        max_batch_size=4,
        calibration=table,
        cache=cache,
        tracer=tracer,
    )
    with plane:
        plane.warm(unique)
        responses = plane.serve(
            [plane.request(d, image) for d, image in workload]
        )
    assert all(r.ok for r in responses)

    spans = tracer.finished
    trees = build_trees(spans)
    request_trees = [t for t in trees if t.trace_id.startswith("req-")]
    chrome = to_chrome_trace(spans)
    event_keys = {"name", "ph", "ts", "dur", "pid", "tid", "args"}
    complete = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
    valid_events = all(event_keys <= set(e) for e in complete)
    # json round trip: the export must be plain serialisable data.
    json.loads(json.dumps(chrome))
    return {
        "processes": processes,
        "requests": requests,
        "spans": len(spans),
        "request_trees": len(request_trees),
        "single_rooted": all(len(t.roots) == 1 for t in request_trees),
        "orphans": sum(len(t.orphans) for t in trees),
        "processes_seen": sorted({s["process"] for s in spans}),
        "chrome_events": len(complete),
        "chrome_valid": valid_events,
    }


# ----------------------------------------------------------------------
# Asserted benchmarks (pytest).
# ----------------------------------------------------------------------


def test_disabled_tracing_under_two_percent(benchmark, report):
    from benchmarks.conftest import single_shot

    result = single_shot(benchmark, run_disabled_overhead)
    report(
        "observability overhead — fast tier, lenet5+resnet18 on nv_small\n"
        f"  tracing off: {result['disabled_rps']:.1f} req/s "
        f"({result['per_request_wall_us']:.0f} us/request)\n"
        f"  tracing on:  {result['enabled_rps']:.1f} req/s "
        f"({result['enabled_slowdown']:.2f}x, "
        f"{result['enabled_spans']} spans)\n"
        f"  disabled guard cost: {result['disabled_call_ns']:.0f} ns/site x "
        f"{result['disabled_calls_per_request']} sites/request = "
        f"{result['disabled_overhead_fraction'] * 100:.4f}% of request wall"
    )
    # The tentpole gate: tracing disabled costs < 2 % of throughput.
    assert result["disabled_overhead_fraction"] < 0.02, (
        f"disabled instrumentation costs "
        f"{result['disabled_overhead_fraction'] * 100:.2f}% per request"
    )
    # The enabled path produced spans (it measured something real).
    assert result["enabled_spans"] > 0


def test_cross_process_trace_roundtrip(benchmark, report):
    from benchmarks.conftest import single_shot

    result = single_shot(benchmark, run_trace_roundtrip)
    report(
        "cross-process trace round trip — 2-process plane, fast tier\n"
        f"  {result['requests']} requests → {result['spans']} spans, "
        f"{result['request_trees']} request trees, "
        f"{result['orphans']} orphans\n"
        f"  processes seen: {result['processes_seen']}  "
        f"chrome events: {result['chrome_events']}"
    )
    # Every request reconstructs as exactly one tree; parents resolve.
    assert result["request_trees"] == result["requests"]
    assert result["single_rooted"]
    assert result["orphans"] == 0
    # Spans were recorded on the plane (-1) AND in every worker.
    assert result["processes_seen"] == [-1] + list(range(result["processes"]))
    assert result["chrome_valid"] and result["chrome_events"] == result["spans"]


# ----------------------------------------------------------------------
# Script entry point (CI artifact).
# ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    import argparse

    from repro.obs import bench_envelope

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced run (fewer requests) for CI",
    )
    parser.add_argument("--out", default=None, help="write metrics JSON here")
    args = parser.parse_args(argv)

    requests = 16 if args.smoke else 64
    overhead = run_disabled_overhead(requests=requests)
    roundtrip = run_trace_roundtrip(requests=8 if args.smoke else 12)
    print(
        f"tracing off {overhead['disabled_rps']:.1f} req/s, "
        f"on {overhead['enabled_rps']:.1f} req/s "
        f"({overhead['enabled_slowdown']:.2f}x); disabled overhead "
        f"{overhead['disabled_overhead_fraction'] * 100:.4f}%"
    )
    print(
        f"round trip: {roundtrip['request_trees']}/{roundtrip['requests']} "
        f"request trees, {roundtrip['orphans']} orphans, "
        f"processes {roundtrip['processes_seen']}"
    )
    gate_ok = (
        overhead["disabled_overhead_fraction"] < 0.02
        and roundtrip["request_trees"] == roundtrip["requests"]
        and roundtrip["single_rooted"]
        and roundtrip["orphans"] == 0
        and roundtrip["chrome_valid"]
    )
    print("gates: " + ("PASS" if gate_ok else "FAIL"))
    if args.out:
        payload = bench_envelope(
            "bench_obs.overhead_and_roundtrip",
            {
                "smoke": args.smoke,
                "requests": requests,
                "workload_seed": WORKLOAD_SEED,
            },
            {"overhead": overhead, "roundtrip": roundtrip},
        )
        Path(args.out).write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"metrics written to {args.out}")
    return 0 if gate_ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
